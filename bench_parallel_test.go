// Benchmarks for the parallel consolidation engine: batch-parallel DIRECT
// evaluation, speculative K probing, and the sharded fleet solver. Unlike
// the figure benchmarks, these measure the solver itself, so they skip the
// disk-profile sweep and run directly against the generated fleets.
//
// BenchmarkDirectParallelEvaluation is the headline: the same DIRECT feval
// budget against the same consolidation objective, swept over worker
// counts. The search visits identical points at every worker count, so the
// per-op time ratio is pure evaluation speedup (near-linear until the
// candidate batches run out of width; ≥2x at 4 cores).
package kairos

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"kairos/internal/core"
	"kairos/internal/direct"
	"kairos/internal/fleet"
)

// workerSweep returns the worker counts worth benchmarking on this host.
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// BenchmarkDirectParallelEvaluation measures one budgeted DIRECT run over
// the SecondLife consolidation objective (97 units, 288 time steps) per
// worker count — the batch-parallel evaluation path of Section 6's global
// search.
func BenchmarkDirectParallelEvaluation(b *testing.B) {
	p := fleetProblem(fleet.Generate(fleet.SecondLife), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	const K = 12
	const budget = 3000
	nU := ev.NumUnits()
	lower := make([]float64, nU)
	upper := make([]float64, nU)
	for i := range upper {
		upper[i] = float64(K)
	}
	var baseline float64
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res direct.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = direct.MinimizeParallel(func(int) direct.Objective {
					ce := ev.Clone()
					tmp := make([]int, nU)
					return func(x []float64) float64 {
						for d, v := range x {
							j := int(v)
							if j >= K {
								j = K - 1
							}
							tmp[d] = j
						}
						o, _ := ce.Eval(tmp, K)
						return o
					}
				}, lower, upper, direct.Options{MaxFevals: budget, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				baseline = perOp
			} else if baseline > 0 {
				b.ReportMetric(baseline/perOp, "speedup")
			}
			b.ReportMetric(float64(res.Fevals), "fevals")
		})
	}
}

// BenchmarkSpeculativeKProbing measures the full Solve pipeline — bounded
// binary search with speculative parallel K probes plus batched DIRECT —
// sequential versus parallel on one dataset. The plans are identical; only
// the wall clock moves.
func BenchmarkSpeculativeKProbing(b *testing.B) {
	p := fleetProblem(fleet.Generate(fleet.Wikipedia), nil)
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := core.DefaultSolveOptions()
			opt.Workers = workers
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(context.Background(), p, opt)
				if err != nil {
					b.Fatal(err)
				}
				if !sol.Feasible {
					b.Fatal("infeasible plan")
				}
			}
		})
	}
}

// BenchmarkShardedFleetSolve compares the single global solve against the
// sharded engine on the 197-server ALL dataset — the fleet-scale path. The
// reported k metric shows how much consolidation quality the cross-shard
// merge pass preserves.
func BenchmarkShardedFleetSolve(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	cases := []struct {
		name   string
		shards int
	}{
		{"unsharded", 1},
		{"shards=4", 4},
		{"shards=8", 8},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var k int
			for i := 0; i < b.N; i++ {
				opt := core.ShardOptions{Shards: tc.shards, Options: core.ParallelSolveOptions()}
				sol, err := core.SolveSharded(context.Background(), p, opt)
				if err != nil {
					b.Fatal(err)
				}
				if !sol.Feasible {
					b.Fatal("infeasible plan")
				}
				k = sol.K
			}
			b.ReportMetric(float64(k), "machines")
		})
	}
}
