package kairos

import (
	"context"
	"fmt"
	"sync"

	"kairos/internal/core"
)

// This file is the package's primary API: a Fleet session handle that owns
// one fleet's consolidation state — the spec it was registered with, the
// current plan/incumbent, the drift detector, and the event log — behind
// four verbs: Consolidate, Observe, Plan, Events. The free functions in
// kairos.go (Consolidate, ConsolidateFleet, Reconsolidate, Watch) are
// deprecated one-call wrappers over this handle, and the HTTP control
// plane (internal/server, `kairos serve`) is a thin remote projection of
// it: one Fleet per registered fleet, one reconcile loop per Fleet.

// FleetSpec describes a fleet under management: the workloads to place,
// the target machines, and optionally the empirical disk model of the
// target hardware. It is the one input every session starts from; solver,
// drift and sharding knobs come in as FleetOptions.
type FleetSpec struct {
	// Name identifies the fleet (used by the control plane and logs; may
	// be empty for library use).
	Name string
	// Workloads are the resource profiles to place. For Observe to work,
	// every workload needs a unique non-empty Name — observation windows
	// are matched to baselines by name.
	Workloads []Workload
	// Machines are the consolidation targets, in preference order.
	Machines []Machine
	// Disk is the target hardware's empirical profile; nil disables the
	// non-linear disk constraint.
	Disk *DiskProfile
}

// fleetConfig is the resolved option set of a Fleet session. It collapses
// what used to be three overlapping option structs — SolveOptions (cold
// solves), WatchOptions (drift + re-solve knobs) and ShardOptions (fleet-
// scale sharding) — into one place.
type fleetConfig struct {
	solve   SolveOptions
	resolve SolveOptions
	drift   DriftConfig
	// sharded selects SolveSharded for cold solves; shardOpt carries the
	// full shard knobs when WithSharding was used, otherwise shards (from
	// WithShards) plus the session's solve options apply.
	sharded  bool
	shards   int
	shardOpt *ShardOptions
	// inc seeds the session with an existing plan (WithIncumbent): Observe
	// works immediately and Consolidate re-solves warm instead of cold.
	inc *Incumbent
}

// FleetOption configures a Fleet session at construction.
type FleetOption func(*fleetConfig)

// WithSolveOptions sets the budgets for cold solves (Consolidate without
// an incumbent). Defaults to DefaultOptions.
func WithSolveOptions(opt SolveOptions) FleetOption {
	return func(c *fleetConfig) { c.solve = opt }
}

// WithResolveOptions sets the budgets for warm re-solves — both explicit
// Consolidate calls on a session that already has an incumbent and the
// drift-triggered re-solves behind Observe. Defaults to
// DefaultResolveOptions.
func WithResolveOptions(opt SolveOptions) FleetOption {
	return func(c *fleetConfig) { c.resolve = opt }
}

// WithDrift tunes the drift detector behind Observe: trigger threshold,
// hysteresis re-arm level, cool-down windows, forecast history and
// workload quorum. Defaults to a 4% threshold with one cool-down window.
func WithDrift(cfg DriftConfig) FleetOption {
	return func(c *fleetConfig) { c.drift = cfg }
}

// WithShards makes cold solves use the sharded fleet engine with n
// correlation-aware shards solved concurrently (0 lets the engine derive
// the count from the fleet size). Each shard solves with the session's
// solve options.
func WithShards(n int) FleetOption {
	return func(c *fleetConfig) { c.sharded, c.shards = true, n }
}

// WithSharding is WithShards with full control over the shard engine
// (per-shard workload caps, rebalance rounds, per-shard solver budgets).
func WithSharding(opt ShardOptions) FleetOption {
	return func(c *fleetConfig) { c.sharded, c.shardOpt = true, &opt }
}

// WithIncumbent seeds the session with a previously saved plan: Observe
// watches for drift against it immediately (no cold solve needed), and an
// explicit Consolidate call re-solves warm from it, charging migration
// costs per the resolve options.
func WithIncumbent(inc *Incumbent) FleetOption {
	return func(c *fleetConfig) { c.inc = inc }
}

// Fleet is a consolidation session: it owns one fleet's incumbent plan,
// drift detector and re-consolidation event log. Create it with NewFleet,
// compute the initial plan with Consolidate (or seed one WithIncumbent),
// then stream observation windows through Observe — each drift trigger
// re-solves warm and advances the plan. All methods are safe for
// concurrent use; windows arriving from multiple collectors serialize
// internally.
type Fleet struct {
	mu     sync.Mutex
	spec   FleetSpec // immutable after NewFleet
	cfg    fleetConfig
	plan   *Plan                   // guarded by mu
	ar     *AutoReconsolidator     // guarded by mu
	events []*ReconsolidationEvent // guarded by mu
	// advanceHook is the control plane's write-ahead hook, installed on the
	// watch loop whenever one is (re)built.
	advanceHook func(*ReconsolidationEvent) error // guarded by mu
}

// NewFleet opens a consolidation session for the fleet described by spec.
// The spec is validated structurally (series shapes, machine capacities)
// up front; workload-name uniqueness is only required once Observe is
// used.
func NewFleet(spec FleetSpec, opts ...FleetOption) (*Fleet, error) {
	cfg := fleetConfig{
		solve:   DefaultOptions(),
		resolve: DefaultResolveOptions(),
		drift:   DriftConfig{Threshold: 0.04, Cooldown: 1},
	}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Problem{Workloads: spec.Workloads, Machines: spec.Machines, Disk: spec.Disk}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Fleet{spec: spec, cfg: cfg}, nil
}

// Name returns the fleet's name from the spec.
func (f *Fleet) Name() string { return f.spec.Name }

// problem builds the session's consolidation instance.
func (f *Fleet) problem() *Problem {
	return &Problem{Workloads: f.spec.Workloads, Machines: f.spec.Machines, Disk: f.spec.Disk}
}

// shardOptions resolves the shard-engine knobs for a sharded cold solve.
func (f *Fleet) shardOptions() ShardOptions {
	if f.cfg.shardOpt != nil {
		return *f.cfg.shardOpt
	}
	return ShardOptions{Shards: f.cfg.shards, Options: f.cfg.solve}
}

// Consolidate computes the session's plan from the spec workloads: a cold
// solve (sharded if the session was built WithShards/WithSharding) when
// the session has no incumbent yet, a warm re-solve with migration
// pricing when it does (WithIncumbent, or a previous Consolidate/trigger).
// The result becomes the incumbent that Observe watches and future
// triggers warm-start from. Cancelling ctx aborts the solve and returns
// ctx.Err(); the session keeps its previous plan.
func (f *Fleet) Consolidate(ctx context.Context) (*Plan, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.problem()
	var sol *Solution
	var err error
	// The solver's internal worker-pool channels and WaitGroups run under
	// f.mu by design: Consolidate serializes the session.
	switch inc := f.incumbentLocked(); {
	case inc != nil:
		//kairoslint:allow lockorder: the solver's worker pool always drains; ctx aborts it on shutdown
		sol, err = core.Resolve(ctx, p, inc, f.cfg.resolve)
	case f.cfg.sharded:
		//kairoslint:allow lockorder: the solver's worker pool always drains; ctx aborts it on shutdown
		sol, err = core.SolveSharded(ctx, p, f.shardOptions())
	default:
		//kairoslint:allow lockorder: the solver's worker pool always drains; ctx aborts it on shutdown
		sol, err = core.Solve(ctx, p, f.cfg.solve)
	}
	if err != nil {
		return nil, err
	}
	plan, err := newPlan(p, sol)
	if err != nil {
		return nil, err
	}
	f.plan = plan
	// The watch loop (if any) was tracking the old plan's assumptions;
	// drop it so the next Observe rebuilds against the fresh incumbent.
	f.ar = nil
	return plan, nil
}

// incumbentLocked returns the session's current incumbent: the live watch
// loop's (it advances on triggers), else the last computed plan's, else
// the WithIncumbent seed. Callers hold f.mu.
func (f *Fleet) incumbentLocked() *Incumbent {
	if f.ar != nil {
		return f.ar.Incumbent()
	}
	if f.plan != nil {
		return f.plan.Incumbent()
	}
	return f.cfg.inc
}

// Incumbent returns the plan the next drift trigger will warm-start from,
// in its durable form (nil until Consolidate runs or WithIncumbent seeds
// one).
func (f *Fleet) Incumbent() *Incumbent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.incumbentLocked()
}

// Plan returns the latest computed plan: the initial Consolidate result
// until a trigger fires, then each triggered re-solve's. Nil for sessions
// seeded WithIncumbent before any solve has run.
func (f *Fleet) Plan() *Plan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan
}

// Events returns the re-consolidation event log, oldest first.
func (f *Fleet) Events() []*ReconsolidationEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*ReconsolidationEvent(nil), f.events...)
}

// Window returns how many observation windows the session has consumed.
func (f *Fleet) Window() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ar == nil {
		return 0
	}
	return f.ar.Window()
}

// watchLoopLocked returns the session's watch loop, building it on first
// use around the current incumbent with the spec workloads as the
// baseline assumptions. Callers hold f.mu.
func (f *Fleet) watchLoopLocked() (*AutoReconsolidator, error) {
	if f.ar != nil {
		return f.ar, nil
	}
	inc := f.incumbentLocked()
	if inc == nil {
		return nil, fmt.Errorf("kairos: fleet %q has no plan to watch: call Consolidate first or seed one WithIncumbent", f.spec.Name)
	}
	ar, err := NewAutoReconsolidator(inc, f.spec.Workloads, f.spec.Machines, f.spec.Disk,
		WatchOptions{Drift: f.cfg.drift, Resolve: f.cfg.resolve})
	if err != nil {
		return nil, err
	}
	ar.onAdvance = f.advanceHook
	f.ar = ar
	return ar, nil
}

// SetAdvanceHook installs a write-ahead hook on the session: it runs
// after each drift-triggered re-solve succeeds but before its plan is
// committed as the incumbent or published, so a durable control plane can
// journal the advance first. A hook error aborts the advance (nothing
// publishes, the detector re-arms, the drift fires again). Install it
// before streaming windows; a nil hook removes it.
func (f *Fleet) SetAdvanceHook(hook func(*ReconsolidationEvent) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceHook = hook
	if f.ar != nil {
		f.ar.mu.Lock()
		f.ar.onAdvance = hook
		f.ar.mu.Unlock()
	}
}

// Observe consumes one observation window (the fleet's measured workload
// series for the period, matched to the spec by workload name). It
// returns (nil, nil) while the plan holds; when the drift detector fires
// it re-solves warm from the incumbent on the forecast series, records
// the event, and returns it. Safe to call from many collectors at once.
// Cancelling ctx aborts a triggered re-solve mid-flight and returns
// ctx.Err(); the window still counts as consumed.
func (f *Fleet) Observe(ctx context.Context, window []Workload) (*ReconsolidationEvent, error) {
	f.mu.Lock()
	ar, err := f.watchLoopLocked()
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	// Release the session lock during the (possibly seconds-long) observe:
	// the loop serializes on its own mutex, and Plan/Events stay readable.
	f.mu.Unlock()
	ev, err := ar.Observe(ctx, window)
	if err != nil || ev == nil {
		return nil, err
	}
	f.mu.Lock()
	f.plan = ev.Plan
	f.events = append(f.events, ev)
	f.mu.Unlock()
	return ev, nil
}

// ObserveDetectOnly consumes one observation window through the drift
// detector and forecast history without ever solving, and reports whether
// the window fired a trigger. It is the replay half of crash recovery
// (journaled windows reconsume through the real state machine, so the
// detector cannot double-fire on them — the journaled advance, not a new
// solve, decides what each trigger led to) and the control plane's
// monitoring path while a failed re-solve is backing off. A trigger
// reported here leaves the detector disarmed, exactly as a live trigger
// would; follow it with ReplayAdvance or RearmDetector.
func (f *Fleet) ObserveDetectOnly(window []Workload) (triggered bool, err error) {
	f.mu.Lock()
	ar, err := f.watchLoopLocked()
	f.mu.Unlock()
	if err != nil {
		return false, err
	}
	return ar.observeDetectOnly(window)
}

// RearmDetector forces the drift detector back to armed with no pending
// cool-down — the recovery for a trigger whose re-solve never committed
// (a journaled rearm record, or a backoff window's suppressed solve).
func (f *Fleet) RearmDetector() {
	f.mu.Lock()
	ar := f.ar
	f.mu.Unlock()
	if ar != nil {
		ar.rearm()
	}
}

// ReplayAdvance re-commits a journaled incumbent advance during crash
// recovery: the plan is rebuilt from the durable incumbent against the
// forecast of the replayed history (no solve), becomes the session's
// current plan, and the detector rebases onto it exactly as the live
// commit did. Call it right after the ObserveDetectOnly that reported the
// corresponding trigger.
func (f *Fleet) ReplayAdvance(inc *Incumbent) (*Plan, error) {
	f.mu.Lock()
	ar, err := f.watchLoopLocked()
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	plan, err := ar.replayAdvance(inc)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.plan = plan
	f.mu.Unlock()
	return plan, nil
}

// AdoptIncumbent materializes a previously published plan as the
// session's current plan without solving: the recovery path for the
// initial registration-time solve, whose durable incumbent the journal
// holds. The plan is priced against the spec workloads; any live watch
// loop is dropped so the next Observe rebuilds against it.
func (f *Fleet) AdoptIncumbent(inc *Incumbent) (*Plan, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.problem()
	sol, err := core.SolutionFromIncumbent(p, inc)
	if err != nil {
		return nil, err
	}
	plan, err := newPlan(p, sol)
	if err != nil {
		return nil, err
	}
	f.plan = plan
	f.ar = nil
	return plan, nil
}

// FleetCheckpoint is a session's full durable watch state: everything a
// restarted process needs (beyond the spec it was registered with) to
// resume monitoring exactly where the crashed one stopped.
type FleetCheckpoint struct {
	// Incumbent is the current plan in durable form.
	Incumbent *Incumbent
	// Baseline is the workload set the detector's assumptions came from —
	// the spec workloads until a trigger fires, then the last forecast.
	Baseline []Workload
	// History is the retained observation windows, oldest first.
	History [][]Workload
	// Windows, Armed and Cooldown are the detector's counter state.
	Windows  int
	Armed    bool
	Cooldown int
}

// Checkpoint exports the session's durable watch state for a snapshot.
// Sessions that have not consumed a window yet checkpoint just their
// incumbent (nil if no plan exists either).
func (f *Fleet) Checkpoint() *FleetCheckpoint {
	f.mu.Lock()
	ar := f.ar
	cp := &FleetCheckpoint{Incumbent: f.incumbentLocked(), Armed: true}
	f.mu.Unlock()
	if ar == nil {
		return cp
	}
	cp.Baseline, cp.History, cp.Incumbent, cp.Windows, cp.Armed, cp.Cooldown = ar.checkpoint()
	return cp
}

// RestoreWatch rebuilds the session's watch loop from a checkpoint: the
// detector's baseline comes from the checkpointed workloads, the forecast
// history is re-seeded, and the counters resume mid-stream. The
// checkpointed incumbent becomes the plan the next trigger warm-starts
// from (the displayed Plan is restored separately via AdoptIncumbent or
// ReplayAdvance).
func (f *Fleet) RestoreWatch(cp *FleetCheckpoint) error {
	if cp.Incumbent == nil {
		return fmt.Errorf("kairos: checkpoint for fleet %q has no incumbent plan", f.spec.Name)
	}
	baseline := cp.Baseline
	if len(baseline) == 0 {
		baseline = f.spec.Workloads
	}
	ar, err := NewAutoReconsolidator(cp.Incumbent, baseline, f.spec.Machines, f.spec.Disk,
		WatchOptions{Drift: f.cfg.drift, Resolve: f.cfg.resolve})
	if err != nil {
		return err
	}
	if err := ar.restore(cp.History, cp.Windows, cp.Armed, cp.Cooldown); err != nil {
		return err
	}
	f.mu.Lock()
	ar.mu.Lock()
	ar.onAdvance = f.advanceHook
	ar.mu.Unlock()
	f.ar = ar
	f.mu.Unlock()
	return nil
}

// DriftStatus summarizes the watch loop's state for status queries.
type DriftStatus struct {
	// Windows is how many observation windows have been consumed.
	Windows int
	// Triggers is how many drift-triggered re-solves have run.
	Triggers int
	// LastTrigger is the most recent event's window index (-1 if none).
	LastTrigger int
}

// Drift reports the session's watch-loop state.
func (f *Fleet) Drift() DriftStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := DriftStatus{Triggers: len(f.events), LastTrigger: -1}
	if f.ar != nil {
		st.Windows = f.ar.Window()
	}
	if n := len(f.events); n > 0 {
		st.LastTrigger = f.events[n-1].Window
	}
	return st
}
