package kairos

import (
	"context"
	"fmt"
	"sync"

	"kairos/internal/core"
)

// This file is the package's primary API: a Fleet session handle that owns
// one fleet's consolidation state — the spec it was registered with, the
// current plan/incumbent, the drift detector, and the event log — behind
// four verbs: Consolidate, Observe, Plan, Events. The free functions in
// kairos.go (Consolidate, ConsolidateFleet, Reconsolidate, Watch) are
// deprecated one-call wrappers over this handle, and the HTTP control
// plane (internal/server, `kairos serve`) is a thin remote projection of
// it: one Fleet per registered fleet, one reconcile loop per Fleet.

// FleetSpec describes a fleet under management: the workloads to place,
// the target machines, and optionally the empirical disk model of the
// target hardware. It is the one input every session starts from; solver,
// drift and sharding knobs come in as FleetOptions.
type FleetSpec struct {
	// Name identifies the fleet (used by the control plane and logs; may
	// be empty for library use).
	Name string
	// Workloads are the resource profiles to place. For Observe to work,
	// every workload needs a unique non-empty Name — observation windows
	// are matched to baselines by name.
	Workloads []Workload
	// Machines are the consolidation targets, in preference order.
	Machines []Machine
	// Disk is the target hardware's empirical profile; nil disables the
	// non-linear disk constraint.
	Disk *DiskProfile
}

// fleetConfig is the resolved option set of a Fleet session. It collapses
// what used to be three overlapping option structs — SolveOptions (cold
// solves), WatchOptions (drift + re-solve knobs) and ShardOptions (fleet-
// scale sharding) — into one place.
type fleetConfig struct {
	solve   SolveOptions
	resolve SolveOptions
	drift   DriftConfig
	// sharded selects SolveSharded for cold solves; shardOpt carries the
	// full shard knobs when WithSharding was used, otherwise shards (from
	// WithShards) plus the session's solve options apply.
	sharded  bool
	shards   int
	shardOpt *ShardOptions
	// inc seeds the session with an existing plan (WithIncumbent): Observe
	// works immediately and Consolidate re-solves warm instead of cold.
	inc *Incumbent
}

// FleetOption configures a Fleet session at construction.
type FleetOption func(*fleetConfig)

// WithSolveOptions sets the budgets for cold solves (Consolidate without
// an incumbent). Defaults to DefaultOptions.
func WithSolveOptions(opt SolveOptions) FleetOption {
	return func(c *fleetConfig) { c.solve = opt }
}

// WithResolveOptions sets the budgets for warm re-solves — both explicit
// Consolidate calls on a session that already has an incumbent and the
// drift-triggered re-solves behind Observe. Defaults to
// DefaultResolveOptions.
func WithResolveOptions(opt SolveOptions) FleetOption {
	return func(c *fleetConfig) { c.resolve = opt }
}

// WithDrift tunes the drift detector behind Observe: trigger threshold,
// hysteresis re-arm level, cool-down windows, forecast history and
// workload quorum. Defaults to a 4% threshold with one cool-down window.
func WithDrift(cfg DriftConfig) FleetOption {
	return func(c *fleetConfig) { c.drift = cfg }
}

// WithShards makes cold solves use the sharded fleet engine with n
// correlation-aware shards solved concurrently (0 lets the engine derive
// the count from the fleet size). Each shard solves with the session's
// solve options.
func WithShards(n int) FleetOption {
	return func(c *fleetConfig) { c.sharded, c.shards = true, n }
}

// WithSharding is WithShards with full control over the shard engine
// (per-shard workload caps, rebalance rounds, per-shard solver budgets).
func WithSharding(opt ShardOptions) FleetOption {
	return func(c *fleetConfig) { c.sharded, c.shardOpt = true, &opt }
}

// WithIncumbent seeds the session with a previously saved plan: Observe
// watches for drift against it immediately (no cold solve needed), and an
// explicit Consolidate call re-solves warm from it, charging migration
// costs per the resolve options.
func WithIncumbent(inc *Incumbent) FleetOption {
	return func(c *fleetConfig) { c.inc = inc }
}

// Fleet is a consolidation session: it owns one fleet's incumbent plan,
// drift detector and re-consolidation event log. Create it with NewFleet,
// compute the initial plan with Consolidate (or seed one WithIncumbent),
// then stream observation windows through Observe — each drift trigger
// re-solves warm and advances the plan. All methods are safe for
// concurrent use; windows arriving from multiple collectors serialize
// internally.
type Fleet struct {
	mu     sync.Mutex
	spec   FleetSpec // immutable after NewFleet
	cfg    fleetConfig
	plan   *Plan                   // guarded by mu
	ar     *AutoReconsolidator     // guarded by mu
	events []*ReconsolidationEvent // guarded by mu
}

// NewFleet opens a consolidation session for the fleet described by spec.
// The spec is validated structurally (series shapes, machine capacities)
// up front; workload-name uniqueness is only required once Observe is
// used.
func NewFleet(spec FleetSpec, opts ...FleetOption) (*Fleet, error) {
	cfg := fleetConfig{
		solve:   DefaultOptions(),
		resolve: DefaultResolveOptions(),
		drift:   DriftConfig{Threshold: 0.04, Cooldown: 1},
	}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Problem{Workloads: spec.Workloads, Machines: spec.Machines, Disk: spec.Disk}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Fleet{spec: spec, cfg: cfg}, nil
}

// Name returns the fleet's name from the spec.
func (f *Fleet) Name() string { return f.spec.Name }

// problem builds the session's consolidation instance.
func (f *Fleet) problem() *Problem {
	return &Problem{Workloads: f.spec.Workloads, Machines: f.spec.Machines, Disk: f.spec.Disk}
}

// shardOptions resolves the shard-engine knobs for a sharded cold solve.
func (f *Fleet) shardOptions() ShardOptions {
	if f.cfg.shardOpt != nil {
		return *f.cfg.shardOpt
	}
	return ShardOptions{Shards: f.cfg.shards, Options: f.cfg.solve}
}

// Consolidate computes the session's plan from the spec workloads: a cold
// solve (sharded if the session was built WithShards/WithSharding) when
// the session has no incumbent yet, a warm re-solve with migration
// pricing when it does (WithIncumbent, or a previous Consolidate/trigger).
// The result becomes the incumbent that Observe watches and future
// triggers warm-start from. Cancelling ctx aborts the solve and returns
// ctx.Err(); the session keeps its previous plan.
func (f *Fleet) Consolidate(ctx context.Context) (*Plan, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.problem()
	var sol *Solution
	var err error
	// The solver's internal worker-pool channels and WaitGroups run under
	// f.mu by design: Consolidate serializes the session.
	switch inc := f.incumbentLocked(); {
	case inc != nil:
		//kairoslint:allow lockorder: the solver's worker pool always drains; ctx aborts it on shutdown
		sol, err = core.Resolve(ctx, p, inc, f.cfg.resolve)
	case f.cfg.sharded:
		//kairoslint:allow lockorder: the solver's worker pool always drains; ctx aborts it on shutdown
		sol, err = core.SolveSharded(ctx, p, f.shardOptions())
	default:
		//kairoslint:allow lockorder: the solver's worker pool always drains; ctx aborts it on shutdown
		sol, err = core.Solve(ctx, p, f.cfg.solve)
	}
	if err != nil {
		return nil, err
	}
	plan, err := newPlan(p, sol)
	if err != nil {
		return nil, err
	}
	f.plan = plan
	// The watch loop (if any) was tracking the old plan's assumptions;
	// drop it so the next Observe rebuilds against the fresh incumbent.
	f.ar = nil
	return plan, nil
}

// incumbentLocked returns the session's current incumbent: the live watch
// loop's (it advances on triggers), else the last computed plan's, else
// the WithIncumbent seed. Callers hold f.mu.
func (f *Fleet) incumbentLocked() *Incumbent {
	if f.ar != nil {
		return f.ar.Incumbent()
	}
	if f.plan != nil {
		return f.plan.Incumbent()
	}
	return f.cfg.inc
}

// Incumbent returns the plan the next drift trigger will warm-start from,
// in its durable form (nil until Consolidate runs or WithIncumbent seeds
// one).
func (f *Fleet) Incumbent() *Incumbent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.incumbentLocked()
}

// Plan returns the latest computed plan: the initial Consolidate result
// until a trigger fires, then each triggered re-solve's. Nil for sessions
// seeded WithIncumbent before any solve has run.
func (f *Fleet) Plan() *Plan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan
}

// Events returns the re-consolidation event log, oldest first.
func (f *Fleet) Events() []*ReconsolidationEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*ReconsolidationEvent(nil), f.events...)
}

// Window returns how many observation windows the session has consumed.
func (f *Fleet) Window() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ar == nil {
		return 0
	}
	return f.ar.Window()
}

// watchLoopLocked returns the session's watch loop, building it on first
// use around the current incumbent with the spec workloads as the
// baseline assumptions. Callers hold f.mu.
func (f *Fleet) watchLoopLocked() (*AutoReconsolidator, error) {
	if f.ar != nil {
		return f.ar, nil
	}
	inc := f.incumbentLocked()
	if inc == nil {
		return nil, fmt.Errorf("kairos: fleet %q has no plan to watch: call Consolidate first or seed one WithIncumbent", f.spec.Name)
	}
	ar, err := NewAutoReconsolidator(inc, f.spec.Workloads, f.spec.Machines, f.spec.Disk,
		WatchOptions{Drift: f.cfg.drift, Resolve: f.cfg.resolve})
	if err != nil {
		return nil, err
	}
	f.ar = ar
	return ar, nil
}

// Observe consumes one observation window (the fleet's measured workload
// series for the period, matched to the spec by workload name). It
// returns (nil, nil) while the plan holds; when the drift detector fires
// it re-solves warm from the incumbent on the forecast series, records
// the event, and returns it. Safe to call from many collectors at once.
// Cancelling ctx aborts a triggered re-solve mid-flight and returns
// ctx.Err(); the window still counts as consumed.
func (f *Fleet) Observe(ctx context.Context, window []Workload) (*ReconsolidationEvent, error) {
	f.mu.Lock()
	ar, err := f.watchLoopLocked()
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	// Release the session lock during the (possibly seconds-long) observe:
	// the loop serializes on its own mutex, and Plan/Events stay readable.
	f.mu.Unlock()
	ev, err := ar.Observe(ctx, window)
	if err != nil || ev == nil {
		return nil, err
	}
	f.mu.Lock()
	f.plan = ev.Plan
	f.events = append(f.events, ev)
	f.mu.Unlock()
	return ev, nil
}

// DriftStatus summarizes the watch loop's state for status queries.
type DriftStatus struct {
	// Windows is how many observation windows have been consumed.
	Windows int
	// Triggers is how many drift-triggered re-solves have run.
	Triggers int
	// LastTrigger is the most recent event's window index (-1 if none).
	LastTrigger int
}

// Drift reports the session's watch-loop state.
func (f *Fleet) Drift() DriftStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := DriftStatus{Triggers: len(f.events), LastTrigger: -1}
	if f.ar != nil {
		st.Windows = f.ar.Window()
	}
	if n := len(f.events); n > 0 {
		st.LastTrigger = f.events[n-1].Window
	}
	return st
}
