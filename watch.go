package kairos

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"kairos/internal/core"
	"kairos/internal/drift"
	"kairos/internal/predict"
	"kairos/internal/series"
)

// This file wires event-driven re-consolidation end to end: a
// drift.Detector watches observation windows against the incumbent plan's
// assumptions, and when it fires, the re-solve runs on the *forecast*
// series (the rolling mean of recent windows — the paper's
// average-of-weeks predictor) rather than the stale profile, warm-started
// from the saved incumbent. PR 3's Reconsolidate gave re-solves a fixed
// cadence; this makes them fire exactly when monitoring says the plan has
// gone stale.

// Re-exported drift-detection building blocks.
type (
	// DriftConfig tunes the drift detector's thresholds, hysteresis and
	// cool-down.
	DriftConfig = drift.Config
	// DriftTrigger reports which workloads drifted, by how much, on which
	// resource.
	DriftTrigger = drift.Trigger
	// DriftCause is one drifted (workload, resource, signal) triple.
	DriftCause = drift.Cause
)

// WatchOptions configures the event-driven re-consolidation loop.
type WatchOptions struct {
	// Drift tunes the trigger: threshold, hysteresis re-arm level,
	// cool-down windows, forecast history and workload quorum.
	Drift DriftConfig
	// Resolve tunes the warm re-solve run on each trigger
	// (MigrationWeight, MaxMigrations, Workers, BucketWidth, ...).
	Resolve SolveOptions
}

// DefaultWatchOptions returns the standard watch knobs: a 4% drift
// threshold with one cool-down window, and DefaultResolveOptions' sticky
// migration pricing for the triggered re-solves.
func DefaultWatchOptions() WatchOptions {
	return WatchOptions{
		Drift:   DriftConfig{Threshold: 0.04, Cooldown: 1},
		Resolve: core.DefaultResolveOptions(),
	}
}

// ReconsolidationEvent is one triggered re-solve of the watch loop.
type ReconsolidationEvent struct {
	// Window is the observation window index that fired.
	Window int
	// Trigger is the drift evidence: which workloads, which resource, how
	// far past the threshold.
	Trigger *DriftTrigger
	// Plan is the re-solved plan (its Migrated/MigrationCost fields report
	// the churn; its Incumbent() is the new saved plan).
	Plan *Plan
	// StaleObjective and StaleFeasible price the incumbent plan, unchanged,
	// on the forecast series — what keeping the old plan would cost.
	StaleObjective float64
	StaleFeasible  bool
	// ObjectiveDelta is StaleObjective − Plan.Objective: how much objective
	// the re-solve recovered (positive means the new plan is better; only
	// comparable when the machine counts agree).
	ObjectiveDelta float64
}

// String renders the event as a one-line log entry.
func (e *ReconsolidationEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window %d: %v -> re-solved to K=%d (feasible=%v), %d/%d units migrated",
		e.Window, e.Trigger, e.Plan.K, e.Plan.Feasible, e.Plan.Migrated, len(e.Plan.Assign))
	fmt.Fprintf(&b, ", objective %.4f (stale %.4f, recovered %+.4f)",
		e.Plan.Objective, e.StaleObjective, e.ObjectiveDelta)
	return b.String()
}

// AutoReconsolidator is the stateful event-driven re-consolidation loop:
// feed it one observation window at a time with Observe, and it re-solves
// — warm-started from the incumbent it maintains — exactly when the drift
// detector fires. It is safe for concurrent use: windows arriving from
// multiple collectors serialize on an internal mutex, so each Observe sees
// a consistent (incumbent, detector, history) triple and re-solves never
// overlap.
type AutoReconsolidator struct {
	// mu guards every field below: the detector and forecast history
	// mutate on every Observe, and the incumbent advances on triggers.
	mu       sync.Mutex
	machines []Machine
	dp       *DiskProfile
	opt      WatchOptions
	det      *drift.Detector // guarded by mu
	inc      *Incumbent      // guarded by mu
	// baseline is the workload set the detector's current assumptions came
	// from: the construction baseline until a trigger fires, then each
	// re-solve's forecast. Checkpoints carry it so a restored detector
	// rebuilds the same per-resource means.
	baseline []Workload // guarded by mu
	// history holds the last `histLen` observation windows, oldest first,
	// feeding the forecast the triggered re-solve consumes.
	history [][]Workload // guarded by mu
	histLen int
	// onAdvance, when set, runs after a triggered re-solve succeeds but
	// before its plan is committed as the incumbent — the control plane's
	// write-ahead hook. An error aborts the advance: nothing is published,
	// and Observe re-arms the detector so the drift fires again.
	onAdvance func(*ReconsolidationEvent) error // guarded by mu
}

// ResolveError marks a drift-triggered re-solve that failed in the solver
// itself (as opposed to a rejected window or an aborted advance hook).
// The control plane backs off the fleet's reconcile loop on it.
type ResolveError struct {
	// Err is the underlying solver failure.
	Err error
}

// Error implements error.
func (e *ResolveError) Error() string {
	return fmt.Sprintf("kairos: triggered re-solve failed: %v", e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As (a cancelled
// context stays recognizable through the wrapper).
func (e *ResolveError) Unwrap() error { return e.Err }

// NewAutoReconsolidator creates the watch loop around an incumbent plan.
// baseline is the per-workload series the incumbent was solved against
// (its assumptions — the reference the utilization-delta signal uses);
// machines and dp describe the target fleet for the triggered re-solves.
// Workload names must be unique and non-empty: they are how observations,
// baselines and incumbent placements are matched across windows.
func NewAutoReconsolidator(inc *Incumbent, baseline []Workload, machines []Machine, dp *DiskProfile, opt WatchOptions) (*AutoReconsolidator, error) {
	if inc == nil || inc.K <= 0 || len(inc.Units) == 0 {
		return nil, fmt.Errorf("kairos: watch needs a non-empty incumbent plan")
	}
	if len(machines) == 0 {
		return nil, fmt.Errorf("kairos: watch needs target machines")
	}
	samples, err := driftSamples(baseline)
	if err != nil {
		return nil, err
	}
	det, err := drift.NewDetector(opt.Drift, samples)
	if err != nil {
		return nil, err
	}
	histLen := opt.Drift.History
	if histLen <= 0 {
		histLen = 2 // drift.Config's documented default
	}
	return &AutoReconsolidator{
		machines: machines,
		dp:       dp,
		opt:      opt,
		det:      det,
		inc:      inc,
		baseline: baseline,
		histLen:  histLen,
	}, nil
}

// Incumbent returns the plan the next trigger will warm-start from — the
// original one until a trigger fires, then each re-solve's result.
func (ar *AutoReconsolidator) Incumbent() *Incumbent {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.inc
}

// Window returns how many observation windows have been consumed.
func (ar *AutoReconsolidator) Window() int {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.det.Window()
}

// Observe consumes one observation window (the fleet's measured workload
// series for the period). It returns (nil, nil) while the plan holds; when
// the drift detector fires it re-solves from the forecast series and
// returns the event. After a triggered re-solve the new plan becomes the
// incumbent and the forecast becomes the detector's baseline. Cancelling
// ctx aborts a triggered re-solve and returns ctx.Err(); the window still
// counts as consumed, and the detector re-arms so persistent drift fires
// again on the next window.
func (ar *AutoReconsolidator) Observe(ctx context.Context, observed []Workload) (*ReconsolidationEvent, error) {
	samples, err := driftSamples(observed)
	if err != nil {
		return nil, err
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	trig, err := ar.det.Observe(samples)
	if err != nil {
		// The window was rejected (shape mismatch, unknown workload):
		// keep it out of the forecast history too.
		return nil, err
	}
	// The triggering window itself is part of the forecast the re-solve
	// consumes — it is the freshest evidence there is.
	ar.history = append(ar.history, observed)
	if len(ar.history) > ar.histLen {
		ar.history = ar.history[len(ar.history)-ar.histLen:]
	}
	if trig == nil {
		return nil, nil
	}

	//kairoslint:allow lockorder: triggered re-solves run under ar.mu by design to serialize with Observe; ctx aborts them on shutdown
	ev, err := ar.resolve(ctx, trig)
	if err != nil {
		// The detector disarmed itself when it fired; with no re-solve to
		// rebase it, persistent drift would otherwise never re-fire. Re-arm
		// so the caller can fix the input (or the fleet) and the very next
		// drifted window triggers again.
		ar.det.Rearm()
		return nil, err
	}
	return ev, nil
}

// resolve runs the triggered warm re-solve and commits its outcome (new
// incumbent, rebased detector). It mutates ar only on success. Observe
// calls it with ar.mu held.
//
//kairos:locked
func (ar *AutoReconsolidator) resolve(ctx context.Context, trig *DriftTrigger) (*ReconsolidationEvent, error) {
	forecast, err := forecastWorkloads(ar.history)
	if err != nil {
		return nil, fmt.Errorf("kairos: building forecast series: %w", err)
	}
	problem := &Problem{Workloads: forecast, Machines: ar.machines, Disk: ar.dp}
	staleObj, staleFeas, _, err := core.PriceIncumbent(problem, ar.inc)
	if err != nil {
		return nil, &ResolveError{Err: err}
	}
	// Validate the forecast as a detector baseline before solving: once the
	// advance hook has journaled the event, the commit below must not fail.
	fcSamples, err := driftSamples(forecast)
	if err != nil {
		return nil, err
	}
	//kairoslint:allow lockorder: the warm re-solve's worker pool always drains; ctx aborts it on shutdown
	plan, err := reconsolidate(ctx, forecast, ar.machines, ar.dp, ar.inc, ar.opt.Resolve)
	if err != nil {
		return nil, &ResolveError{Err: err}
	}
	ev := &ReconsolidationEvent{
		Window:         trig.Window,
		Trigger:        trig,
		Plan:           plan,
		StaleObjective: staleObj,
		StaleFeasible:  staleFeas,
		ObjectiveDelta: staleObj - plan.Objective,
	}
	// Write-ahead: the control plane journals the advance before anything
	// publishes. A hook failure aborts the commit entirely.
	if ar.onAdvance != nil {
		if err := ar.onAdvance(ev); err != nil {
			return nil, err
		}
	}
	// The new plan was solved against the forecast: that is the assumption
	// set future windows drift against.
	if err := ar.det.SetBaseline(fcSamples); err != nil {
		return nil, err
	}
	ar.baseline = forecast
	ar.inc = plan.Incumbent()
	return ev, nil
}

// observeDetectOnly runs one observation window through the detector and
// forecast history exactly as Observe does — same state machine, same
// trimming — but never solves: a fired trigger is only reported. Replay
// uses it to reconsume journaled windows (the journaled advance, not a
// fresh solve, decides what the trigger led to), and the control plane
// uses it to keep monitoring while a reconcile loop is backing off.
func (ar *AutoReconsolidator) observeDetectOnly(observed []Workload) (triggered bool, err error) {
	samples, err := driftSamples(observed)
	if err != nil {
		return false, err
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	trig, err := ar.det.Observe(samples)
	if err != nil {
		return false, err
	}
	ar.history = append(ar.history, observed)
	if len(ar.history) > ar.histLen {
		ar.history = ar.history[len(ar.history)-ar.histLen:]
	}
	return trig != nil, nil
}

// rearm forces the detector back to armed with no cool-down, undoing the
// disarm a trigger caused when its re-solve never committed.
func (ar *AutoReconsolidator) rearm() {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.det.Rearm()
}

// replayAdvance re-commits a journaled incumbent advance: the forecast is
// rebuilt from the replayed history (deterministic — the same windows the
// live solve forecast from), the journaled incumbent is materialized
// against it without re-solving, and detector baseline + incumbent move
// exactly as the live commit moved them.
func (ar *AutoReconsolidator) replayAdvance(inc *Incumbent) (*Plan, error) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if len(ar.history) == 0 {
		return nil, fmt.Errorf("kairos: replayed advance with no observation history")
	}
	forecast, err := forecastWorkloads(ar.history)
	if err != nil {
		return nil, fmt.Errorf("kairos: rebuilding forecast for replayed advance: %w", err)
	}
	problem := &Problem{Workloads: forecast, Machines: ar.machines, Disk: ar.dp}
	sol, err := core.SolutionFromIncumbent(problem, inc)
	if err != nil {
		return nil, err
	}
	plan, err := newPlan(problem, sol)
	if err != nil {
		return nil, err
	}
	fcSamples, err := driftSamples(forecast)
	if err != nil {
		return nil, err
	}
	if err := ar.det.SetBaseline(fcSamples); err != nil {
		return nil, err
	}
	ar.baseline = forecast
	ar.inc = plan.Incumbent()
	return plan, nil
}

// checkpoint exports the loop's full durable state under ar.mu.
func (ar *AutoReconsolidator) checkpoint() (baseline []Workload, history [][]Workload, inc *Incumbent, window int, armed bool, cooldown int) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	history = make([][]Workload, len(ar.history))
	for i, w := range ar.history {
		history[i] = append([]Workload(nil), w...)
	}
	return append([]Workload(nil), ar.baseline...), history, ar.inc,
		ar.det.Window(), ar.det.Armed(), ar.det.Cooldown()
}

// restore seeds a freshly built loop with checkpointed history and
// detector counters. Call it before the first Observe.
func (ar *AutoReconsolidator) restore(history [][]Workload, window int, armed bool, cooldown int) error {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	for _, w := range history {
		samples, err := driftSamples(w)
		if err != nil {
			return fmt.Errorf("kairos: restoring observation history: %w", err)
		}
		if err := ar.det.SeedHistory(samples); err != nil {
			return err
		}
	}
	ar.history = append([][]Workload(nil), history...)
	if len(ar.history) > ar.histLen {
		ar.history = ar.history[len(ar.history)-ar.histLen:]
	}
	ar.det.Restore(window, armed, cooldown)
	return nil
}

// Watch drives an AutoReconsolidator over a sequence of observation
// windows and collects the re-consolidation events that fired. It returns
// the events and the final incumbent plan (the last re-solve's, or the
// original when nothing fired).
//
// Deprecated: use NewFleet(FleetSpec{...}, WithIncumbent(inc),
// WithDrift(opt.Drift), WithResolveOptions(opt.Resolve)) and stream the
// windows through (*Fleet).Observe — the session keeps the event log and
// serves the current plan while the stream is live.
func Watch(inc *Incumbent, baseline []Workload, windows [][]Workload, machines []Machine, dp *DiskProfile, opt WatchOptions) ([]*ReconsolidationEvent, *Incumbent, error) {
	f, err := NewFleet(FleetSpec{Workloads: baseline, Machines: machines, Disk: dp},
		WithIncumbent(inc), WithDrift(opt.Drift), WithResolveOptions(opt.Resolve))
	if err != nil {
		return nil, nil, err
	}
	// Build the watch loop eagerly so invalid incumbents and baselines
	// error before any window is consumed, as this function always has.
	f.mu.Lock()
	_, err = f.watchLoopLocked()
	f.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	for _, w := range windows {
		//kairoslint:allow ctxflow: deprecated wrapper, legacy signature has no ctx
		if _, err := f.Observe(context.Background(), w); err != nil {
			return f.Events(), f.Incumbent(), err
		}
	}
	return f.Events(), f.Incumbent(), nil
}

// driftSamples converts consolidation workloads into the detector's
// observation form: CPU and RAM map directly, and the disk signal is the
// disk model's input (update rate), falling back to the measured write
// rate for trace-only fleets. Every series of a workload must share its
// CPU series' shape (the same invariant core.Problem.Validate enforces):
// the detector only cross-checks the series it tracks, and an untracked
// series with a different shape would otherwise slip into the forecast
// history and break MeanOfWindows at trigger time — after the window was
// already recorded.
func driftSamples(wls []Workload) ([]drift.Sample, error) {
	if len(wls) == 0 {
		return nil, fmt.Errorf("kairos: no workloads in window")
	}
	out := make([]drift.Sample, len(wls))
	seen := make(map[string]bool, len(wls))
	for i, w := range wls {
		if w.Name == "" {
			return nil, fmt.Errorf("kairos: workload %d has no name (watch matches by name)", i)
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("kairos: duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if w.CPU == nil || w.RAMBytes == nil {
			return nil, fmt.Errorf("kairos: workload %q missing CPU or RAM series", w.Name)
		}
		for _, s := range []*series.Series{w.RAMBytes, w.WSBytes, w.UpdateRate, w.DiskWriteBps} {
			if s != nil && (s.Len() != w.CPU.Len() || s.Step != w.CPU.Step) {
				return nil, fmt.Errorf("kairos: workload %q series shape mismatch within the window", w.Name)
			}
		}
		s := drift.Sample{Workload: w.Name, CPU: w.CPU, RAM: w.RAMBytes, Disk: w.UpdateRate}
		if s.Disk == nil {
			s.Disk = w.DiskWriteBps
		}
		out[i] = s
	}
	return out, nil
}

// forecastWorkloads builds the re-solve's workload series: for every
// workload of the latest window, each series is the element-wise mean of
// that workload's series across the retained windows (placement metadata —
// replicas, pins, SLAs — carries over from the latest observation).
func forecastWorkloads(history [][]Workload) ([]Workload, error) {
	latest := history[len(history)-1]
	out := make([]Workload, len(latest))
	for i, w := range latest {
		fc := w // copy metadata (Name, Replicas, PinTo, SLA, ...)
		for _, get := range []func(*Workload) **series.Series{
			func(w *Workload) **series.Series { return &w.CPU },
			func(w *Workload) **series.Series { return &w.RAMBytes },
			func(w *Workload) **series.Series { return &w.WSBytes },
			func(w *Workload) **series.Series { return &w.UpdateRate },
			func(w *Workload) **series.Series { return &w.DiskWriteBps },
		} {
			if *get(&w) == nil {
				continue
			}
			var windows []*series.Series
			for wi := range history {
				for wj := range history[wi] {
					if history[wi][wj].Name != w.Name {
						continue
					}
					if s := *get(&history[wi][wj]); s != nil {
						windows = append(windows, s)
					}
					break
				}
			}
			mean, err := predict.MeanOfWindows(windows)
			if err != nil {
				return nil, fmt.Errorf("workload %q: %w", w.Name, err)
			}
			*get(&fc) = mean
		}
		out[i] = fc
	}
	return out, nil
}
