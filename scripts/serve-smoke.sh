#!/bin/sh
# serve-smoke: boot the kairos serve daemon, drive the README's
# "Running as a service" walkthrough with curl against a small synthetic
# fleet, and assert the drift trigger is visible in /metrics.
# Run via `make serve-smoke`.
set -eu

PORT="${KAIROS_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$TMP"
}
# Cleanup runs exactly once, from the EXIT trap; the signal traps just
# convert INT/TERM into an exit (with the conventional 128+signo code),
# which fires EXIT. Trapping cleanup on all three ran it twice on a
# signal and exited 0.
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	exit 1
}

# Emit the workloads array: 4 constant-load workloads at cpu scale $1.
workloads() {
	awk -v s="$1" 'BEGIN{
		for (i = 0; i < 4; i++) {
			base = (0.15 + 0.05*i) * s
			printf "%s{\"name\":\"db-%02d\",\"cpu\":[", (i ? "," : ""), i
			for (t = 0; t < 6; t++) printf "%s%.4f", (t ? "," : ""), base
			printf "],\"ram_bytes\":["
			for (t = 0; t < 6; t++) printf "%s%.0f", (t ? "," : ""), 4e9 + 1e9*i
			printf "]}"
		}
	}'
}

echo "serve-smoke: building kairos"
go build -o "$TMP/kairos" ./cmd/kairos

echo "serve-smoke: starting daemon on :$PORT"
"$TMP/kairos" serve -addr "127.0.0.1:$PORT" -q &
PID=$!

up=""
for _ in $(seq 1 50); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
		up=1
		break
	fi
	kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup"
	sleep 0.2
done
[ -n "$up" ] || fail "daemon did not become healthy on $BASE"

echo "serve-smoke: registering fleet"
resp=$(curl -fsS -X POST "$BASE/v1/fleets" \
	-d "{\"id\":\"smoke\",\"workloads\":[$(workloads 1)],\"auto_machines\":{\"count\":4}}") ||
	fail "register request failed"
case "$resp" in
*'"feasible":true'*) ;;
*) fail "registration did not return a feasible plan: $resp" ;;
esac

echo "serve-smoke: quiet window"
resp=$(curl -fsS -X POST "$BASE/v1/fleets/smoke/windows" \
	-d "{\"workloads\":[$(workloads 1.002)]}") || fail "quiet ingest failed"
case "$resp" in
*'"triggered":false'*) ;;
*) fail "quiet window should not trigger: $resp" ;;
esac

echo "serve-smoke: drifted window (30% above baseline)"
resp=$(curl -fsS -X POST "$BASE/v1/fleets/smoke/windows" \
	-d "{\"workloads\":[$(workloads 1.3)]}") || fail "drifted ingest failed"
case "$resp" in
*'"triggered":true'*) ;;
*) fail "drifted window did not trigger a re-solve: $resp" ;;
esac

plan=$(curl -fsS "$BASE/v1/fleets/smoke/plan") || fail "plan query failed"
case "$plan" in
*'"assignments"'*) ;;
*) fail "plan response malformed: $plan" ;;
esac

echo "serve-smoke: checking /metrics"
metrics=$(curl -fsS "$BASE/metrics") || fail "metrics scrape failed"
for want in \
	'kairos_fleets 1' \
	'kairos_windows_ingested_total{fleet="smoke"} 2' \
	'kairos_triggers_total{fleet="smoke"} 1' \
	'kairos_resolve_duration_seconds_count{fleet="smoke"} 1'; do
	case "$metrics" in
	*"$want"*) ;;
	*) fail "metrics missing '$want':
$metrics" ;;
	esac
done

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "serve-smoke: OK"
