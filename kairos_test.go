package kairos

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/floats"
	"kairos/internal/series"
	"kairos/internal/workload"
)

// testProfile is built once per test binary run.
var testProfile *DiskProfile

func getProfile(t *testing.T) *DiskProfile {
	t.Helper()
	if testing.Short() {
		// The profiling sweep takes several seconds of simulated hardware
		// time; profile-backed tests run in full mode only.
		t.Skip("skipping profiler sweep in -short mode")
	}
	if testProfile == nil {
		pr := QuickProfiler()
		pr.WSPointsMB = []float64{500, 1500}
		pr.RatePoints = []float64{1000, 8000, 20000}
		p, err := ProfileHardware(pr)
		if err != nil {
			t.Fatal(err)
		}
		testProfile = p
	}
	return testProfile
}

func constWL(name string, cpu, ramGB, updates float64) Workload {
	n := 24
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	return Workload{
		Name:       name,
		CPU:        series.Constant(start, step, n, cpu),
		RAMBytes:   series.Constant(start, step, n, ramGB*1e9),
		WSBytes:    series.Constant(start, step, n, ramGB*1e9),
		UpdateRate: series.Constant(start, step, n, updates),
		PinTo:      -1,
	}
}

func TestConsolidateEndToEnd(t *testing.T) {
	dp := getProfile(t)
	wls := []Workload{
		constWL("orders", 0.2, 1.0, 300),
		constWL("wiki", 0.15, 0.8, 200),
		constWL("auth", 0.1, 0.5, 100),
		constWL("logs", 0.25, 1.2, 400),
	}
	machines := make([]Machine, 4)
	for i := range machines {
		machines[i] = Machine{Name: "m", CPUCapacity: 1, RAMBytes: 32e9, DiskWriteBps: 60e6, Headroom: 0.05}
	}
	plan, err := Consolidate(wls, machines, dp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("plan infeasible")
	}
	if plan.K != 1 {
		t.Errorf("K = %d, want 1 (light workloads)", plan.K)
	}
	out := plan.String()
	for _, name := range []string{"orders", "wiki", "auth", "logs"} {
		if !strings.Contains(out, name) {
			t.Errorf("plan output missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "4 workloads -> 1 machines") {
		t.Errorf("unexpected plan header:\n%s", out)
	}
}

func TestConsolidateWithoutDiskProfile(t *testing.T) {
	wls := []Workload{constWL("a", 0.6, 1, 0), constWL("b", 0.6, 1, 0)}
	machines := []Machine{
		{Name: "m0", CPUCapacity: 1, RAMBytes: 32e9},
		{Name: "m1", CPUCapacity: 1, RAMBytes: 32e9},
	}
	plan, err := Consolidate(wls, machines, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.K != 2 {
		t.Errorf("K = %d feasible=%v, want 2 CPU-bound machines", plan.K, plan.Feasible)
	}
}

func TestConsolidateReplicaNaming(t *testing.T) {
	w := constWL("db", 0.1, 0.5, 0)
	w.Replicas = 2
	machines := []Machine{
		{Name: "m0", CPUCapacity: 1, RAMBytes: 32e9},
		{Name: "m1", CPUCapacity: 1, RAMBytes: 32e9},
	}
	plan, err := Consolidate([]Workload{w}, machines, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.K != 2 {
		t.Fatalf("replicated plan: K=%d feasible=%v", plan.K, plan.Feasible)
	}
	if !strings.Contains(plan.String(), "db/r1") {
		t.Errorf("replica name missing:\n%s", plan.String())
	}
}

func TestMeasureAndConvertProfile(t *testing.T) {
	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		t.Fatal(err)
	}
	in, err := dbms.NewInstance(dbms.DefaultConfig(), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{Name: "m", DataPages: 20000, WorkingSetPages: 2000,
		TPS: 50, ReadsPerTxn: 4, UpdatesPerTxn: 2}
	g, err := workload.Provision(in, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	perDB, inst, err := MeasureWorkloads(in, []*workload.Generator{g}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if inst.CPU.Len() != 5 {
		t.Errorf("instance samples = %d, want 5", inst.CPU.Len())
	}
	p, ok := perDB["m"]
	if !ok {
		t.Fatal("missing workload profile")
	}
	w := WorkloadFromProfile(p, 8.0/12.0)
	if w.Name != "m" || w.CPU.Len() != 5 {
		t.Error("conversion lost data")
	}
	if !floats.Same(w.CPU.Values[0], p.CPU.Values[0]*8.0/12.0) {
		t.Error("CPU scaling not applied")
	}
	// Zero scale means identity.
	w2 := WorkloadFromProfile(p, 0)
	if !floats.Same(w2.CPU.Values[0], p.CPU.Values[0]) {
		t.Error("zero cpuScale should mean unscaled")
	}
}

func TestGaugeWorkingSetFacade(t *testing.T) {
	d, _ := disk.New(disk.Server7200SATA())
	cfg := dbms.DefaultConfig()
	cfg.BufferPoolBytes = 64 << 20
	in, _ := dbms.NewInstance(cfg, d, 0)
	spec := workload.Spec{Name: "u", DataPages: 1 << 20, WorkingSetPages: 1000,
		TPS: 100, ReadsPerTxn: 5}
	g, err := workload.Provision(in, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	gc := monitorDefaults()
	res, err := GaugeWorkingSet(in, []*workload.Generator{g}, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("facade gauging failed to detect the working set")
	}
}

// monitorDefaults returns gauge settings fast enough for tests.
func monitorDefaults() GaugeConfig {
	cfg := GaugeConfig{}
	cfg.ProbeTable = "probe"
	cfg.InitialGrowPages = 256
	cfg.MaxStealFraction = 0.95
	cfg.Window = 2 * time.Second
	cfg.ScansPerWindow = 5
	cfg.ReadIncreaseThreshold = 20
	cfg.Tick = 100 * time.Millisecond
	return cfg
}

func TestConsolidatePartitionedFacade(t *testing.T) {
	var wls []Workload
	for i := 0; i < 8; i++ {
		wls = append(wls, constWL(string(rune('a'+i)), 0.45, 1, 0))
	}
	machines := make([]Machine, 8)
	for i := range machines {
		machines[i] = Machine{Name: "m", CPUCapacity: 1, RAMBytes: 32e9}
	}
	ps, err := ConsolidatePartitioned(context.Background(), wls, machines, nil, Grouping{GroupSize: 4, Options: DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Feasible || ps.K != 4 {
		t.Errorf("partitioned: K=%d feasible=%v, want 4 (two per machine)", ps.K, ps.Feasible)
	}
}

func TestConsolidateFleetFacade(t *testing.T) {
	var wls []Workload
	for i := 0; i < 24; i++ {
		wls = append(wls, constWL(fmt.Sprintf("db-%02d", i), 0.22, 1, 0))
	}
	machines := make([]Machine, 24)
	for i := range machines {
		machines[i] = Machine{Name: fmt.Sprintf("m%d", i), CPUCapacity: 1, RAMBytes: 32e9}
	}
	plan, err := ConsolidateFleet(wls, machines, nil,
		ShardOptions{Shards: 3, Options: ParallelOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("fleet plan infeasible")
	}
	// 24 workloads at 0.22 CPU ⇒ at least 6 machines; sharding plus the
	// merge pass must land close to that bound.
	if plan.K < 6 || plan.K > 8 {
		t.Errorf("fleet plan uses %d machines, want 6-8", plan.K)
	}
	out := plan.String()
	if !strings.Contains(out, "db-00") {
		t.Errorf("plan output missing workload names:\n%s", out)
	}
}

func TestSLAThroughFacade(t *testing.T) {
	a := constWL("a", 0.45, 1, 0)
	a.SLA = &LatencySLA{MaxSlowdown: 2}
	b := constWL("b", 0.45, 1, 0)
	machines := []Machine{
		{Name: "m0", CPUCapacity: 1, RAMBytes: 32e9},
		{Name: "m1", CPUCapacity: 1, RAMBytes: 32e9},
	}
	plan, err := Consolidate([]Workload{a, b}, machines, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.K != 2 {
		t.Errorf("SLA plan: K=%d feasible=%v, want 2", plan.K, plan.Feasible)
	}
}

// TestPlanStringShowsUnassigned: a unit assigned outside [0,K) is priced as
// a violation by Eval and dropped by Report; the rendered plan must surface
// it instead of letting the workload silently vanish from the table.
func TestPlanStringShowsUnassigned(t *testing.T) {
	p := &Plan{
		Solution: &Solution{
			Assign: []int{0, 7},
			Units:  []UnitRef{{Workload: 0}, {Workload: 1}},
			K:      2,
		},
		Names: []string{"alpha", "beta"},
	}
	out := p.String()
	if !strings.Contains(out, "UNASSIGNED") || !strings.Contains(out, "beta") {
		t.Errorf("plan output hides the out-of-range workload:\n%s", out)
	}
	if !strings.Contains(out, "alpha") {
		t.Errorf("plan output missing the placed workload:\n%s", out)
	}
}
