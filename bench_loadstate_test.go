// Benchmarks for the incremental load-state engine: the hill-climb hot
// path of the Section 6 solver. A full local-search sweep prices every
// unit against every other machine; the scratch path re-aggregates each
// candidate machine's members over all T time steps (with four fresh
// buffers per candidate), while the LoadState path prices each move in
// O(T) from maintained running sums with zero allocations. The reported
// speedup metric on the 197-server ALL fleet is the acceptance criterion
// tracked per PR (target ≥5×); run with -benchmem (make bench-hot) to see
// the allocation difference.
package kairos

import (
	"testing"

	"kairos/internal/core"
	"kairos/internal/fleet"
)

// benchSink defeats dead-code elimination of the priced contributions.
var benchSink float64

// sweepScratch prices one full hill-climb sweep the pre-LoadState way:
// every candidate machine re-summed from scratch via the canonical pricer.
func sweepScratch(ev *core.Evaluator, assign []int, members [][]int, K int) float64 {
	var acc float64
	for u := range assign {
		from := assign[u]
		without := make([]int, 0, len(members[from]))
		for _, x := range members[from] {
			if x != u {
				without = append(without, x)
			}
		}
		cFrom := ev.ServerContrib(from, without)
		for j := 0; j < K; j++ {
			if j == from {
				continue
			}
			with := append(append([]int(nil), members[j]...), u)
			acc += ev.ServerContrib(j, with) - cFrom
		}
	}
	return acc
}

// sweepLoadState prices the same sweep against the incremental engine.
func sweepLoadState(ls *core.LoadState, K int) float64 {
	var acc float64
	for u := 0; u < ls.NumUnits(); u++ {
		from := ls.Assign(u)
		cFrom := ls.PriceRemove(u)
		for j := 0; j < K; j++ {
			if j == from {
				continue
			}
			acc += ls.PriceAdd(u, j) - cFrom
		}
	}
	return acc
}

// BenchmarkLoadStateSweep measures one full hill-climb pricing sweep on
// the 197-server ALL dataset (197 units × 288 time steps, K at the
// fractional lower bound), scratch serverEval versus incremental
// LoadState.
func BenchmarkLoadStateSweep(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	members := make([][]int, K)
	for u, j := range assign {
		members[j] = append(members[j], u)
	}

	var baseline float64
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += sweepScratch(ev, assign, members, K)
		}
		baseline = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("loadstate", func(b *testing.B) {
		b.ReportAllocs()
		ls := core.NewLoadState(ev, assign, K)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += sweepLoadState(ls, K)
		}
		if perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N); baseline > 0 && perOp > 0 {
			b.ReportMetric(baseline/perOp, "speedup")
		}
	})
}

// BenchmarkLoadStateMovePricing isolates a single candidate-move pricing —
// the innermost operation of every local-search sweep — so per-move cost
// and allocations are tracked directly (0 allocs/op is asserted in
// internal/core's tests as well).
func BenchmarkLoadStateMovePricing(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := core.NewLoadState(ev, assign, K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % nU
		j := (ls.Assign(u) + 1 + i%(K-1)) % K
		benchSink += ls.PriceAdd(u, j) - ls.PriceRemove(u)
	}
}
