// Benchmarks for the incremental load-state engine: the hill-climb hot
// path of the Section 6 solver. A full local-search sweep prices every
// unit against every other machine; the scratch path re-aggregates each
// candidate machine's members over all T time steps (with four fresh
// buffers per candidate), while the LoadState path prices each move in
// O(T) from maintained running sums with zero allocations. The reported
// speedup metric on the 197-server ALL fleet is the acceptance criterion
// tracked per PR (target ≥5×); run with -benchmem (make bench-hot) to see
// the allocation difference.
package kairos

import (
	"testing"

	"kairos/internal/core"
	"kairos/internal/fleet"
)

// benchSink defeats dead-code elimination of the priced contributions.
var benchSink float64

// sweepScratch prices one full hill-climb sweep the pre-LoadState way:
// every candidate machine re-summed from scratch via the canonical pricer.
func sweepScratch(ev *core.Evaluator, assign []int, members [][]int, K int) float64 {
	var acc float64
	for u := range assign {
		from := assign[u]
		without := make([]int, 0, len(members[from]))
		for _, x := range members[from] {
			if x != u {
				without = append(without, x)
			}
		}
		cFrom := ev.ServerContrib(from, without)
		for j := 0; j < K; j++ {
			if j == from {
				continue
			}
			with := append(append([]int(nil), members[j]...), u)
			acc += ev.ServerContrib(j, with) - cFrom
		}
	}
	return acc
}

// sweepLoadState prices the same sweep against the incremental engine.
func sweepLoadState(ls *core.LoadState, K int) float64 {
	var acc float64
	for u := 0; u < ls.NumUnits(); u++ {
		from := ls.Assign(u)
		cFrom := ls.PriceRemove(u)
		for j := 0; j < K; j++ {
			if j == from {
				continue
			}
			acc += ls.PriceAdd(u, j) - cFrom
		}
	}
	return acc
}

// BenchmarkLoadStateSweep measures one full hill-climb pricing sweep on
// the 197-server ALL dataset (197 units × 288 time steps, K at the
// fractional lower bound), scratch serverEval versus incremental
// LoadState.
func BenchmarkLoadStateSweep(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	members := make([][]int, K)
	for u, j := range assign {
		members[j] = append(members[j], u)
	}

	var baseline float64
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += sweepScratch(ev, assign, members, K)
		}
		baseline = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("loadstate", func(b *testing.B) {
		b.ReportAllocs()
		ls := core.NewLoadState(ev, assign, K)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += sweepLoadState(ls, K)
		}
		if perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N); baseline > 0 && perOp > 0 {
			b.ReportMetric(baseline/perOp, "speedup")
		}
	})
}

// sweepMovesCoarse prices one best-improvement move sweep the way the
// solver's bestMove does — tracking the best delta per unit — optionally
// screening every candidate against the coarse lower bound first. It never
// mutates the state, so benchmark iterations price identical work. Returns
// an accumulator (defeats dead-code elimination) and the number of exact
// O(T) pricings performed.
func sweepMovesCoarse(ls *core.LoadState, K int, screen bool) (acc float64, exact int) {
	for u := 0; u < ls.NumUnits(); u++ {
		from := ls.Assign(u)
		cFrom := ls.PriceRemove(u)
		bestDelta := -1e-9
		for j := 0; j < K; j++ {
			if j == from {
				continue
			}
			if screen {
				if lo := ls.ScreenAdd(u, j); (cFrom+lo)-(ls.Contrib(from)+ls.Contrib(j)) >= bestDelta {
					continue
				}
			}
			exact++
			delta := (cFrom + ls.PriceAdd(u, j)) - (ls.Contrib(from) + ls.Contrib(j))
			if delta < bestDelta {
				bestDelta = delta
			}
			acc += delta
		}
	}
	return acc, exact
}

// sweepSwapsCoarse prices one 2-exchange swap sweep like the solver's
// sweepSwaps (staged coarse screen, best delta per unit) without mutating
// the state.
func sweepSwapsCoarse(ls *core.LoadState, screen bool) (acc float64, exact int) {
	n := ls.NumUnits()
	for u := 0; u < n; u++ {
		a := ls.Assign(u)
		bestDelta := -1e-9
		for v := u + 1; v < n; v++ {
			b := ls.Assign(v)
			if b == a {
				continue
			}
			if screen {
				loU, loV := ls.ScreenSwap(u, v)
				if (loU+1)-(ls.Contrib(a)+ls.Contrib(b)) >= bestDelta {
					continue
				}
				if (loU+loV)-(ls.Contrib(a)+ls.Contrib(b)) >= bestDelta {
					continue
				}
			}
			exact++
			nu, nv := ls.PriceSwap(u, v)
			delta := (nu + nv) - (ls.Contrib(a) + ls.Contrib(b))
			if delta < bestDelta {
				bestDelta = delta
			}
			acc += delta
		}
	}
	return acc, exact
}

// BenchmarkCoarseScreenedSweep measures one full local-search pricing pass
// — a best-improvement move sweep plus a 2-exchange swap sweep — on the
// 197-server ALL fleet, with the coarse bucketed screen off versus on. The
// screened case must price the identical best-delta trajectory (the screen
// only removes candidates the exact pricing would reject), stay at 0
// allocs/op, and the reported sweep-speedup is the per-PR acceptance
// metric (target ≥3×); fevals counts exact O(T) pricings per sweep pass.
func BenchmarkCoarseScreenedSweep(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := core.NewLoadState(ev, assign, K)

	var baseline float64
	b.Run("unscreened", func(b *testing.B) {
		b.ReportAllocs()
		var exact int
		for i := 0; i < b.N; i++ {
			acc1, n1 := sweepMovesCoarse(ls, K, false)
			acc2, n2 := sweepSwapsCoarse(ls, false)
			benchSink += acc1 + acc2
			exact = n1 + n2
		}
		baseline = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(exact), "fevals")
	})
	b.Run("screened", func(b *testing.B) {
		b.ReportAllocs()
		var exact int
		for i := 0; i < b.N; i++ {
			acc1, n1 := sweepMovesCoarse(ls, K, true)
			acc2, n2 := sweepSwapsCoarse(ls, true)
			benchSink += acc1 + acc2
			exact = n1 + n2
		}
		b.ReportMetric(float64(exact), "fevals")
		if perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N); baseline > 0 && perOp > 0 {
			b.ReportMetric(baseline/perOp, "sweep-speedup")
		}
	})
}

// BenchmarkCoarseBoundPricing isolates a single coarse bound evaluation —
// the screen applied to every candidate of a sweep — tracking its cost and
// the 0 allocs/op requirement directly.
func BenchmarkCoarseBoundPricing(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := core.NewLoadState(ev, assign, K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % nU
		j := (ls.Assign(u) + 1 + i%(K-1)) % K
		benchSink += ls.ScreenAdd(u, j)
	}
}

// BenchmarkLoadStateMovePricing isolates a single candidate-move pricing —
// the innermost operation of every local-search sweep — so per-move cost
// and allocations are tracked directly (0 allocs/op is asserted in
// internal/core's tests as well).
func BenchmarkLoadStateMovePricing(b *testing.B) {
	p := fleetProblem(fleet.All(), nil)
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := core.NewLoadState(ev, assign, K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % nU
		j := (ls.Assign(u) + 1 + i%(K-1)) % K
		benchSink += ls.PriceAdd(u, j) - ls.PriceRemove(u)
	}
}
