// Package kairos is a workload-aware database monitoring and consolidation
// system, a reproduction of "Workload-Aware Database Monitoring and
// Consolidation" (Curino, Jones, Madden, Balakrishnan — SIGMOD 2011).
//
// Kairos takes a collection of database workloads running on dedicated,
// mostly-idle servers and computes an assignment onto far fewer machines
// that preserves their throughput. The pipeline has three stages, each
// usable on its own:
//
//  1. Monitor (internal/monitor re-exported here): sample CPU, RAM and disk
//     statistics from running DBMS instances, and run buffer-pool gauging —
//     a probe-table technique that measures the true working set of an
//     over-provisioned database without touching its configuration.
//  2. Model (internal/model): predict the combined resource consumption of
//     co-located workloads. CPU and RAM compose linearly (with an overhead
//     correction); disk I/O goes through an empirical hardware profile —
//     a 2-D least-absolute-residuals polynomial over working-set size and
//     row-update rate.
//  3. Consolidate (internal/core): a mixed-integer non-linear program,
//     solved with the DIRECT global optimizer plus deterministic local
//     search, that minimizes the machine count and balances load without
//     over-committing any resource at any time step.
//
// The primary API is the Fleet session handle (fleet.go): NewFleet opens
// a session around a FleetSpec (workloads, machines, disk profile) plus
// functional options for solver budgets, drift thresholds and sharding;
// Consolidate computes the plan; Observe streams monitored observation
// windows through the drift detector (internal/drift) and re-solves warm
// from the incumbent exactly when the fleet's behaviour departs from the
// plan's assumptions; Plan and Events expose the current state. The handle
// is safe for concurrent use, so many collectors can feed one session.
//
// Quick start:
//
//	profile, _ := kairos.ProfileHardware(kairos.QuickProfiler())
//	f, _ := kairos.NewFleet(kairos.FleetSpec{
//		Workloads: workloads, Machines: machines, Disk: profile,
//	})
//	plan, _ := f.Consolidate(ctx) // the initial placement
//	for window := range collector {
//		if ev, _ := f.Observe(ctx, window); ev != nil {
//			fmt.Println("re-consolidated:", ev) // drift-triggered re-solve
//		}
//	}
//
// The same handle powers the deployable control plane: `kairos serve`
// (internal/server) exposes register/ingest/query over a versioned HTTP
// API with one reconcile loop per registered fleet, plus Prometheus
// metrics.
//
// The older free functions — Consolidate, ConsolidateFleet, Reconsolidate,
// Watch — remain as deprecated thin wrappers over the Fleet handle.
//
// Everything runs against a built-in DBMS/disk simulator (internal/dbms,
// internal/disk), so the whole system — including the paper's experiments —
// works on a laptop with no external dependencies.
package kairos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"kairos/internal/core"
	"kairos/internal/dbms"
	"kairos/internal/model"
	"kairos/internal/monitor"
	"kairos/internal/workload"
)

// Re-exported building blocks: the facade works entirely in terms of these
// types, so downstream code rarely needs the internal packages directly.
type (
	// Workload is one database's resource profile (time series of CPU,
	// RAM, working set and update rate) plus placement requirements.
	Workload = core.Workload
	// Machine is one consolidation target with capacities and headroom.
	Machine = core.Machine
	// Problem is a full consolidation instance.
	Problem = core.Problem
	// Solution is the computed assignment.
	Solution = core.Solution
	// UnitRef names one placement unit of a Solution (workload, replica).
	UnitRef = core.UnitRef
	// SolveOptions tunes the solver budgets.
	SolveOptions = core.SolveOptions
	// DiskProfile is the empirical disk model of a target configuration.
	DiskProfile = model.DiskProfile
	// Profiler sweeps a hardware configuration to build a DiskProfile.
	Profiler = model.Profiler
	// GaugeConfig tunes buffer-pool gauging.
	GaugeConfig = monitor.GaugeConfig
	// GaugeResult is the outcome of a gauging run.
	GaugeResult = monitor.GaugeResult
	// ResourceProfile is a monitored workload's resource time series.
	ResourceProfile = monitor.Profile
	// LatencySLA bounds the queueing slowdown a workload tolerates after
	// consolidation (utilization cap on its host machine).
	LatencySLA = core.LatencySLA
	// Grouping configures ConsolidatePartitioned.
	Grouping = core.Grouping
	// PartitionedSolution is the result of ConsolidatePartitioned.
	PartitionedSolution = core.PartitionedSolution
	// ShardOptions configures ConsolidateFleet's sharded solver.
	ShardOptions = core.ShardOptions
	// Incumbent is a saved consolidation plan used to warm-start
	// Reconsolidate (rolling re-consolidation).
	Incumbent = core.Incumbent
)

// DefaultOptions returns the standard solver budgets.
func DefaultOptions() SolveOptions { return core.DefaultSolveOptions() }

// ParallelOptions returns the standard solver budgets with one solver
// worker per available CPU: DIRECT candidate batches evaluate across a
// worker pool and the machine-count binary search probes speculative K
// values concurrently. Plans are identical to the sequential solver's —
// parallelism only changes wall-clock time.
func ParallelOptions() SolveOptions { return core.ParallelSolveOptions() }

// DefaultResolveOptions returns the standard knobs for warm-started
// re-consolidation: DefaultOptions plus a small migration weight, so
// re-solved plans stay sticky under workload drift without freezing.
func DefaultResolveOptions() SolveOptions { return core.DefaultResolveOptions() }

// QuickProfiler returns a reduced hardware sweep that builds a usable disk
// profile in a few seconds of wall-clock time (the full DefaultProfiler
// sweep matches the paper's ranges and takes a minute or two).
func QuickProfiler() Profiler {
	pr := model.DefaultProfiler()
	pr.WSPointsMB = []float64{500, 1500, 3000}
	pr.RatePoints = []float64{1000, 4000, 10000, 20000, 40000}
	pr.Settle = 30 * time.Second
	pr.Measure = 30 * time.Second
	return pr
}

// ProfileHardware runs the profiling sweep and returns the fitted disk
// model for the configuration (paper Section 4.1, Figure 4).
func ProfileHardware(pr Profiler) (*DiskProfile, error) {
	return pr.Run()
}

// GaugeWorkingSet measures the true working set of the databases hosted on
// a live instance by buffer-pool gauging (paper Section 3.1, Figure 3),
// while the given workloads keep running.
func GaugeWorkingSet(in *dbms.Instance, gens []*workload.Generator, cfg GaugeConfig) (GaugeResult, error) {
	return monitor.Gauge(in, gens, cfg)
}

// Plan is a consolidation solution together with its per-machine loads.
type Plan struct {
	*Solution
	// Loads reports every used machine's peak resources and balance.
	Loads []core.ServerLoad
	// Names maps unit index to workload name.
	Names []string

	// incumbent is the plan's durable form, captured at construction (only
	// workload and machine names are retained — not the problem's series).
	incumbent *Incumbent
}

// Incumbent returns the plan in a durable form for later warm-started
// re-solves: save it with Incumbent().Save, reload with core.LoadIncumbent
// (or `kairos consolidate -save-plan` / `-resolve` on the command line),
// and pass it to Reconsolidate once the fleet's traces have drifted. Nil
// for Plans not produced by this package's constructors.
func (p *Plan) Incumbent() *Incumbent {
	return p.incumbent
}

// Consolidate solves the placement problem: assign every workload (and its
// replicas) to machines so the machine count is minimal and load balanced,
// with CPU, RAM and modelled disk I/O all staying within capacity at every
// time step. Pass a nil profile to skip the disk constraint.
//
// Deprecated: use NewFleet(FleetSpec{...}, WithSolveOptions(opt)) followed
// by (*Fleet).Consolidate — the session handle keeps the incumbent for
// later Observe/re-solve calls instead of discarding it.
func Consolidate(workloads []Workload, machines []Machine, dp *DiskProfile, opt SolveOptions) (*Plan, error) {
	f, err := NewFleet(FleetSpec{Workloads: workloads, Machines: machines, Disk: dp},
		WithSolveOptions(opt))
	if err != nil {
		return nil, err
	}
	//kairoslint:allow ctxflow: deprecated wrapper, legacy signature has no ctx
	return f.Consolidate(context.Background())
}

// ConsolidateFleet solves fleet-scale placement with the sharded engine:
// workloads are partitioned into correlation-aware shards, every shard is
// consolidated concurrently, and the per-shard plans are merged by a
// cross-shard rebalancing and machine-reduction pass. Use it when the
// instance is too large for Consolidate's single global solve; for a few
// dozen workloads Consolidate usually finds slightly tighter plans.
//
// Deprecated: use NewFleet(FleetSpec{...}, WithSharding(opt)) followed by
// (*Fleet).Consolidate.
func ConsolidateFleet(workloads []Workload, machines []Machine, dp *DiskProfile, opt ShardOptions) (*Plan, error) {
	f, err := NewFleet(FleetSpec{Workloads: workloads, Machines: machines, Disk: dp},
		WithSharding(opt))
	if err != nil {
		return nil, err
	}
	//kairoslint:allow ctxflow: deprecated wrapper, legacy signature has no ctx
	return f.Consolidate(context.Background())
}

// newPlan decorates a solution with per-machine loads and display names.
func newPlan(p *Problem, sol *Solution) (*Plan, error) {
	ev, err := core.NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(sol.Units))
	for i, u := range sol.Units {
		names[i] = p.Workloads[u.Workload].Name
		if u.Replica > 0 {
			names[i] = fmt.Sprintf("%s/r%d", names[i], u.Replica)
		}
	}
	return &Plan{
		Solution:  sol,
		Loads:     ev.Report(sol.Assign, sol.K),
		Names:     names,
		incumbent: core.IncumbentFromSolution(p, sol),
	}, nil
}

// Reconsolidate re-solves a drifted fleet warm-started from an incumbent
// plan (rolling re-consolidation): the solver seeds from the incumbent's
// placements, charges each unit that moves off its incumbent machine a
// migration cost scaled by its working-set size
// (SolveOptions.MigrationWeight, optionally capped by MaxMigrations), and
// polishes with move+swap local search — no global DIRECT run. On mild
// drift this matches or beats a cold Consolidate at a fraction of the
// evaluations while migrating only a small fraction of the fleet. The
// returned plan's Migrated and MigrationCost fields report the churn.
//
// Deprecated: use NewFleet(FleetSpec{...}, WithIncumbent(inc),
// WithResolveOptions(opt)) followed by (*Fleet).Consolidate — a session
// seeded with an incumbent re-solves warm automatically.
func Reconsolidate(workloads []Workload, machines []Machine, dp *DiskProfile, inc *Incumbent, opt SolveOptions) (*Plan, error) {
	//kairoslint:allow ctxflow: deprecated wrapper, legacy signature has no ctx
	return reconsolidate(context.Background(), workloads, machines, dp, inc, opt)
}

// reconsolidate is the warm re-solve core shared by the deprecated
// Reconsolidate wrapper and the watch loop's triggered re-solves: validate
// the problem, run core.Resolve from the incumbent, decorate the plan. It
// deliberately builds no Fleet — the watch loop calls it with
// AutoReconsolidator.mu held, and constructing a session here would nest a
// fresh Fleet.mu acquisition under it.
func reconsolidate(ctx context.Context, workloads []Workload, machines []Machine, dp *DiskProfile, inc *Incumbent, opt SolveOptions) (*Plan, error) {
	p := &Problem{Workloads: workloads, Machines: machines, Disk: dp}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sol, err := core.Resolve(ctx, p, inc, opt)
	if err != nil {
		return nil, err
	}
	return newPlan(p, sol)
}

// String renders the plan as a human-readable placement table.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "consolidation plan: %d workloads -> %d machines (feasible=%v, %.1fs solve)\n",
		len(p.Names), p.K, p.Feasible, p.Elapsed.Seconds())
	byMachine := make([][]string, p.K)
	var unassigned []string
	for u, j := range p.Assign {
		if j >= 0 && j < p.K {
			byMachine[j] = append(byMachine[j], p.Names[u])
		} else {
			unassigned = append(unassigned, p.Names[u])
		}
	}
	for j, names := range byMachine {
		if len(names) == 0 {
			fmt.Fprintf(&b, "  machine %d: (unused)\n", j)
			continue
		}
		sort.Strings(names)
		load := ""
		if j < len(p.Loads) {
			sl := p.Loads[j]
			load = fmt.Sprintf(" [cpu %.0f%% ram %.1fGB disk %.1fMB/s]",
				sl.CPUPeak*100, sl.RAMPeak/1e9, sl.DiskPeak/1e6)
		}
		fmt.Fprintf(&b, "  machine %d%s: %s\n", j, load, strings.Join(names, ", "))
	}
	// Units assigned outside [0,K) are priced as violations by Eval; show
	// them rather than letting a workload silently vanish from the table.
	if len(unassigned) > 0 {
		sort.Strings(unassigned)
		fmt.Fprintf(&b, "  UNASSIGNED (out-of-range, plan infeasible): %s\n", strings.Join(unassigned, ", "))
	}
	return b.String()
}

// ConsolidatePartitioned solves very large inventories by splitting the
// workloads into fixed-size groups and consolidating each independently —
// the paper's Section 7.5 strategy for "tens of thousands of databases".
// It trades some cross-group co-location opportunity for linear scaling.
// Cancelling ctx aborts the solve after the current group.
func ConsolidatePartitioned(ctx context.Context, workloads []Workload, machines []Machine, dp *DiskProfile, g Grouping) (*PartitionedSolution, error) {
	p := &Problem{Workloads: workloads, Machines: machines, Disk: dp}
	return core.SolvePartitioned(ctx, p, g)
}

// MeasureWorkloads drives the given workload generators on an instance for
// the duration and returns one resource profile per workload plus the
// instance-wide profile — the paper's Resource Monitor in one call.
func MeasureWorkloads(in *dbms.Instance, gens []*workload.Generator, duration time.Duration) (map[string]*ResourceProfile, *ResourceProfile, error) {
	c, err := monitor.NewCollector(in, gens)
	if err != nil {
		return nil, nil, err
	}
	return c.Collect(duration)
}

// WorkloadFromProfile converts a monitored profile into a consolidation
// workload. cpuScale converts the measured machine's CPU fraction into
// target-machine units (sourceCores·clock / targetCores·clock); the working
// set series doubles as the RAM requirement.
func WorkloadFromProfile(p *ResourceProfile, cpuScale float64) Workload {
	if cpuScale <= 0 {
		cpuScale = 1
	}
	return Workload{
		Name:         p.Name,
		CPU:          p.CPU.Scale(cpuScale),
		RAMBytes:     p.WorkingSetBytes.Clone(),
		WSBytes:      p.WorkingSetBytes.Clone(),
		UpdateRate:   p.RowUpdatesPerSec.Clone(),
		DiskWriteBps: p.DiskWriteBps.Clone(),
		PinTo:        -1,
	}
}
