# Kairos build targets. These mirror .github/workflows/ci.yml exactly so
# local runs and CI stay in lockstep.

GO ?= go

.PHONY: build test test-full race race-full race-server crash-matrix bench bench-hot bench-resolve bench-drift bench-json serve-smoke lint fmt ci

build:
	$(GO) build ./...

# Fast suite: skips the simulated profiler sweeps and long co-location runs.
test:
	$(GO) test -short ./...

# Full suite, including the slow model/vm/figure tests (the tier-1 verify
# command from ROADMAP.md).
test-full:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race -short ./...

# Full suite under the race detector, including the slow model/vm tests.
# CI runs this as its own job; locally it is the long-form race gate.
race-full:
	$(GO) test -race ./...

# Control-plane tests under the race detector, full (not -short): includes
# the 197-server HTTP e2e with concurrent collectors.
race-server:
	$(GO) test -race ./internal/server/

# Crash matrix: the durability gate. Kills the journaled control plane at
# every fault-injection point (append write/sync, snapshot write/sync/
# rename/truncate, torn half-written frame), restarts from the state
# directory, and asserts every acked window was replayed, the recovered
# plan matches the last published placement, and retries of acked windows
# deduplicate instead of re-firing the detector.
crash-matrix:
	$(GO) test -run 'TestCrashMatrix|TestRecoveryAfterGracefulClose|TestDeregisterSurvivesRestart|TestIdempotentIngestLive|TestDegradedWhileRecovering' -v ./internal/server/
	$(GO) test -run 'TestTornTail|TestBitFlips|TestSnapshotCrash|TestCorruptSnapshot|TestTornAppendPoisonsLog|TestPropertyReplayEqualsModel' -v ./internal/journal/

# Benchmark smoke: every benchmark once, no unit tests. The full figure
# benchmarks regenerate the paper's evaluation; see bench_test.go.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Hill-climb hot path: candidate-move pricing with the incremental
# LoadState engine vs the scratch evaluator, plus the coarse-to-fine
# screened sweep vs the unscreened one, with allocation stats. The
# loadstate case must stay at 0 allocs/op and ≥5x the scratch speed, and
# the screened move+swap sweep at 0 allocs/op and ≥3x the unscreened
# sweep (sweep-speedup metric) on the 197-server fleet; tracked per PR.
bench-hot:
	$(GO) test -bench='LoadState|Coarse' -benchmem -benchtime=10x -run='^$$' .

# Event-driven re-consolidation: the watch loop over quiet + 5%-drifted
# observation windows of the 197-server fleet. Tracked metrics:
# trigger-precision and trigger-recall at 1.0 (no trigger on quiet
# windows, trigger within one window of the drift episode), watch-fevals
# well under cadence-fevals (the evaluations a fixed-cadence re-solve
# would spend on the same stream), migrated-frac in the low percent.
bench-drift:
	$(GO) test -bench='DriftWatch' -benchmem -benchtime=1x -run='^$$' .

# Machine-readable bench trajectory: the sweep + drift-watch benchmarks as
# JSON (ns/op, allocs/op, fevals, sweep-speedup, trigger precision/recall
# per case) in BENCH_sweeps.json, uploaded as a CI artifact so per-PR perf
# history accumulates.
bench-json:
	( $(GO) test -bench='LoadState|Coarse' -benchmem -benchtime=10x -run='^$$' . ; \
	  $(GO) test -bench='DriftWatch' -benchmem -benchtime=1x -run='^$$' . ) | $(GO) run ./cmd/benchjson > BENCH_sweeps.json
	@echo wrote BENCH_sweeps.json

# Rolling re-consolidation: warm-started Resolve on the drifted 197-server
# fleet vs a cold solve, plus the memoized disk-envelope pricing sweep.
# Tracked metrics: warm fevals well under cold's, migrated-frac in the low
# percent, and 0 allocs/op on the envelope sweep.
bench-resolve:
	$(GO) test -bench='ResolveWarmVsCold|SweepEnvelope' -benchmem -benchtime=1x -run='^$$' .

# Serve smoke: boot the kairos serve daemon, register a small synthetic
# fleet over HTTP, stream a quiet and a drifted window with curl, and
# assert the drift trigger shows up in /metrics.
serve-smoke:
	./scripts/serve-smoke.sh

# Lint: vet, formatting, and the repo's own analyzer suite (kairoslint:
# per-package hotalloc/lockguard/floatdet/wirejson/errflow plus the
# whole-program call-graph and dataflow checks — ctxflow/hotcall/
# lockorder/unitsafe and walorder/leakcheck/atomicmix; see
# CONTRIBUTING.md). Runs from the module root; kairoslint walks the same
# package graph as the build via `go list`, loading packages in parallel.
# The 30s budget matches CI: if load+analysis blow past it the run exits 3,
# keeping analyzer regressions from hiding inside a slow lint step.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" $$out; exit 1; fi
	$(GO) run ./cmd/kairoslint -budget 30s ./...

fmt:
	gofmt -w .

# Local CI mirror. The hosted workflow runs the same gates, with the
# short race pass promoted to `race-full` in a dedicated job (and
# govulncheck, which needs network access to fetch its vuln DB).
ci: build lint test race race-server crash-matrix serve-smoke bench
