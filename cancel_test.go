package kairos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"kairos/internal/core"
	"kairos/internal/fleet"
)

// all197Problem builds the paper's full 197-server consolidation instance
// (the ALL fleet on homogeneous targets) — large enough that a cold solve
// takes seconds, which is what makes mid-flight cancellation observable.
func all197Problem(t *testing.T) *core.Problem {
	t.Helper()
	f := fleet.All()
	wls := f.Workloads(0.7)
	if len(wls) != 197 {
		t.Fatalf("ALL fleet has %d servers, want 197", len(wls))
	}
	machines := make([]core.Machine, len(f.Servers))
	for i := range machines {
		machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), 50e6, 0.05)
	}
	return &core.Problem{Workloads: wls, Machines: machines}
}

// TestSolveCancel197: cancelling the context aborts an in-flight cold solve
// of the 197-server fleet well before it would complete, and the solver
// returns ctx.Err() rather than a partial plan.
func TestSolveCancel197(t *testing.T) {
	p := all197Problem(t)
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		sol     *core.Solution
		err     error
		elapsed time.Duration
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		sol, err := core.Solve(ctx, p, core.DefaultSolveOptions())
		done <- result{sol, err, time.Since(start)}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("cancelled solve returned (%v, %v), want context.Canceled", r.sol, r.err)
		}
		if r.sol != nil {
			t.Fatalf("cancelled solve returned a plan: %+v", r.sol)
		}
		// The abort has to beat a full solve (multiple seconds on this
		// instance) by a wide margin to be useful inside a shutdown grace
		// window. The bound is loose for slow CI machines.
		if r.elapsed > 5*time.Second {
			t.Errorf("cancelled solve took %v to abort", r.elapsed)
		}
		t.Logf("aborted after %v", r.elapsed)
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled solve did not return within 30s")
	}
}

// TestResolveCancel197: the warm re-solve path (what drift triggers run)
// honours cancellation the same way.
func TestResolveCancel197(t *testing.T) {
	p := all197Problem(t)
	base, err := core.Solve(context.Background(), p, core.SolveOptions{SkipDirect: true})
	if err != nil {
		t.Fatal(err)
	}
	inc := core.IncumbentFromSolution(p, base)

	// Drift every workload so the warm re-solve has real work to abort.
	drifted := *p
	drifted.Workloads = make([]core.Workload, len(p.Workloads))
	for i, w := range p.Workloads {
		dw := w
		dw.CPU = w.CPU.Scale(1.25)
		drifted.Workloads[i] = dw
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the re-solve must notice immediately
	sol, err := core.Resolve(ctx, &drifted, inc, core.DefaultResolveOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled re-solve returned (%v, %v), want context.Canceled", sol, err)
	}
}
