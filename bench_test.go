// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7). Each benchmark prints the rows/series the corresponding
// figure or table reports; absolute numbers come from the simulator, but
// the relationships the paper highlights (who wins, crossover points,
// saturation shapes) are reproduced. EXPERIMENTS.md records paper-vs-
// measured values for each experiment.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package kairos

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/model"
	"kairos/internal/monitor"
	"kairos/internal/series"
	"kairos/internal/stats"
	"kairos/internal/workload"
)

// benchProfile builds the shared disk profile once for all benchmarks.
var benchProfile = sync.OnceValues(func() (*model.DiskProfile, error) {
	pr := model.DefaultProfiler()
	pr.WSPointsMB = []float64{500, 1000, 2000, 3000}
	pr.RatePoints = []float64{1000, 4000, 10000, 20000, 40000}
	pr.Settle = 30 * time.Second
	pr.Measure = 30 * time.Second
	return pr.Run()
})

func mustProfile(b *testing.B) *model.DiskProfile {
	b.Helper()
	dp, err := benchProfile()
	if err != nil {
		b.Fatal(err)
	}
	return dp
}

func newBenchInstance(b *testing.B, mut func(*dbms.Config)) *dbms.Instance {
	b.Helper()
	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		b.Fatal(err)
	}
	cfg := dbms.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	in, err := dbms.NewInstance(cfg, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkFigure2_BufferPoolGauging reproduces Figure 2: physical page
// reads per second as the probe table steals buffer-pool space, for a
// MySQL-style configuration (O_DIRECT, 953 MB pool) and a PostgreSQL-style
// configuration (953 MB shared buffer + 1 GB OS file cache), both running
// TPC-C scaled to 5 warehouses. The curve stays flat while slack is being
// stolen and rises sharply at the working-set boundary.
func BenchmarkFigure2_BufferPoolGauging(b *testing.B) {
	type result struct {
		name  string
		res   monitor.GaugeResult
		alloc int64
	}
	var results []result
	for i := 0; i < b.N; i++ {
		results = results[:0]
		configs := []struct {
			name string
			mut  func(*dbms.Config)
		}{
			{"mysql-odirect", func(c *dbms.Config) { c.OSCacheBytes = 0 }},
			{"postgres+oscache", func(c *dbms.Config) { c.OSCacheBytes = 1 << 30 }},
		}
		for _, cfgCase := range configs {
			in := newBenchInstance(b, cfgCase.mut)
			gen, err := workload.Provision(in, workload.TPCC(5, 150), true)
			if err != nil {
				b.Fatal(err)
			}
			gc := monitor.DefaultGaugeConfig()
			gc.Window = 4 * time.Second
			res, err := monitor.Gauge(in, []*workload.Generator{gen}, gc)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, result{cfgCase.name, res, in.AllocatedRAMBytes()})
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 2: buffer-pool gauging (TPC-C, 5 warehouses) ==")
	for _, r := range results {
		fmt.Printf("-- %s (accessible %d MB)\n", r.name, r.res.AccessibleBytes>>20)
		fmt.Println("   pool_stolen_%   disk_reads_pages_per_sec")
		for _, pt := range r.res.Curve {
			fmt.Printf("   %12.1f   %24.1f\n",
				float64(pt.StolenBytes)/float64(r.res.AccessibleBytes)*100, pt.ReadsPerSec)
		}
		fmt.Printf("   detected=%v gauged_ws=%dMB (true 700MB) savings_vs_allocated=%.1fx\n",
			r.res.Detected, r.res.WorkingSetBytes>>20, r.res.SavingsFactor(r.alloc))
	}
}

// BenchmarkFigure4_DiskModel reproduces Figure 4: the empirical disk model
// of the target configuration — contours of disk write throughput over
// (working-set size, row-update rate) — plus the quadratic saturation
// envelope (maximum sustainable update rate per working-set size, which
// falls as the working set grows).
func BenchmarkFigure4_DiskModel(b *testing.B) {
	var dp *model.DiskProfile
	for i := 0; i < b.N; i++ {
		dp = mustProfile(b)
	}
	b.StopTimer()
	fmt.Println("\n== Figure 4: disk model (write MB/s over working set x update rate) ==")
	fmt.Println("   measured sweep points:")
	fmt.Println("   ws_MB  demand_rows/s  achieved_rows/s  write_MB/s  saturated")
	for _, pt := range dp.Points {
		fmt.Printf("   %5.0f  %13.0f  %15.1f  %10.2f  %v\n",
			pt.WSMB, pt.DemandRows, pt.AchievedRows, pt.WriteMBps, pt.Saturated)
	}
	fmt.Println("   fitted LAR polynomial, predicted write MB/s:")
	fmt.Printf("   %10s", "rate\\wsMB")
	for _, ws := range []float64{500, 1000, 2000, 3000} {
		fmt.Printf(" %8.0f", ws)
	}
	fmt.Println()
	for _, rate := range []float64{2000, 8000, 16000, 24000} {
		fmt.Printf("   %10.0f", rate)
		for _, ws := range []float64{500, 1000, 2000, 3000} {
			fmt.Printf(" %8.2f", dp.PredictWriteMBps(ws*1e6, rate))
		}
		fmt.Println()
	}
	fmt.Println("   saturation envelope (max rows/s, falls with working set):")
	for _, ws := range []float64{500, 1000, 2000, 3000} {
		fmt.Printf("   ws %4.0f MB -> %8.0f rows/s\n", ws, dp.MaxRowsPerSec(ws*1e6))
	}
}

// benchMicroSpecs returns the five Section 7.2 synthetic micro-workloads
// with their time-varying patterns compressed from hours to minutes so a
// full "day" of behaviour fits in a few simulated minutes.
func benchMicroSpecs() []workload.Spec {
	specs := make([]workload.Spec, 5)
	patterns := []workload.Pattern{
		workload.Sinusoid(3*time.Minute, 0.6),
		workload.Sawtooth(4*time.Minute, 0.8),
		workload.Flat(),
		workload.Square(2*time.Minute, 0.5),
		workload.Bursty(5*time.Minute, 40*time.Second, 3),
	}
	for i := range specs {
		s := workload.Micro(i)
		s.Pattern = patterns[i]
		specs[i] = s
	}
	return specs
}

// BenchmarkFigure6_ModelValidation reproduces Figure 6: the accuracy of the
// combined-load models against a naive sum of OS statistics, using the five
// synthetic micro-workloads. Each workload is monitored in isolation, the
// models predict the combined load, and the workloads are then physically
// co-located and measured.
func BenchmarkFigure6_ModelValidation(b *testing.B) {
	dp := mustProfile(b)
	type outcome struct {
		cpuPred, cpuBase, cpuReal    *series.Series
		ramPred, ramBase, ramReal    float64
		diskPred, diskBase, diskReal *series.Series
		predErr, baseErr             float64
		diskPredErrHi, diskBaseErrHi float64
	}
	var out outcome
	for iter := 0; iter < b.N; iter++ {
		specs := benchMicroSpecs()
		measure := 4 * time.Minute
		interval := 5 * time.Second

		// Phase 1: monitor each workload on its own dedicated server.
		var cpus, rams, wss, rates, disks []*series.Series
		for _, spec := range specs {
			in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 4 << 30 })
			gen, err := workload.Provision(in, spec, true)
			if err != nil {
				b.Fatal(err)
			}
			col, err := monitor.NewCollector(in, []*workload.Generator{gen})
			if err != nil {
				b.Fatal(err)
			}
			col.Interval = interval
			perDB, inst, err := col.Collect(measure)
			if err != nil {
				b.Fatal(err)
			}
			p := perDB[spec.Name]
			cpus = append(cpus, p.CPU)
			rams = append(rams, series.Constant(p.CPU.Start, p.CPU.Step, p.CPU.Len(),
				float64(spec.WorkingSetBytes())))
			wss = append(wss, p.WorkingSetBytes)
			rates = append(rates, p.RowUpdatesPerSec)
			disks = append(disks, inst.DiskWriteBps)
		}

		est := model.NewEstimator(dp)
		cpuPred, err := est.CombinedCPU(cpus)
		if err != nil {
			b.Fatal(err)
		}
		cpuBase, err := est.BaselineCPU(cpus)
		if err != nil {
			b.Fatal(err)
		}
		ramPred, err := est.CombinedRAM(rams)
		if err != nil {
			b.Fatal(err)
		}
		diskPred, err := est.CombinedDisk(wss, rates)
		if err != nil {
			b.Fatal(err)
		}
		diskBase, err := est.BaselineDisk(disks)
		if err != nil {
			b.Fatal(err)
		}

		// Phase 2: co-locate all five on one server and measure reality.
		in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 12 << 30 })
		var gens []*workload.Generator
		for _, spec := range specs {
			gen, err := workload.Provision(in, spec, true)
			if err != nil {
				b.Fatal(err)
			}
			gens = append(gens, gen)
		}
		col, err := monitor.NewCollector(in, gens)
		if err != nil {
			b.Fatal(err)
		}
		col.Interval = interval
		_, instProf, err := col.Collect(measure)
		if err != nil {
			b.Fatal(err)
		}

		// OS-reported RAM on the dedicated servers: process + touched pool.
		ramBase := 5 * float64((4<<30)+190<<20)
		var trueWS float64
		for _, spec := range specs {
			trueWS += float64(spec.WorkingSetBytes())
		}

		out = outcome{
			cpuPred: cpuPred, cpuBase: cpuBase, cpuReal: instProf.CPU,
			ramPred: ramPred.Max(), ramBase: ramBase,
			ramReal:  trueWS,
			diskPred: diskPred, diskBase: diskBase, diskReal: instProf.DiskWriteBps,
		}
		mae := func(pred, real *series.Series) float64 {
			v, err := stats.MAE(pred.Values, real.Values)
			if err != nil {
				b.Fatal(err)
			}
			return v
		}
		out.predErr = mae(cpuPred, instProf.CPU)
		out.baseErr = mae(cpuBase, instProf.CPU)
		// Disk error at the high-load (75th+) percentiles, where it matters.
		hiErr := func(pred *series.Series) float64 {
			var worst float64
			for t := range pred.Values {
				if instProf.DiskWriteBps.Values[t] >= percentile(instProf.DiskWriteBps.Values, 75) {
					if e := math.Abs(pred.Values[t] - instProf.DiskWriteBps.Values[t]); e > worst {
						worst = e
					}
				}
			}
			return worst
		}
		out.diskPredErrHi = hiErr(diskPred)
		out.diskBaseErrHi = hiErr(diskBase)
	}
	b.StopTimer()
	fmt.Println("\n== Figure 6: combined-load model validation (5 micro-workloads) ==")
	fmt.Printf("CPU:  model MAE %.1f%% vs baseline MAE %.1f%% (paper: ~6%% vs >15%%)\n",
		out.predErr*100, out.baseErr*100)
	fmt.Printf("RAM:  true working sets %.1f GB | gauged model %.1f GB | OS-reported sum %.1f GB (%.1fx over)\n",
		out.ramReal/1e9, out.ramPred/1e9, out.ramBase/1e9, out.ramBase/out.ramReal)
	fmt.Println("disk: percentiles of write throughput (MB/s)")
	fmt.Printf("   %6s %8s %8s %8s\n", "pctile", "real", "model", "baseline")
	for _, p := range []float64{50, 75, 90, 100} {
		fmt.Printf("   %6.0f %8.2f %8.2f %8.2f\n", p,
			percentile(out.diskReal.Values, p)/1e6,
			percentile(out.diskPred.Values, p)/1e6,
			percentile(out.diskBase.Values, p)/1e6)
	}
	fmt.Printf("disk high-load max error: model %.1f MB/s vs baseline %.1f MB/s\n",
		out.diskPredErrHi/1e6, out.diskBaseErrHi/1e6)
}

func percentile(vals []float64, p float64) float64 {
	v, err := stats.Percentile(vals, p)
	if err != nil {
		return 0
	}
	return v
}

// table1Case is one row of Table 1.
type table1Case struct {
	id        string
	specs     []workload.Spec
	poolBytes int64
}

// runStandalone measures each workload alone on its own machine.
func runStandalone(b *testing.B, specs []workload.Spec, dur time.Duration) (tps []float64, lat []time.Duration) {
	b.Helper()
	for _, spec := range specs {
		in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 8 << 30 })
		gen, err := workload.Provision(in, spec, true)
		if err != nil {
			b.Fatal(err)
		}
		ticks := int(dur / (100 * time.Millisecond))
		for t := 0; t < ticks; t++ {
			in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
		}
		st := gen.DB().Stats()
		tps = append(tps, float64(st.Txns)/dur.Seconds())
		lat = append(lat, in.Stats().AvgLatency())
	}
	return tps, lat
}

// runConsolidated measures all workloads together in one DBMS instance.
func runConsolidated(b *testing.B, specs []workload.Spec, poolBytes int64, dur time.Duration) (tps []float64, lat time.Duration) {
	b.Helper()
	in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = poolBytes })
	var gens []*workload.Generator
	for _, spec := range specs {
		gen, err := workload.Provision(in, spec, true)
		if err != nil {
			b.Fatal(err)
		}
		gens = append(gens, gen)
	}
	ticks := int(dur / (100 * time.Millisecond))
	for t := 0; t < ticks; t++ {
		reqs := make([]dbms.Request, len(gens))
		for i, g := range gens {
			reqs[i] = g.Next(100 * time.Millisecond)
		}
		in.Tick(100*time.Millisecond, reqs)
	}
	for _, g := range gens {
		st := g.DB().Stats()
		tps = append(tps, float64(st.Txns)/dur.Seconds())
	}
	return tps, in.Stats().AvgLatency()
}

// BenchmarkTable1_ConsolidationImpact reproduces Table 1: throughput and
// latency with and without consolidation for six experiments. In cases 1–4
// the engine recommends consolidation and performance is preserved; in
// cases 5–6 it warns against it, and forcing co-location collapses
// throughput and blows up latency.
func BenchmarkTable1_ConsolidationImpact(b *testing.B) {
	dp := mustProfile(b)
	nTpcc := func(n int, w int, tps float64) []workload.Spec {
		out := make([]workload.Spec, n)
		for i := range out {
			s := workload.TPCC(w, tps)
			s.Name = fmt.Sprintf("%s-%d", s.Name, i)
			out[i] = s
		}
		return out
	}
	cases := []table1Case{
		{"1: tpcc10w@50 + wiki100K@100", append(nTpcc(1, 10, 50), workload.Wikipedia(100_000, 100)), 30 << 30},
		{"2: tpcc10w@250 + wiki100K@500", append(nTpcc(1, 10, 250), workload.Wikipedia(100_000, 500)), 30 << 30},
		{"3: 5x tpcc10w@100", nTpcc(5, 10, 100), 30 << 30},
		{"4: 8x tpcc10w@50 + wiki100K@50", append(nTpcc(8, 10, 50), workload.Wikipedia(100_000, 50)), 30 << 30},
		{"5: 5x tpcc10w@600", nTpcc(5, 10, 600), 30 << 30},
		{"6: 8x tpcc10w@100 + wiki100K@100", append(nTpcc(8, 10, 100), workload.Wikipedia(100_000, 100)), 30 << 30},
	}

	type row struct {
		id               string
		recommended      bool
		soloTPS, consTPS float64
		soloLat, consLat time.Duration
	}
	var rows []row
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		dur := 90 * time.Second
		for _, tc := range cases {
			// Recommendation: aggregate working set must fit the pool, and
			// the aggregate update rate must stay inside the disk envelope.
			var wsSum, rateSum float64
			for _, s := range tc.specs {
				wsSum += float64(s.WorkingSetBytes())
				rateSum += s.RowUpdateRate()
			}
			recommended := wsSum < float64(tc.poolBytes)*0.9 &&
				(!dp.HasEnvelope || rateSum < dp.MaxRowsPerSec(wsSum)*0.9)

			soloTPS, soloLat := runStandalone(b, tc.specs, dur)
			consTPS, consLat := runConsolidated(b, tc.specs, tc.poolBytes, dur)
			var sumSolo, sumCons float64
			var maxSoloLat time.Duration
			for i := range soloTPS {
				sumSolo += soloTPS[i]
				sumCons += consTPS[i]
				if soloLat[i] > maxSoloLat {
					maxSoloLat = soloLat[i]
				}
			}
			rows = append(rows, row{tc.id, recommended, sumSolo, sumCons, maxSoloLat, consLat})
		}
	}
	b.StopTimer()
	fmt.Println("\n== Table 1: impact of consolidation on performance ==")
	fmt.Printf("%-34s %11s %10s %10s %10s %10s\n",
		"experiment", "recommended", "solo_tps", "cons_tps", "solo_lat", "cons_lat")
	for _, r := range rows {
		fmt.Printf("%-34s %11v %10.1f %10.1f %10s %10s\n",
			r.id, r.recommended, r.soloTPS, r.consTPS,
			r.soloLat.Round(time.Millisecond), r.consLat.Round(time.Millisecond))
	}
}

// BenchmarkTable2_ProbingImpact reproduces Table 2: the throughput and
// latency cost of buffer-pool gauging while it runs, on a Wikipedia
// workload against a large buffer pool, at increasing target request rates.
func BenchmarkTable2_ProbingImpact(b *testing.B) {
	type row struct {
		target             float64
		tpsPlain, tpsGauge float64
		latPlain, latGauge time.Duration
		gaugeElapsed       time.Duration
		gaugedWS           int64
	}
	var rows []row
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		for _, target := range []float64{200, 600, 1000, 4000} { // 4000 ≈ MAX
			mk := func() (*dbms.Instance, *workload.Generator) {
				in := newBenchInstance(b, func(c *dbms.Config) {
					c.BufferPoolBytes = 16 << 30
				})
				// Wikipedia scaled to 100K pages: 2.2 GB working set.
				gen, err := workload.Provision(in, workload.Wikipedia(100_000, target), true)
				if err != nil {
					b.Fatal(err)
				}
				return in, gen
			}

			// Without gauging.
			in, gen := mk()
			dur := 30 * time.Second
			ticks := int(dur / (100 * time.Millisecond))
			for t := 0; t < ticks; t++ {
				in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
			}
			tpsPlain := float64(gen.DB().Stats().Txns) / dur.Seconds()
			latPlain := in.Stats().AvgLatency()

			// With aggressive gauging running concurrently.
			in2, gen2 := mk()
			gc := monitor.DefaultGaugeConfig()
			gc.Window = 3 * time.Second
			gc.InitialGrowPages = 4096 // aggressive growth, ~6 MB/s average
			res, err := monitor.Gauge(in2, []*workload.Generator{gen2}, gc)
			if err != nil {
				b.Fatal(err)
			}
			tpsGauge := float64(gen2.DB().Stats().Txns) / res.Elapsed.Seconds()
			latGauge := in2.Stats().AvgLatency()

			rows = append(rows, row{target, tpsPlain, tpsGauge, latPlain, latGauge,
				res.Elapsed, res.WorkingSetBytes >> 20})
		}
	}
	b.StopTimer()
	fmt.Println("\n== Table 2: impact of probing on user-perceived performance ==")
	fmt.Printf("%10s %12s %12s %12s %12s %10s %10s\n",
		"target_tps", "tps_plain", "tps_gauging", "lat_plain", "lat_gauging", "gauge_time", "gauged_ws")
	for _, r := range rows {
		fmt.Printf("%10.0f %12.1f %12.1f %12s %12s %10s %8dMB\n",
			r.target, r.tpsPlain, r.tpsGauge,
			r.latPlain.Round(time.Millisecond), r.latGauge.Round(time.Millisecond),
			r.gaugeElapsed.Round(time.Second), r.gaugedWS)
	}
}

// BenchmarkFigure12a_DatabaseSizeIndependence reproduces Figure 12a: disk
// write throughput as a function of update rate is unchanged when the total
// database grows from 1 GB to 5 GB, as long as the accessed working set
// stays at 512 MB — only the working set matters.
func BenchmarkFigure12a_DatabaseSizeIndependence(b *testing.B) {
	type point struct {
		dbGB int
		rate float64
		mbps float64
	}
	var pts []point
	for iter := 0; iter < b.N; iter++ {
		pts = pts[:0]
		for _, dbGB := range []int{1, 2, 5} {
			for _, rate := range []float64{2000, 8000, 16000} {
				in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 2 << 30 })
				spec := workload.Spec{
					Name:            "size-test",
					DataPages:       int64(dbGB) << 30 / workload.PageSize,
					WorkingSetPages: 512 << 20 / workload.PageSize,
					TPS:             rate,
					UpdatesPerTxn:   1,
				}
				gen, err := workload.Provision(in, spec, true)
				if err != nil {
					b.Fatal(err)
				}
				for t := 0; t < 600; t++ { // 30s settle
					in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
				}
				in.Disk().TakeStats()
				for t := 0; t < 300; t++ { // 30s measure
					in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
				}
				w := in.Disk().TakeStats()
				pts = append(pts, point{dbGB, rate, w.WriteMBps()})
			}
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 12a: database size does not matter (512 MB working set) ==")
	fmt.Printf("%8s %12s %12s\n", "db_size", "rows/s", "write_MB/s")
	for _, p := range pts {
		fmt.Printf("%7dG %12.0f %12.2f\n", p.dbGB, p.rate, p.mbps)
	}
}

// BenchmarkFigure12b_TransactionTypeIndependence reproduces Figure 12b: two
// very different workloads (TPC-C-like and Wikipedia-like) with equal
// working sets impose nearly identical disk write pressure at equal row
// update rates — transaction type does not matter, only rows/sec and
// working set.
func BenchmarkFigure12b_TransactionTypeIndependence(b *testing.B) {
	type point struct {
		name string
		rate float64
		mbps float64
	}
	var pts []point
	for iter := 0; iter < b.N; iter++ {
		pts = pts[:0]
		// Both scaled to a ≈2.2 GB working set (the paper compares TPC-C 30
		// warehouses against Wikipedia 100K pages at comparable working
		// sets; total sizes differ 4.8 GB vs 67 GB).
		for _, rate := range []float64{1000, 3000, 6000} {
			wiki := workload.Wikipedia(100_000, rate/wikiUpdatesPerTxn)
			tpcc := workload.TPCC(16, rate/10) // 16 wh ≈ 2.24 GB WS; 10 updates/txn
			for _, spec := range []workload.Spec{tpcc, wiki} {
				in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 6 << 30 })
				gen, err := workload.Provision(in, spec, true)
				if err != nil {
					b.Fatal(err)
				}
				for t := 0; t < 600; t++ {
					in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
				}
				in.Disk().TakeStats()
				gen.DB().TakeStats()
				for t := 0; t < 300; t++ {
					in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
				}
				w := in.Disk().TakeStats()
				upd := gen.DB().TakeStats().Updates
				pts = append(pts, point{spec.Name, float64(upd) / 30, w.WriteMBps()})
			}
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 12b: transaction type does not matter (equal working sets) ==")
	fmt.Printf("%-20s %14s %12s\n", "workload", "rows_upd/s", "write_MB/s")
	for _, p := range pts {
		fmt.Printf("%-20s %14.0f %12.2f\n", p.name, p.rate, p.mbps)
	}
}

// wikiUpdatesPerTxn mirrors the Wikipedia spec's updates-per-transaction.
const wikiUpdatesPerTxn = 0.25
