package fleet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"kairos/internal/floats"
	"kairos/internal/series"
)

func TestDatasetSizes(t *testing.T) {
	want := map[Dataset]int{Internal: 25, Wikia: 35, Wikipedia: 40, SecondLife: 97}
	total := 0
	for d, n := range want {
		f := Generate(d)
		if len(f.Servers) != n {
			t.Errorf("%v: %d servers, want %d", d, len(f.Servers), n)
		}
		total += n
	}
	all := All()
	if len(all.Servers) != total {
		t.Errorf("ALL: %d servers, want %d", len(all.Servers), total)
	}
}

func TestMeanUtilizationUnder4Percent(t *testing.T) {
	// The paper's headline: across almost 200 production servers, average
	// CPU utilization below 4%.
	all := All()
	mean := all.MeanCPUUtilization()
	if mean <= 0 || mean >= 0.07 {
		t.Errorf("fleet mean CPU = %.3f, want < 0.07 (paper: <4%%)", mean)
	}
}

func TestTraceShape(t *testing.T) {
	f := Generate(Wikipedia)
	for _, s := range f.Servers[:3] {
		if s.CPU.Len() != SamplesPerDay {
			t.Errorf("%s: %d samples, want %d", s.Name, s.CPU.Len(), SamplesPerDay)
		}
		if s.CPU.Step != SampleStep {
			t.Errorf("%s: step %v, want %v", s.Name, s.CPU.Step, SampleStep)
		}
		if s.CPU.Min() < 0 || s.CPU.Max() > 1 {
			t.Errorf("%s: CPU outside [0,1]: min=%v max=%v", s.Name, s.CPU.Min(), s.CPU.Max())
		}
		if s.WSBytes.Min() <= 0 {
			t.Errorf("%s: non-positive working set", s.Name)
		}
		if s.UpdateRate.Min() <= 0 {
			t.Errorf("%s: non-positive update rate", s.Name)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := Generate(Wikia), Generate(Wikia)
	for i := range a.Servers {
		sa, sb := a.Servers[i], b.Servers[i]
		if sa.Cores != sb.Cores || sa.RAMBytes != sb.RAMBytes {
			t.Fatal("hardware differs between runs")
		}
		for t2 := range sa.CPU.Values {
			if !floats.Same(sa.CPU.Values[t2], sb.CPU.Values[t2]) {
				t.Fatal("CPU traces differ between runs")
			}
		}
	}
}

func TestDatasetsDiffer(t *testing.T) {
	a, b := Generate(Internal), Generate(Wikia)
	if floats.Same(a.Servers[0].CPU.Values[0], b.Servers[0].CPU.Values[0]) &&
		floats.Same(a.Servers[1].CPU.Values[7], b.Servers[1].CPU.Values[7]) {
		t.Error("different datasets produced identical traces")
	}
}

func TestDiurnalCycle(t *testing.T) {
	// Wikipedia is strongly diurnal and correlated: the aggregate trace
	// must show a clear peak-to-trough swing.
	f := Generate(Wikipedia)
	agg := f.AggregateCPU()
	if agg.Max() < 1.8*agg.Min() {
		t.Errorf("weak diurnal swing: min=%.3f max=%.3f", agg.Min(), agg.Max())
	}
}

func TestSecondLifeSnapshotSpike(t *testing.T) {
	// The paper: "the late-night peaks are due to a pool of 27 database
	// machines performing snapshot operations." The 3 AM window must show
	// markedly higher load than the 9 AM window on snapshot machines.
	f := Generate(SecondLife)
	idx := func(hour float64) int { return int(hour * 12) } // 5-min samples
	var night, morning float64
	for _, s := range f.Servers[:27] {
		night += s.CPU.Values[idx(3)]
		morning += s.CPU.Values[idx(9)]
	}
	if night < 2*morning {
		t.Errorf("snapshot spike missing: 3AM=%.3f vs 9AM=%.3f", night, morning)
	}
	// Non-snapshot servers have no such spike.
	var night2, evening2 float64
	for _, s := range f.Servers[27:] {
		night2 += s.CPU.Values[idx(3)]
		evening2 += s.CPU.Values[idx(19)]
	}
	if night2 > evening2 {
		t.Errorf("non-snapshot servers should peak in the evening: 3AM=%.3f 7PM=%.3f", night2, evening2)
	}
}

func TestWeeklyGeneration(t *testing.T) {
	f := GenerateWeeks(Wikipedia, 3)
	wantLen := 3 * 7 * SamplesPerDay
	if got := f.Servers[0].CPU.Len(); got != wantLen {
		t.Fatalf("weekly trace length = %d, want %d", got, wantLen)
	}
	// Weekend dip: Saturday's (day 5) average must be below Wednesday's
	// (day 2) for the strongly-correlated Wikipedia fleet.
	agg := f.AggregateCPU()
	dayMean := func(day int) float64 {
		s, _ := agg.Slice(day*SamplesPerDay, (day+1)*SamplesPerDay)
		return s.Mean()
	}
	if dayMean(5) >= dayMean(2) {
		t.Errorf("no weekend dip: sat=%.3f wed=%.3f", dayMean(5), dayMean(2))
	}
}

func TestWorkloadsNormalization(t *testing.T) {
	f := Generate(Internal)
	wls := f.Workloads(0.7)
	if len(wls) != len(f.Servers) {
		t.Fatalf("workload count mismatch")
	}
	for i, w := range wls {
		s := f.Servers[i]
		wantScale := float64(s.Cores) * s.ClockGHz / (12 * 3.0)
		if math.Abs(w.CPU.Values[0]-s.CPU.Values[0]*wantScale) > 1e-12 {
			t.Errorf("server %d: CPU normalization wrong", i)
		}
		if math.Abs(w.RAMBytes.Values[0]-s.WSBytes.Values[0]*0.7) > 1 {
			t.Errorf("server %d: RAM scaling wrong", i)
		}
		if w.CPU.Max() > 1 {
			t.Errorf("server %d: normalized CPU %v exceeds one target machine", i, w.CPU.Max())
		}
	}
	// ramScale ≤ 0 means no scaling.
	raw := f.Workloads(0)
	if math.Abs(raw[0].RAMBytes.Values[0]-f.Servers[0].WSBytes.Values[0]) > 1 {
		t.Error("zero ramScale should mean unscaled")
	}
}

func TestTotalCoresPlausible(t *testing.T) {
	// The paper's ALL dataset has 1419 cores across 197 servers (≈7.2
	// average); our generator should land in the same regime.
	all := All()
	cores := all.TotalCores()
	perServer := float64(cores) / float64(len(all.Servers))
	if perServer < 5 || perServer > 12 {
		t.Errorf("average cores/server = %.1f, want ≈7", perServer)
	}
}

func TestTargetMachine(t *testing.T) {
	m := TargetMachine("t", 50e6, 0.05)
	if m.CPUCapacity != 1 || m.RAMBytes != 96e9 || m.Headroom != 0.05 {
		t.Errorf("unexpected target machine %+v", m)
	}
}

func TestAggregateCPUMatchesManualSum(t *testing.T) {
	f := Generate(Wikia)
	agg := f.AggregateCPU()
	wls := f.Workloads(1)
	var manual float64
	for _, w := range wls {
		manual += w.CPU.Values[10]
	}
	if math.Abs(agg.Values[10]-manual) > 1e-9 {
		t.Errorf("aggregate mismatch: %v vs %v", agg.Values[10], manual)
	}
	var _ *series.Series = agg
}

func TestDatasetStringer(t *testing.T) {
	for _, d := range Datasets() {
		if d.String() == "" {
			t.Error("empty dataset name")
		}
	}
	if Dataset(42).String() == "" {
		t.Error("unknown dataset should still render")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(Wikia)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "wikia-restored")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "wikia-restored" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Servers) != len(orig.Servers) {
		t.Fatalf("servers = %d, want %d", len(got.Servers), len(orig.Servers))
	}
	for i, s := range got.Servers {
		o := orig.Servers[i]
		if s.Name != o.Name || s.Cores != o.Cores || s.RAMBytes != o.RAMBytes {
			t.Fatalf("server %d metadata mismatch", i)
		}
		if s.CPU.Len() != o.CPU.Len() {
			t.Fatalf("server %d trace length mismatch", i)
		}
		for t2 := range s.CPU.Values {
			if math.Abs(s.CPU.Values[t2]-o.CPU.Values[t2]) > 1e-6 {
				t.Fatalf("server %d sample %d: %v != %v", i, t2, s.CPU.Values[t2], o.CPU.Values[t2])
			}
		}
	}
	// Restored fleets consolidate identically (within CSV rounding).
	if math.Abs(got.MeanCPUUtilization()-orig.MeanCPUUtilization()) > 1e-5 {
		t.Error("mean utilization changed through round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad header", "a,b,c\n"},
		{"no rows", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\n"},
		{"bad cores", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\nx,NOPE,3,1,0,0.5,100,1\n"},
		{"bad value", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\nx,4,3,1,0,NOPE,100,1\n"},
		{"ragged", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\n" +
			"x,4,3,1,0,0.5,100,1\nx,4,3,1,1,0.5,100,1\ny,4,3,1,0,0.5,100,1\n"},
		// Per-server metadata must be constant: conflicting later rows are
		// corruption, not something to silently ignore.
		{"cores conflict", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\n" +
			"x,4,3,1,0,0.5,100,1\nx,8,3,1,1,0.5,100,1\n"},
		{"clock conflict", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\n" +
			"x,4,3,1,0,0.5,100,1\nx,4,2.5,1,1,0.5,100,1\n"},
		{"ram conflict", "server,cores,clock_ghz,ram_bytes,sample,cpu_util,ws_bytes,updates_per_sec\n" +
			"x,4,3,1,0,0.5,100,1\nx,4,3,2,1,0.5,100,1\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.data), "t"); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
