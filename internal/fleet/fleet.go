// Package fleet generates synthetic production-server statistics
// reproducing the published characteristics of the paper's four real-world
// datasets (Section 7.1): Internal (25 servers of MIT CSAIL lab
// infrastructure), Wikia (34), Wikipedia (40, the Tampa cluster), and
// Second Life (97, including a pool of 27 machines running late-night
// snapshot jobs). The real traces are proprietary rrdtool archives; the
// generator reproduces what the consolidation results actually depend on —
// the statistical shape of the load: mean CPU utilization under 4%, diurnal
// and weekly cycles with per-dataset phases, partial correlation between
// servers of one organization, occasional bursts, and working sets far
// smaller than provisioned RAM.
//
// All randomness is seeded per dataset, so every run of every experiment
// sees bit-identical fleets.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"kairos/internal/core"
	"kairos/internal/series"
)

// Dataset identifies one of the paper's data providers.
type Dataset int

const (
	// Internal is the 25-server MIT CSAIL lab dataset (production plus
	// test/development machines).
	Internal Dataset = iota
	// Wikia is the 35-server collaborative publishing platform (the paper
	// reports "over 34 database servers").
	Wikia
	// Wikipedia is the 40-server Tampa database cluster.
	Wikipedia
	// SecondLife is the 97-server virtual-world backend.
	SecondLife
)

// String implements fmt.Stringer.
func (d Dataset) String() string {
	switch d {
	case Internal:
		return "Internal"
	case Wikia:
		return "Wikia"
	case Wikipedia:
		return "Wikipedia"
	case SecondLife:
		return "SecondLife"
	default:
		return fmt.Sprintf("dataset(%d)", int(d))
	}
}

// Datasets lists all four sources in paper order.
func Datasets() []Dataset { return []Dataset{Internal, Wikia, Wikipedia, SecondLife} }

// Server is one production database server with its monitored statistics.
type Server struct {
	// Name identifies the server.
	Name string
	// Cores and ClockGHz describe the hardware; CPU traces are utilization
	// of this machine, normalized later.
	Cores    int
	ClockGHz float64
	// RAMBytes is the machine's physical memory (what it was provisioned
	// with, not what it needs).
	RAMBytes int64
	// CPU is utilization of this machine in [0,1] (all cores = 1), sampled
	// every 5 minutes over 24 hours.
	CPU *series.Series
	// WSBytes is the working set (after the paper's RAM scaling for
	// historical statistics that could not be gauged).
	WSBytes *series.Series
	// UpdateRate is the row-modification rate (rows/sec).
	UpdateRate *series.Series
}

// Fleet is one organization's set of database servers.
type Fleet struct {
	Name    string
	Dataset Dataset
	Servers []Server
}

// params are the per-dataset generation knobs.
type params struct {
	servers      int
	seed         int64
	meanUtil     float64 // mean CPU utilization of own machine
	utilSpread   float64 // multiplicative spread across servers
	diurnalRatio float64 // peak/trough of the daily cycle
	peakHour     float64
	correlated   float64 // share of diurnal phase common to the fleet
	noise        float64
	coresChoices []int
	meanWSGB     float64 // mean working set
	wsSpreadGB   float64
	meanUpdates  float64 // rows/sec at mean load
	// snapshot models Second Life's 27-machine late-night snapshot pool.
	snapshotServers int
	snapshotHour    float64
	snapshotFactor  float64
}

func datasetParams(d Dataset) params {
	switch d {
	case Internal:
		// Lab infrastructure: few, beefier working sets (production DBs plus
		// dev machines), weak correlation, modest cycles.
		return params{
			servers: 25, seed: 1001, meanUtil: 0.035, utilSpread: 0.8,
			diurnalRatio: 2.5, peakHour: 15, correlated: 0.5, noise: 0.25,
			coresChoices: []int{4, 8}, meanWSGB: 16, wsSpreadGB: 8,
			meanUpdates: 120,
		}
	case Wikia:
		// Many small wikis: tiny working sets, strong sharing, the paper's
		// best consolidation ratio.
		return params{
			servers: 35, seed: 1002, meanUtil: 0.03, utilSpread: 0.5,
			diurnalRatio: 3, peakHour: 20, correlated: 0.8, noise: 0.2,
			coresChoices: []int{4, 8}, meanWSGB: 4, wsSpreadGB: 2,
			meanUpdates: 80,
		}
	case Wikipedia:
		// Large, strongly diurnal, very predictable cluster.
		return params{
			servers: 40, seed: 1003, meanUtil: 0.05, utilSpread: 0.4,
			diurnalRatio: 4, peakHour: 21, correlated: 0.9, noise: 0.15,
			coresChoices: []int{8, 16}, meanWSGB: 10, wsSpreadGB: 4,
			meanUpdates: 250,
		}
	case SecondLife:
		// Big pool with scheduled late-night snapshot jobs on 27 machines.
		return params{
			servers: 97, seed: 1004, meanUtil: 0.04, utilSpread: 0.6,
			diurnalRatio: 3, peakHour: 19, correlated: 0.7, noise: 0.2,
			coresChoices: []int{8, 16}, meanWSGB: 8, wsSpreadGB: 4,
			meanUpdates:     180,
			snapshotServers: 27, snapshotHour: 3, snapshotFactor: 8,
		}
	default:
		panic(fmt.Sprintf("fleet: unknown dataset %d", int(d)))
	}
}

// SamplesPerDay is the paper's 24-hour window at 5-minute samples.
const SamplesPerDay = 288

// SampleStep is the sampling interval.
const SampleStep = 5 * time.Minute

// Generate builds the named dataset's fleet with its fixed seed.
func Generate(d Dataset) Fleet {
	return generateDays(d, 1, 0)
}

// GenerateWeeks builds weeks×7 days of traces (used by the predictability
// experiment, Figure 13).
func GenerateWeeks(d Dataset, weeks int) Fleet {
	return generateDays(d, 7*weeks, 0)
}

// generateDays builds `days` days of traces; seedOffset perturbs the seed
// (used by robustness experiments).
func generateDays(d Dataset, days int, seedOffset int64) Fleet {
	p := datasetParams(d)
	rng := rand.New(rand.NewSource(p.seed + seedOffset))
	n := SamplesPerDay * days
	start := time.Unix(0, 0).UTC()

	fleet := Fleet{Name: d.String(), Dataset: d, Servers: make([]Server, p.servers)}
	for i := 0; i < p.servers; i++ {
		cores := p.coresChoices[rng.Intn(len(p.coresChoices))]
		clock := 2.0 + rng.Float64()*1.3
		base := p.meanUtil * math.Exp(rng.NormFloat64()*p.utilSpread)
		phase := rng.NormFloat64() * 2.5 * (1 - p.correlated) // hours of phase jitter
		wsGB := math.Max(0.5, p.meanWSGB+rng.NormFloat64()*p.wsSpreadGB)
		isSnapshot := p.snapshotServers > 0 && i < p.snapshotServers
		serverSeed := rng.Int63()

		srng := rand.New(rand.NewSource(serverSeed))
		cpu := make([]float64, n)
		upd := make([]float64, n)
		ratio := p.diurnalRatio
		mean := (ratio + 1) / 2
		amp := (ratio - 1) / 2
		for t := 0; t < n; t++ {
			hours := float64(t) * SampleStep.Hours()
			hourOfDay := math.Mod(hours, 24)
			dayOfWeek := int(hours/24) % 7
			// Diurnal cycle around the dataset's peak hour.
			cyc := (mean + amp*math.Cos(2*math.Pi*(hourOfDay-p.peakHour-phase)/24)) / mean
			// Weekly cycle: weekends run ~30% lighter.
			week := 1.0
			if dayOfWeek >= 5 {
				week = 0.7
			}
			v := base * cyc * week * (1 + p.noise*srng.NormFloat64())
			// Occasional short bursts ("unexpected events").
			if srng.Float64() < 0.004 {
				v *= 3 + 2*srng.Float64()
			}
			if isSnapshot {
				// Scheduled snapshot job: a hard spike in a fixed
				// late-night window, shared by the pool.
				if dh := math.Abs(hourOfDay - p.snapshotHour); dh < 0.75 {
					v += base * p.snapshotFactor
				}
			}
			if v < 0.001 {
				v = 0.001
			}
			if v > 1 {
				v = 1
			}
			cpu[t] = v
			u := p.meanUpdates * (v / p.meanUtil) * 0.4
			if u < 1 {
				u = 1
			}
			upd[t] = u
		}
		ramProvisioned := int64(math.Max(8, wsGB*2+8)) << 30
		fleet.Servers[i] = Server{
			Name:       fmt.Sprintf("%s-%02d", d.String(), i),
			Cores:      cores,
			ClockGHz:   clock,
			RAMBytes:   ramProvisioned,
			CPU:        series.New(start, SampleStep, cpu),
			WSBytes:    series.Constant(start, SampleStep, n, wsGB*1e9),
			UpdateRate: series.New(start, SampleStep, upd),
		}
	}
	return fleet
}

// All concatenates all four fleets — the paper's 196-server "ALL" dataset
// (total server count matches the sum of the four).
func All() Fleet {
	out := Fleet{Name: "ALL", Dataset: -1}
	for _, d := range Datasets() {
		f := Generate(d)
		out.Servers = append(out.Servers, f.Servers...)
	}
	return out
}

// TotalCores sums hardware cores across the fleet (the paper compares 1419
// original cores against 252 consolidated ones).
func (f *Fleet) TotalCores() int {
	var total int
	for _, s := range f.Servers {
		total += s.Cores
	}
	return total
}

// MeanCPUUtilization returns the fleet-wide average utilization — the
// paper's headline "average CPU utilization of less than 4%".
func (f *Fleet) MeanCPUUtilization() float64 {
	var sum float64
	var n int
	for _, s := range f.Servers {
		sum += s.CPU.Mean()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TargetMachine is the paper's consolidation target: a 12-core, 96 GB
// machine ("a higher-end class of machines used by two of our data
// providers", USD $6,000–$10,000).
func TargetMachine(name string, diskBudgetBps float64, headroom float64) core.Machine {
	return core.Machine{
		Name:         name,
		CPUCapacity:  1.0,
		RAMBytes:     96e9,
		DiskWriteBps: diskBudgetBps,
		Headroom:     headroom,
	}
}

// TargetCores is the target machine's core count used for normalization.
const TargetCores = 12

// targetClockGHz is the standard core clock used for normalization.
const targetClockGHz = 3.0

// Workloads converts the fleet's monitored statistics into consolidation
// workloads: CPU is normalized by core count and clock speed to fractions
// of the 12-core target machine (paper Section 6, "Normalization"), and RAM
// is the working set scaled by ramScale (the paper applies ≈0.7 to
// historical statistics that could not be gauged).
func (f *Fleet) Workloads(ramScale float64) []core.Workload {
	if ramScale <= 0 {
		ramScale = 1
	}
	out := make([]core.Workload, len(f.Servers))
	for i, s := range f.Servers {
		// util × cores × clock relative to the target's 12 standard cores.
		scale := float64(s.Cores) * s.ClockGHz / (TargetCores * targetClockGHz)
		out[i] = core.Workload{
			Name:       s.Name,
			CPU:        s.CPU.Scale(scale),
			RAMBytes:   s.WSBytes.Scale(ramScale),
			WSBytes:    s.WSBytes.Scale(ramScale),
			UpdateRate: s.UpdateRate.Clone(),
			PinTo:      -1,
		}
	}
	return out
}

// AggregateCPU returns the sum of normalized CPU across the fleet, in
// target-machine units (used by Figures 8 and 13).
func (f *Fleet) AggregateCPU() *series.Series {
	ws := f.Workloads(1)
	ss := make([]*series.Series, len(ws))
	for i := range ws {
		ss[i] = ws[i].CPU
	}
	sum, err := series.Sum(ss)
	if err != nil {
		// All generator series share one shape; a mismatch is a bug.
		panic(err)
	}
	return sum
}
