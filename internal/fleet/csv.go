package fleet

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"kairos/internal/floats"
	"kairos/internal/series"
)

// csvHeader is the column layout of fleet trace files.
var csvHeader = []string{
	"server", "cores", "clock_ghz", "ram_bytes", "sample",
	"cpu_util", "ws_bytes", "updates_per_sec",
}

// WriteCSV writes a fleet's traces as CSV, one row per (server, sample) —
// the interchange format for recorded monitoring statistics.
func (f *Fleet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, s := range f.Servers {
		for i, v := range s.CPU.Values {
			rec := []string{
				s.Name,
				strconv.Itoa(s.Cores),
				strconv.FormatFloat(s.ClockGHz, 'f', 3, 64),
				strconv.FormatInt(s.RAMBytes, 10),
				strconv.Itoa(i),
				strconv.FormatFloat(v, 'f', 6, 64),
				strconv.FormatFloat(s.WSBytes.Values[i], 'f', 0, 64),
				strconv.FormatFloat(s.UpdateRate.Values[i], 'f', 2, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a fleet from traces written by WriteCSV. The fleet name is
// taken from the caller; sample step is assumed to be SampleStep.
func ReadCSV(r io.Reader, name string) (Fleet, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return Fleet{}, fmt.Errorf("fleet: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return Fleet{}, fmt.Errorf("fleet: CSV has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return Fleet{}, fmt.Errorf("fleet: CSV column %d is %q, want %q", i, header[i], h)
		}
	}

	type acc struct {
		cores    int
		clock    float64
		ram      int64
		cpu, ws  []float64
		upd      []float64
		firstRow int
	}
	byServer := map[string]*acc{}
	var order []string
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Fleet{}, fmt.Errorf("fleet: reading CSV: %w", err)
		}
		row++
		name := rec[0]
		cores, err := strconv.Atoi(rec[1])
		if err != nil {
			return Fleet{}, fmt.Errorf("fleet: row %d: bad cores %q", row, rec[1])
		}
		clock, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return Fleet{}, fmt.Errorf("fleet: row %d: bad clock %q", row, rec[2])
		}
		ram, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return Fleet{}, fmt.Errorf("fleet: row %d: bad ram %q", row, rec[3])
		}
		a, ok := byServer[name]
		if !ok {
			a = &acc{cores: cores, clock: clock, ram: ram, firstRow: row}
			byServer[name] = a
			order = append(order, name)
		} else if a.cores != cores || !floats.Same(a.clock, clock) || a.ram != ram {
			// Metadata must be constant per server: silently keeping the
			// first row's values would hide corrupted or mis-merged traces.
			return Fleet{}, fmt.Errorf(
				"fleet: row %d: server %q metadata (cores=%d clock=%g ram=%d) conflicts with row %d (cores=%d clock=%g ram=%d)",
				row, name, cores, clock, ram, a.firstRow, a.cores, a.clock, a.ram)
		}
		vals := make([]float64, 3)
		for i, col := range []int{5, 6, 7} {
			v, err := strconv.ParseFloat(rec[col], 64)
			if err != nil {
				return Fleet{}, fmt.Errorf("fleet: row %d: bad value %q in column %d", row, rec[col], col)
			}
			vals[i] = v
		}
		a.cpu = append(a.cpu, vals[0])
		a.ws = append(a.ws, vals[1])
		a.upd = append(a.upd, vals[2])
	}
	if len(order) == 0 {
		return Fleet{}, fmt.Errorf("fleet: CSV contains no data rows")
	}
	sort.SliceStable(order, func(a, b int) bool {
		return byServer[order[a]].firstRow < byServer[order[b]].firstRow
	})

	start := time.Unix(0, 0).UTC()
	out := Fleet{Name: name, Dataset: -1}
	wantLen := len(byServer[order[0]].cpu)
	for _, sname := range order {
		a := byServer[sname]
		if len(a.cpu) != wantLen {
			return Fleet{}, fmt.Errorf("fleet: server %q has %d samples, others have %d",
				sname, len(a.cpu), wantLen)
		}
		out.Servers = append(out.Servers, Server{
			Name:       sname,
			Cores:      a.cores,
			ClockGHz:   a.clock,
			RAMBytes:   a.ram,
			CPU:        series.New(start, SampleStep, a.cpu),
			WSBytes:    series.New(start, SampleStep, a.ws),
			UpdateRate: series.New(start, SampleStep, a.upd),
		})
	}
	return out, nil
}
