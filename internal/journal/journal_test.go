package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// open opens dir with the given options and fails the test on error.
func open(t *testing.T, dir string, opt Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// mustAppend appends and fails the test on error.
func mustAppend(t *testing.T, l *Log, payload []byte) uint64 {
	t.Helper()
	seq, err := l.Append(payload)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return seq
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := open(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovered %+v, want empty", rec)
	}
	payloads := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		if seq := mustAppend(t, l, p); seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := open(t, dir, Options{})
	defer l2.Close()
	if rec2.TornTail {
		t.Fatal("clean close recovered a torn tail")
	}
	if len(rec2.Records) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(payloads))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = seq %d payload %d bytes, want seq %d payload %d bytes",
				i, r.Seq, len(r.Payload), i+1, len(payloads[i]))
		}
	}
	// Appends continue from the recovered seq.
	if seq := mustAppend(t, l2, []byte("four")); seq != 4 {
		t.Fatalf("post-recovery append got seq %d, want 4", seq)
	}
}

// TestPropertyReplayEqualsModel drives random op sequences (append,
// snapshot, reopen) against both the journal and an in-memory model; after
// every reopen the recovered state must equal the model exactly.
func TestPropertyReplayEqualsModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			l, _ := open(t, dir, Options{Sync: SyncNone})

			// The model: the snapshot payload (with covered seq) plus every
			// appended record after it.
			var modelSnap []byte
			var modelSnapSeq uint64
			var modelRecords []Record

			check := func(rec *Recovered) {
				t.Helper()
				if rec.TornTail {
					t.Fatal("clean sequence recovered a torn tail")
				}
				if !bytes.Equal(rec.Snapshot, modelSnap) || rec.SnapshotSeq != modelSnapSeq {
					t.Fatalf("snapshot (%d bytes, seq %d) != model (%d bytes, seq %d)",
						len(rec.Snapshot), rec.SnapshotSeq, len(modelSnap), modelSnapSeq)
				}
				if len(rec.Records) != len(modelRecords) {
					t.Fatalf("recovered %d records, model has %d", len(rec.Records), len(modelRecords))
				}
				for i := range rec.Records {
					if rec.Records[i].Seq != modelRecords[i].Seq ||
						!bytes.Equal(rec.Records[i].Payload, modelRecords[i].Payload) {
						t.Fatalf("record %d mismatch", i)
					}
				}
			}

			for op := 0; op < 200; op++ {
				switch r := rng.Float64(); {
				case r < 0.70: // append a random payload
					payload := make([]byte, 1+rng.Intn(512))
					rng.Read(payload)
					seq, err := l.Append(payload)
					if err != nil {
						t.Fatalf("append: %v", err)
					}
					modelRecords = append(modelRecords, Record{Seq: seq, Payload: append([]byte(nil), payload...)})
				case r < 0.85: // snapshot compacts the model
					state := make([]byte, 1+rng.Intn(256))
					rng.Read(state)
					if err := l.Snapshot(state); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					modelSnap = append([]byte(nil), state...)
					modelSnapSeq = l.Seq()
					modelRecords = nil
				default: // reopen and compare against the model
					if err := l.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
					var rec *Recovered
					l, rec = open(t, dir, Options{Sync: SyncNone})
					check(rec)
				}
			}
			l.Close()
		})
	}
}

// TestTornTail cuts the journal file at every interesting byte boundary of
// its final record; recovery must keep everything before the cut, report
// the torn tail, truncate the file, and accept new appends.
func TestTornTail(t *testing.T) {
	// Build a reference journal: 3 records with known payloads.
	build := func(t *testing.T) (string, []int64) {
		dir := t.TempDir()
		l, _ := open(t, dir, Options{})
		offsets := []int64{0}
		for i := 0; i < 3; i++ {
			mustAppend(t, l, bytes.Repeat([]byte{byte('a' + i)}, 100))
			offsets = append(offsets, l.Stats().SizeBytes)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, offsets
	}

	cases := []struct {
		name string
		// cut maps the final record's [start, end) to the cut position.
		cut func(start, end int64) int64
		// wantRecords after recovery.
		wantRecords int
	}{
		{"mid-header", func(s, e int64) int64 { return s + frameHeaderSize/2 }, 2},
		{"after-header", func(s, e int64) int64 { return s + frameHeaderSize }, 2},
		{"mid-payload", func(s, e int64) int64 { return s + (e-s)/2 }, 2},
		{"one-byte-short", func(s, e int64) int64 { return e - 1 }, 2},
		{"record-boundary-clean", func(s, e int64) int64 { return s }, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, offsets := build(t)
			start, end := offsets[2], offsets[3]
			cut := tc.cut(start, end)
			if err := os.Truncate(filepath.Join(dir, journalFile), cut); err != nil {
				t.Fatal(err)
			}
			l, rec := open(t, dir, Options{})
			defer l.Close()
			if len(rec.Records) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), tc.wantRecords)
			}
			wantTorn := cut != start // a clean cut at a boundary is not torn
			if rec.TornTail != wantTorn {
				t.Fatalf("TornTail = %v, want %v (cut at %d)", rec.TornTail, wantTorn, cut)
			}
			if wantTorn && rec.TornOffset != start {
				t.Fatalf("TornOffset = %d, want %d", rec.TornOffset, start)
			}
			if st := l.Stats(); st.SizeBytes != start {
				t.Fatalf("file not truncated to the good boundary: size %d, want %d", st.SizeBytes, start)
			}
			// The log stays writable after tail truncation, and the new
			// record survives a further reopen.
			mustAppend(t, l, []byte("recovered"))
			l.Close()
			_, rec2 := open(t, dir, Options{})
			if n := len(rec2.Records); n != tc.wantRecords+1 {
				t.Fatalf("after post-recovery append, reopened %d records, want %d", n, tc.wantRecords+1)
			}
		})
	}
}

// TestBitFlips flips single bits across the journal; recovery must
// truncate at the first record whose checksum breaks.
func TestBitFlips(t *testing.T) {
	cases := []struct {
		name string
		// record to corrupt (0-based of 3) and byte offset within it.
		record  int
		offset  int64
		wantRec int
	}{
		{"length-field-of-first", 0, 0, 0},
		{"crc-field-of-first", 0, 5, 0},
		{"seq-field-of-second", 1, 9, 1},
		{"payload-of-second", 1, frameHeaderSize + 10, 1},
		{"payload-of-last", 2, frameHeaderSize + 50, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := open(t, dir, Options{})
			var offsets []int64
			offsets = append(offsets, 0)
			for i := 0; i < 3; i++ {
				mustAppend(t, l, bytes.Repeat([]byte{byte('a' + i)}, 100))
				offsets = append(offsets, l.Stats().SizeBytes)
			}
			l.Close()

			path := filepath.Join(dir, journalFile)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[offsets[tc.record]+tc.offset] ^= 0x10
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}

			l2, rec := open(t, dir, Options{})
			defer l2.Close()
			if len(rec.Records) != tc.wantRec {
				t.Fatalf("recovered %d records, want %d (flip in record %d)",
					len(rec.Records), tc.wantRec, tc.record)
			}
			if !rec.TornTail {
				t.Fatal("bit flip did not report a torn tail")
			}
			if rec.TornOffset != offsets[tc.record] {
				t.Fatalf("truncated at %d, want record boundary %d", rec.TornOffset, offsets[tc.record])
			}
		})
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{})
	mustAppend(t, l, []byte("a"))
	mustAppend(t, l, []byte("b"))
	if err := l.Snapshot([]byte("state@2")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st := l.Stats(); st.SizeBytes != 0 || st.SnapshotSeq != 2 {
		t.Fatalf("post-snapshot stats %+v, want rotated journal covering seq 2", st)
	}
	mustAppend(t, l, []byte("c"))
	l.Close()

	l2, rec := open(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "state@2" || rec.SnapshotSeq != 2 {
		t.Fatalf("recovered snapshot %q seq %d, want state@2 seq 2", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 3 || string(rec.Records[0].Payload) != "c" {
		t.Fatalf("recovered records %+v, want only seq 3 %q", rec.Records, "c")
	}
}

// TestSnapshotCrashBetweenRenameAndTruncate: the snapshot is active but
// the journal still holds the compacted prefix — replay must skip it by
// sequence number.
func TestSnapshotCrashBetweenRenameAndTruncate(t *testing.T) {
	dir := t.TempDir()
	fi := &FaultInjector{}
	l, _ := open(t, dir, Options{Fault: fi})
	mustAppend(t, l, []byte("a"))
	mustAppend(t, l, []byte("b"))
	fi.Crash(PointSnapshotTruncate, 1)
	if err := l.Snapshot([]byte("state@2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Snapshot with truncate fault = %v, want injected", err)
	}
	fi.Kill()
	l.Close()

	l2, rec := open(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "state@2" || rec.SnapshotSeq != 2 {
		t.Fatalf("snapshot %q seq %d, want state@2 seq 2", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("compacted prefix not skipped: recovered %d records", len(rec.Records))
	}
	// Sequence numbering continues past the snapshot.
	if seq := mustAppend(t, l2, []byte("c")); seq != 3 {
		t.Fatalf("append after recovery got seq %d, want 3", seq)
	}
}

// TestSnapshotCrashBeforeRename: the temp file must be ignored and the
// previous snapshot (or none) stays authoritative.
func TestSnapshotCrashBeforeRename(t *testing.T) {
	for _, point := range []string{PointSnapshotWrite, PointSnapshotSync, PointSnapshotRename} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			fi := &FaultInjector{}
			l, _ := open(t, dir, Options{Fault: fi})
			mustAppend(t, l, []byte("a"))
			fi.Crash(point, 1)
			if err := l.Snapshot([]byte("never")); !errors.Is(err, ErrInjected) {
				t.Fatalf("Snapshot = %v, want injected", err)
			}
			fi.Kill()
			l.Close()

			l2, rec := open(t, dir, Options{})
			defer l2.Close()
			if rec.Snapshot != nil {
				t.Fatalf("failed snapshot became visible: %q", rec.Snapshot)
			}
			if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "a" {
				t.Fatalf("journal lost records around failed snapshot: %+v", rec.Records)
			}
		})
	}
}

func TestCorruptSnapshotRefusesToStart(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{})
	mustAppend(t, l, []byte("a"))
	if err := l.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := filepath.Join(dir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

// TestTornAppendPoisonsLog: after a torn write the live log refuses
// further appends (the tail length is unknown), and recovery truncates
// the torn frame.
func TestTornAppendPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	fi := &FaultInjector{}
	l, _ := open(t, dir, Options{Fault: fi})
	mustAppend(t, l, []byte("good"))
	fi.CrashPartial(PointAppendWrite, 1, 0.5)
	if _, err := l.Append([]byte("torn-record-payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append = %v, want injected", err)
	}
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after a torn write succeeded; the log must be poisoned")
	}
	fi.Kill()
	l.Close()

	l2, rec := open(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "good" {
		t.Fatalf("recovered %+v, want only the pre-tear record", rec.Records)
	}
	if !rec.TornTail {
		t.Fatal("torn write not reported on recovery")
	}
	// The truncated log accepts appends again.
	mustAppend(t, l2, []byte("after-recovery"))
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		fi := &FaultInjector{}
		l, _ := open(t, t.TempDir(), Options{Sync: SyncAlways, Fault: fi})
		defer l.Close()
		mustAppend(t, l, []byte("a"))
		mustAppend(t, l, []byte("b"))
		if got := fi.Hits(PointAppendSync); got != 2 {
			t.Fatalf("SyncAlways fsynced %d times for 2 appends, want 2", got)
		}
	})
	t.Run("none", func(t *testing.T) {
		fi := &FaultInjector{}
		l, _ := open(t, t.TempDir(), Options{Sync: SyncNone, Fault: fi})
		mustAppend(t, l, []byte("a"))
		if got := fi.Hits(PointAppendSync); got != 0 {
			t.Fatalf("SyncNone fsynced %d times mid-run, want 0", got)
		}
		// Close still flushes once so a clean shutdown loses nothing.
		l.Close()
		if got := fi.Hits(PointAppendSync); got != 1 {
			t.Fatalf("Close under SyncNone fsynced %d times, want 1", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		fi := &FaultInjector{}
		l, _ := open(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond, Fault: fi})
		defer l.Close()
		mustAppend(t, l, []byte("a"))
		deadline := time.Now().Add(2 * time.Second)
		for fi.Hits(PointAppendSync) == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if fi.Hits(PointAppendSync) == 0 {
			t.Fatal("interval flusher never fsynced")
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

func TestFaultInjectorCountdownAndKill(t *testing.T) {
	fi := &FaultInjector{}
	fi.Crash(PointAppendWrite, 3)
	for i := 1; i <= 2; i++ {
		if _, err := fi.check(PointAppendWrite); err != nil {
			t.Fatalf("hit %d fired early", i)
		}
	}
	if _, err := fi.check(PointAppendWrite); !errors.Is(err, ErrInjected) {
		t.Fatal("3rd hit did not fire")
	}
	if _, err := fi.check(PointAppendWrite); err != nil {
		t.Fatal("fault did not disarm after firing")
	}
	fi.Kill()
	for _, p := range Points {
		if _, err := fi.check(p); !errors.Is(err, ErrInjected) {
			t.Fatalf("point %s survived the kill switch", p)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	l, _ := open(t, t.TempDir(), Options{})
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized record accepted")
	}
}
