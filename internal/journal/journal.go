// Package journal is the control plane's durability layer: an append-only,
// CRC-checksummed write-ahead log plus an atomically replaced snapshot
// file. The server journals every control-plane mutation (fleet
// registration, acked observation windows, incumbent-plan advances,
// detector rebase events) before publishing its effects, periodically
// compacts the log into a snapshot, and on restart replays snapshot +
// journal to rebuild its in-memory state — the prerequisite for running
// consolidation as a long-lived service whose plans and monitoring state
// survive crashes and redeploys.
//
// The journal is deliberately payload-agnostic: records are opaque byte
// slices (the server uses JSON wire types from internal/server), and the
// package only owns framing, checksums, sequencing, fsync policy and
// crash recovery.
//
// # On-disk layout
//
//	<dir>/journal.wal      append-only record frames
//	<dir>/snapshot.kairos  one frame holding the compacted state
//	<dir>/snapshot.tmp     in-progress snapshot (ignored on open)
//
// Each frame is
//
//	uint32  payload length (little endian)
//	uint32  CRC32-C over seq || payload
//	uint64  seq (little endian)
//	[]byte  payload
//
// Sequence numbers increase monotonically across the journal's lifetime
// (they survive snapshot rotation), so a crash between renaming a new
// snapshot and truncating the journal is harmless: replay just skips the
// journal prefix the snapshot already covers.
//
// # Recovery semantics
//
// Open never refuses to start on a torn tail: the first frame whose
// header is short, whose length is absurd, whose CRC mismatches, or whose
// seq does not increase marks the end of the usable log — everything
// before it is replayed, and the file is truncated there so appends
// continue from a clean boundary. A corrupt snapshot file, by contrast,
// is a hard error: snapshots are written to a temp file and renamed into
// place, so a damaged one means the disk lost data the journal no longer
// holds, and silently starting empty would be worse than stopping.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File names within the state directory.
const (
	journalFile  = "journal.wal"
	snapshotFile = "snapshot.kairos"
	snapshotTmp  = "snapshot.tmp"
)

// frameHeaderSize is the fixed prefix of every frame: length, CRC, seq.
const frameHeaderSize = 4 + 4 + 8

// MaxRecord bounds a single record's payload. A 197-workload observation
// window with week-long series is a few MB of JSON; 64 MiB leaves two
// orders of magnitude of headroom while still letting recovery reject a
// garbage length field immediately.
const MaxRecord = 64 << 20

// castagnoli is the CRC32-C table (the checksum used by iSCSI, ext4 and
// most journaled stores; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acked record is ever lost
	// to a crash, at the cost of one fsync per window. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery):
	// bounded data loss — records acked within the last interval may
	// vanish on a power cut — with near-zero per-append cost.
	SyncInterval
	// SyncNone leaves flushing to the OS page cache: fastest, and a clean
	// process exit (or plain crash with the OS surviving) still loses
	// nothing, but a power cut may drop any un-flushed suffix.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the `kairos serve -fsync` flag values onto a
// policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or none)", s)
	}
}

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy for appends. Defaults to SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period. Defaults to 100ms.
	SyncEvery time.Duration
	// Fault is the test-only crash-point injector; nil in production.
	Fault *FaultInjector
}

// Record is one recovered journal entry.
type Record struct {
	// Seq is the record's journal sequence number.
	Seq uint64
	// Payload is the opaque record body the caller appended.
	Payload []byte
}

// Recovered is everything Open rebuilt from the state directory.
type Recovered struct {
	// Snapshot is the latest snapshot payload, nil if none was taken.
	Snapshot []byte
	// SnapshotSeq is the last sequence number the snapshot covers.
	SnapshotSeq uint64
	// Records are the journal entries after the snapshot, in order.
	Records []Record
	// TornTail reports that the journal ended in a partial or corrupt
	// frame which recovery truncated away.
	TornTail bool
	// TornOffset is the byte offset the journal was truncated to when
	// TornTail is set.
	TornOffset int64
}

// Log is an open write-ahead journal. All methods are safe for concurrent
// use; appends and snapshots serialize on an internal mutex.
type Log struct {
	dir string
	opt Options

	mu sync.Mutex
	f  *os.File // guarded by mu
	// seq is the last assigned sequence number (guarded by mu).
	seq uint64
	// snapSeq is the last sequence number covered by the on-disk snapshot
	// (guarded by mu).
	snapSeq uint64
	// size is the journal file's current length (guarded by mu).
	size int64
	// dirty reports appends not yet fsynced (guarded by mu).
	dirty bool
	// poisoned is set after a failed append write: the file may end in a
	// torn frame of unknown length, so further appends would interleave
	// garbage. Only a restart (which truncates the tail) clears it.
	poisoned bool // guarded by mu
	closed   bool // guarded by mu

	// appends, syncs and snapshots count successful operations for the
	// server's /metrics (guarded by mu).
	appends   int64
	syncs     int64
	snapshots int64

	// stop terminates the SyncInterval flusher goroutine.
	stop chan struct{}
	done chan struct{}
}

// Stats is a point-in-time summary of the journal for metrics export.
type Stats struct {
	// Seq is the last assigned sequence number.
	Seq uint64
	// SnapshotSeq is the last snapshot's covered sequence number.
	SnapshotSeq uint64
	// Appends, Syncs and Snapshots count successful operations.
	Appends   int64
	Syncs     int64
	Snapshots int64
	// SizeBytes is the journal file's current length.
	SizeBytes int64
}

// Open opens (creating if needed) the journal in dir, recovers the
// snapshot and every intact record after it, truncates any torn tail, and
// returns the log ready for appends.
func Open(dir string, opt Options) (*Log, *Recovered, error) {
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating state dir: %w", err)
	}
	rec := &Recovered{}

	snapPath := filepath.Join(dir, snapshotFile)
	if raw, err := os.ReadFile(snapPath); err == nil {
		seq, payload, n, ferr := parseFrame(raw)
		if ferr != nil || n != len(raw) {
			return nil, nil, fmt.Errorf("journal: snapshot %s is corrupt (%v): refusing to start with partial state", snapPath, ferr)
		}
		rec.Snapshot = payload
		rec.SnapshotSeq = seq
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: reading snapshot: %w", err)
	}

	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening journal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close() //kairoslint:allow errflow: already failing with the read error; a close error would mask it
		return nil, nil, fmt.Errorf("journal: reading journal: %w", err)
	}

	// Scan frames until the first bad one: short header, absurd length,
	// CRC mismatch or non-increasing seq all mean the rest of the file is
	// unusable. Everything before the bad frame is intact by checksum.
	good := int64(0)
	lastSeq := uint64(0)
	for off := 0; off < len(raw); {
		seq, payload, n, ferr := parseFrame(raw[off:])
		if ferr != nil || (lastSeq > 0 && seq <= lastSeq) {
			break
		}
		lastSeq = seq
		off += n
		good = int64(off)
		if seq <= rec.SnapshotSeq {
			continue // already compacted into the snapshot
		}
		rec.Records = append(rec.Records, Record{Seq: seq, Payload: payload})
	}
	if good < int64(len(raw)) {
		rec.TornTail = true
		rec.TornOffset = good
		if err := f.Truncate(good); err != nil {
			f.Close() //kairoslint:allow errflow: already failing with the truncate error; a close error would mask it
			return nil, nil, fmt.Errorf("journal: truncating torn tail at %d: %w", good, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close() //kairoslint:allow errflow: already failing with the seek error; a close error would mask it
		return nil, nil, fmt.Errorf("journal: seeking to append position: %w", err)
	}

	l := &Log{
		dir:     dir,
		opt:     opt,
		f:       f,
		seq:     max(lastSeq, rec.SnapshotSeq),
		snapSeq: rec.SnapshotSeq,
		size:    good,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opt.Sync == SyncInterval {
		go l.flushLoop()
	} else {
		close(l.done)
	}
	return l, rec, nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opt.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Best effort: an interval-policy flush failure surfaces on
			// the next explicit Sync/Close, and the policy already
			// tolerates a bounded unsynced window.
			_ = l.Sync() //kairoslint:allow errflow: interval-policy flush; a failure surfaces on the next explicit Sync/Close
		case <-l.stop:
			return
		}
	}
}

// Append writes one record and returns its sequence number. Under
// SyncAlways the record is on stable storage when Append returns; an
// error means the record must be treated as not durable (though recovery
// may still replay it if the write in fact reached the disk — callers
// must make replayed-but-unacked operations idempotent).
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return 0, fmt.Errorf("journal: append on closed log")
	case l.poisoned:
		return 0, fmt.Errorf("journal: log poisoned by an earlier failed write; restart to truncate the torn tail")
	case len(payload) == 0:
		return 0, fmt.Errorf("journal: empty record")
	case len(payload) > MaxRecord:
		return 0, fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecord)
	}
	seq := l.seq + 1
	frame := buildFrame(seq, payload)
	if err := l.write(l.f, PointAppendWrite, frame); err != nil {
		// The file may now end in a torn frame of unknown length; only
		// recovery (which truncates at the first bad CRC) can clean it.
		l.poisoned = true
		return 0, fmt.Errorf("journal: appending record: %w", err)
	}
	l.seq = seq
	l.size += int64(len(frame))
	l.appends++
	l.dirty = true
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(PointAppendSync); err != nil {
			return 0, fmt.Errorf("journal: fsync after append: %w", err)
		}
	}
	return seq, nil
}

// Sync flushes appended records to stable storage (a no-op when nothing
// is dirty).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.dirty {
		return nil
	}
	return l.syncLocked(PointAppendSync)
}

// syncLocked fsyncs the journal file. Callers hold l.mu.
func (l *Log) syncLocked(point string) error {
	if _, err := l.opt.Fault.check(point); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	return nil
}

// Snapshot atomically replaces the snapshot file with state (covering
// every record appended so far) and truncates the journal. A crash at any
// step leaves a recoverable directory: the temp file is ignored on open,
// and a renamed snapshot with an untruncated journal just makes replay
// skip the compacted prefix by sequence number.
func (l *Log) Snapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("journal: snapshot on closed log")
	}
	if len(state) > MaxRecord {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds the %d-byte limit", len(state), MaxRecord)
	}
	frame := buildFrame(l.seq, state)
	tmp := filepath.Join(l.dir, snapshotTmp)
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: creating snapshot temp file: %w", err)
	}
	if err := l.write(tf, PointSnapshotWrite, frame); err != nil {
		tf.Close()     //kairoslint:allow errflow: already failing with the write error; a close error would mask it
		os.Remove(tmp) //kairoslint:allow errflow: best-effort cleanup of the temp snapshot on the failure path
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	if err := func() error {
		if _, err := l.opt.Fault.check(PointSnapshotSync); err != nil {
			return err
		}
		return tf.Sync()
	}(); err != nil {
		tf.Close()     //kairoslint:allow errflow: already failing with the fsync error; a close error would mask it
		os.Remove(tmp) //kairoslint:allow errflow: best-effort cleanup of the temp snapshot on the failure path
		return fmt.Errorf("journal: fsync of snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp) //kairoslint:allow errflow: best-effort cleanup of the temp snapshot on the failure path
		return fmt.Errorf("journal: closing snapshot temp file: %w", err)
	}
	if _, err := l.opt.Fault.check(PointSnapshotRename); err != nil {
		os.Remove(tmp) //kairoslint:allow errflow: best-effort cleanup of the temp snapshot on the failure path
		return fmt.Errorf("journal: renaming snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		os.Remove(tmp) //kairoslint:allow errflow: best-effort cleanup of the temp snapshot on the failure path
		return fmt.Errorf("journal: renaming snapshot: %w", err)
	}
	l.syncDir()

	// The snapshot is active from here on; rotating the journal is pure
	// space reclamation, and a crash before the truncate only leaves a
	// prefix that replay skips by seq.
	l.snapSeq = l.seq
	l.snapshots++
	if _, err := l.opt.Fault.check(PointSnapshotTruncate); err != nil {
		return fmt.Errorf("journal: truncating rotated journal: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating rotated journal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: rewinding rotated journal: %w", err)
	}
	l.size = 0
	l.dirty = false
	return nil
}

// syncDir fsyncs the state directory so the snapshot rename itself is
// durable. Best effort: on filesystems where directories cannot be
// fsynced the rename is already as durable as it gets.
func (l *Log) syncDir() {
	d, err := os.Open(l.dir)
	if err != nil {
		return
	}
	_ = d.Sync()  //kairoslint:allow errflow: best-effort directory sync; rename durability is advisory on some filesystems
	_ = d.Close() //kairoslint:allow errflow: read-only directory handle; close reports nothing actionable
}

// write writes b to f through the fault injector: an armed write point
// may persist only a prefix (a torn write) before failing.
func (l *Log) write(f *os.File, point string, b []byte) error {
	frac, err := l.opt.Fault.check(point)
	if err != nil {
		if n := int(frac * float64(len(b))); n > 0 {
			_, _ = f.Write(b[:min(n, len(b))]) //kairoslint:allow errflow: deliberate torn write; the injected fault error is about to be returned
		}
		return err
	}
	_, err = f.Write(b)
	return err
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats summarizes the journal for metrics export.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Seq:         l.seq,
		SnapshotSeq: l.snapSeq,
		Appends:     l.appends,
		Syncs:       l.syncs,
		Snapshots:   l.snapshots,
		SizeBytes:   l.size,
	}
}

// Close flushes and closes the journal. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.opt.Sync == SyncInterval {
		close(l.stop)
	}
	var err error
	if l.dirty && !l.poisoned {
		err = l.syncLocked(PointAppendSync)
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	<-l.done
	return err
}

// buildFrame renders one record frame.
func buildFrame(seq uint64, payload []byte) []byte {
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[frameHeaderSize:], payload)
	// The CRC covers seq and payload so a frame cannot be spliced onto a
	// different position in the log.
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[8:], castagnoli))
	return frame
}

// parseFrame decodes the frame at the start of raw, returning its seq,
// payload and total encoded size.
func parseFrame(raw []byte) (seq uint64, payload []byte, n int, err error) {
	if len(raw) < frameHeaderSize {
		return 0, nil, 0, fmt.Errorf("short frame header (%d bytes)", len(raw))
	}
	length := binary.LittleEndian.Uint32(raw[0:4])
	if length == 0 || length > MaxRecord {
		return 0, nil, 0, fmt.Errorf("absurd frame length %d", length)
	}
	total := frameHeaderSize + int(length)
	if len(raw) < total {
		return 0, nil, 0, fmt.Errorf("truncated frame (%d of %d bytes)", len(raw), total)
	}
	want := binary.LittleEndian.Uint32(raw[4:8])
	if got := crc32.Checksum(raw[8:total], castagnoli); got != want {
		return 0, nil, 0, fmt.Errorf("CRC mismatch (%08x != %08x)", got, want)
	}
	seq = binary.LittleEndian.Uint64(raw[8:16])
	payload = append([]byte(nil), raw[frameHeaderSize:total]...)
	return seq, payload, total, nil
}
