package journal

import (
	"errors"
	"fmt"
	"sync"
)

// This file is the journal's fault-injection layer: a registry of named
// io-level crash points threaded through the Log's writer. Production
// code passes a nil injector (every check is a no-op); the crash-matrix
// tests arm a point, run the control plane until the injected error
// surfaces, flip the kill switch so nothing written after the "crash"
// persists, and then recover from the state directory to assert the
// recovery invariants.

// The named crash points, in the order a record or snapshot hits disk.
const (
	// PointAppendWrite is the record frame write. A partial arm here
	// models a torn write: a prefix of the frame reaches the file before
	// the failure.
	PointAppendWrite = "append.write"
	// PointAppendSync is the fsync after an append (SyncAlways) or from
	// the interval flusher / explicit Sync.
	PointAppendSync = "append.sync"
	// PointSnapshotWrite is the snapshot temp-file write.
	PointSnapshotWrite = "snapshot.write"
	// PointSnapshotSync is the snapshot temp-file fsync.
	PointSnapshotSync = "snapshot.sync"
	// PointSnapshotRename is the atomic rename activating the snapshot.
	PointSnapshotRename = "snapshot.rename"
	// PointSnapshotTruncate is the journal rotation after a snapshot.
	PointSnapshotTruncate = "snapshot.truncate"
)

// Points lists every crash point, for matrix tests that enumerate them.
var Points = []string{
	PointAppendWrite,
	PointAppendSync,
	PointSnapshotWrite,
	PointSnapshotSync,
	PointSnapshotRename,
	PointSnapshotTruncate,
}

// ErrInjected is the sentinel every injected fault wraps.
var ErrInjected = errors.New("injected fault")

// fault is one armed crash point.
type fault struct {
	// countdown is how many hits remain before the fault fires (1 fires
	// on the next hit).
	countdown int
	// frac is the fraction of the buffer persisted before a write-point
	// failure (0 = nothing reaches the file).
	frac float64
}

// FaultInjector injects failures at the journal's io crash points. The
// zero value (and a nil pointer) injects nothing. Hit counts accumulate
// even for unarmed points, so tests can discover how often a scenario
// crosses each point before building a crash matrix over them.
type FaultInjector struct {
	mu     sync.Mutex
	faults map[string]*fault // guarded by mu
	hits   map[string]int    // guarded by mu
	// killed fails every subsequent operation: the process "crashed" and
	// nothing after the crash point may reach the disk.
	killed bool // guarded by mu
}

// Crash arms point to fail (completely — nothing persists) on its after-th
// upcoming hit; after=1 fails the very next hit.
func (fi *FaultInjector) Crash(point string, after int) {
	fi.CrashPartial(point, after, 0)
}

// CrashPartial arms point like Crash, but a write-point failure first
// persists frac of the buffer — a torn write straddling the crash.
func (fi *FaultInjector) CrashPartial(point string, after int, frac float64) {
	if after < 1 {
		after = 1
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.faults == nil {
		fi.faults = map[string]*fault{}
	}
	fi.faults[point] = &fault{countdown: after, frac: frac}
}

// Kill flips the kill switch: every subsequent operation at every point
// fails. Tests call it the moment an injected fault surfaces, so the
// in-memory server being torn down cannot "accidentally" persist state a
// real SIGKILL would have lost.
func (fi *FaultInjector) Kill() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.killed = true
}

// Hits returns how many times point has been crossed.
func (fi *FaultInjector) Hits(point string) int {
	if fi == nil {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.hits[point]
}

// check records one hit of point and reports whether the operation must
// fail. For write points, frac is how much of the buffer persists before
// the failure. Nil-receiver safe: production code passes no injector.
func (fi *FaultInjector) check(point string) (frac float64, err error) {
	if fi == nil {
		return 0, nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.hits == nil {
		fi.hits = map[string]int{}
	}
	fi.hits[point]++
	if fi.killed {
		return 0, fmt.Errorf("%s after kill: %w", point, ErrInjected)
	}
	f := fi.faults[point]
	if f == nil {
		return 0, nil
	}
	f.countdown--
	if f.countdown > 0 {
		return 0, nil
	}
	delete(fi.faults, point)
	return f.frac, fmt.Errorf("%s: %w", point, ErrInjected)
}
