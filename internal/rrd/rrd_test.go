package rrd

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"kairos/internal/floats"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, specs ...ArchiveSpec) *DB {
	t.Helper()
	db, err := New(t0, time.Minute, specs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	if _, err := New(t0, 0, ArchiveSpec{Average, 1, 10}); err == nil {
		t.Error("zero step should error")
	}
	if _, err := New(t0, time.Minute); err == nil {
		t.Error("no archives should error")
	}
	if _, err := New(t0, time.Minute, ArchiveSpec{Average, 0, 10}); err == nil {
		t.Error("zero steps should error")
	}
	if _, err := New(t0, time.Minute, ArchiveSpec{Average, 1, 0}); err == nil {
		t.Error("zero rows should error")
	}
	if _, err := New(t0, time.Minute, ArchiveSpec{CF(99), 1, 10}); err == nil {
		t.Error("unknown CF should error")
	}
}

func TestCFString(t *testing.T) {
	if Average.String() != "AVERAGE" || MaxCF.String() != "MAX" {
		t.Error("CF names wrong")
	}
	if CF(42).String() == "" {
		t.Error("unknown CF should still render")
	}
}

func TestBaseArchiveRoundRobin(t *testing.T) {
	db := mustNew(t, ArchiveSpec{Average, 1, 3})
	db.UpdateAll([]float64{1, 2, 3, 4, 5})
	s, err := db.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	// Ring holds the last 3 of 5 samples: 3, 4, 5.
	if s.Len() != 3 || s.Values[0] != 3 || s.Values[2] != 5 {
		t.Errorf("Fetch = %v, want [3 4 5]", s.Values)
	}
	// Oldest retained row is sample #2 (0-based) → t0+2min.
	if !s.Start.Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("start = %v, want %v", s.Start, t0.Add(2*time.Minute))
	}
	if db.Updates() != 5 {
		t.Errorf("Updates = %d, want 5", db.Updates())
	}
}

func TestAverageConsolidation(t *testing.T) {
	db := mustNew(t, ArchiveSpec{Average, 3, 10})
	db.UpdateAll([]float64{1, 2, 3, 10, 20, 30, 5}) // last sample incomplete
	s, err := db.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Values[0] != 2 || s.Values[1] != 20 {
		t.Errorf("Fetch = %v, want [2 20]", s.Values)
	}
	if s.Step != 3*time.Minute {
		t.Errorf("step = %v, want 3m", s.Step)
	}
}

func TestMaxConsolidation(t *testing.T) {
	db := mustNew(t, ArchiveSpec{MaxCF, 2, 10})
	db.UpdateAll([]float64{1, 5, 3, 2, -1, -7})
	s, err := db.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -1}
	for i, w := range want {
		if !floats.Same(s.Values[i], w) {
			t.Errorf("Fetch[%d] = %v, want %v", i, s.Values[i], w)
		}
	}
}

func TestNaNHandling(t *testing.T) {
	db := mustNew(t, ArchiveSpec{Average, 2, 10})
	nan := math.NaN()
	db.UpdateAll([]float64{nan, 4, nan, nan})
	s, err := db.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[0] != 4 {
		t.Errorf("row with one NaN should average the rest, got %v", s.Values[0])
	}
	if !math.IsNaN(s.Values[1]) {
		t.Errorf("all-NaN row should be NaN, got %v", s.Values[1])
	}
}

func TestMultipleArchives(t *testing.T) {
	db := mustNew(t,
		ArchiveSpec{Average, 1, 60},
		ArchiveSpec{Average, 5, 12},
		ArchiveSpec{MaxCF, 5, 12},
	)
	for i := 0; i < 60; i++ {
		db.Update(float64(i % 10))
	}
	if len(db.Archives()) != 3 {
		t.Fatal("expected 3 archives")
	}
	base, _ := db.Fetch(0)
	avg, _ := db.Fetch(1)
	mx, _ := db.Fetch(2)
	if base.Len() != 60 || avg.Len() != 12 || mx.Len() != 12 {
		t.Errorf("lengths = %d, %d, %d", base.Len(), avg.Len(), mx.Len())
	}
	// Each 5-sample window of 0..9 cycling: e.g. first window 0,1,2,3,4.
	if avg.Values[0] != 2 {
		t.Errorf("avg[0] = %v, want 2", avg.Values[0])
	}
	if mx.Values[0] != 4 {
		t.Errorf("max[0] = %v, want 4", mx.Values[0])
	}
	if _, err := db.Fetch(3); err == nil {
		t.Error("out-of-range Fetch should error")
	}
	if _, err := db.Fetch(-1); err == nil {
		t.Error("negative Fetch should error")
	}
}

func TestPaperStyleLayout(t *testing.T) {
	// The paper's datasets: 15-second samples for the last hour, rolled up to
	// 5-minute averages for the last day, 24-hour averages for the last year.
	db, err := New(t0, 15*time.Second,
		ArchiveSpec{Average, 1, 240},    // raw, 1 hour
		ArchiveSpec{Average, 20, 288},   // 5 min, 24 hours
		ArchiveSpec{Average, 5760, 365}, // 24 h, 1 year
	)
	if err != nil {
		t.Fatal(err)
	}
	// Two days of a diurnal signal.
	n := 2 * 24 * 60 * 4
	for i := 0; i < n; i++ {
		db.Update(50 + 50*math.Sin(2*math.Pi*float64(i)/float64(24*60*4)))
	}
	day, err := db.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	if day.Len() != 2 {
		t.Fatalf("daily rows = %d, want 2", day.Len())
	}
	// A full sine period averages to ~50.
	if math.Abs(day.Values[0]-50) > 1 {
		t.Errorf("daily average = %v, want ≈50", day.Values[0])
	}
	fiveMin, err := db.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if fiveMin.Len() != 288 {
		t.Errorf("5-min rows retained = %d, want 288 (ring capacity)", fiveMin.Len())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	db := mustNew(t,
		ArchiveSpec{Average, 1, 8},
		ArchiveSpec{MaxCF, 4, 4},
	)
	db.UpdateAll([]float64{1, 2, math.NaN(), 4, 5, 6, 7, 8, 9, 10, 11})
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step() != db.Step() || got.Updates() != db.Updates() {
		t.Error("metadata did not round-trip")
	}
	for idx := range db.archives {
		a, _ := db.Fetch(idx)
		b, _ := got.Fetch(idx)
		if a.Len() != b.Len() {
			t.Fatalf("archive %d length mismatch", idx)
		}
		for i := range a.Values {
			if !floats.Same(a.Values[i], b.Values[i]) && !(math.IsNaN(a.Values[i]) && math.IsNaN(b.Values[i])) {
				t.Errorf("archive %d row %d: %v != %v", idx, i, a.Values[i], b.Values[i])
			}
		}
		if !a.Start.Equal(b.Start) || a.Step != b.Step {
			t.Errorf("archive %d series metadata mismatch", idx)
		}
	}
	// Continuing to update the decoded DB must agree with the original.
	db.Update(12)
	got.Update(12)
	a, _ := db.Fetch(1)
	b, _ := got.Fetch(1)
	if a.Len() != b.Len() {
		t.Error("post-decode update diverged")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Read(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic should error")
	}
	var buf bytes.Buffer
	db := mustNew(t, ArchiveSpec{Average, 1, 4})
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations anywhere must error, not panic.
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d should error", cut)
		}
	}
	// Corrupt the version field.
	bad := append([]byte(nil), full...)
	bad[4] = 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version should error")
	}
}

// Property: for any data, fetching the base archive returns the most recent
// min(n, rows) values exactly.
func TestRoundRobinWindowProperty(t *testing.T) {
	f := func(raw []float64, rowsRaw uint8) bool {
		rows := int(rowsRaw%20) + 1
		db, err := New(t0, time.Second, ArchiveSpec{Average, 1, rows})
		if err != nil {
			return false
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		db.UpdateAll(vals)
		s, err := db.Fetch(0)
		if err != nil {
			return false
		}
		want := len(vals)
		if want > rows {
			want = rows
		}
		if s.Len() != want {
			return false
		}
		for i := 0; i < want; i++ {
			if !floats.Same(s.Values[i], vals[len(vals)-want+i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: codec round-trip preserves every archive bit-for-bit.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		db, err := New(t0, time.Second,
			ArchiveSpec{Average, 1, 16}, ArchiveSpec{MaxCF, 3, 8})
		if err != nil {
			return false
		}
		for _, v := range raw {
			if math.IsInf(v, 0) {
				v = 0
			}
			db.Update(v)
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		for idx := 0; idx < 2; idx++ {
			a, _ := db.Fetch(idx)
			b, _ := got.Fetch(idx)
			if a.Len() != b.Len() {
				return false
			}
			for i := range a.Values {
				av, bv := a.Values[i], b.Values[i]
				if !floats.Same(av, bv) && !(math.IsNaN(av) && math.IsNaN(bv)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFetchTimestampsAcrossWrap pins the row timestamps the drift
// detector relies on for aligning forecast and actual windows: after the
// ring wraps, the fetched series must start at the oldest *retained* row's
// interval start — not the archive's epoch — for base and consolidated
// archives alike, at every fill level around the wrap boundary.
func TestFetchTimestampsAcrossWrap(t *testing.T) {
	const rows = 4
	cases := []struct {
		name     string
		steps    int // base samples per row
		nSamples int
	}{
		{"base archive, exactly full", 1, rows},
		{"base archive, one past wrap", 1, rows + 1},
		{"base archive, mid second lap", 1, rows + 2},
		{"base archive, exactly two laps", 1, 2 * rows},
		{"base archive, many laps", 1, 5*rows + 3},
		{"consolidated, before wrap", 3, 3 * (rows - 1)},
		{"consolidated, exactly full", 3, 3 * rows},
		{"consolidated, one row past wrap", 3, 3 * (rows + 1)},
		{"consolidated, partial row in progress", 3, 3*(rows+2) + 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := mustNew(t, ArchiveSpec{Average, tc.steps, rows})
			// Sample i carries value i so every row identifies itself: an
			// AVERAGE row over [r·steps, (r+1)·steps) has mean
			// r·steps + (steps-1)/2.
			for i := 0; i < tc.nSamples; i++ {
				db.Update(float64(i))
			}
			s, err := db.Fetch(0)
			if err != nil {
				t.Fatal(err)
			}
			rowStep := time.Duration(tc.steps) * time.Minute
			if s.Step != rowStep {
				t.Fatalf("step = %v, want %v", s.Step, rowStep)
			}
			completed := tc.nSamples / tc.steps
			retained := completed
			if retained > rows {
				retained = rows
			}
			if s.Len() != retained {
				t.Fatalf("rows = %d, want %d", s.Len(), retained)
			}
			firstRow := completed - retained
			wantStart := t0.Add(time.Duration(firstRow) * rowStep)
			if !s.Start.Equal(wantStart) {
				t.Errorf("start = %v, want %v (oldest retained row %d)", s.Start, wantStart, firstRow)
			}
			for i := 0; i < retained; i++ {
				r := firstRow + i
				wantVal := float64(r*tc.steps) + float64(tc.steps-1)/2
				if !floats.Same(s.Values[i], wantVal) {
					t.Errorf("row %d value = %v, want %v", r, s.Values[i], wantVal)
				}
				wantT := t0.Add(time.Duration(r) * rowStep)
				if !s.TimeAt(i).Equal(wantT) {
					t.Errorf("row %d timestamp = %v, want %v", r, s.TimeAt(i), wantT)
				}
			}
		})
	}
}

// TestFetchWrapAlignsWithForecastWindows is the end-to-end property the
// detector depends on: two archives of the same DB (raw and consolidated)
// fetched after wrap-around describe the same wall-clock moments — a
// sample fetched from the raw ring and the consolidated row covering it
// agree on timing even when both rings have wrapped different distances.
func TestFetchWrapAlignsWithForecastWindows(t *testing.T) {
	db := mustNew(t,
		ArchiveSpec{Average, 1, 7}, // raw ring, wraps fast
		ArchiveSpec{Average, 4, 5}, // consolidated, wraps slower
	)
	n := 43 // both rings wrapped several times, consolidation row in progress
	for i := 0; i < n; i++ {
		db.Update(float64(i))
	}
	raw, err := db.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := db.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	// For every retained consolidated row, the raw samples it covers (when
	// still retained) must fall inside [row start, row start + row step).
	for ci := 0; ci < cons.Len(); ci++ {
		rowStart := cons.TimeAt(ci)
		rowEnd := rowStart.Add(cons.Step)
		for ri := 0; ri < raw.Len(); ri++ {
			ts := raw.TimeAt(ri)
			if ts.Before(rowStart) || !ts.Before(rowEnd) {
				continue
			}
			// Raw sample value v was ingested at t0 + v·step: timestamp
			// and value must agree after any number of wraps.
			wantTs := t0.Add(time.Duration(raw.Values[ri]) * time.Minute)
			if !ts.Equal(wantTs) {
				t.Errorf("raw sample %d: timestamp %v, value says %v", ri, ts, wantTs)
			}
		}
	}
	// The newest consolidated row must end no later than the newest raw
	// sample's interval end (the in-progress row is invisible).
	lastCons := cons.TimeAt(cons.Len() - 1).Add(cons.Step)
	lastRaw := raw.TimeAt(raw.Len() - 1).Add(raw.Step)
	if lastCons.After(lastRaw) {
		t.Errorf("consolidated archive ends %v, after raw %v", lastCons, lastRaw)
	}
}
