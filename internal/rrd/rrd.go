// Package rrd implements a round-robin time-series archive in the style of
// rrdtool, the format used by Cacti, Ganglia and Munin — the monitoring
// tools that produced the paper's real-world load statistics (Section 7.1).
// A database holds a fixed-size primary ring at base resolution plus any
// number of consolidated archives (RRAs) at coarser resolutions, each rolled
// up with a consolidation function (AVERAGE or MAX). Old data is overwritten
// in place, so storage is constant regardless of how long monitoring runs —
// exactly the "every 15 seconds for the last hour … every 24 hours for the
// last year" layout the paper describes.
package rrd

import (
	"errors"
	"fmt"
	"math"
	"time"

	"kairos/internal/series"
)

// CF is a consolidation function for rolling base samples into an archive.
type CF int

const (
	// Average consolidates by arithmetic mean (rrdtool AVERAGE).
	Average CF = iota
	// MaxCF consolidates by maximum (rrdtool MAX).
	MaxCF
)

// String returns the rrdtool-style name of the consolidation function.
func (c CF) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case MaxCF:
		return "MAX"
	default:
		return fmt.Sprintf("CF(%d)", int(c))
	}
}

// ArchiveSpec describes one consolidated archive: every Steps base samples
// are rolled into one archive row, and the archive retains Rows rows.
type ArchiveSpec struct {
	CF    CF
	Steps int // base samples per archive row (≥ 1)
	Rows  int // ring capacity (≥ 1)
}

// archive is one round-robin ring of consolidated data.
type archive struct {
	spec    ArchiveSpec
	ring    []float64
	head    int   // next write position
	written int64 // total rows ever written
	// accumulation state for the in-progress row
	accSeen  int // base samples seen this row, including NaN
	accCount int // non-NaN samples seen this row
	accSum   float64
	accMax   float64
}

// DB is a round-robin database: a base step, a last-update cursor, and a set
// of archives. It is not safe for concurrent use.
type DB struct {
	step     time.Duration
	start    time.Time
	nUpdates int64
	archives []*archive
}

// New creates a round-robin database with base sample interval step whose
// first sample is expected at start. Each spec adds one archive.
func New(start time.Time, step time.Duration, specs ...ArchiveSpec) (*DB, error) {
	if step <= 0 {
		return nil, errors.New("rrd: step must be positive")
	}
	if len(specs) == 0 {
		return nil, errors.New("rrd: at least one archive required")
	}
	db := &DB{step: step, start: start}
	for _, s := range specs {
		if s.Steps < 1 || s.Rows < 1 {
			return nil, fmt.Errorf("rrd: invalid archive spec %+v", s)
		}
		if s.CF != Average && s.CF != MaxCF {
			return nil, fmt.Errorf("rrd: unknown consolidation function %v", s.CF)
		}
		db.archives = append(db.archives, &archive{
			spec: s,
			ring: make([]float64, s.Rows),
		})
	}
	return db, nil
}

// Step returns the base sampling interval.
func (db *DB) Step() time.Duration { return db.step }

// Updates returns the number of base samples ingested so far.
func (db *DB) Updates() int64 { return db.nUpdates }

// Update ingests the next base sample. Samples must arrive in order; the
// i-th sample corresponds to time start + i·step. NaN samples are treated as
// "unknown" and contribute nothing to consolidation (a row consolidated
// entirely from NaN is NaN).
func (db *DB) Update(v float64) {
	db.nUpdates++
	for _, a := range db.archives {
		a.push(v)
	}
}

// UpdateAll ingests a batch of consecutive base samples.
func (db *DB) UpdateAll(vs []float64) {
	for _, v := range vs {
		db.Update(v)
	}
}

func (a *archive) push(v float64) {
	if !math.IsNaN(v) {
		if a.accCount == 0 {
			a.accMax = v
		} else if v > a.accMax {
			a.accMax = v
		}
		a.accSum += v
		a.accCount++
	}
	// A row completes every Steps base samples, counted via written rows and
	// the accumulated sample count including NaNs.
	a.accSeen++
	if a.accSeen == a.spec.Steps {
		var row float64
		switch {
		case a.accCount == 0:
			row = math.NaN()
		case a.spec.CF == Average:
			row = a.accSum / float64(a.accCount)
		default:
			row = a.accMax
		}
		a.ring[a.head] = row
		a.head = (a.head + 1) % len(a.ring)
		a.written++
		a.accSeen, a.accCount, a.accSum, a.accMax = 0, 0, 0, 0
	}
}

// Fetch returns the contents of archive idx as a time series, oldest row
// first. Only fully consolidated rows are returned; an in-progress row is
// not visible. The series start reflects the timestamp of the oldest
// retained row.
func (db *DB) Fetch(idx int) (*series.Series, error) {
	if idx < 0 || idx >= len(db.archives) {
		return nil, fmt.Errorf("rrd: archive %d out of range", idx)
	}
	a := db.archives[idx]
	rows := a.written
	if rows > int64(len(a.ring)) {
		rows = int64(len(a.ring))
	}
	out := make([]float64, rows)
	// The oldest retained row is `rows` positions behind head.
	for i := int64(0); i < rows; i++ {
		pos := (int64(a.head) - rows + i + int64(len(a.ring))*2) % int64(len(a.ring))
		out[i] = a.ring[pos]
	}
	rowStep := db.step * time.Duration(a.spec.Steps)
	// Row r covers base samples [r·Steps, (r+1)·Steps); stamp it at its
	// interval start.
	firstRow := a.written - rows
	start := db.start.Add(time.Duration(firstRow) * rowStep)
	return series.New(start, rowStep, out), nil
}

// Archives returns the archive specifications.
func (db *DB) Archives() []ArchiveSpec {
	specs := make([]ArchiveSpec, len(db.archives))
	for i, a := range db.archives {
		specs[i] = a.spec
	}
	return specs
}
