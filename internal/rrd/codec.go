package rrd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// The binary layout is little-endian:
//
//	magic "KRRD" | version u32 | startUnixNano i64 | step i64 | nUpdates i64
//	| nArchives u32 | per archive: cf u32, steps u32, rows u32, head u32,
//	written i64, accSeen u32, accCount u32, accSum f64, accMax f64,
//	ring [rows]f64
//
// NaN rows round-trip (encoded as the canonical quiet NaN bit pattern).

const (
	magic   = "KRRD"
	version = 1
)

// WriteTo serializes the database. It implements io.WriterTo.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	write := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) } //kairoslint:allow errflow: binary.Write to a bytes.Buffer cannot fail for fixed-size values
	write(uint32(version))
	write(db.start.UnixNano())
	write(int64(db.step))
	write(db.nUpdates)
	write(uint32(len(db.archives)))
	for _, a := range db.archives {
		write(uint32(a.spec.CF))
		write(uint32(a.spec.Steps))
		write(uint32(a.spec.Rows))
		write(uint32(a.head))
		write(a.written)
		write(uint32(a.accSeen))
		write(uint32(a.accCount))
		write(a.accSum)
		write(a.accMax)
		for _, v := range a.ring {
			write(math.Float64bits(v))
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Read deserializes a database previously written with WriteTo.
func Read(r io.Reader) (*DB, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("rrd: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("rrd: bad magic")
	}
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var ver uint32
	if err := read(&ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("rrd: unsupported version %d", ver)
	}
	var startNano, step, nUpdates int64
	var nArch uint32
	if err := read(&startNano); err != nil {
		return nil, err
	}
	if err := read(&step); err != nil {
		return nil, err
	}
	if err := read(&nUpdates); err != nil {
		return nil, err
	}
	if err := read(&nArch); err != nil {
		return nil, err
	}
	if nArch == 0 || nArch > 1<<16 {
		return nil, fmt.Errorf("rrd: implausible archive count %d", nArch)
	}
	db := &DB{
		step:     time.Duration(step),
		start:    time.Unix(0, startNano).UTC(),
		nUpdates: nUpdates,
	}
	for i := uint32(0); i < nArch; i++ {
		var cf, steps, rows, hd, accSeen, accCount uint32
		var written int64
		var accSum, accMax float64
		for _, v := range []any{&cf, &steps, &rows, &hd} {
			if err := read(v); err != nil {
				return nil, err
			}
		}
		if err := read(&written); err != nil {
			return nil, err
		}
		for _, v := range []any{&accSeen, &accCount} {
			if err := read(v); err != nil {
				return nil, err
			}
		}
		if err := read(&accSum); err != nil {
			return nil, err
		}
		if err := read(&accMax); err != nil {
			return nil, err
		}
		if rows == 0 || rows > 1<<24 {
			return nil, fmt.Errorf("rrd: implausible ring size %d", rows)
		}
		if hd >= rows {
			return nil, fmt.Errorf("rrd: head %d out of ring %d", hd, rows)
		}
		a := &archive{
			spec:     ArchiveSpec{CF: CF(cf), Steps: int(steps), Rows: int(rows)},
			ring:     make([]float64, rows),
			head:     int(hd),
			written:  written,
			accSeen:  int(accSeen),
			accCount: int(accCount),
			accSum:   accSum,
			accMax:   accMax,
		}
		for j := range a.ring {
			var bits uint64
			if err := read(&bits); err != nil {
				return nil, err
			}
			a.ring[j] = math.Float64frombits(bits)
		}
		db.archives = append(db.archives, a)
	}
	return db, nil
}
