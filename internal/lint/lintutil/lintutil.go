// Package lintutil holds the pieces every kairoslint analyzer and driver
// shares: the repo's annotation conventions (//kairos:hotpath,
// //kairos:locked, "guarded by <mu>" field comments), the
// //kairoslint:allow line-suppression escape hatch, and a stdlib-only
// type-checking helper built on the source importer (the repo vendors no
// third-party code, so golang.org/x/tools/go/packages is off the table).
package lintutil

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// HasMarker reports whether a comment group contains the given directive
// as a whole line, e.g. "//kairos:hotpath". Directive comments follow the
// Go convention: no space after the slashes, machine-readable, and they
// may share the group with prose lines.
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.TrimSpace(text) == marker {
			return true
		}
	}
	return false
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// GuardedBy extracts the mutex field name from the first "guarded by
// <name>" phrase found in the given comment groups (a struct field's Doc
// and trailing Comment). ok is false when no group declares a guard.
func GuardedBy(groups ...*ast.CommentGroup) (mutex string, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(g.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// allowPrefix introduces a line suppression: a comment of the form
// "//kairoslint:allow name1 name2: reason" on the same line as a
// diagnostic silences those analyzers there; a directive standing alone
// on its own line (no code before it) silences the line below, for call
// sites too long to carry a trailing comment. The reason after the
// colon is mandatory — a directive without one still suppresses (so the
// original finding is not double-reported) but is itself surfaced
// through Bad and reported by the driver as an `allow` finding.
const allowPrefix = "kairoslint:allow"

// Suppressions indexes the //kairoslint:allow comments of a package so
// the driver can drop suppressed diagnostics by (file, line).
type Suppressions struct {
	fset *token.FileSet
	// byLine maps file/line to the analyzer names allowed there.
	byLine map[suppKey]map[string]bool
	bad    []BadWaiver
}

// BadWaiver is a //kairoslint:allow directive that violates the waiver
// grammar: missing the mandatory ": <reason>" tail, or naming no
// analyzer before it.
type BadWaiver struct {
	Pos  token.Pos
	Text string
}

type suppKey struct {
	file string
	line int
}

// NewSuppressions scans the files' comments for allow directives.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byLine: map[suppKey]map[string]bool{}}
	for _, f := range files {
		codeLines := linesWithCode(fset, f)
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':' {
					continue // some other directive, e.g. kairoslint:allowfoo
				}
				nameList, reason, hasReason := strings.Cut(rest, ":")
				names := strings.Fields(nameList)
				if !hasReason || strings.TrimSpace(reason) == "" || len(names) == 0 {
					s.bad = append(s.bad, BadWaiver{Pos: c.Pos(), Text: text})
				}
				pos := fset.Position(c.Pos())
				lines := []int{pos.Line}
				if !codeLines[pos.Line] {
					// The directive stands alone on its line: it waives
					// the line below it.
					lines = append(lines, pos.Line+1)
				}
				for _, line := range lines {
					key := suppKey{file: pos.Filename, line: line}
					allowed := s.byLine[key]
					if allowed == nil {
						allowed = map[string]bool{}
						s.byLine[key] = allowed
					}
					for _, name := range names {
						allowed[name] = true
					}
				}
			}
		}
	}
	return s
}

// linesWithCode returns the set of lines on which some non-comment
// syntax node begins or ends — the lines a trailing comment can share
// with code. A comment on any other line stands alone.
func linesWithCode(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()-1).Line] = true
		return true
	})
	return lines
}

// Bad returns the malformed allow directives found in the scanned files,
// in encounter order. The driver turns each into an `allow` finding — a
// waiver without a reason is itself a violation.
func (s *Suppressions) Bad() []BadWaiver { return s.bad }

// Allowed reports whether the analyzer is suppressed on pos's line,
// either by a trailing directive there or by a standalone directive on
// the line above.
func (s *Suppressions) Allowed(pos token.Pos, analyzer string) bool {
	p := s.fset.Position(pos)
	return s.byLine[suppKey{file: p.Filename, line: p.Line}][analyzer]
}

// NewImporter returns a source-based importer sharing fset, suitable for
// type-checking module packages and their stdlib dependencies without
// compiled export data. Cgo is disabled so the pure-Go variants of net &
// friends are selected — the source importer cannot preprocess cgo files.
func NewImporter(fset *token.FileSet) types.ImporterFrom {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// TypeCheck checks one package's parsed files under the given import
// path, resolving imports through imp.
func TypeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
