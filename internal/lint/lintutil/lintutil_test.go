package lintutil

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// lineEnd returns a Pos on the given 1-based line of the single file.
func linePos(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppressionsWaiverGrammar(t *testing.T) {
	fset, files := parseSrc(t, `package p

var a = 1 //kairoslint:allow hotalloc: scratch capacity retained
var b = 2 //kairoslint:allow lockguard floatdet: two analyzers, one reason
var c = 3 //kairoslint:allow hotalloc
var d = 4 //kairoslint:allow hotalloc (old parenthesized style)
var e = 5 //kairoslint:allowother not a waiver at all
var f = 6 //kairoslint:allow : reason but no analyzer
`)
	s := NewSuppressions(fset, files)

	// Well-formed waivers suppress exactly the named analyzers.
	if !s.Allowed(linePos(fset, 3), "hotalloc") {
		t.Error("line 3: hotalloc should be allowed")
	}
	if s.Allowed(linePos(fset, 3), "lockguard") {
		t.Error("line 3: lockguard should not be allowed")
	}
	if !s.Allowed(linePos(fset, 4), "lockguard") || !s.Allowed(linePos(fset, 4), "floatdet") {
		t.Error("line 4: both named analyzers should be allowed")
	}

	// Reasonless waivers still suppress (no double report of the original
	// finding) but are recorded as bad.
	if !s.Allowed(linePos(fset, 5), "hotalloc") {
		t.Error("line 5: reasonless waiver should still suppress")
	}

	bad := s.Bad()
	if len(bad) != 3 {
		for _, bw := range bad {
			t.Logf("bad: %s %q", fset.Position(bw.Pos), bw.Text)
		}
		t.Fatalf("got %d bad waivers, want 3 (lines 5, 6, 8)", len(bad))
	}
	wantLines := []int{5, 6, 8}
	seen := map[int]bool{}
	for _, bw := range bad {
		seen[fset.Position(bw.Pos).Line] = true
	}
	for _, l := range wantLines {
		if !seen[l] {
			t.Errorf("line %d should be a bad waiver", l)
		}
	}
	if seen[7] {
		t.Error("line 7 (kairoslint:allowother) is not an allow directive")
	}
}

func TestSuppressionsStandaloneCoversNextLine(t *testing.T) {
	fset, files := parseSrc(t, `package p

//kairoslint:allow hotalloc: the call line is too long for a trailing comment
var a = 1
var b = 2 //kairoslint:allow floatdet: trailing stays line-scoped
var c = 3
`)
	s := NewSuppressions(fset, files)
	if !s.Allowed(linePos(fset, 4), "hotalloc") {
		t.Error("standalone waiver should cover the next line")
	}
	if s.Allowed(linePos(fset, 5), "hotalloc") {
		t.Error("standalone waiver should not reach two lines down")
	}
	if s.Allowed(linePos(fset, 6), "floatdet") {
		t.Error("a trailing waiver shares its line with code and stays there")
	}
	if len(s.Bad()) != 0 {
		t.Errorf("got %d bad waivers, want 0", len(s.Bad()))
	}
}

func TestSuppressionsReasonWithColon(t *testing.T) {
	fset, files := parseSrc(t, `package p

var a = 1 //kairoslint:allow hotalloc: amortized: capacity kept across calls
`)
	s := NewSuppressions(fset, files)
	if !s.Allowed(linePos(fset, 3), "hotalloc") {
		t.Error("waiver with a colon inside the reason should still parse")
	}
	if len(s.Bad()) != 0 {
		t.Errorf("got %d bad waivers, want 0", len(s.Bad()))
	}
}

func TestHasMarkerWholeLineOnly(t *testing.T) {
	fset, files := parseSrc(t, `package p

//kairos:hotpath
func hot() {}

// prose mentioning //kairos:hotpath inline
func cold() {}
`)
	_ = fset
	var hot, cold *ast.FuncDecl
	for _, d := range files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			switch fd.Name.Name {
			case "hot":
				hot = fd
			case "cold":
				cold = fd
			}
		}
	}
	if !HasMarker(hot.Doc, "kairos:hotpath") {
		t.Error("whole-line directive should match")
	}
	if HasMarker(cold.Doc, "kairos:hotpath") {
		t.Error("inline mention should not match")
	}
}

func TestGuardedBy(t *testing.T) {
	fset, files := parseSrc(t, `package p

import "sync"

type s struct {
	mu sync.Mutex
	n  int // guarded by mu
}
`)
	_ = fset
	st := files[0].Decls[1].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	var nField *ast.Field
	for _, f := range st.Fields.List {
		if len(f.Names) == 1 && f.Names[0].Name == "n" {
			nField = f
		}
	}
	mu, ok := GuardedBy(nField.Doc, nField.Comment)
	if !ok || mu != "mu" {
		t.Errorf("GuardedBy = %q, %v; want mu, true", mu, ok)
	}
	if _, ok := GuardedBy(nil); ok {
		t.Error("no comment groups should yield no guard")
	}
}

func TestSuppressionsIgnoresProse(t *testing.T) {
	fset, files := parseSrc(t, strings.Join([]string{
		"package p",
		"",
		"// The //kairoslint:allow escape hatch is documented elsewhere.",
		"var a = 1",
	}, "\n"))
	s := NewSuppressions(fset, files)
	if len(s.Bad()) != 0 {
		t.Errorf("prose mentioning the directive inside a comment should not count, got %d bad", len(s.Bad()))
	}
	if s.Allowed(linePos(fset, 3), "allow") {
		t.Error("prose line should not suppress anything")
	}
}
