package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// progOf type-checks one in-memory package into a Program.
func progOf(t *testing.T, src string) *analysis.Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	pkg, info, err := lintutil.TypeCheck(fset, lintutil.NewImporter(fset), "fix", files)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Program{
		Fset:     fset,
		Packages: []*analysis.ProgramPackage{{Path: "fix", Files: files, Pkg: pkg, TypesInfo: info}},
	}
}

// nodeNamed finds the node whose function is named name in the fixture.
func nodeNamed(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	var found *Node
	for _, n := range g.Nodes {
		if n.Func.Name() == name && n.Decl != nil {
			if found != nil {
				t.Fatalf("two declared nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no declared node named %s", name)
	}
	return found
}

// calleeNames flattens a node's edges to "name" or "Type.name" strings.
func calleeNames(edges []Edge) []string {
	var out []string
	for _, e := range edges {
		fn := e.Callee.Func
		name := fn.Name()
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			rt := recv.Type().String()
			if i := strings.LastIndexByte(rt, '.'); i >= 0 {
				rt = rt[i+1:]
			}
			name = strings.TrimPrefix(rt, "*") + "." + name
		}
		out = append(out, name)
	}
	return out
}

func TestStaticAndMethodResolution(t *testing.T) {
	g := Of(progOf(t, `package fix

type T struct{ n int }

func (t *T) Bump() { t.n++ }

func helper() {}

func caller(t *T) {
	helper()
	t.Bump()
}
`))
	caller := nodeNamed(t, g, "caller")
	names := calleeNames(caller.Out)
	if len(names) != 2 || names[0] != "helper" || names[1] != "T.Bump" {
		t.Fatalf("caller edges = %v, want [helper T.Bump]", names)
	}
	for _, e := range caller.Out {
		if e.Kind != Static {
			t.Errorf("edge to %s is %v, want Static", e.Callee.Func.Name(), e.Kind)
		}
		if e.Callee.Decl == nil {
			t.Errorf("edge to %s has no body", e.Callee.Func.Name())
		}
	}
}

func TestInterfaceFanOut(t *testing.T) {
	g := Of(progOf(t, `package fix

type Pricer interface{ Price() float64 }

type Flat struct{}

func (Flat) Price() float64 { return 1 }

type Tiered struct{}

func (*Tiered) Price() float64 { return 2 }

type Unrelated struct{}

func (Unrelated) Cost() float64 { return 3 }

func eval(p Pricer) float64 { return p.Price() }
`))
	eval := nodeNamed(t, g, "eval")
	var abstract, flat, tiered, unrelated int
	for _, e := range eval.Out {
		if e.Kind != Dynamic {
			t.Errorf("interface call produced %v edge", e.Kind)
		}
		if e.Callee.Abstract() {
			abstract++
			continue
		}
		recv := e.Callee.Func.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type().String()
		switch {
		case strings.Contains(rt, "Flat"):
			flat++
		case strings.Contains(rt, "Tiered"):
			tiered++
		case strings.Contains(rt, "Unrelated"):
			unrelated++
		}
	}
	if abstract != 1 {
		t.Errorf("got %d abstract edges, want 1", abstract)
	}
	if flat != 1 || tiered != 1 {
		t.Errorf("fan-out reached Flat=%d Tiered=%d, want 1 and 1", flat, tiered)
	}
	if unrelated != 0 {
		t.Errorf("fan-out reached Unrelated, which does not implement Pricer")
	}
}

func TestCallContextFlags(t *testing.T) {
	g := Of(progOf(t, `package fix

func work() {}

func fail(msg string) string { return msg }

func caller() {
	go work()
	defer work()
	go func() { work() }()
	func() { work() }()
	panic(fail("boom"))
}
`))
	caller := nodeNamed(t, g, "caller")
	type want struct{ g, d, p, c bool }
	wants := []want{
		{g: true}, // go work()
		{d: true}, // defer work()
		{g: true}, // work() inside go'd literal: concurrent, runs at the go
		{},        // work() inside immediately-invoked literal: runs inline
		{p: true}, // fail() inside panic argument
	}
	if len(caller.Out) != len(wants) {
		t.Fatalf("caller has %d edges (%v), want %d", len(caller.Out), calleeNames(caller.Out), len(wants))
	}
	for i, w := range wants {
		e := caller.Out[i]
		if e.Go != w.g || e.Defer != w.d || e.InPanic != w.p || e.InClosure != w.c {
			t.Errorf("edge %d (%s): go=%v defer=%v panic=%v closure=%v, want %+v",
				i, e.Callee.Func.Name(), e.Go, e.Defer, e.InPanic, e.InClosure, w)
		}
	}
}

func TestUnresolvedFuncValues(t *testing.T) {
	g := Of(progOf(t, `package fix

func caller(f func()) {
	f()
}
`))
	caller := nodeNamed(t, g, "caller")
	if len(caller.Out) != 0 || len(caller.Unresolved) != 1 {
		t.Fatalf("func-value call: %d edges, %d unresolved; want 0 and 1",
			len(caller.Out), len(caller.Unresolved))
	}
}

// TestGoInsideLoops: a go statement keeps its concurrency flag no matter
// how it is reached — directly in a loop body, or through a closure the
// loop launches.
func TestGoInsideLoops(t *testing.T) {
	g := Of(progOf(t, `package fix

func work() {}

func spawner(jobs []int) {
	for i := 0; i < len(jobs); i++ {
		go work()
	}
	for range jobs {
		go func() { work() }()
	}
}
`))
	spawner := nodeNamed(t, g, "spawner")
	if len(spawner.Out) != 2 {
		t.Fatalf("spawner has %d edges (%v), want 2", len(spawner.Out), calleeNames(spawner.Out))
	}
	for i, e := range spawner.Out {
		if !e.Go {
			t.Errorf("edge %d (%s): Go=false, want true — loop spawns are still concurrent", i, e.Callee.Func.Name())
		}
		if e.Defer || e.InPanic {
			t.Errorf("edge %d picked up spurious context flags: %+v", i, e)
		}
	}
}

// TestDeferredClosureInterior: calls inside `defer func(){...}()` carry
// Defer (they run at unwind time) but not InClosure (the literal is
// invoked at its defer site, not stored). A closure that is stored and
// deferred later is the opposite: its interior is InClosure, and the
// deferred invocation itself is unresolved.
func TestDeferredClosureInterior(t *testing.T) {
	g := Of(progOf(t, `package fix

func cleanup() {}

func work() {}

func caller() {
	defer func() {
		cleanup()
	}()
	f := func() { work() }
	defer f()
}
`))
	caller := nodeNamed(t, g, "caller")
	names := calleeNames(caller.Out)
	if len(names) != 2 || names[0] != "cleanup" || names[1] != "work" {
		t.Fatalf("caller edges = %v, want [cleanup work]", names)
	}
	if e := caller.Out[0]; !e.Defer || e.InClosure {
		t.Errorf("cleanup edge: defer=%v closure=%v, want defer inside an immediately-deferred literal", e.Defer, e.InClosure)
	}
	if e := caller.Out[1]; e.Defer || !e.InClosure {
		t.Errorf("work edge: defer=%v closure=%v, want a plain closure interior", e.Defer, e.InClosure)
	}
	if len(caller.Unresolved) != 1 {
		t.Errorf("caller has %d unresolved calls, want 1 (defer f())", len(caller.Unresolved))
	}
}

// TestMethodValues: calling through a method value is a func-value call
// the graph cannot resolve, while the same method deferred directly is a
// static edge.
func TestMethodValues(t *testing.T) {
	g := Of(progOf(t, `package fix

type T struct{}

func (T) Bump() {}

func caller(t T) {
	f := t.Bump
	f()
	go f()
	defer t.Bump()
}
`))
	caller := nodeNamed(t, g, "caller")
	names := calleeNames(caller.Out)
	if len(names) != 1 || names[0] != "T.Bump" {
		t.Fatalf("caller edges = %v, want only the direct defer t.Bump()", names)
	}
	if e := caller.Out[0]; e.Kind != Static || !e.Defer {
		t.Errorf("defer t.Bump(): kind=%v defer=%v, want a static deferred edge", e.Kind, e.Defer)
	}
	if len(caller.Unresolved) != 2 {
		t.Errorf("caller has %d unresolved calls, want 2 (f() and go f())", len(caller.Unresolved))
	}
}

func TestSummaries(t *testing.T) {
	g := Of(progOf(t, `package fix

func allocFree(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func allocates(n int) []int {
	return make([]int, n)
}

func blocks(ch chan int, done chan struct{}) int {
	ch <- 1
	v := <-ch
	for range done {
	}
	select {
	case <-done:
	}
	select {
	case <-done:
	default:
	}
	return v
}
`))
	if n := nodeNamed(t, g, "allocFree"); len(n.Allocs) != 0 || len(n.Blocking) != 0 {
		t.Errorf("allocFree summary: %d allocs %d blocking, want 0 0", len(n.Allocs), len(n.Blocking))
	}
	if n := nodeNamed(t, g, "allocates"); len(n.Allocs) != 1 {
		t.Errorf("allocates summary: %d allocs, want 1 (make)", len(n.Allocs))
	}
	n := nodeNamed(t, g, "blocks")
	var whats []string
	for _, op := range n.Blocking {
		whats = append(whats, op.What)
	}
	want := []string{"channel send", "channel receive", "range over channel", "select without default"}
	if strings.Join(whats, ",") != strings.Join(want, ",") {
		t.Errorf("blocks summary = %v, want %v", whats, want)
	}
}

func TestMemoizedOnProgram(t *testing.T) {
	prog := progOf(t, `package fix

func f() {}
`)
	if Of(prog) != Of(prog) {
		t.Error("Of should memoize the graph on the Program")
	}
}

// TestCrossUniverseIdentity: a function reached both as a loaded root
// declaration and through the source importer (a dependent unit's
// universe) resolves to ONE node that carries the declaration.
func TestCrossUniverseIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real module packages")
	}
	fset := token.NewFileSet()
	imp := lintutil.NewImporter(fset)
	prog := &analysis.Program{Fset: fset}
	for _, path := range []string{"kairos/internal/floats", "kairos/internal/polyfit"} {
		// Absolute paths, as in the real driver: the source importer
		// parses dependency files by absolute path, and cross-universe
		// identity relies on the filename strings matching.
		dir, err := filepath.Abs("../../" + strings.TrimPrefix(path, "kairos/internal/"))
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkgs {
			var files []*ast.File
			for _, f := range p.Files {
				files = append(files, f)
			}
			tpkg, info, err := lintutil.TypeCheck(fset, imp, path, files)
			if err != nil {
				t.Fatal(err)
			}
			prog.Packages = append(prog.Packages, &analysis.ProgramPackage{Path: path, Files: files, Pkg: tpkg, TypesInfo: info})
		}
	}
	g := Of(prog)
	// polyfit calls floats helpers; the callee node must be the declared
	// floats node, not an import-universe twin without its body.
	var hits int
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Pkg.Path != "kairos/internal/polyfit" {
			continue
		}
		for _, e := range n.Out {
			if e.Callee.Func.Pkg() != nil && e.Callee.Func.Pkg().Path() == "kairos/internal/floats" {
				hits++
				if e.Callee.Decl == nil {
					t.Errorf("%s: edge to %s resolved to a node without the declaration", n.ID, e.Callee.Func.Name())
				}
			}
		}
	}
	if hits == 0 {
		t.Skip("model does not call floats in this tree; cross-universe path unexercised")
	}
	t.Logf("%d cross-package edges into floats, all carrying declarations", hits)
}
