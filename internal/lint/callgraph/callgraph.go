// Package callgraph builds a type-informed call graph over a loaded
// analysis.Program — the engine under the interprocedural kairoslint
// analyzers (lockorder, hotcall, ctxflow, unitsafe).
//
// Resolution:
//
//   - Direct calls (f(x), pkg.F(x)) and method calls on concrete
//     receivers resolve through the type checker to one static edge.
//   - Method calls on interface receivers fan out conservatively: one
//     dynamic edge per method of a program-declared type that implements
//     the interface, plus one dynamic edge to the abstract interface
//     method itself (whose node has no body — unknown implementors
//     outside the program stay visibly unknown).
//   - Calls through function values (including method values) cannot be
//     resolved and are recorded on the caller as Unresolved positions.
//
// Identity is cross-universe: the driver type-checks every unit as a
// root, so the same function can surface as distinct *types.Func objects
// (once from its own unit, once re-checked by the source importer for a
// dependent unit). All units share one token.FileSet, so nodes key on
// the position string of the defining identifier, which is identical in
// every universe; position-less objects fall back to types.Func.FullName.
//
// Each node with a body carries two summaries the analyzers share: the
// allocating constructs found by allocscan, and the directly blocking
// operations (channel send/receive, range over a channel, select without
// a default). Calls inside closure bodies are attributed to the
// enclosing declared function with InClosure set; closures launched via
// go statements mark their interior edges Go, since those run
// concurrently with the caller.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"kairos/internal/lint/allocscan"
	"kairos/internal/lint/analysis"
)

// Graph is the whole-program call graph.
type Graph struct {
	Prog *analysis.Program
	// Nodes indexes every function seen as a definition or a call
	// target, keyed by Node.ID.
	Nodes map[string]*Node
}

// Node is one function or method.
type Node struct {
	// ID is the node's program-wide identity: the shared-FileSet
	// position string of the defining identifier, or the checker's
	// FullName for objects without source positions.
	ID   string
	Func *types.Func
	// Decl and Pkg are set when the body lives in a loaded package;
	// stdlib callees and abstract interface methods have neither.
	Decl *ast.FuncDecl
	Pkg  *analysis.ProgramPackage
	// Out lists the node's call sites in source order.
	Out []Edge
	// Unresolved records calls through function values, which the graph
	// cannot resolve; analyzers proving properties over callees must
	// treat them as calls to unknown code.
	Unresolved []token.Pos

	// Allocs is the allocscan summary of Decl.Body (nil without a body).
	Allocs []allocscan.Finding
	// Blocking lists the body's directly blocking operations.
	Blocking []Op
}

// Abstract reports whether the node is an interface method — a dynamic
// dispatch point rather than code.
func (n *Node) Abstract() bool {
	if n.Func == nil {
		return false
	}
	recv := n.Func.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

// EdgeKind distinguishes checker-resolved calls from conservative
// interface fan-out.
type EdgeKind int

const (
	// Static edges are fully resolved by the type checker.
	Static EdgeKind = iota
	// Dynamic edges come from interface dispatch: one per possible
	// implementor, plus one to the abstract method.
	Dynamic
)

// Edge is one call site.
type Edge struct {
	Pos    token.Pos
	Callee *Node
	Kind   EdgeKind
	// Go marks calls that run concurrently with the caller: go
	// statements, and every call inside a go'd closure.
	Go bool
	// Defer marks deferred calls and calls inside deferred closures.
	Defer bool
	// InPanic marks calls inside a panic argument — an already-cold path.
	InPanic bool
	// InClosure marks calls inside a closure body, attributed to the
	// enclosing declared function.
	InClosure bool
}

// Op is one directly blocking operation in a function body.
type Op struct {
	Pos  token.Pos
	What string
}

type memoKey struct{}

// Of returns the program's call graph, building it on first use and
// memoizing it on the Program so every analyzer shares one build.
func Of(prog *analysis.Program) *Graph {
	return prog.Memo(memoKey{}, func() any { return build(prog) }).(*Graph)
}

func build(prog *analysis.Program) *Graph {
	g := &Graph{Prog: prog, Nodes: map[string]*Node{}}
	var calls []ifaceCall
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.nodeFor(fn)
				n.Decl = fd
				n.Pkg = pkg
				// The node may have been created earlier as a callee seen
				// from an importing package's universe; rebind Func to the
				// declaring universe's object so signature-derived objects
				// (parameters, results) match n.Pkg.TypesInfo.
				n.Func = fn
				n.Allocs = allocscan.Body(pkg.TypesInfo, fd.Body)
				n.Blocking = blockingOps(pkg.TypesInfo, fd.Body)
				c := &collector{g: g, pkg: pkg, caller: n, iface: &calls}
				c.walkBody(fd.Body, flags{})
			}
		}
	}
	g.fanOut(calls)
	return g
}

// NodeOf returns the node for fn, or nil if fn was never seen.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	return g.Nodes[g.idOf(fn)]
}

func (g *Graph) idOf(fn *types.Func) string {
	if fn.Pos() != token.NoPos {
		return g.Prog.Fset.Position(fn.Pos()).String()
	}
	return fn.FullName()
}

func (g *Graph) nodeFor(fn *types.Func) *Node {
	// Generic instantiations share their origin's declaration.
	fn = fn.Origin()
	id := g.idOf(fn)
	if n, ok := g.Nodes[id]; ok {
		return n
	}
	n := &Node{ID: id, Func: fn}
	g.Nodes[id] = n
	return n
}

// flags is the syntactic context a call site inherits from its
// enclosing statements.
type flags struct {
	goCtx, deferCtx, panicCtx, closureCtx bool
}

// ifaceCall is a deferred interface-method call awaiting fan-out once
// the whole program's type set is known.
type ifaceCall struct {
	caller *Node
	pos    token.Pos
	method *types.Func // the abstract interface method
	iface  *types.Interface
	fl     flags
}

type collector struct {
	g      *Graph
	pkg    *analysis.ProgramPackage
	caller *Node
	iface  *[]ifaceCall
}

// walkBody visits n, classifying every call expression under the
// current flags.
func (c *collector) walkBody(n ast.Node, fl flags) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			c.visitCall(node.Call, flags{goCtx: true, panicCtx: fl.panicCtx, closureCtx: fl.closureCtx})
			return false
		case *ast.DeferStmt:
			c.visitCall(node.Call, flags{deferCtx: true, goCtx: fl.goCtx, panicCtx: fl.panicCtx, closureCtx: fl.closureCtx})
			return false
		case *ast.CallExpr:
			c.visitCall(node, fl)
			return false
		case *ast.FuncLit:
			next := fl
			next.closureCtx = true
			c.walkBody(node.Body, next)
			return false
		}
		return true
	})
}

// visitCall records the call's edge (when resolvable) and walks its
// operands.
func (c *collector) visitCall(call *ast.CallExpr, fl flags) {
	info := c.pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Builtins: panic marks its arguments cold; the rest are not calls
	// in the graph's sense.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			argFl := fl
			if b.Name() == "panic" {
				argFl.panicCtx = true
			}
			c.walkArgs(call, argFl)
			return
		}
	}
	// Type conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.walkArgs(call, fl)
		return
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			c.edge(call.Lparen, fn, Static, fl)
			c.walkArgs(call, fl)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if iface, ok := types.Unalias(sel.Recv()).Underlying().(*types.Interface); ok {
					*c.iface = append(*c.iface, ifaceCall{caller: c.caller, pos: call.Lparen, method: fn, iface: iface, fl: fl})
				} else {
					c.edge(call.Lparen, fn, Static, fl)
				}
				c.walkBody(fun.X, fl)
				c.walkArgs(call, fl)
				return
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// Qualified call pkg.F(x): no selection entry.
			c.edge(call.Lparen, fn, Static, fl)
			c.walkArgs(call, fl)
			return
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body runs here, inline.
		c.walkBody(fun.Body, fl)
		c.walkArgs(call, fl)
		return
	}

	// A call through a function value: unresolvable.
	c.caller.Unresolved = append(c.caller.Unresolved, call.Lparen)
	c.walkBody(call.Fun, fl)
	c.walkArgs(call, fl)
}

func (c *collector) walkArgs(call *ast.CallExpr, fl flags) {
	for _, arg := range call.Args {
		c.walkBody(arg, fl)
	}
}

func (c *collector) edge(pos token.Pos, fn *types.Func, kind EdgeKind, fl flags) {
	c.caller.Out = append(c.caller.Out, Edge{
		Pos:       pos,
		Callee:    c.g.nodeFor(fn),
		Kind:      kind,
		Go:        fl.goCtx,
		Defer:     fl.deferCtx,
		InPanic:   fl.panicCtx,
		InClosure: fl.closureCtx,
	})
}

// fanOut resolves the deferred interface calls against every named type
// declared anywhere in the program.
func (g *Graph) fanOut(calls []ifaceCall) {
	if len(calls) == 0 {
		return
	}
	named := g.programTypes()
	for _, ic := range calls {
		// The abstract method edge keeps unknown implementors visible.
		ic.caller.Out = append(ic.caller.Out, Edge{
			Pos:       ic.pos,
			Callee:    g.nodeFor(ic.method),
			Kind:      Dynamic,
			Go:        ic.fl.goCtx,
			Defer:     ic.fl.deferCtx,
			InPanic:   ic.fl.panicCtx,
			InClosure: ic.fl.closureCtx,
		})
		for _, t := range named {
			ptr := types.NewPointer(t)
			var recv types.Type
			switch {
			case types.Implements(t, ic.iface):
				recv = t
			case types.Implements(ptr, ic.iface):
				recv = ptr
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, ic.method.Pkg(), ic.method.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			ic.caller.Out = append(ic.caller.Out, Edge{
				Pos:       ic.pos,
				Callee:    g.nodeFor(fn),
				Kind:      Dynamic,
				Go:        ic.fl.goCtx,
				Defer:     ic.fl.deferCtx,
				InPanic:   ic.fl.panicCtx,
				InClosure: ic.fl.closureCtx,
			})
		}
	}
}

// programTypes returns every named non-interface type declared in a
// loaded package, deduplicated across type-check universes by position.
func (g *Graph) programTypes() []types.Type {
	seen := map[string]bool{}
	var out []types.Type
	for _, pkg := range g.Prog.Packages {
		for _, obj := range pkg.TypesInfo.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() || tn.Pos() == token.NoPos {
				continue
			}
			nt, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(nt) {
				continue
			}
			id := g.Prog.Fset.Position(tn.Pos()).String()
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, nt)
		}
	}
	// Deterministic fan-out order regardless of map iteration.
	sort.Slice(out, func(i, j int) bool {
		a := out[i].(*types.Named).Obj()
		b := out[j].(*types.Named).Obj()
		pa := g.Prog.Fset.Position(a.Pos()).String()
		pb := g.Prog.Fset.Position(b.Pos()).String()
		return pa < pb
	})
	return out
}

// blockingOps collects the body's directly blocking operations,
// skipping closure interiors (a closure blocks whoever runs it, not
// necessarily this body) and the branches of selects that have a
// default case (those attempts are non-blocking by construction).
func blockingOps(info *types.Info, body ast.Node) []Op {
	var out []Op
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			out = append(out, Op{Pos: n.Arrow, What: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, Op{Pos: n.OpPos, What: "channel receive"})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					out = append(out, Op{Pos: n.For, What: "range over channel"})
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				out = append(out, Op{Pos: n.Select, What: "select without default"})
			}
			return false
		}
		return true
	})
	return out
}
