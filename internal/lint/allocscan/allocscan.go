// Package allocscan detects allocating constructs in a function body —
// the detection engine shared by the hotalloc analyzer (which applies it
// to //kairos:hotpath functions directly) and the hotcall analyzer
// (which uses it to prove unannotated callees alloc-free over the call
// graph). The construct list is hotalloc's contract; see that package's
// doc comment for the rationale behind each entry.
package allocscan

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one allocating construct at a position.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Body returns every allocating construct in body, in walk order. panic
// calls and their arguments are exempt: a panicking path is already
// cold. Closure bodies are NOT descended into — the closure allocation
// itself is the finding, and when it runs is not this body's concern.
func Body(info *types.Info, body ast.Node) []Finding {
	var out []Finding
	report := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: pos, Message: msg})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(n)).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates in hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address-of composite literal allocates in hot path")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure allocates in hot path")
			return false // its body only runs if the closure survives; one report suffices
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates in hot path")
		case *ast.CallExpr:
			return checkCall(info, n, report)
		}
		return true
	})
	return out
}

// checkCall reports allocation by one call; the return value tells the
// walk whether to descend into the call's children.
func checkCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) bool {
	// Conversions: T(x) boxing a concrete value into an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isIface(tv.Type) && !isIface(info.TypeOf(call.Args[0])) {
			report(call.Pos(), "conversion to interface allocates in hot path")
		}
		return true
	}
	// Builtins.
	if name, ok := builtinName(info, call.Fun); ok {
		switch name {
		case "make":
			report(call.Pos(), "make allocates in hot path")
		case "new":
			report(call.Pos(), "new allocates in hot path")
		case "append":
			report(call.Pos(), "append may grow its backing array in hot path")
		case "panic":
			// Cold by definition: the guard-clause panics in the pricers
			// pay their fmt.Sprintf only on the failure path.
			return false
		}
		return true
	}
	sig, ok := types.Unalias(info.TypeOf(call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return true
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				param = sig.Params().At(np - 1).Type() // xs... passes the slice through
			} else {
				param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		argType := info.TypeOf(arg)
		if isIface(param) && !isIface(argType) && !isUntypedNil(argType) {
			report(arg.Pos(), "implicit conversion to interface allocates in hot path")
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		report(call.Pos(), "variadic call allocates its argument slice in hot path")
	}
	return true
}

// builtinName resolves fun to a builtin's name when it is one.
func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

func isIface(t types.Type) bool {
	return t != nil && types.IsInterface(types.Unalias(t))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
