// Package lockorderfix exercises lockorder: acquisition-order cycles
// (direct and through callees), self-deadlocks, blocking operations
// under annotated mutexes, the go-statement and unlock-first
// exemptions, and the //kairoslint:allow escape hatch.
package lockorderfix

import "sync"

type A struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type B struct {
	mu sync.Mutex
	m  int // guarded by mu
}

// ab and ba acquire the two locks in opposite orders: every edge of the
// cycle is a potential deadlock.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock-order cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

// again re-acquires a lock it already holds.
func again(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want "already held"
}

// sendWhileLocked blocks on a channel under the lock.
func sendWhileLocked(a *A, ch chan int) {
	a.mu.Lock()
	ch <- a.n // want "channel send while holding"
	a.mu.Unlock()
}

// sendAfterUnlock releases first: silent.
func sendAfterUnlock(a *A, ch chan int) {
	a.mu.Lock()
	n := a.n
	a.mu.Unlock()
	ch <- n
}

// waitWhileLocked reaches the known-blocking stdlib surface.
func waitWhileLocked(a *A, wg *sync.WaitGroup) {
	a.mu.Lock()
	defer a.mu.Unlock()
	wg.Wait() // want "may block"
}

func blocksInside(ch chan int) int {
	return <-ch
}

// callBlocker reaches a channel receive through a callee.
func callBlocker(a *A, ch chan int) {
	a.mu.Lock()
	blocksInside(ch) // want "may block"
	a.mu.Unlock()
}

// goIsFine launches the blocking callee concurrently: it does not run
// nested under the lock.
func goIsFine(a *A, ch chan int) {
	a.mu.Lock()
	go blocksInside(ch)
	a.mu.Unlock()
}

// bumpLocked runs with the receiver's lock held by convention, so its
// send blocks under A.mu.
//
//kairos:locked
func (a *A) bumpLocked(ch chan int) {
	ch <- a.n // want "channel send while holding"
}

// waived documents why its send is safe.
func waived(a *A, ch chan int) {
	a.mu.Lock()
	ch <- 1 //kairoslint:allow lockorder: the channel is buffered and drained by construction
	a.mu.Unlock()
}
