package lockorderfix

import "sync"

type C struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type D struct {
	mu sync.Mutex
	m  int // guarded by mu
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// cd and dc order C and D inconsistently through callees: the cycle is
// only visible interprocedurally.
func cd(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want "lock-order cycle"
	c.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	lockC(c) // want "lock-order cycle"
	d.mu.Unlock()
}

type E struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type F struct {
	mu sync.Mutex
	m  int // guarded by mu
}

// ef is a consistent one-way ordering: silent.
func ef(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}
