// Package lockorder checks the repo's lock-ordering and
// hold-while-blocking contracts over the whole-program call graph.
//
// The lock universe is the set of annotated mutexes: sync.Mutex or
// sync.RWMutex struct fields that at least one sibling field declares
// itself "guarded by" (the same annotation lockguard enforces). For the
// repo today that is Server.mu, Fleet.mu, AutoReconsolidator.mu, and the
// server metrics mutex.
//
// For every function body the analyzer runs a source-order held-set
// scan: x.mu.Lock()/RLock() opens a held interval, x.mu.Unlock()/RUnlock()
// closes it, and defer x.mu.Unlock() holds it to the end of the body.
// Methods that run with their receiver's lock already held — the
// "Locked" name suffix or //kairos:locked directive, lockguard's
// convention — start with that lock held. Within a held interval the
// analyzer reports:
//
//   - a re-acquisition of the held lock (self-deadlock: the repo's
//     mutexes are not reentrant);
//   - any acquisition edge L → M that participates in a cycle of the
//     program-wide acquisition-order graph, where M may be acquired
//     directly or transitively through any statically-reachable callee
//     (go statements and panic arguments excluded: those do not run
//     nested under the lock);
//   - a blocking operation — channel send/receive, range over a
//     channel, select without default — or a call that transitively
//     reaches one, including the known-blocking stdlib surface
//     (sync.WaitGroup.Wait, sync.Cond.Wait, and the blocking net/http
//     entry points).
//
// Calls through function values are NOT treated as acquiring or
// blocking (the graph cannot resolve them); interface calls use the
// conservative fan-out, so a possible implementor that blocks taints
// the call site.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/callgraph"
	"kairos/internal/lint/lintutil"
)

// Marker mirrors lockguard's directive for methods that run with the
// receiver's lock held.
const Marker = "kairos:locked"

var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "reports lock-order cycles and blocking operations reached under annotated mutexes",
	RunProgram: run,
}

// lockID is a program-wide lock identity: the position string of the
// declaring type name plus the mutex field name.
type lockID string

// lock is one annotated mutex.
type lock struct {
	id      lockID
	display string // pkg.Type.field, for messages
}

// orderEdge is one observed acquisition order: to was acquired (possibly
// through calls) while from was held.
type orderEdge struct {
	from, to lockID
	pos      token.Pos
	via      string // "" for direct acquisition, else the callee's name
}

type checker struct {
	prog  *analysis.Program
	graph *callgraph.Graph
	// locks indexes annotated mutexes by (type position, field name).
	locks map[lockID]*lock
	// typeLocks lists the annotated mutexes of each struct type, by the
	// type name's position string.
	typeLocks map[string][]*lock
	// acquires and blocks are per-node transitive summaries.
	acquires map[*callgraph.Node]map[lockID]bool
	blocks   map[*callgraph.Node]string // "" when the node cannot block
	edges    []orderEdge
}

func run(prog *analysis.Program) error {
	c := &checker{
		prog:      prog,
		graph:     callgraph.Of(prog),
		locks:     map[lockID]*lock{},
		typeLocks: map[string][]*lock{},
		acquires:  map[*callgraph.Node]map[lockID]bool{},
		blocks:    map[*callgraph.Node]string{},
	}
	c.collectLocks()
	if len(c.locks) == 0 {
		return nil
	}
	nodes := c.declaredNodes()
	for _, n := range nodes {
		c.summarize(n, nil)
	}
	for _, n := range nodes {
		c.scanBody(n)
	}
	c.reportCycles()
	return nil
}

// declaredNodes returns the graph's nodes with bodies in deterministic
// (package, position) order.
func (c *checker) declaredNodes() []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range c.graph.Nodes {
		if n.Decl != nil {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// collectLocks builds the annotated-mutex universe from every struct
// type declaration in the program.
func (c *checker) collectLocks() {
	for _, pkg := range c.prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					c.collectStructLocks(pkg, ts, st)
				}
			}
		}
	}
}

func (c *checker) collectStructLocks(pkg *analysis.ProgramPackage, ts *ast.TypeSpec, st *ast.StructType) {
	tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	// Mutex fields referenced by at least one sibling guarded-by comment.
	wanted := map[string]bool{}
	for _, field := range st.Fields.List {
		if mu, ok := lintutil.GuardedBy(field.Doc, field.Comment); ok {
			wanted[mu] = true
		}
	}
	if len(wanted) == 0 {
		return
	}
	typePos := c.prog.Fset.Position(tn.Pos()).String()
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !wanted[name.Name] || !isMutex(pkg.TypesInfo.TypeOf(field.Type)) {
				continue
			}
			l := &lock{
				id:      lockID(typePos + "#" + name.Name),
				display: fmt.Sprintf("%s.%s.%s", tn.Pkg().Name(), tn.Name(), name.Name),
			}
			if _, dup := c.locks[l.id]; dup {
				continue
			}
			c.locks[l.id] = l
			c.typeLocks[typePos] = append(c.typeLocks[typePos], l)
		}
	}
}

// isMutex accepts sync.Mutex, sync.RWMutex and pointers to them.
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockOp classifies one mutex method call inside a body.
type lockOp struct {
	l       *lock
	pos     token.Pos
	acquire bool
	deferrd bool
}

// opsOf extracts the body's annotated-mutex operations in source order,
// skipping closure interiors and go statements (their effects are not
// nested under this body's locks).
func (c *checker) opsOf(n *callgraph.Node) []lockOp {
	var out []lockOp
	info := n.Pkg.TypesInfo
	var walk func(ast.Node, bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.DeferStmt:
				walk(node.Call, true)
				return false
			case *ast.CallExpr:
				if op, ok := c.asLockOp(info, node); ok {
					op.deferrd = deferred
					out = append(out, *op)
				}
			}
			return true
		})
	}
	walk(n.Decl.Body, false)
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// asLockOp matches x.f.Lock()/RLock()/Unlock()/RUnlock() where (type of
// x, f) is an annotated mutex.
func (c *checker) asLockOp(info *types.Info, call *ast.CallExpr) (*lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return nil, false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	l := c.lockOf(info, muSel)
	if l == nil {
		return nil, false
	}
	return &lockOp{l: l, pos: call.Pos(), acquire: acquire}, true
}

// lockOf resolves base.field to an annotated mutex, or nil.
func (c *checker) lockOf(info *types.Info, muSel *ast.SelectorExpr) *lock {
	base := info.TypeOf(muSel.X)
	if base == nil {
		return nil
	}
	base = types.Unalias(base)
	if p, ok := base.(*types.Pointer); ok {
		base = types.Unalias(p.Elem())
	}
	named, ok := base.(*types.Named)
	if !ok || named.Obj().Pos() == token.NoPos {
		return nil
	}
	typePos := c.prog.Fset.Position(named.Obj().Pos()).String()
	return c.locks[lockID(typePos+"#"+muSel.Sel.Name)]
}

// entryHeld returns the locks a function holds on entry per lockguard's
// convention: the receiver's annotated mutexes, for methods with the
// Locked suffix or the //kairos:locked directive.
func (c *checker) entryHeld(n *callgraph.Node) []*lock {
	if !strings.HasSuffix(n.Func.Name(), "Locked") && !lintutil.HasMarker(n.Decl.Doc, Marker) {
		return nil
	}
	recv := n.Func.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := types.Unalias(recv.Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pos() == token.NoPos {
		return nil
	}
	return c.typeLocks[c.prog.Fset.Position(named.Obj().Pos()).String()]
}

// summarize computes the node's transitive may-acquire set and blocking
// witness, optimistically treating in-progress nodes (recursion) as
// empty — the fixpoint converges because sets only grow along the DFS.
func (c *checker) summarize(n *callgraph.Node, stack map[*callgraph.Node]bool) (map[lockID]bool, string) {
	if acq, done := c.acquires[n]; done {
		return acq, c.blocks[n]
	}
	if stack[n] {
		return nil, ""
	}
	if stack == nil {
		stack = map[*callgraph.Node]bool{}
	}
	stack[n] = true
	defer delete(stack, n)

	acq := map[lockID]bool{}
	block := ""
	if n.Decl != nil {
		for _, op := range c.opsOf(n) {
			if op.acquire {
				acq[op.l.id] = true
			}
		}
		if len(n.Blocking) > 0 {
			block = fmt.Sprintf("%s at %s", n.Blocking[0].What, c.prog.Fset.Position(n.Blocking[0].Pos))
		}
	} else if w := knownBlocking(n.Func); w != "" {
		block = w
	}
	for _, e := range n.Out {
		if e.Go || e.InPanic {
			continue
		}
		subAcq, subBlock := c.summarize(e.Callee, stack)
		for id := range subAcq {
			acq[id] = true
		}
		if block == "" && subBlock != "" {
			block = fmt.Sprintf("%s, via %s", subBlock, e.Callee.Func.Name())
		}
	}
	c.acquires[n] = acq
	c.blocks[n] = block
	return acq, block
}

// knownBlocking reports why a body-less callee is considered blocking.
func knownBlocking(fn *types.Func) string {
	full := fn.FullName()
	switch full {
	case "(*sync.WaitGroup).Wait", "(*sync.Cond).Wait":
		return full
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		switch fn.Name() {
		case "Do", "Get", "Post", "Head", "PostForm",
			"ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
			return full
		}
	}
	return ""
}

// scanBody runs the held-interval scan over one function.
func (c *checker) scanBody(n *callgraph.Node) {
	type interval struct {
		l          *lock
		start, end token.Pos
	}
	var held []*interval
	open := map[lockID]*interval{}
	bodyEnd := n.Decl.Body.End()

	for _, l := range c.entryHeld(n) {
		iv := &interval{l: l, start: n.Decl.Body.Pos(), end: bodyEnd}
		held = append(held, iv)
		open[l.id] = iv
	}
	for _, op := range c.opsOf(n) {
		switch {
		case op.acquire:
			if prev, isOpen := open[op.l.id]; isOpen && prev.end == bodyEnd && prev.start <= op.pos {
				c.prog.Reportf(op.pos, "%s is already held here — re-acquiring it self-deadlocks", op.l.display)
				continue
			}
			iv := &interval{l: op.l, start: op.pos, end: bodyEnd}
			held = append(held, iv)
			open[op.l.id] = iv
		case op.deferrd:
			// defer mu.Unlock(): held to the end of the body; the open
			// interval already says so.
		default:
			if iv, isOpen := open[op.l.id]; isOpen && iv.end == bodyEnd {
				iv.end = op.pos
				delete(open, op.l.id)
			}
		}
	}

	heldAt := func(pos token.Pos) []*interval {
		var out []*interval
		for _, iv := range held {
			if iv.start < pos && pos < iv.end {
				out = append(out, iv)
			}
		}
		return out
	}

	// Direct acquisitions while another lock is held → order edges.
	for _, op := range c.opsOf(n) {
		if !op.acquire {
			continue
		}
		for _, iv := range heldAt(op.pos) {
			if iv.l.id != op.l.id {
				c.edges = append(c.edges, orderEdge{from: iv.l.id, to: op.l.id, pos: op.pos})
			}
		}
	}
	// Blocking operations while any lock is held.
	for _, b := range n.Blocking {
		for _, iv := range heldAt(b.Pos) {
			c.prog.Reportf(b.Pos, "%s while holding %s — a blocked %s stalls every contender",
				b.What, iv.l.display, iv.l.display)
			break
		}
	}
	// Calls while held: transitive acquisition order and blocking.
	for _, e := range n.Out {
		if e.Go || e.InPanic || e.InClosure || e.Defer {
			continue
		}
		ivs := heldAt(e.Pos)
		if len(ivs) == 0 {
			continue
		}
		subAcq := c.acquires[e.Callee]
		for _, iv := range ivs {
			for id := range subAcq {
				if id != iv.l.id {
					c.edges = append(c.edges, orderEdge{from: iv.l.id, to: id, pos: e.Pos, via: e.Callee.Func.Name()})
				} else {
					c.prog.Reportf(e.Pos, "call to %s may re-acquire %s, which is held here",
						e.Callee.Func.Name(), iv.l.display)
				}
			}
			if w := c.blocks[e.Callee]; w != "" {
				c.prog.Reportf(e.Pos, "call to %s may block (%s) while holding %s",
					e.Callee.Func.Name(), w, iv.l.display)
			}
		}
	}
}

// reportCycles finds cycles in the acquisition-order graph and reports
// every edge on one.
func (c *checker) reportCycles() {
	succ := map[lockID]map[lockID]bool{}
	for _, e := range c.edges {
		if succ[e.from] == nil {
			succ[e.from] = map[lockID]bool{}
		}
		succ[e.from][e.to] = true
	}
	reaches := func(from, to lockID) bool {
		seen := map[lockID]bool{}
		var dfs func(lockID) bool
		dfs = func(cur lockID) bool {
			if cur == to {
				return true
			}
			if seen[cur] {
				return false
			}
			seen[cur] = true
			for next := range succ[cur] {
				if dfs(next) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}
	reported := map[string]bool{}
	sorted := append([]orderEdge{}, c.edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
	for _, e := range sorted {
		if !reaches(e.to, e.from) {
			continue
		}
		key := fmt.Sprintf("%s→%s@%d", e.from, e.to, e.pos)
		if reported[key] {
			continue
		}
		reported[key] = true
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via %s)", e.via)
		}
		c.prog.Reportf(e.pos, "lock-order cycle: %s acquired while holding %s%s, but the reverse order also occurs — potential deadlock",
			c.locks[e.to].display, c.locks[e.from].display, via)
	}
}
