package lockorder_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorderfix")
}
