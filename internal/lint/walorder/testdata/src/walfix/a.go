// Package walfix exercises walorder: the RecordWire replay/journal
// coverage rules and the append-before-ack dominance rule.
package walfix

type RegisterRecord struct{ ID string }

type WindowRecord struct{ ID string }

// OrphanRecord is journaled by a live path but has no replay case.
type OrphanRecord struct{ ID string }

// GhostRecord has a replay case but no live path ever constructs it.
type GhostRecord struct{ ID string }

type RecordWire struct {
	Register *RegisterRecord
	Window   *WindowRecord
	Orphan   *OrphanRecord // want "no replay case"
	Ghost    *GhostRecord  // want "never journaled"
	Seq      int           // non-pointer: not a mutation kind
}

type server struct {
	log []RecordWire
}

func (s *server) appendRecord(rec *RecordWire) error {
	s.log = append(s.log, *rec)
	return nil
}

// ack publishes a mutation result to the client.
//
//kairos:ack
func ack(v any) {}

// replay covers Register, Window and Ghost — Orphan is missing.
func (s *server) replay(rw RecordWire) {
	switch {
	case rw.Register != nil:
	case rw.Window != nil:
	case rw.Ghost != nil:
	}
}

// good journals before acking on every path: the append dominates.
func (s *server) good(id string) {
	if err := s.appendRecord(&RecordWire{Register: &RegisterRecord{ID: id}}); err != nil {
		return
	}
	ack(id)
}

// bad acks first: a crash between ack and append loses the mutation.
func (s *server) bad(id string) {
	ack(id) // want "no prior appendRecord"
	_ = s.appendRecord(&RecordWire{Window: &WindowRecord{ID: id}})
}

// badBranch journals on one branch only; the fall-through path acks an
// unjournaled mutation.
func (s *server) badBranch(id string, cond bool) {
	if cond {
		_ = s.appendRecord(&RecordWire{Window: &WindowRecord{ID: id}})
	}
	ack(id) // want "no prior appendRecord"
}

// orphan journals the record that rule 1 flags at its field declaration;
// the ordering here is fine.
func (s *server) orphan(id string) {
	if err := s.appendRecord(&RecordWire{Orphan: &OrphanRecord{ID: id}}); err != nil {
		return
	}
	ack(id)
}

// readOnly never journals: read paths are exempt from the ordering rule.
func readOnly(id string) {
	ack(id)
}

// hooked journals inside a closure: closure interiors are out of CFG
// scope, so neither the append nor anything else here is checked.
func (s *server) hooked(id string) func() error {
	return func() error {
		return s.appendRecord(&RecordWire{Register: &RegisterRecord{ID: id}})
	}
}

// waived acks first deliberately, with a reasoned waiver.
func (s *server) waived(id string) {
	ack(id) //kairoslint:allow walorder: fixture proving the waiver grammar silences the ordering rule
	_ = s.appendRecord(&RecordWire{Register: &RegisterRecord{ID: id}})
}
