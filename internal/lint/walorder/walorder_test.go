package walorder_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/walorder"
)

func TestWalorder(t *testing.T) {
	analysistest.Run(t, "testdata", walorder.Analyzer, "walfix")
}
