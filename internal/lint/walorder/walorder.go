// Package walorder mechanizes the control plane's WAL mutation
// contract, which CONTRIBUTING.md states and PR reviews used to enforce
// by eye: every control-plane mutation needs (1) a RecordWire field,
// (2) a journal append at its live mutation site that happens BEFORE
// the client-visible acknowledgement, and (3) a replay case in
// recovery.go. The analyzer proves all three statically:
//
//   - Replay coverage: every pointer field of the RecordWire struct
//     must appear in a `case rw.<Field> != nil:` clause of some switch
//     in a non-test file. A field with no replay case is a mutation
//     recovery silently drops.
//   - Journal coverage: every pointer field must be set by some
//     RecordWire composite literal in a non-test file — the append
//     sites. A field no live path constructs is a replay case that can
//     never fire.
//   - Append-before-ack ordering: inside any function that calls
//     appendRecord, every call to an ack/publish function (one whose
//     doc comment carries the //kairos:ack marker) must be dominated by
//     an appendRecord call on the function's control-flow graph. If
//     some path acks without journaling first, a crash after the ack
//     loses a mutation the client saw succeed.
//
// Functions with no appendRecord call are exempt from the ordering
// rule: replay itself, read-only handlers, and error-path helpers like
// writeErr ack things that were never mutations. Closure interiors are
// out of CFG scope and are skipped (the advance hook journals inside a
// closure and publishes nothing itself).
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/dataflow"
	"kairos/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:       "walorder",
	Doc:        "enforces the WAL contract: journal append before ack, and a replay case per RecordWire field",
	RunProgram: run,
}

// recordTypeName is the wire struct the journal marshals; one pointer
// field per mutation kind.
const recordTypeName = "RecordWire"

// appendFuncName is the journaling entry point every mutation calls.
const appendFuncName = "appendRecord"

// ackMarker marks a function whose call makes a mutation
// client-visible: HTTP acks, plan publishes.
const ackMarker = "kairos:ack"

func run(prog *analysis.Program) error {
	fields := recordFields(prog)
	if len(fields) > 0 {
		replayed, journaled := fieldCoverage(prog)
		for _, f := range fields {
			if !replayed[f.Name()] {
				prog.Reportf(f.Pos(), "RecordWire field %s has no replay case (case rw.%s != nil) — recovery drops this mutation", f.Name(), f.Name())
			}
			if !journaled[f.Name()] && !journaled["*"] {
				prog.Reportf(f.Pos(), "RecordWire field %s is never journaled: no live composite literal sets it", f.Name())
			}
		}
	}
	checkOrdering(prog)
	return nil
}

// recordFields returns the pointer fields of the program's RecordWire
// struct, deduplicated across type-check universes by position and
// sorted by position for deterministic reports.
func recordFields(prog *analysis.Program) []*types.Var {
	seen := map[string]bool{}
	var out []*types.Var
	for _, pkg := range prog.Packages {
		for _, obj := range pkg.TypesInfo.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.Name() != recordTypeName {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if _, ok := f.Type().Underlying().(*types.Pointer); !ok {
					continue
				}
				id := prog.Fset.Position(f.Pos()).String()
				if seen[id] {
					continue
				}
				seen[id] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// fieldCoverage scans every non-test file for the two syntactic shapes
// the contract requires: replay switch cases (`case rw.F != nil:`) and
// journaling composite literals (`RecordWire{F: ...}`). A positional
// (keyless) literal conservatively covers every field.
func fieldCoverage(prog *analysis.Program) (replayed, journaled map[string]bool) {
	replayed, journaled = map[string]bool{}, map[string]bool{}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			if isTestFile(prog.Fset, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CaseClause:
					for _, expr := range n.List {
						if f := nilCheckedField(info, expr); f != "" {
							replayed[f] = true
						}
					}
				case *ast.CompositeLit:
					if !isRecordType(info.TypeOf(n)) {
						return true
					}
					if len(n.Elts) > 0 {
						if _, ok := n.Elts[0].(*ast.KeyValueExpr); !ok {
							// Positional literal: every field is set.
							journaled["*"] = true
							return true
						}
					}
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok {
								journaled[key.Name] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return replayed, journaled
}

// nilCheckedField matches `rw.F != nil` (either operand order) where rw
// has type RecordWire or *RecordWire, returning F or "".
func nilCheckedField(info *types.Info, expr ast.Expr) string {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return ""
	}
	sel, other := bin.X, bin.Y
	if !isNil(info, other) {
		sel, other = bin.Y, bin.X
		if !isNil(info, other) {
			return ""
		}
	}
	se, ok := ast.Unparen(sel).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !isRecordType(info.TypeOf(se.X)) {
		return ""
	}
	return se.Sel.Name
}

func isNil(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	return ok && tv.IsNil()
}

// isRecordType reports whether t is RecordWire or a pointer to it.
func isRecordType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == recordTypeName
}

// checkOrdering proves append-before-ack per function: in every
// non-test function whose body calls appendRecord, each call to an
// ack-marked function must be dominated by one of the appendRecord
// calls.
func checkOrdering(prog *analysis.Program) {
	acked := ackFuncs(prog)
	type site struct {
		pos  token.Pos
		name string
	}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			if isTestFile(prog.Fset, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var appends []*ast.CallExpr
				var acks []site
				var ackCalls []*ast.CallExpr
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeOf(info, call)
					if fn == nil {
						return true
					}
					switch {
					case fn.Name() == appendFuncName:
						appends = append(appends, call)
					case acked[prog.Fset.Position(fn.Pos()).String()]:
						acks = append(acks, site{pos: call.Pos(), name: fn.Name()})
						ackCalls = append(ackCalls, call)
					}
					return true
				})
				if len(appends) == 0 || len(acks) == 0 {
					continue
				}
				cfg := dataflow.New(fd.Body)
				for i, ack := range ackCalls {
					if cfg.BlockOf(ack) == nil {
						continue // inside a closure: out of CFG scope
					}
					dominated := false
					for _, ap := range appends {
						if cfg.BlockOf(ap) != nil && cfg.Dominates(ap, ack) {
							dominated = true
							break
						}
					}
					if !dominated {
						prog.Reportf(acks[i].pos, "%s acks a mutation on a path with no prior appendRecord — journal before acking (//kairos:ack contract)", acks[i].name)
					}
				}
			}
		}
	}
}

// ackFuncs indexes every function whose doc carries //kairos:ack, by
// the position string of its defining identifier (the same
// cross-universe identity the call graph uses).
func ackFuncs(prog *analysis.Program) map[string]bool {
	out := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !lintutil.HasMarker(fd.Doc, ackMarker) {
					continue
				}
				out[prog.Fset.Position(fd.Name.Pos()).String()] = true
			}
		}
	}
	return out
}

// calleeOf resolves a call to its *types.Func, or nil for function
// values, builtins and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}
