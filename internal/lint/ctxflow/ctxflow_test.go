package ctxflow_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxfix", "ctxmain")
}
