// Command ctxmain exercises ctxflow's main-package rules: an entry
// point may create the root context, but a function that already has a
// ctx parameter must still thread it.
package main

import "context"

func run(ctx context.Context) error { return ctx.Err() }

func main() {
	// Entry points own the root: silent.
	_ = run(context.Background())
}

// helper has a ctx and discards it — a bug even in package main.
func helper(ctx context.Context) error {
	_ = ctx.Err()
	return run(context.Background()) // want "discards the function's ctx parameter"
}
