// Package ctxfix exercises ctxflow: re-rooting in library code,
// discarding a ctx parameter, dropping the thread entirely, the proper
// threading patterns that stay silent, and the waiver escape hatch.
package ctxfix

import "context"

func acceptor(ctx context.Context) error { return ctx.Err() }

// libraryRoot re-roots in library code: the caller's cancellation can
// never reach acceptor.
func libraryRoot() error {
	return acceptor(context.Background()) // want "library code"
}

// discards has a ctx parameter but hands the callee a fresh root.
func discards(ctx context.Context) error {
	_ = ctx.Err()
	return acceptor(context.TODO()) // want "discards the function's ctx parameter"
}

// threads passes its ctx straight through: silent.
func threads(ctx context.Context) error {
	return acceptor(ctx)
}

// derived threads a context derived from its parameter: silent.
func derived(ctx context.Context) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return acceptor(c)
}

// dropped never touches its ctx although its callee accepts one.
func dropped(ctx context.Context) error { // want "thread is dropped"
	return acceptor(context.TODO()) // want "discards the function's ctx parameter"
}

// waivedRoot is a deliberate root with its reason on record.
func waivedRoot() error {
	return acceptor(context.Background()) //kairoslint:allow ctxflow: deliberate session root for the fixture
}

// noCtxCallees uses no context at all: silent.
func noCtxCallees(a, b int) int {
	if a > b {
		return a
	}
	return b
}
