package ctxfix

import "context"

// Test files are entry points: re-rooting here is idiomatic and silent.
func testHelper() error {
	return acceptor(context.Background())
}
