// Package ctxflow enforces the repo's context-threading discipline, the
// contract that lets `kairos serve` shutdown cancel in-flight solves:
//
//   - Library code (any non-main package) must not call
//     context.Background() or context.TODO(): the context comes from the
//     caller, all the way down from the entry point that owns it.
//     Test files are exempt — a test IS an entry point. Deliberate roots
//     (deprecated wrappers, a server's lifecycle context) carry a
//     //kairoslint:allow ctxflow: <reason> waiver.
//   - A function that HAS a context.Context parameter must thread it:
//     calling context.Background()/TODO() there is always a bug, in any
//     package — the fresh context silently detaches the callee from the
//     caller's cancellation. (These sites are exactly how the solver
//     stack ignored `kairos serve -grace` before the Solve/Resolve/
//     SolveSharded signatures grew a ctx.)
//   - A function whose context parameter is entirely unused while some
//     callee accepts a context has dropped the thread — reported at the
//     declaration.
package ctxflow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "ctxflow",
	Doc:        "requires context.Context to be threaded, not re-rooted with context.Background",
	RunProgram: run,
}

func run(prog *analysis.Program) error {
	g := callgraph.Of(prog)
	var nodes []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Decl != nil {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		checkNode(prog, n)
	}
	return nil
}

func checkNode(prog *analysis.Program, n *callgraph.Node) {
	pos := prog.Fset.Position(n.Decl.Pos())
	inTest := strings.HasSuffix(pos.Filename, "_test.go")
	inMain := n.Pkg.Pkg.Name() == "main"
	hasCtx, ctxParams := ctxParamsOf(n)

	// Roots: context.Background()/TODO() calls in the body.
	if !inTest {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := rootCtxCall(n.Pkg.TypesInfo, call)
			if name == "" {
				return true
			}
			switch {
			case hasCtx:
				prog.Reportf(call.Pos(), "%s discards the function's ctx parameter — thread it instead", name)
			case !inMain:
				prog.Reportf(call.Pos(), "%s in library code — accept a context.Context and thread the caller's", name)
			}
			return true
		})
	}

	// Dropped thread: ctx parameter never used, yet a callee accepts one.
	if inTest || !hasCtx {
		return
	}
	used := false
	for _, p := range ctxParams {
		if p.Name() == "_" {
			used = true // explicitly discarded; lockguard-style conventions don't apply
			break
		}
		for _, obj := range n.Pkg.TypesInfo.Uses {
			if obj == p {
				used = true
				break
			}
		}
		if used {
			break
		}
	}
	if used {
		return
	}
	for _, e := range n.Out {
		if e.InPanic || !acceptsCtx(e.Callee.Func) {
			continue
		}
		prog.Reportf(n.Decl.Pos(), "ctx parameter is unused, but callee %s accepts a context — the thread is dropped here",
			e.Callee.Func.Name())
		return
	}
}

// ctxParamsOf returns the function's context.Context parameters.
func ctxParamsOf(n *callgraph.Node) (bool, []*types.Var) {
	sig := n.Func.Type().(*types.Signature)
	var out []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			out = append(out, sig.Params().At(i))
		}
	}
	return len(out) > 0, out
}

// rootCtxCall matches context.Background() / context.TODO(), returning
// the rendered name or "".
func rootCtxCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name() + "()"
	}
	return ""
}

// acceptsCtx reports whether any parameter of fn is a context.Context.
func acceptsCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isCtxType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
