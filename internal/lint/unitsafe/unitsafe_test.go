package unitsafe_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/unitsafe"
)

func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, "testdata", unitsafe.Analyzer, "unitfix")
}
