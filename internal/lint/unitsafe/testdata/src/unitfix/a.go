// Package unitfix exercises unitsafe: annotated fields, params and
// returns, local inference, conversion silence, and bad annotations.
package unitfix

// Point carries two differently-dimensioned quantities.
type Point struct {
	// WS is the working-set size.
	//kairos:unit MB
	WS   float64
	Rate float64 //kairos:unit RowsPerSec
	Name string
}

//kairos:unit ws MB
//kairos:unit rate RowsPerSec
//kairos:unit return MBps
func predict(ws, rate float64) float64 {
	return ws * rate * 1e-6 // product: unit intentionally unknown
}

func mismatches(p Point) float64 {
	bad := p.WS + p.Rate // want "unit mismatch: MB \\+ RowsPerSec"
	if p.WS > p.Rate {   // want "unit mismatch: MB > RowsPerSec"
		bad++
	}
	x := p.WS    // x inherits MB
	x = p.Rate   // want "assigning RowsPerSec to MB variable"
	x -= p.Rate  // want "unit mismatch: MB - RowsPerSec"
	var y = p.WS // y inherits MB
	y += p.Rate  // want "unit mismatch: MB \\+ RowsPerSec"
	return bad + x + y
}

func badArgs(p Point) float64 {
	return predict(p.Rate, p.WS) // want "argument is RowsPerSec, but parameter ws of predict is MB" "argument is MB, but parameter rate of predict is RowsPerSec"
}

//kairos:unit return MB
func badReturn(p Point) float64 {
	return p.Rate // want "returning RowsPerSec from a function annotated"
}

func badComposite(p Point) Point {
	return Point{
		WS:   p.Rate, // want "field WS is MB, but value is RowsPerSec"
		Rate: p.Rate,
	}
}

func fine(p, q Point) float64 {
	sum := p.WS + q.WS        // same unit: silent
	scaled := p.WS / 2        // division loses the unit
	asBytes := p.WS * 1e6     // conversion written as multiplication: silent
	r := predict(sum, p.Rate) // threading annotated quantities properly
	if p.Rate <= q.Rate {
		r++
	}
	return scaled + asBytes + r // unknowns match anything
}

func waived(p Point) float64 {
	return p.WS + p.Rate //kairoslint:allow unitsafe: fixture proves the waiver path
}

//kairos:unit missing MB
func noSuchParam(ws float64) float64 { // want "names no parameter of noSuchParam"
	return ws
}

type Bad struct {
	//kairos:unit pct
	Label string // want "non-float64 field Label"
}
