// Package unitsafe propagates //kairos:unit annotations on float64
// quantities through the program and reports cross-unit arithmetic.
// Kairos mixes megabytes, bytes, MB/s, bytes/s, rows/sec, milliseconds
// and fractions in plain float64s — the disk profile alone converts
// between four of them — and a missed /1e6 is invisible to the type
// checker. Units are opaque labels; two quantities may be added,
// subtracted, compared, assigned, passed, or returned across an
// annotation boundary only when their labels agree.
//
// Annotating:
//
//	// WSMB is the working-set size.
//	//kairos:unit MB
//	WSMB float64            // struct field: doc or trailing comment
//
//	//kairos:unit wsBytes Bytes
//	//kairos:unit return MBps
//	func Predict(wsBytes float64) float64   // params and return by name
//
// Propagation is deliberately conservative: multiplication, division,
// and any unannotated expression yield an unknown unit, which matches
// everything — `wsBytes / 1e6` is how a conversion is written, and the
// analyzer stays silent about it. Local variables pick up units from
// `x := expr` and `var x = expr` initializers. Mismatches carry
// //kairoslint:allow unitsafe: <reason> when deliberate.
package unitsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kairos/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "unitsafe",
	Doc:        "propagates //kairos:unit annotations and reports cross-unit float64 arithmetic",
	RunProgram: run,
}

const prefix = "kairos:unit"

// index holds the program-wide annotation tables. Objects are keyed by
// declaration position string so the same field or parameter seen from
// different type-check universes unifies, exactly as in callgraph.
type index struct {
	units map[string]string // object key → unit
	rets  map[string]string // func key → return unit
}

func run(prog *analysis.Program) error {
	idx := &index{units: map[string]string{}, rets: map[string]string{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectFile(prog, pkg.TypesInfo, idx, f)
		}
	}
	for _, pkg := range prog.Packages {
		c := &checker{prog: prog, info: pkg.TypesInfo, idx: idx}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.locals = map[types.Object]string{}
					c.checkFunc(fd.Body, retUnitOf(prog, pkg.TypesInfo, idx, fd))
				}
			}
		}
	}
	return nil
}

// unitLine returns the fields of a `kairos:unit ...` directive, or nil.
func unitLine(c *ast.Comment) []string {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if text == prefix || strings.HasPrefix(text, prefix+" ") {
		return strings.Fields(strings.TrimPrefix(text, prefix))
	}
	return nil
}

func (ix *index) key(prog *analysis.Program, obj types.Object) string {
	if p := obj.Pos(); p.IsValid() {
		return prog.Fset.Position(p).String()
	}
	return obj.Id()
}

// collectFile harvests field and function annotations from one file.
func collectFile(prog *analysis.Program, info *types.Info, idx *index, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				collectField(prog, info, idx, field)
			}
		case *ast.FuncDecl:
			collectFunc(prog, info, idx, n)
			return false // param docs handled; body has no annotations
		}
		return true
	})
}

func collectField(prog *analysis.Program, info *types.Info, idx *index, field *ast.Field) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			args := unitLine(c)
			if args == nil {
				continue
			}
			if len(args) != 1 {
				prog.Reportf(field.Pos(), "malformed field annotation %q: want //kairos:unit <Unit>", c.Text)
				continue
			}
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if !isFloat64(obj.Type()) {
					prog.Reportf(name.Pos(), "//kairos:unit on non-float64 field %s", name.Name)
					continue
				}
				idx.units[idx.key(prog, obj)] = args[0]
			}
		}
	}
}

func collectFunc(prog *analysis.Program, info *types.Info, idx *index, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	for _, c := range fd.Doc.List {
		args := unitLine(c)
		if args == nil {
			continue
		}
		if len(args) != 2 {
			prog.Reportf(fd.Name.Pos(), "malformed annotation %q: want //kairos:unit <param>|return <Unit>", c.Text)
			continue
		}
		name, unit := args[0], args[1]
		if name == "return" {
			if sig.Results().Len() != 1 || !isFloat64(sig.Results().At(0).Type()) {
				prog.Reportf(fd.Name.Pos(), "//kairos:unit return on %s, which does not return exactly one float64", fd.Name.Name)
				continue
			}
			idx.rets[idx.key(prog, fn)] = unit
			continue
		}
		param := paramNamed(sig, name)
		if param == nil {
			prog.Reportf(fd.Name.Pos(), "//kairos:unit %s: names no parameter of %s", name, fd.Name.Name)
			continue
		}
		if !isFloat64(param.Type()) {
			prog.Reportf(fd.Name.Pos(), "//kairos:unit on non-float64 parameter %s", name)
			continue
		}
		idx.units[idx.key(prog, param)] = unit
	}
}

func paramNamed(sig *types.Signature, name string) *types.Var {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return sig.Params().At(i)
		}
	}
	return nil
}

func retUnitOf(prog *analysis.Program, info *types.Info, idx *index, fd *ast.FuncDecl) string {
	if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil {
		return idx.rets[idx.key(prog, fn)]
	}
	return ""
}

// checker walks one function body.
type checker struct {
	prog   *analysis.Program
	info   *types.Info
	idx    *index
	locals map[types.Object]string
}

func (c *checker) lookup(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if u, ok := c.locals[obj]; ok {
		return u
	}
	return c.idx.units[c.idx.key(c.prog, obj)]
}

// unitOf evaluates an expression's unit; "" means unknown, which
// matches anything. Pure — mismatches are reported by checkFunc at the
// node that combines them, never here, so shared subexpressions are
// not double-reported.
func (c *checker) unitOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.unitOf(e.X)
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			return c.lookup(obj)
		}
		return c.lookup(c.info.Defs[e])
	case *ast.SelectorExpr:
		if sel, ok := c.info.Selections[e]; ok {
			return c.lookup(sel.Obj())
		}
		return c.lookup(c.info.Uses[e.Sel])
	case *ast.CallExpr:
		if fn := calleeOf(c.info, e); fn != nil {
			return c.idx.rets[c.idx.key(c.prog, fn.Origin())]
		}
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return c.unitOf(e.X)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			lu, ru := c.unitOf(e.X), c.unitOf(e.Y)
			switch {
			case lu == "":
				return ru
			case ru == "" || lu == ru:
				return lu
			}
		}
		// *, /, comparisons, and mismatched +/- change or lose the unit.
	}
	return ""
}

func (c *checker) checkFunc(body *ast.BlockStmt, retUnit string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal has no doc comment, hence no return annotation;
			// its body still shares the enclosing locals.
			c.checkFunc(n.Body, "")
			return false
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				c.combine(n.OpPos, n.Op, n.X, n.Y)
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					c.inferOrCheck(name, n.Values[i])
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.ReturnStmt:
			if retUnit != "" && len(n.Results) == 1 {
				if ru := c.unitOf(n.Results[0]); ru != "" && ru != retUnit {
					c.prog.Reportf(n.Results[0].Pos(),
						"returning %s from a function annotated //kairos:unit return %s", ru, retUnit)
				}
			}
		case *ast.CompositeLit:
			c.checkComposite(n)
		}
		return true
	})
}

func (c *checker) combine(pos token.Pos, op token.Token, x, y ast.Expr) {
	lu, ru := c.unitOf(x), c.unitOf(y)
	if lu != "" && ru != "" && lu != ru {
		c.prog.Reportf(pos, "unit mismatch: %s %s %s", lu, op, ru)
	}
}

func (c *checker) checkAssign(n *ast.AssignStmt) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		op := token.ADD
		if n.Tok == token.SUB_ASSIGN {
			op = token.SUB
		}
		c.combine(n.TokPos, op, n.Lhs[0], n.Rhs[0])
	case token.ASSIGN, token.DEFINE:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && n.Tok == token.DEFINE {
				c.inferOrCheck(id, n.Rhs[i])
				continue
			}
			lu, ru := c.unitOf(lhs), c.unitOf(n.Rhs[i])
			if lu != "" && ru != "" && lu != ru {
				c.prog.Reportf(n.Rhs[i].Pos(), "assigning %s to %s variable", ru, lu)
			}
		}
	}
}

// inferOrCheck handles a declaration initializer: the new variable
// inherits the initializer's unit.
func (c *checker) inferOrCheck(name *ast.Ident, value ast.Expr) {
	obj := c.info.Defs[name]
	if obj == nil || !isFloat64(obj.Type()) {
		return
	}
	if u := c.unitOf(value); u != "" {
		c.locals[obj] = u
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	fn := calleeOf(c.info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() || (sig.Variadic() && i >= sig.Params().Len()-1) {
			break
		}
		param := sig.Params().At(i)
		pu := c.idx.units[c.idx.key(c.prog, param)]
		au := c.unitOf(arg)
		if pu != "" && au != "" && au != pu {
			c.prog.Reportf(arg.Pos(), "argument is %s, but parameter %s of %s is %s",
				au, param.Name(), fn.Name(), pu)
		}
	}
}

func (c *checker) checkComposite(lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field := c.info.Uses[key]
		if field == nil {
			continue
		}
		fu := c.idx.units[c.idx.key(c.prog, field)]
		vu := c.unitOf(kv.Value)
		if fu != "" && vu != "" && fu != vu {
			c.prog.Reportf(kv.Value.Pos(), "field %s is %s, but value is %s", key.Name, fu, vu)
		}
	}
}

// calleeOf resolves a call to its static *types.Func, or nil for
// function values, conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isFloat64(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
