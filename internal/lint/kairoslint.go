// Package lint assembles the kairoslint analyzer suite: the custom
// static checks that prove this repo's performance and concurrency
// contracts at analysis time, over every file, on every CI run. Each
// analyzer lives in its own subpackage with an analysistest fixture
// suite; cmd/kairoslint is the multichecker binary and `make lint` runs
// it over ./...
//
// The suite has two tiers. Per-package analyzers (floatdet, hotalloc,
// lockguard, wirejson) see one package at a time and run in parallel
// across packages. Whole-program analyzers (ctxflow, hotcall,
// lockorder, unitsafe) run over the interprocedural call graph built by
// internal/lint/callgraph, closing contracts that no single package can
// prove: lock acquisition order, context threading, transitive
// allocation freedom, and unit consistency.
package lint

import (
	"kairos/internal/lint/analysis"
	"kairos/internal/lint/ctxflow"
	"kairos/internal/lint/floatdet"
	"kairos/internal/lint/hotalloc"
	"kairos/internal/lint/hotcall"
	"kairos/internal/lint/lockguard"
	"kairos/internal/lint/lockorder"
	"kairos/internal/lint/unitsafe"
	"kairos/internal/lint/wirejson"
)

// Analyzers returns the full suite in output order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		floatdet.Analyzer,
		hotalloc.Analyzer,
		hotcall.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		unitsafe.Analyzer,
		wirejson.Analyzer,
	}
}
