// Package lint assembles the kairoslint analyzer suite: the custom
// static checks that prove this repo's performance and concurrency
// contracts at analysis time, over every file, on every CI run. Each
// analyzer lives in its own subpackage with an analysistest fixture
// suite; cmd/kairoslint is the multichecker binary and `make lint` runs
// it over ./...
package lint

import (
	"kairos/internal/lint/analysis"
	"kairos/internal/lint/floatdet"
	"kairos/internal/lint/hotalloc"
	"kairos/internal/lint/lockguard"
	"kairos/internal/lint/wirejson"
)

// Analyzers returns the full suite in output order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatdet.Analyzer,
		hotalloc.Analyzer,
		lockguard.Analyzer,
		wirejson.Analyzer,
	}
}
