// Package lint assembles the kairoslint analyzer suite: the custom
// static checks that prove this repo's performance and concurrency
// contracts at analysis time, over every file, on every CI run. Each
// analyzer lives in its own subpackage with an analysistest fixture
// suite; cmd/kairoslint is the multichecker binary and `make lint` runs
// it over ./...
//
// The suite has two tiers. Per-package analyzers (errflow, floatdet,
// hotalloc, lockguard, wirejson) see one package at a time and run in
// parallel across packages. Whole-program analyzers (atomicmix,
// ctxflow, hotcall, leakcheck, lockorder, unitsafe, walorder) run over
// the interprocedural call graph built by internal/lint/callgraph,
// closing contracts that no single package can prove: lock acquisition
// order, context threading, transitive allocation freedom, unit
// consistency, goroutine termination, atomic/plain access mixing, and
// the control plane's journal-append-before-ack WAL contract (walorder,
// built on the internal/lint/dataflow dominance layer).
package lint

import (
	"kairos/internal/lint/analysis"
	"kairos/internal/lint/atomicmix"
	"kairos/internal/lint/ctxflow"
	"kairos/internal/lint/errflow"
	"kairos/internal/lint/floatdet"
	"kairos/internal/lint/hotalloc"
	"kairos/internal/lint/hotcall"
	"kairos/internal/lint/leakcheck"
	"kairos/internal/lint/lockguard"
	"kairos/internal/lint/lockorder"
	"kairos/internal/lint/unitsafe"
	"kairos/internal/lint/walorder"
	"kairos/internal/lint/wirejson"
)

// Analyzers returns the full suite in output order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		errflow.Analyzer,
		floatdet.Analyzer,
		hotalloc.Analyzer,
		hotcall.Analyzer,
		leakcheck.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		unitsafe.Analyzer,
		walorder.Analyzer,
		wirejson.Analyzer,
	}
}
