// Package lockguard checks the repo's mutex-guard annotations: a struct
// field whose declaration carries a "guarded by <mu>" comment may only be
// read or written in functions that demonstrably hold the sibling mutex.
//
// The check is intra-procedural and syntactic by design (no may-alias or
// lockset dataflow): an access to x.field is accepted when the enclosing
// top-level function contains an earlier x.<mu>.Lock() or x.<mu>.RLock()
// call on the same base expression. Functions that run with the lock
// already held declare it by naming convention (a trailing "Locked"
// suffix, e.g. incumbentLocked) or with a //kairos:locked doc directive —
// the same contract the repo's "callers hold mu" comments always meant,
// now machine-checked. Individual accesses can be waived with
// //kairoslint:allow lockguard.
//
// The annotation itself is validated too: the named mutex must exist as a
// sibling field of sync.Mutex or sync.RWMutex type.
package lockguard

import (
	"go/ast"
	"go/types"
	"strings"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// Marker declares that a function runs with the relevant lock held.
const Marker = "kairos:locked"

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  `checks that "guarded by mu" fields are only accessed under the sibling mutex`,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || lintutil.HasMarker(fd.Doc, Marker) {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil, nil
}

// collectGuarded gathers the package's annotated fields, validating each
// annotation's sibling mutex. The map value is the mutex field name.
func collectGuarded(pass *analysis.Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := lintutil.GuardedBy(field.Doc, field.Comment)
				if !ok {
					continue
				}
				if !hasMutexField(pass, st, mu) {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex or sync.RWMutex field", mu)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// hasMutexField reports whether the struct declares a field named mu of a
// mutex type.
func hasMutexField(pass *analysis.Pass, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == mu {
				return isMutex(pass.TypesInfo.TypeOf(field.Type))
			}
		}
	}
	return false
}

// isMutex accepts sync.Mutex, sync.RWMutex and pointers to them.
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockEvent is one mu.Lock()/mu.RLock() call: the rendered base
// expression the mutex was selected from, the mutex field name, and the
// position the lock takes effect.
type lockEvent struct {
	base  string
	mutex string
	pos   int
}

// checkFunc verifies every guarded-field access in one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	var locks []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			locks = append(locks, lockEvent{
				base:  types.ExprString(muSel.X),
				mutex: muSel.Sel.Name,
				pos:   int(call.Pos()),
			})
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, isGuarded := guarded[field]
		if !isGuarded {
			return true
		}
		base := types.ExprString(sel.X)
		for _, lk := range locks {
			if lk.base == base && lk.mutex == mu && lk.pos < int(sel.Pos()) {
				return true
			}
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s.%s, which is not held here (lock it, suffix the function name with Locked, or annotate //kairos:locked)",
			base, field.Name(), base, mu)
		return true
	})
}
