// Package lockguardfix exercises the guarded-by contract: guarded access
// under Lock/RLock, the Locked-suffix and //kairos:locked exemptions, the
// allow waiver, and validation of the annotation itself.
package lockguardfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

type badguard struct {
	lock sync.Mutex
	size int

	// guarded by mux
	x int // want "annotation names \"mux\", which is not a sibling sync.Mutex or sync.RWMutex field"

	// guarded by size
	y int // want "annotation names \"size\", which is not a sibling sync.Mutex or sync.RWMutex field"

	// guarded by lock
	ok int
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Bad() int {
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}

func (c *counter) AccessBeforeLock() {
	_ = c.n // want "c.n is guarded by c.mu, which is not held here"
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

func (c *counter) incLocked() { c.n++ }

// sum runs with c.mu held by the caller.
//
//kairos:locked
func (c *counter) sum() int { return c.n }

func (c *counter) waived() int {
	return c.n //kairoslint:allow lockguard: snapshot tolerates a torn read
}

func (g *gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *gauge) WrongReceiverLock(c *counter) {
	c.mu.Lock()
	g.v = 1 // want "g.v is guarded by g.mu, which is not held here"
	c.mu.Unlock()
}

func (b *badguard) Use() int {
	b.lock.Lock()
	defer b.lock.Unlock()
	return b.ok
}
