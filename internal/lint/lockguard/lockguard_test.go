package lockguard_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "lockguardfix")
}
