// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over one
// type-checked package (a Pass) and reports Diagnostics. The repo takes no
// third-party dependencies, so the subset kairoslint needs lives here;
// analyzers written against it port to the upstream multichecker by
// swapping this import (the field names match deliberately).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Analyzer describes one static check: a name (used in output and in
// //kairoslint:allow suppressions), documentation, and the Run function
// invoked once per package. Exactly one of Run and RunProgram is set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's help text. The first line is the summary.
	Doc string
	// Run applies the check to one package. Diagnostics go through
	// pass.Report; the result value is unused by this driver and exists
	// for upstream signature compatibility.
	Run func(*Pass) (any, error)
	// RunProgram, when set, makes this a whole-program analyzer: the
	// driver calls it once with every loaded package instead of calling
	// Run per package. Checks that need cross-package context — anything
	// built on the call graph — live here. Diagnostics go through
	// prog.Report.
	RunProgram func(*Program) error
}

// Pass holds one type-checked package and the reporting sink for one
// analyzer run. All positions resolve through Fset.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver applies
	// //kairoslint:allow line suppressions after this call, so analyzers
	// report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Program hands a whole-program analyzer (Analyzer.RunProgram) every
// loaded package at once. All packages share one FileSet, so
// token.Position strings are stable program-wide identities — the call
// graph and the annotation indexes key on them.
type Program struct {
	Fset     *token.FileSet
	Packages []*ProgramPackage
	// Report delivers one diagnostic, exactly like Pass.Report: the
	// driver applies //kairoslint:allow suppressions after this call, so
	// analyzers report unconditionally. The driver points it at the
	// current analyzer's sink before each RunProgram call.
	Report func(Diagnostic)

	memoMu sync.Mutex
	memo   map[any]any
}

// ProgramPackage is one type-checked package inside a Program. Test
// units (package foo_test) appear as their own entries.
type ProgramPackage struct {
	Path      string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Reportf reports a formatted diagnostic at pos.
func (p *Program) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Memo returns the value cached under key, building it on first use. The
// driver reuses one Program across the whole analyzer suite, so
// expensive shared artifacts — the call graph — are built once and read
// by every program analyzer through this.
func (p *Program) Memo(key any, build func() any) any {
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	if p.memo == nil {
		p.memo = map[any]any{}
	}
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}
