// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over one
// type-checked package (a Pass) and reports Diagnostics. The repo takes no
// third-party dependencies, so the subset kairoslint needs lives here;
// analyzers written against it port to the upstream multichecker by
// swapping this import (the field names match deliberately).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in output and in
// //kairoslint:allow suppressions), documentation, and the Run function
// invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's help text. The first line is the summary.
	Doc string
	// Run applies the check to one package. Diagnostics go through
	// pass.Report; the result value is unused by this driver and exists
	// for upstream signature compatibility.
	Run func(*Pass) (any, error)
}

// Pass holds one type-checked package and the reporting sink for one
// analyzer run. All positions resolve through Fset.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver applies
	// //kairoslint:allow line suppressions after this call, so analyzers
	// report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
