// Package errflow enforces the repo's error-handling discipline with
// dataflow rather than style rules: an error value, once produced, must
// be checked, propagated, logged, or *visibly* waived. Four shapes are
// findings in non-test files (tests assert through their own helpers):
//
//   - `_ = f()` and `v, _ := f()` where the blank swallows an error —
//     a silent drop that a //kairoslint:allow errflow: <reason> waiver
//     must make loud if it is intentional.
//   - An expression statement whose call returns an error nobody binds.
//     fmt printing and the never-failing in-memory writers
//     (strings.Builder, bytes.Buffer) are exempt.
//   - An error variable overwritten before anything reads it (the
//     def-use rule, via internal/lint/dataflow): `err = f(); err = g()`
//     silently discards f's failure. This rule runs in test files too —
//     a test that drops the first error asserts the wrong thing.
//   - `defer x.Close()` dropping the close error. For read paths a
//     waiver with a reason is fine; for write paths the error is the
//     fsync result and dropping it is a durability bug.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "requires produced errors to be checked, propagated, logged, or visibly waived",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		if !inTest {
			checkDiscards(pass, file)
			checkDroppedResults(pass, file)
			checkDeferredClose(pass, file)
		}
		checkDeadErrorWrites(pass, file)
	}
	return nil, nil
}

// checkDiscards flags blank-identifier assignments that swallow an
// error: `_ = f()` and the error position of `v, _ := f()`.
func checkDiscards(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			if isErrorType(discardedType(pass.TypesInfo, as, i)) {
				pass.Reportf(id.Pos(), "error discarded with _ — check it, return it, or waive with a reason")
			}
		}
		return true
	})
}

// discardedType resolves the type flowing into LHS position i.
func discardedType(info *types.Info, as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == len(as.Lhs) {
		return info.TypeOf(as.Rhs[i])
	}
	if len(as.Rhs) != 1 {
		return nil
	}
	t := info.TypeOf(as.Rhs[0])
	tup, ok := t.(*types.Tuple)
	if !ok || i >= tup.Len() {
		return nil
	}
	return tup.At(i).Type()
}

// checkDroppedResults flags expression statements whose call returns an
// error nobody binds. go/defer statements are excluded (go discards by
// construction; deferred Close has its own rule), as are fmt's printers
// and the in-memory writers whose errors are documented always-nil.
func checkDroppedResults(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !returnsError(pass.TypesInfo, call) || exemptDrop(pass.TypesInfo, call) {
			return true
		}
		pass.Reportf(call.Pos(), "call drops its error result — check it, return it, or waive with a reason")
		return true
	})
}

// returnsError reports whether the call produces an error value.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// exemptDrop exempts callees whose dropped error is idiomatic: fmt's
// print family (diagnostics), and methods of strings.Builder /
// bytes.Buffer, which are documented to never fail.
func exemptDrop(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if s, ok := info.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := types.Unalias(recv).Underlying().(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := types.Unalias(recv).(*types.Named); ok && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if key == "strings.Builder" || key == "bytes.Buffer" {
				return true
			}
		}
	}
	return false
}

// checkDeferredClose flags `defer x.Close()` when Close returns an
// error: the deferred error vanishes. Wrap it (defer func() { ... }())
// or waive with a reason stating why the close error carries no data.
func checkDeferredClose(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(ds.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if returnsError(pass.TypesInfo, ds.Call) {
			pass.Reportf(ds.Defer, "deferred Close drops its error — handle it in a deferred closure or waive with a reason")
		}
		return true
	})
}

// checkDeadErrorWrites runs the def-use rule over every function and
// closure body: an error-typed local overwritten on all paths before
// any read lost its first failure.
func checkDeadErrorWrites(pass *analysis.Pass, file *ast.File) {
	var analyze func(body *ast.BlockStmt)
	analyze = func(body *ast.BlockStmt) {
		cfg := dataflow.New(body)
		keep := func(v *types.Var) bool {
			// Only locals declared inside this body: a variable owned by
			// an enclosing function has reads this CFG cannot see.
			return isErrorType(v.Type()) && body.Pos() <= v.Pos() && v.Pos() < body.End()
		}
		for _, dw := range cfg.DeadWrites(pass.TypesInfo, keep) {
			kill := pass.Fset.Position(dw.KillPos)
			pass.Reportf(dw.Pos, "%s is overwritten at line %d before this value is ever read — the first error is lost",
				dw.Var.Name(), kill.Line)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				analyze(n.Body)
			}
		case *ast.FuncLit:
			analyze(n.Body)
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
