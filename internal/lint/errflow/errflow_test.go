package errflow_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "errfix")
}
