package errfix

// Test files are exempt from the discard/dropped-result/deferred-Close
// rules (tests assert through their own helpers), but the def-use
// overwritten-before-read rule still binds: a test that drops the first
// error asserts the wrong thing.

func testStyleDiscard() {
	_ = produce()
	produce()
}

func testDeadWrite() error {
	err := produce() // want "overwritten at line"
	err = produce()
	return err
}
