// Package errfix exercises errflow: blank discards, dropped results,
// deferred Close, and the def-use overwritten-before-read rule.
package errfix

import (
	"errors"
	"fmt"
	"strings"
)

func produce() error { return errors.New("x") }

func pair() (int, error) { return 0, errors.New("x") }

type closer struct{}

func (closer) Close() error { return nil }

type quietCloser struct{}

func (quietCloser) Close() {}

func discards() {
	_ = produce()  // want "error discarded with _"
	n, _ := pair() // want "error discarded with _"
	_ = n
	_ = produce() //kairoslint:allow errflow: fixture proving the waiver silences the discard rule
}

func drops() {
	produce() // want "call drops its error result"
	fmt.Println("diagnostics are exempt")
	var b strings.Builder
	b.WriteString("never fails")
}

func deferClose(c closer, q quietCloser) {
	defer c.Close() // want "deferred Close drops its error"
	defer q.Close() // no error to drop
	defer func() {
		if err := c.Close(); err != nil {
			fmt.Println("close:", err)
		}
	}()
	//kairoslint:allow errflow: fixture waiver — read-only handle, close error carries no data
	defer c.Close()
}

func deadWrite() error {
	err := produce() // want "overwritten at line"
	err = produce()
	return err
}

func liveWrite() error {
	err := produce()
	if err != nil {
		return err
	}
	err = produce()
	return err
}

func oneBranchOverwrite(cond bool) error {
	err := produce()
	if cond {
		err = produce()
	}
	return err
}

func loopOverwrite(n int) error {
	var err error
	for i := 0; i < n; i++ {
		err = produce()
	}
	return err
}

func captured() error {
	var err error
	g := func() { err = produce() }
	err = produce()
	g()
	return err
}

func inClosure() func() error {
	return func() error {
		err := produce() // want "overwritten at line"
		err = produce()
		return err
	}
}
