// Def-use chains over the CFG: which writes to a local variable can
// ever be read? errflow uses this to flag error values that are
// overwritten before anything looks at them — the classic
// `err = f(); err = g()` slip that silently drops f's failure.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadWrite is one write whose value is overwritten on every path
// before any read.
type DeadWrite struct {
	// Var is the variable written.
	Var *types.Var
	// Pos is the dead write's position (the assigned identifier).
	Pos token.Pos
	// KillPos is one of the later writes that overwrites it.
	KillPos token.Pos
}

// eventKind classifies one appearance of a tracked variable.
type eventKind int

const (
	evRead eventKind = iota
	evWrite
	evReadWrite // compound assignment, ++/--
	evEscape    // address taken or captured by a closure
)

type event struct {
	kind eventKind
	obj  *types.Var
	pos  token.Pos
}

// DeadWrites scans the CFG's blocks for writes to local variables
// selected by keep whose value is, on every path, overwritten before
// any read. Variables whose address is taken or that are captured by a
// closure are skipped entirely (a read can happen through the alias at
// any time), as are writes that a loop back-edge overwrites with
// themselves (`for { err = f() }` re-running is not a drop). A write
// whose value simply survives to function exit unread is NOT reported —
// that is a different (and much noisier) property than being
// overwritten.
func (c *CFG) DeadWrites(info *types.Info, keep func(*types.Var) bool) []DeadWrite {
	events := make([][]event, len(c.Blocks))
	escaped := map[*types.Var]bool{}
	for _, blk := range c.Blocks {
		for _, atom := range blk.Nodes {
			collectEvents(info, atom, keep, &events[blk.Index], escaped)
		}
	}

	var out []DeadWrite
	for _, blk := range c.Blocks {
		if c.dom[blk.Index] == nil {
			continue // unreachable
		}
		evs := events[blk.Index]
		for i, ev := range evs {
			if ev.kind != evWrite || escaped[ev.obj] {
				continue
			}
			if kill, dead := c.writeIsDead(events, blk, i, ev); dead && kill != ev.pos {
				out = append(out, DeadWrite{Var: ev.obj, Pos: ev.pos, KillPos: kill})
			}
		}
	}
	return out
}

// writeIsDead searches forward from the write at events[blk][idx]. It
// returns dead=true only when every path from the write reaches another
// write of the same variable before any read, and no path reaches the
// function exit untouched.
func (c *CFG) writeIsDead(events [][]event, blk *Block, idx int, w event) (kill token.Pos, dead bool) {
	// Rest of the write's own block first.
	for _, ev := range events[blk.Index][idx+1:] {
		if ev.obj != w.obj {
			continue
		}
		switch ev.kind {
		case evRead, evReadWrite, evEscape:
			return token.NoPos, false
		case evWrite:
			return ev.pos, true
		}
	}
	// BFS over successors. Every frontier path must end in a kill.
	seen := map[*Block]bool{blk: true}
	queue := append([]*Block{}, blk.Succs...)
	killed := false
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		found := false
		for _, ev := range events[b.Index] {
			if ev.obj != w.obj {
				continue
			}
			switch ev.kind {
			case evRead, evReadWrite, evEscape:
				return token.NoPos, false
			case evWrite:
				if kill == token.NoPos {
					kill = ev.pos
				}
				killed = true
			}
			found = true
			break
		}
		if found {
			continue
		}
		if b == c.Exit {
			// The value survives to exit unread: not "overwritten".
			return token.NoPos, false
		}
		queue = append(queue, b.Succs...)
	}
	return kill, killed
}

// collectEvents walks one atom and appends the reads, writes and
// escapes of tracked variables, in evaluation order (RHS before LHS for
// assignments). Closure interiors turn every captured tracked variable
// into an escape.
func collectEvents(info *types.Info, n ast.Node, keep func(*types.Var) bool, out *[]event, escaped map[*types.Var]bool) {
	tracked := func(id *ast.Ident) *types.Var {
		if id == nil || id.Name == "_" {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !keep(v) {
			return nil
		}
		return v
	}

	var walk func(n ast.Node, write bool)
	walk = func(n ast.Node, write bool) {
		switch n := n.(type) {
		case nil:
		case *ast.Ident:
			if v := tracked(n); v != nil {
				kind := evRead
				if write {
					kind = evWrite
				}
				*out = append(*out, event{kind: kind, obj: v, pos: n.Pos()})
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				walk(rhs, false)
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					walk(lhs, false) // *p, s.f, a[i]: reads of their parts
					continue
				}
				if v := tracked(id); v != nil {
					kind := evWrite
					if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
						kind = evReadWrite // +=, &=, ...
					}
					*out = append(*out, event{kind: kind, obj: v, pos: id.Pos()})
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				if v := tracked(id); v != nil {
					*out = append(*out, event{kind: evReadWrite, obj: v, pos: id.Pos()})
				}
				return
			}
			walk(n.X, false)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v := tracked(id); v != nil {
						*out = append(*out, event{kind: evEscape, obj: v, pos: id.Pos()})
						escaped[v] = true
						return
					}
				}
			}
			walk(n.X, false)
		case *ast.FuncLit:
			// Captured variables escape: the closure may read or write
			// them at any later point.
			ast.Inspect(n.Body, func(child ast.Node) bool {
				if id, ok := child.(*ast.Ident); ok {
					if v := tracked(id); v != nil {
						*out = append(*out, event{kind: evEscape, obj: v, pos: id.Pos()})
						escaped[v] = true
					}
				}
				return true
			})
		case *ast.ValueSpec:
			// `var err error = f()` writes; a bare `var err error` only
			// zero-initializes — overwriting a zero value drops nothing.
			for _, val := range n.Values {
				walk(val, false)
			}
			if len(n.Values) > 0 {
				for _, id := range n.Names {
					if v := tracked(id); v != nil {
						*out = append(*out, event{kind: evWrite, obj: v, pos: id.Pos()})
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					walk(spec, false)
				}
			}
		case *ast.KeyValueExpr:
			// Struct-literal keys resolve to field objects, which
			// tracked() excludes; map-literal keys are real reads.
			walk(n.Key, false)
			walk(n.Value, false)
		case *ast.SelectorExpr:
			walk(n.X, false) // n.Sel is a field/method name
		default:
			// Generic traversal for everything else, one level at a
			// time so the special cases above keep applying below.
			var children []ast.Node
			ast.Inspect(n, func(child ast.Node) bool {
				if child == nil || child == n {
					return child == n
				}
				children = append(children, child)
				return false
			})
			for _, child := range children {
				walk(child, false)
			}
		}
	}
	walk(n, false)
}
