// Package dataflow builds intra-procedural control-flow graphs over the
// typed AST and answers the two questions the ordering and error-flow
// analyzers ask: "must statement A execute before statement B on every
// path?" (block dominance) and "can this write ever be read?" (def-use
// chains, defuse.go). It is the intra-procedural layer under walorder
// and errflow, sitting beside internal/lint/callgraph the way a
// function-local CFG sits beside a program-wide call graph.
//
// The CFG is deliberately syntactic: one graph per function body, basic
// blocks of statements and the sub-expressions evaluated with them, and
// edges for if/for/range/switch/type-switch/select/return and
// break/continue (including labeled forms). Closure interiors are NOT
// part of the enclosing graph — a FuncLit body runs whenever the value
// is called, so its nodes map to no block and analyzers skip them; build
// a separate CFG for the literal's body to analyze it. Two constructs
// get conservative treatment: goto transfers to the function exit
// (breaking dominance rather than faking it — the repo has none), and
// unreachable code is considered dominated by everything (dead code
// cannot violate an ordering contract at runtime).
package dataflow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line run of statements
// and the expressions evaluated with them, in execution order.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes lists the atoms — simple statements, conditions, range
	// operands — evaluated in this block, in execution order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	// nodeBlock maps every AST node evaluated by the function — down to
	// the leaves of each atom, stopping at FuncLit boundaries — to its
	// block.
	nodeBlock map[ast.Node]*Block
	// dom[b.Index] is the set of blocks dominating b, as block indexes;
	// nil for blocks unreachable from Entry.
	dom []map[int]bool
}

// New builds the CFG of a function body and computes dominance.
func New(body *ast.BlockStmt) *CFG {
	cfg := &CFG{nodeBlock: map[ast.Node]*Block{}}
	b := &builder{cfg: cfg, labels: map[string]*labelTargets{}}
	cfg.Entry = cfg.newBlock()
	cfg.Exit = cfg.newBlock()
	b.cur = cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, cfg.Exit)
	}
	cfg.computeDominance()
	return cfg
}

// BlockOf returns the block evaluating n, or nil when n is not part of
// this graph (it sits inside a closure, or in a different function).
func (c *CFG) BlockOf(n ast.Node) *Block { return c.nodeBlock[n] }

// Dominates reports whether a must execute before b on every path from
// function entry to b. Both nodes must belong to this CFG; if either
// maps to no block the answer is false. Unreachable code is treated as
// dominated by everything (it never executes, so no ordering contract
// can be violated there) and as dominating nothing reachable.
func (c *CFG) Dominates(a, b ast.Node) bool {
	ba, bb := c.BlockOf(a), c.BlockOf(b)
	if ba == nil || bb == nil {
		return false
	}
	if c.dom[bb.Index] == nil {
		return true // b unreachable
	}
	if c.dom[ba.Index] == nil {
		return false // a unreachable, b reachable
	}
	if ba == bb {
		// Same block: atoms execute in Nodes order. Find which atom each
		// node belongs to; earlier atom (or same atom, earlier position)
		// executes first.
		ia, ib := c.atomIndex(ba, a), c.atomIndex(bb, b)
		if ia != ib {
			return ia < ib
		}
		return a.Pos() <= b.Pos()
	}
	return c.dom[bb.Index][ba.Index]
}

// atomIndex finds the index of the atom in blk containing n.
func (c *CFG) atomIndex(blk *Block, n ast.Node) int {
	for i, atom := range blk.Nodes {
		if atom == n {
			return i
		}
		if atom.Pos() <= n.Pos() && n.End() <= atom.End() {
			return i
		}
	}
	return len(blk.Nodes)
}

func (c *CFG) newBlock() *Block {
	b := &Block{Index: len(c.Blocks)}
	c.Blocks = append(c.Blocks, b)
	return b
}

// computeDominance runs the classic iterative dataflow: dom(entry) =
// {entry}; dom(b) = {b} ∪ ⋂ dom(preds). Function CFGs are small, so the
// set-based fixpoint is plenty fast.
func (c *CFG) computeDominance() {
	n := len(c.Blocks)
	c.dom = make([]map[int]bool, n)
	// Reachability first: unreachable blocks keep a nil dom set.
	reach := make([]bool, n)
	var stack []*Block
	stack = append(stack, c.Entry)
	reach[c.Entry.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s.Index] {
				reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	all := map[int]bool{}
	for i := range c.Blocks {
		if reach[i] {
			all[i] = true
		}
	}
	for i := range c.Blocks {
		if !reach[i] {
			continue
		}
		if i == c.Entry.Index {
			c.dom[i] = map[int]bool{i: true}
		} else {
			s := map[int]bool{}
			for k := range all {
				s[k] = true
			}
			c.dom[i] = s
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.Blocks {
			if !reach[b.Index] || b == c.Entry {
				continue
			}
			next := map[int]bool{}
			first := true
			for _, p := range b.Preds {
				if !reach[p.Index] {
					continue
				}
				if first {
					for k := range c.dom[p.Index] {
						next[k] = true
					}
					first = false
					continue
				}
				for k := range next {
					if !c.dom[p.Index][k] {
						delete(next, k)
					}
				}
			}
			next[b.Index] = true
			if len(next) != len(c.dom[b.Index]) {
				c.dom[b.Index] = next
				changed = true
			}
		}
	}
}

// labelTargets resolves `break L` and `continue L`.
type labelTargets struct {
	brk, cont *Block
}

type builder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, break, continue, goto) until new code starts a fresh,
	// unreachable block.
	cur *Block
	// breaks and continues are the innermost targets of unlabeled
	// break/continue; break covers for/range/switch/select, continue
	// loops only.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelTargets
	// pendingLabel names the label attached to the next loop or switch
	// statement, so `break L`/`continue L` resolve to its targets.
	pendingLabel string
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// atom appends n to the current block and maps n and its evaluated
// descendants (stopping at FuncLit interiors) to it.
func (b *builder) atom(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.cfg.newBlock() // unreachable code gets a floating block
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	blk := b.cur
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil {
			return false
		}
		b.cfg.nodeBlock[child] = blk
		// The FuncLit node itself is evaluated here (the closure value),
		// but its body runs whenever the value is called — not part of
		// this graph.
		if fl, ok := child.(*ast.FuncLit); ok {
			b.cfg.nodeBlock[fl] = blk
			return false
		}
		return true
	})
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Consume the pending label unless this statement is the construct
	// it names.
	label := b.pendingLabel
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
	default:
		label = ""
	}
	b.pendingLabel = ""

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.atom(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.EmptyStmt:
	default:
		// Simple statements: assignments, expression statements, go,
		// defer, send, inc/dec, declarations. A defer's call arguments
		// are evaluated here, at the defer statement, so attributing the
		// atom to this block is exact for everything but the deferred
		// closure body — which, like all closure interiors, is out of
		// graph.
		b.atom(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.atom(s)
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				target = lt.brk
			}
		} else if len(b.breaks) > 0 {
			target = b.breaks[len(b.breaks)-1]
		}
	case token.CONTINUE:
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				target = lt.cont
			}
		} else if len(b.continues) > 0 {
			target = b.continues[len(b.continues)-1]
		}
	case token.GOTO:
		// Conservative: treat as leaving the function. This can only
		// break dominance claims, never fabricate them.
		target = b.cfg.Exit
	case token.FALLTHROUGH:
		// Legal only as the last statement of a switch case; the switch
		// builder wires the edge to the next clause.
		return
	}
	if target == nil {
		target = b.cfg.Exit
	}
	b.edge(b.cur, target)
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.atom(s.Init)
	}
	b.atom(s.Cond)
	cond := b.cur
	join := b.cfg.newBlock()

	then := b.cfg.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}

	if s.Else != nil {
		els := b.cfg.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.atom(s.Init)
	}
	if b.cur == nil {
		b.cur = b.cfg.newBlock()
	}
	head := b.cfg.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.atom(s.Cond)
	}
	exit := b.cfg.newBlock()
	if s.Cond != nil {
		b.edge(head, exit)
	}
	var post *Block
	contTarget := head
	if s.Post != nil {
		post = b.cfg.newBlock()
		contTarget = post
	}

	body := b.cfg.newBlock()
	b.edge(head, body)
	b.cur = body
	b.pushLoop(label, exit, contTarget)
	b.stmtList(s.Body.List)
	b.popLoop(label)
	if b.cur != nil {
		b.edge(b.cur, contTarget)
	}
	if post != nil {
		b.cur = post
		b.atom(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.atom(s.X)
	head := b.cfg.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	// Key/Value assignment happens once per iteration, in the head.
	if s.Key != nil {
		b.atom(s.Key)
	}
	if s.Value != nil {
		b.atom(s.Value)
	}
	exit := b.cfg.newBlock()
	b.edge(head, exit)

	body := b.cfg.newBlock()
	b.edge(head, body)
	b.cur = body
	b.pushLoop(label, exit, head)
	b.stmtList(s.Body.List)
	b.popLoop(label)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.atom(s.Init)
	}
	if s.Tag != nil {
		b.atom(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.cfg.newBlock()
		b.cur = head
	}
	exit := b.cfg.newBlock()
	b.pushBreak(label, exit)

	var clauses []*ast.CaseClause
	for _, cl := range s.Body.List {
		clauses = append(clauses, cl.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = b.cfg.newBlock()
		b.edge(head, blocks[i])
		if cl.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for i, cl := range clauses {
		b.cur = blocks[i]
		for _, e := range cl.List {
			b.atom(e)
		}
		body := cl.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			if b.cur != nil {
				b.edge(b.cur, blocks[i+1])
			}
			b.cur = nil
			continue
		}
		if b.cur != nil {
			b.edge(b.cur, exit)
		}
	}
	b.popBreak(label)
	b.cur = exit
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.atom(s.Init)
	}
	b.atom(s.Assign)
	head := b.cur
	exit := b.cfg.newBlock()
	b.pushBreak(label, exit)

	hasDefault := false
	var blocks []*Block
	var clauses []*ast.CaseClause
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CaseClause)
		clauses = append(clauses, cc)
		nb := b.cfg.newBlock()
		blocks = append(blocks, nb)
		b.edge(head, nb)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for i, cl := range clauses {
		b.cur = blocks[i]
		b.stmtList(cl.Body)
		if b.cur != nil {
			b.edge(b.cur, exit)
		}
	}
	b.popBreak(label)
	b.cur = exit
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.cfg.newBlock()
		b.cur = head
	}
	exit := b.cfg.newBlock()
	b.pushBreak(label, exit)
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		nb := b.cfg.newBlock()
		b.edge(head, nb)
		b.cur = nb
		if cc.Comm != nil {
			b.atom(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, exit)
		}
	}
	b.popBreak(label)
	// A select with no clauses blocks forever; exit is then unreachable,
	// which the dominance pass handles.
	b.cur = exit
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labels[label] = &labelTargets{brk: brk, cont: cont}
	}
}

func (b *builder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labels, label)
	}
}

func (b *builder) pushBreak(label string, brk *Block) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labels[label] = &labelTargets{brk: brk}
	}
}

func (b *builder) popBreak(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		delete(b.labels, label)
	}
}
