package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"kairos/internal/lint/lintutil"
)

// parseFunc type-checks src (one file of package p) and returns the CFG
// of the named function plus the file and info for node lookup.
func parseFunc(t *testing.T, src, name string) (*CFG, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, info, err := lintutil.TypeCheck(fset, lintutil.NewImporter(fset), "p", []*ast.File{f})
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body), f, info
		}
	}
	t.Fatalf("no function %s", name)
	return nil, nil, nil
}

// callNamed finds the call expression whose callee renders as name.
func callNamed(t *testing.T, f *ast.File, name string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var b strings.Builder
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			b.WriteString(fun.Name)
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok {
				b.WriteString(x.Name + ".")
			}
			b.WriteString(fun.Sel.Name)
		}
		if b.String() == name && out == nil {
			out = call
		}
		return true
	})
	if out == nil {
		t.Fatalf("no call %s", name)
	}
	return out
}

func TestDominatesStraightLine(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func b() {}
func f() { a(); b() }
`, "f")
	ca, cb := callNamed(t, f, "a"), callNamed(t, f, "b")
	if !cfg.Dominates(ca, cb) {
		t.Errorf("a() should dominate b() in straight-line code")
	}
	if cfg.Dominates(cb, ca) {
		t.Errorf("b() must not dominate the earlier a()")
	}
}

func TestDominatesBranches(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func b() {}
func c() {}
func f(x bool) {
	if x {
		a()
	}
	b()
	if x {
		c()
	}
}
`, "f")
	ca, cb, cc := callNamed(t, f, "a"), callNamed(t, f, "b"), callNamed(t, f, "c")
	if cfg.Dominates(ca, cb) {
		t.Errorf("a() inside one branch must not dominate b() after the join")
	}
	if !cfg.Dominates(cb, cc) {
		t.Errorf("b() before the second if should dominate c()")
	}
}

func TestDominatesEarlyReturn(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func b() {}
func f(x bool) {
	if x {
		return
	}
	a()
	b()
}
`, "f")
	ca, cb := callNamed(t, f, "a"), callNamed(t, f, "b")
	if !cfg.Dominates(ca, cb) {
		t.Errorf("a() should dominate b() past the early return")
	}
}

func TestDominatesLoop(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func b() {}
func c() {}
func f(n int) {
	a()
	for i := 0; i < n; i++ {
		b()
	}
	c()
}
`, "f")
	ca, cb, cc := callNamed(t, f, "a"), callNamed(t, f, "b"), callNamed(t, f, "c")
	if !cfg.Dominates(ca, cb) || !cfg.Dominates(ca, cc) {
		t.Errorf("pre-loop a() should dominate the body and the continuation")
	}
	if cfg.Dominates(cb, cc) {
		t.Errorf("loop body b() must not dominate c(): the loop may run zero times")
	}
}

func TestDominatesSwitchAndSelect(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func b() {}
func f(x int, ch chan int) {
	switch x {
	case 1:
		a()
	default:
	}
	b()
}
`, "f")
	ca, cb := callNamed(t, f, "a"), callNamed(t, f, "b")
	if cfg.Dominates(ca, cb) {
		t.Errorf("one switch case must not dominate the code after the switch")
	}

	cfg, f, _ = parseFunc(t, `package p
func a() {}
func b() {}
func g(ch chan int, done chan struct{}) {
	for {
		select {
		case <-ch:
			a()
		case <-done:
		}
		b()
	}
}
`, "g")
	ca, cb = callNamed(t, f, "a"), callNamed(t, f, "b")
	if cfg.Dominates(ca, cb) {
		t.Errorf("one select arm must not dominate the post-select code")
	}
}

func TestDominatesBreakBypassesTail(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func b() {}
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		a()
	}
	b()
}
`, "f")
	ca, cb := callNamed(t, f, "a"), callNamed(t, f, "b")
	if cfg.Dominates(ca, cb) {
		t.Errorf("a() after a conditional break must not dominate post-loop b()")
	}
}

func TestClosureInteriorIsOutOfGraph(t *testing.T) {
	cfg, f, _ := parseFunc(t, `package p
func a() {}
func f() {
	g := func() { a() }
	g()
}
`, "f")
	ca := callNamed(t, f, "a")
	if cfg.BlockOf(ca) != nil {
		t.Errorf("closure interior nodes must map to no block")
	}
}

// deadWritesOf runs DeadWrites over every error-typed local of fn.
func deadWritesOf(t *testing.T, src, fn string) []DeadWrite {
	t.Helper()
	cfg, _, info := parseFunc(t, src, fn)
	isErr := func(v *types.Var) bool {
		return v.Type().String() == "error"
	}
	return cfg.DeadWrites(info, isErr)
}

func TestDeadWriteStraightLine(t *testing.T) {
	dead := deadWritesOf(t, `package p
import "errors"
func f() error {
	err := errors.New("first")
	err = errors.New("second")
	return err
}
`, "f")
	if len(dead) != 1 {
		t.Fatalf("want 1 dead write, got %d: %+v", len(dead), dead)
	}
}

func TestWriteReadBetweenIsLive(t *testing.T) {
	dead := deadWritesOf(t, `package p
import "errors"
func f() error {
	err := errors.New("first")
	if err != nil {
		return err
	}
	err = errors.New("second")
	return err
}
`, "f")
	if len(dead) != 0 {
		t.Fatalf("want no dead writes, got %+v", dead)
	}
}

func TestLoopSelfOverwriteIsLive(t *testing.T) {
	dead := deadWritesOf(t, `package p
import "errors"
func f(n int) error {
	var err error
	for i := 0; i < n; i++ {
		err = errors.New("x")
		if err == nil {
			break
		}
	}
	return err
}
`, "f")
	if len(dead) != 0 {
		t.Fatalf("want no dead writes in self-overwriting loop, got %+v", dead)
	}
}

func TestBranchOverwriteOnOnePathIsLive(t *testing.T) {
	dead := deadWritesOf(t, `package p
import "errors"
func f(x bool) error {
	err := errors.New("first")
	if x {
		err = errors.New("second")
	}
	return err
}
`, "f")
	if len(dead) != 0 {
		t.Fatalf("one-path overwrite must stay live, got %+v", dead)
	}
}

func TestCapturedVarIsSkipped(t *testing.T) {
	dead := deadWritesOf(t, `package p
import "errors"
func f() error {
	var err error
	g := func() { err = errors.New("inner") }
	err = errors.New("outer")
	g()
	return err
}
`, "f")
	if len(dead) != 0 {
		t.Fatalf("captured variable must be skipped, got %+v", dead)
	}
}

func TestAddressTakenIsSkipped(t *testing.T) {
	dead := deadWritesOf(t, `package p
import "errors"
func sink(*error) {}
func f() error {
	err := errors.New("first")
	sink(&err)
	err = errors.New("second")
	return err
}
`, "f")
	if len(dead) != 0 {
		t.Fatalf("address-taken variable must be skipped, got %+v", dead)
	}
}
