// Package wirejson machine-checks the wire-contract convention: files
// named wire.go declare the structs that cross a serialization boundary
// (the control plane's /v1/ JSON API lives in internal/server/wire.go).
//
// Two rules follow from that convention:
//
//  1. In a wire.go file, every field of every package-level struct must
//     carry an explicit json tag naming its wire key (or "-" to opt
//     out), and no field may be unexported — an untagged or invisible
//     field changes the wire format silently.
//  2. Anywhere in the tree, composite literals of a wire struct must be
//     keyed: a positional literal silently reorders the API the moment a
//     field is inserted.
package wirejson

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"

	"kairos/internal/lint/analysis"
)

// WireFile is the basename that marks a file as a wire contract.
const WireFile = "wire.go"

var Analyzer = &analysis.Analyzer{
	Name: "wirejson",
	Doc:  "checks json-tag completeness of wire.go structs and forbids unkeyed wire-struct literals",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == WireFile {
			checkDecls(pass, f)
		}
		checkLiterals(pass, f)
	}
	return nil, nil
}

// checkDecls enforces tag completeness on one wire.go file's structs.
func checkDecls(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				names := field.Names
				if len(names) == 0 {
					pass.Reportf(field.Pos(), "embedded field in wire struct %s: declare an explicit field with a json tag instead", ts.Name.Name)
					continue
				}
				for _, name := range names {
					if !name.IsExported() {
						pass.Reportf(name.Pos(), "unexported field %s in wire struct %s will not be serialized", name.Name, ts.Name.Name)
						continue
					}
					if !hasJSONName(field.Tag) {
						pass.Reportf(name.Pos(), "field %s of wire struct %s has no json tag naming its wire key", name.Name, ts.Name.Name)
					}
				}
			}
		}
	}
}

// hasJSONName reports whether the field tag names an explicit json key
// (or opts out with "-").
func hasJSONName(tag *ast.BasicLit) bool {
	if tag == nil {
		return false
	}
	raw, err := strconv.Unquote(tag.Value)
	if err != nil {
		return false
	}
	jt, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return false
	}
	name, _, _ := strings.Cut(jt, ",")
	return name != ""
}

// checkLiterals forbids positional composite literals of wire structs
// wherever they appear.
func checkLiterals(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		named := wireStruct(pass, pass.TypesInfo.TypeOf(lit))
		if named == nil {
			return true
		}
		for _, elt := range lit.Elts {
			if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
				pass.Reportf(lit.Pos(), "unkeyed composite literal of wire struct %s: positional fields silently reorder the API", named.Obj().Name())
				return true
			}
		}
		return true
	})
}

// wireStruct returns the named struct type when t is a package-level
// struct declared in a wire.go file (of any package — the shared fileset
// resolves positions across import boundaries).
func wireStruct(pass *analysis.Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	if filepath.Base(pass.Fset.Position(obj.Pos()).Filename) != WireFile {
		return nil
	}
	return named
}
