// wire.go declares this fixture package's wire contract — every struct
// here must be fully json-tagged.
package wirefix

type PlanOK struct {
	ID    string `json:"id"`
	Count int    `json:"count"`
	Skip  int    `json:"-"`
}

type PlanBad struct {
	ID     string `json:"id"`
	NoTag  int    // want "field NoTag of wire struct PlanBad has no json tag naming its wire key"
	Keyed  int    `yaml:"k"` // want "field Keyed of wire struct PlanBad has no json tag naming its wire key"
	Blank  int    `json:""`  // want "field Blank of wire struct PlanBad has no json tag naming its wire key"
	hidden int    // want "unexported field hidden in wire struct PlanBad will not be serialized"
}

type Wrapped struct {
	PlanOK // want "embedded field in wire struct Wrapped: declare an explicit field with a json tag instead"
}

// ID is not a struct, so the tag rules do not apply.
type ID string
