// use.go holds composite literals: wire-struct literals must be keyed
// anywhere they appear; local non-wire structs are unconstrained.
package wirefix

type local struct {
	a, b int
}

func build() PlanOK {
	good := PlanOK{ID: "p", Count: 1}
	_ = good
	empty := PlanOK{}
	_ = empty
	return PlanOK{"p", 1, 0} // want "unkeyed composite literal of wire struct PlanOK: positional fields silently reorder the API"
}

func waived() PlanOK {
	return PlanOK{"p", 1, 0} //kairoslint:allow wirejson: fixture for the escape hatch
}

func other() local {
	return local{1, 2}
}
