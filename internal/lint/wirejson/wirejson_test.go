package wirejson_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/wirejson"
)

func TestWirejson(t *testing.T) {
	analysistest.Run(t, "testdata", wirejson.Analyzer, "wirefix")
}
