// Package leakfix exercises leakcheck: unbounded goroutine loops with
// and without each of the three termination-evidence shapes.
package leakfix

import (
	"context"
	"sync"
)

type pool struct {
	jobs chan int
	stop chan struct{}
	wg   sync.WaitGroup
}

// leaky spawns a for{} loop with no termination evidence.
func leaky(ch chan int) {
	go func() { // want "no termination path"
		for {
			<-ch
		}
	}()
}

// ctxLoop consults ctx.Done: cancellation is the termination path.
func ctxLoop(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// closedRange ranges over a channel its owner closes on shutdown.
func (p *pool) closedRange() {
	go func() {
		for j := range p.jobs {
			_ = j
		}
	}()
}

func (p *pool) shutdown() {
	close(p.jobs)
}

// joined loops until its stop channel closes and is joined through a
// waited WaitGroup.
func (p *pool) joined() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			<-p.stop
		}
	}()
}

func (p *pool) wait() {
	p.wg.Wait()
}

// bounded loops terminate on their own: no evidence needed.
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}

// worker is spawned by name; the static callee's body is inspected.
func worker(ch chan int) {
	for {
		<-ch
	}
}

func spawnsWorker(ch chan int) {
	go worker(ch) // want "no termination path"
}

// unresolvable spawn targets are skipped, not flagged.
func spawnsValue(f func()) {
	go f()
}

// waived: a deliberate fire-and-forget goroutine.
func waived(ch chan int) {
	//kairoslint:allow leakcheck: fixture proving the waiver silences the goroutine rule
	go func() {
		for {
			<-ch
		}
	}()
}
