// Package leakcheck proves every goroutine spawned from library code
// has a termination path. A `go` statement whose body can loop forever
// — a condition-less `for {}` or a range over a channel — must carry
// one of three evidence shapes, the same ones the serving stack's own
// goroutines use:
//
//   - context cancellation: the body consults ctx.Done() or ctx.Err(),
//     so cancelling the context the spawner threaded in stops the loop;
//   - owned channel close: the body ranges over / receives from a
//     channel object that some reachable code close()s, so the producer
//     shutting down drains and stops the consumer;
//   - WaitGroup join: the body calls Done on a sync.WaitGroup whose
//     Wait is called somewhere in the program — the goroutine is joined
//     by a shutdown path, and whoever owns the group bounds its life.
//
// Bounded loops (`for i < n`, range over a slice) need no evidence, and
// main packages and test files are exempt — an entry point's goroutines
// die with the process, a test's with the test binary. A deliberate
// fire-and-forget goroutine takes a //kairoslint:allow leakcheck:
// <reason> waiver at the go statement.
//
// The analyzer inspects the directly spawned body only (a FuncLit or
// the static callee's declaration); spawn targets it cannot resolve —
// function values, method values — are skipped, not flagged.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "leakcheck",
	Doc:        "requires goroutines spawned from library code to have a termination path",
	RunProgram: run,
}

func run(prog *analysis.Program) error {
	g := callgraph.Of(prog)
	closed, waited := programEvidence(prog)
	for _, pkg := range prog.Packages {
		if pkg.Pkg.Name() == "main" {
			continue
		}
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			if strings.HasSuffix(prog.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, binfo := spawnedBody(g, info, gs)
				if body == nil {
					return true
				}
				loop := unboundedLoop(binfo, body)
				if loop == "" {
					return true
				}
				if hasTermination(prog, binfo, body, closed, waited) {
					return true
				}
				prog.Reportf(gs.Go, "goroutine's %s has no termination path — consult ctx.Done(), receive from a channel someone closes, or join it with a waited WaitGroup", loop)
				return true
			})
		}
	}
	return nil
}

// spawnedBody resolves what the go statement runs: a literal's body, or
// the static callee's declaration. The callee may live in another
// package, so resolution goes through the call graph's cross-universe
// node identity. Unresolvable spawns (function values) return nil.
func spawnedBody(g *callgraph.Graph, info *types.Info, gs *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return fl.Body, info
	}
	var fn *types.Func
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil {
		return nil, nil
	}
	node := g.NodeOf(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil, nil
	}
	return node.Decl.Body, node.Pkg.TypesInfo
}

// unboundedLoop names the first potentially-infinite loop the spawned
// body runs itself (nested closures excluded — they block whoever calls
// them, not this goroutine): a `for` with no condition, or a range over
// a channel. Bounded loops terminate on their own and need no evidence.
func unboundedLoop(info *types.Info, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				found = "for {} loop"
			}
		case *ast.RangeStmt:
			if isChan(info.TypeOf(n.X)) {
				found = "range over a channel"
			}
		}
		return true
	})
	return found
}

// hasTermination scans the spawned body (nested closures included —
// `defer func() { wg.Done() }()` is evidence) for any of the three
// termination shapes.
func hasTermination(prog *analysis.Program, info *types.Info, body *ast.BlockStmt, closed, waited map[string]bool) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// ctx.Done() / ctx.Err() on a context.Context receiver.
			if (n.Sel.Name == "Done" || n.Sel.Name == "Err") && isContext(info.TypeOf(n.X)) {
				ok = true
			}
		case *ast.CallExpr:
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" && isWaitGroup(info.TypeOf(sel.X)) {
				if obj := rootObj(info, sel.X); obj != nil && waited[prog.Fset.Position(obj.Pos()).String()] {
					ok = true
				}
			}
		case *ast.UnaryExpr:
			// <-ch where ch is a channel object someone closes.
			if n.Op == token.ARROW {
				if obj := rootObj(info, n.X); obj != nil && closed[prog.Fset.Position(obj.Pos()).String()] {
					ok = true
				}
			}
		case *ast.RangeStmt:
			if isChan(info.TypeOf(n.X)) {
				if obj := rootObj(info, n.X); obj != nil && closed[prog.Fset.Position(obj.Pos()).String()] {
					ok = true
				}
			}
		}
		return true
	})
	return ok
}

// programEvidence indexes, program-wide and keyed by defining position:
// channel objects passed to close(), and sync.WaitGroup objects whose
// Wait() is called.
func programEvidence(prog *analysis.Program) (closed, waited map[string]bool) {
	closed, waited = map[string]bool{}, map[string]bool{}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						if obj := rootObj(info, call.Args[0]); obj != nil {
							closed[prog.Fset.Position(obj.Pos()).String()] = true
						}
						return true
					}
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroup(info.TypeOf(sel.X)) {
					if obj := rootObj(info, sel.X); obj != nil {
						waited[prog.Fset.Position(obj.Pos()).String()] = true
					}
				}
				return true
			})
		}
	}
	return closed, waited
}

// rootObj resolves the variable or field object a channel/WaitGroup
// expression names, or nil for unresolvable shapes (call results).
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
