package leakcheck_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/leakcheck"
)

func TestLeakcheck(t *testing.T) {
	analysistest.Run(t, "testdata", leakcheck.Analyzer, "leakfix")
}
