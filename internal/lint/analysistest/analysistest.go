// Package analysistest runs a kairoslint analyzer over fixture packages
// and checks its diagnostics against // want annotations — the same
// contract as golang.org/x/tools/go/analysis/analysistest, on the repo's
// dependency-free driver.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A line that should fire
// carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with one double-quoted regexp per expected diagnostic on that line.
// Lines without a want comment must stay silent — so weakening an
// analyzer (a want stops matching) and over-firing (a diagnostic with no
// want) both fail the test. //kairoslint:allow suppressions are applied
// exactly as the real driver applies them, letting fixtures prove the
// escape hatch works.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// expectation is one // want regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run checks the analyzer against each fixture package under
// testdata/src. Fixture packages may import the standard library only.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(testdata, "src", pkg), pkg, a)
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	pkg, info, err := lintutil.TypeCheck(fset, lintutil.NewImporter(fset), pkgPath, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	expects := collectWants(t, fset, files)
	supp := lintutil.NewSuppressions(fset, files)
	report := func(d analysis.Diagnostic) {
		if supp.Allowed(d.Pos, a.Name) {
			return
		}
		pos := fset.Position(d.Pos)
		for _, ex := range expects {
			if ex.matched || ex.file != pos.Filename || ex.line != pos.Line {
				continue
			}
			if ex.re.MatchString(d.Message) {
				ex.matched = true
				return
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	if a.RunProgram != nil {
		// Whole-program analyzer: wrap the fixture as a one-package
		// Program, exactly how the driver wraps the real tree.
		prog := &analysis.Program{
			Fset: fset,
			Packages: []*analysis.ProgramPackage{
				{Path: pkgPath, Files: files, Pkg: pkg, TypesInfo: info},
			},
			Report: report,
		}
		if err := a.RunProgram(prog); err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
	} else {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    report,
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
	}
	for _, ex := range expects {
		if !ex.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", ex.file, ex.line, ex.raw)
		}
	}
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of double-quoted Go strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want expectations must be double-quoted strings, got %q", pos, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want string in %q", pos, s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", pos, s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
