package hotfix

// Pricer dispatch cannot be closed statically: the abstract method has
// no body to prove, so a hot caller is reported even when every
// program implementation happens to be clean.
type Pricer interface {
	Price(x float64) float64
}

type Flat struct{ C float64 }

func (f Flat) Price(x float64) float64 { return f.C }

type Padded struct{}

func (Padded) Price(x float64) float64 { return float64(len(grow(nil))) + x }

//kairos:hotpath
func hotIface(p Pricer, x float64) float64 {
	return p.Price(x) // want "neither"
}
