// Package hotfix exercises hotcall: clean transitive closures stay
// silent, allocating callees are reported wherever they hide in the
// chain, trusted leaves and cold paths pass, and waivers work.
package hotfix

import "math"

// helperClean is alloc-free and calls nothing: proven by the fixpoint.
func helperClean(x float64) float64 { return x * 2 }

//kairos:hotpath
func hotRoot(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += helperClean(x)
	}
	return s
}

// grow allocates (append), so nothing that reaches it is proven.
func grow(xs []float64) []float64 { return append(xs, 1) }

// viaWrapper is itself clean but calls grow: stripped by the fixpoint.
func viaWrapper(xs []float64) float64 { return float64(len(grow(xs))) }

//kairos:hotpath
func hotCallsDirty(xs []float64) float64 {
	return float64(len(grow(xs))) // want "neither"
}

//kairos:hotpath
func hotTransitive(xs []float64) float64 {
	return viaWrapper(xs) // want "neither"
}

//kairos:hotpath
func hotLeaf(x float64) float64 { return x + 1 }

//kairos:hotpath
func hotCallsHot(x float64) float64 { return hotLeaf(x) }

//kairos:hotpath
func hotMath(x float64) float64 { return math.Sqrt(x) }

// fib is mutually clean with itself: recursion survives the greatest
// fixpoint.
func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

//kairos:hotpath
func hotRecursive(n int) int { return fib(n) }

//kairos:hotpath
func hotFuncValue(f func(float64) float64, x float64) float64 {
	return f(x) // want "function value"
}

//kairos:hotpath
func hotDefer(xs []float64) float64 {
	defer grow(xs) // want "neither"
	return 0
}

// formatBad allocates (string concatenation) but is only reached on a
// panic path: cold by definition.
func formatBad(x float64) string { return string(rune(int(x))) + "!" }

//kairos:hotpath
func hotPanic(x float64) float64 {
	if x < 0 {
		panic(formatBad(x))
	}
	return x
}

//kairos:hotpath
func hotWaived(xs []float64) float64 {
	return viaWrapper(xs) //kairoslint:allow hotcall: warm-up call, measured off the hot loop
}
