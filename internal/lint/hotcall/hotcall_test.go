package hotcall_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/hotcall"
)

func TestHotcall(t *testing.T) {
	analysistest.Run(t, "testdata", hotcall.Analyzer, "hotfix")
}
