// Package hotcall closes the //kairos:hotpath contract over the call
// graph. hotalloc proves an annotated function's own body allocation
// free; hotcall proves the same for everything the function calls: a
// hot function may only call
//
//   - another //kairos:hotpath function (itself checked by both
//     analyzers), or
//   - a function the whole-program fixpoint proves alloc-free — its
//     body has no allocating construct (per allocscan) and every
//     callee, transitively, is itself proven, or
//   - a leaf from a trusted package (math, math/bits, sync/atomic)
//     whose body lives outside the program.
//
// Calls through function values and interface dispatch with no proven
// target cannot be closed statically and are reported; a deliberate
// exception carries //kairoslint:allow hotcall: <reason>.
//
// Edges spawned with go, reached only on panic paths, or inside
// non-invoked function literals are skipped — they are not on the hot
// path (the go statement itself is already hotalloc's finding).
package hotcall

import (
	"go/token"
	"sort"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/callgraph"
	"kairos/internal/lint/hotalloc"
	"kairos/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:       "hotcall",
	Doc:        "requires //kairos:hotpath functions to call only hot or provably alloc-free callees",
	RunProgram: run,
}

// provenLeafPkgs hold functions that are alloc-free by construction;
// their bodies are outside the program, so the fixpoint takes them on
// faith.
var provenLeafPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func run(prog *analysis.Program) error {
	g := callgraph.Of(prog)

	hot := map[*callgraph.Node]bool{}
	for _, n := range g.Nodes {
		if n.Decl != nil && lintutil.HasMarker(n.Decl.Doc, hotalloc.Marker) {
			hot[n] = true
		}
	}
	proven := provenAllocFree(g, hot)

	hotNodes := make([]*callgraph.Node, 0, len(hot))
	for n := range hot {
		hotNodes = append(hotNodes, n)
	}
	sort.Slice(hotNodes, func(i, j int) bool { return hotNodes[i].ID < hotNodes[j].ID })

	for _, n := range hotNodes {
		reported := map[token.Pos]bool{} // one finding per call site, however many dynamic targets
		for _, e := range n.Out {
			if e.Go || e.InPanic || e.InClosure || reported[e.Pos] {
				continue
			}
			c := e.Callee
			if hot[c] || proven[c] || trustedLeaf(c) {
				continue
			}
			reported[e.Pos] = true
			prog.Reportf(e.Pos, "hot path calls %s, which is neither //kairos:hotpath nor provably alloc-free",
				c.Func.FullName())
		}
		for _, p := range n.Unresolved {
			prog.Reportf(p, "hot path calls through a function value, which cannot be proven alloc-free")
		}
	}
	return nil
}

// provenAllocFree computes the greatest fixpoint of "alloc-free all the
// way down": start from every declared function whose body allocscan
// finds clean, then strip any candidate with an unresolvable call or an
// on-path edge to a function that is neither a surviving candidate, a
// hot function, nor a trusted leaf. Mutual recursion among clean
// functions survives, which is exactly why this runs as a greatest
// rather than least fixpoint.
func provenAllocFree(g *callgraph.Graph, hot map[*callgraph.Node]bool) map[*callgraph.Node]bool {
	cand := map[*callgraph.Node]bool{}
	for _, n := range g.Nodes {
		if n.Decl != nil && len(n.Allocs) == 0 && len(n.Unresolved) == 0 {
			cand[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for n := range cand {
			for _, e := range n.Out {
				if e.Go || e.InPanic {
					continue
				}
				c := e.Callee
				if cand[c] || hot[c] || trustedLeaf(c) {
					continue
				}
				delete(cand, n)
				changed = true
				break
			}
		}
	}
	return cand
}

// trustedLeaf reports whether the node is a body-less function from a
// package on the alloc-free whitelist.
func trustedLeaf(n *callgraph.Node) bool {
	if n.Decl != nil {
		return false
	}
	pkg := n.Func.Pkg()
	return pkg != nil && provenLeafPkgs[pkg.Path()]
}
