// Package atomfix exercises atomicmix: fields touched through
// sync/atomic must never be read or written plainly.
package atomfix

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) racyRead() int64 {
	return c.hits // want "plain access of hits"
}

func (c *counter) racyWrite() {
	c.hits = 0 // want "plain access of hits"
}

// misses is never touched atomically: plain access is fine.
func (c *counter) plainOnly() int64 {
	c.misses++
	return c.misses
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func waivedRead() int64 {
	return global //kairoslint:allow atomicmix: fixture waiver — reader runs after all writers joined
}
