package atomicmix_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atomfix")
}
