// Package atomicmix catches mixed atomic/plain access: a variable or
// field that any code touches through sync/atomic (AddInt64, Load,
// Store, Swap, CompareAndSwap — the address-taking functions) must be
// accessed through sync/atomic everywhere. One plain read beside an
// atomic write is a data race the race detector only sees when the
// interleaving happens; this proves it at analysis time, program-wide,
// so a counter updated atomically in one package cannot be read plainly
// from another. Typed atomics (atomic.Bool, atomic.Int64) are safe by
// construction and out of scope — prefer them for new code.
//
// A deliberately unsynchronized access — a reader that provably runs
// after all writers joined — takes a //kairoslint:allow atomicmix:
// <reason> waiver.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"kairos/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "atomicmix",
	Doc:        "forbids plain reads/writes of variables accessed through sync/atomic anywhere",
	RunProgram: run,
}

func run(prog *analysis.Program) error {
	atomicObjs, sanctioned := collectAtomicUses(prog)
	if len(atomicObjs) == 0 {
		return nil
	}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil {
					return true
				}
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
				key := prog.Fset.Position(obj.Pos()).String()
				if !atomicObjs[key] || sanctioned[id.Pos()] {
					return true
				}
				prog.Reportf(id.Pos(), "plain access of %s, which is updated through sync/atomic elsewhere — use atomic ops everywhere or a typed atomic", id.Name)
				return true
			})
		}
	}
	return nil
}

// collectAtomicUses finds every `&x` handed to a sync/atomic function,
// program-wide. It returns the touched objects (keyed by defining
// position, the cross-universe identity) and the sanctioned identifier
// positions — the references inside those atomic arguments themselves.
func collectAtomicUses(prog *analysis.Program) (objs map[string]bool, sanctioned map[token.Pos]bool) {
	objs, sanctioned = map[string]bool{}, map[token.Pos]bool{}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if obj := rootObj(info, un.X); obj != nil {
						objs[prog.Fset.Position(obj.Pos()).String()] = true
					}
					// Every identifier on the &-operand path is part of
					// the atomic access itself.
					ast.Inspect(un.X, func(c ast.Node) bool {
						if id, ok := c.(*ast.Ident); ok {
							sanctioned[id.Pos()] = true
						}
						return true
					})
				}
				return true
			})
		}
	}
	return objs, sanctioned
}

// isAtomicCall reports whether the call targets a sync/atomic function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// rootObj resolves the variable or field the expression names.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	}
	return nil
}
