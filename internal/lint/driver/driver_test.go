package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// fakePkg type-checks one in-memory file into a *Package, bypassing
// go list so the Run contract can be pinned hermetically.
func fakePkg(t *testing.T, fset *token.FileSet, path, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	tpkg, info, err := lintutil.TypeCheck(fset, lintutil.NewImporter(fset), path, files)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// TestRunSuppressionAndBadWaivers: well-formed waivers drop findings,
// reasonless waivers surface as findings of the pseudo-analyzer `allow`
// (and are not themselves suppressible), and output is position-sorted.
func TestRunSuppressionAndBadWaivers(t *testing.T) {
	fset := token.NewFileSet()
	pkg := fakePkg(t, fset, "fix", `package fix

var a = 1 // fires
var b = 2 //kairoslint:allow stub: proven harmless in this fixture
var c = 3 //kairoslint:allow stub
`)
	stub := &analysis.Analyzer{
		Name: "stub",
		Doc:  "reports every var declaration",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
						pass.Reportf(gd.Pos(), "var at top level")
					}
				}
			}
			return nil, nil
		},
	}
	diags, err := Run([]*Package{pkg}, []*analysis.Analyzer{stub})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+"@"+d.Pos.String())
	}
	// Line 3 fires (no waiver). Line 4 is suppressed with a reason. Line 5
	// is suppressed but its reasonless waiver is an `allow` finding.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(diags), got)
	}
	if diags[0].Analyzer != "stub" || diags[0].Pos.Line != 3 {
		t.Errorf("diags[0] = %+v, want stub finding on line 3", diags[0])
	}
	if diags[1].Analyzer != "allow" || diags[1].Pos.Line != 5 {
		t.Errorf("diags[1] = %+v, want allow finding on line 5", diags[1])
	}
	if !strings.Contains(diags[1].Message, "reason") {
		t.Errorf("allow finding message %q should explain the missing reason", diags[1].Message)
	}
}

// TestRunProgramAnalyzers: RunProgram analyzers see every package at
// once, share one Program (Memo builds expensive artifacts exactly
// once), and their findings respect //kairoslint:allow like any other.
func TestRunProgramAnalyzers(t *testing.T) {
	fset := token.NewFileSet()
	pkgA := fakePkg(t, fset, "consta", `package consta

const A = 1 // prog fires here
`)
	pkgB := fakePkg(t, fset, "constb", `package constb

const B = 2 //kairoslint:allow prog: fixture waiver for the program path
`)
	builds := 0
	type memoKey struct{}
	mkProg := func(name string) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name: name,
			Doc:  "reports every const declaration, program-wide",
			RunProgram: func(prog *analysis.Program) error {
				prog.Memo(memoKey{}, func() any {
					builds++
					return builds
				})
				for _, pp := range prog.Packages {
					for _, f := range pp.Files {
						for _, d := range f.Decls {
							if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.CONST {
								prog.Reportf(gd.Pos(), "const in %s", pp.Path)
							}
						}
					}
				}
				return nil
			},
		}
	}
	diags, err := Run([]*Package{pkgA, pkgB}, []*analysis.Analyzer{mkProg("prog"), mkProg("prog2")})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("Memo built the shared artifact %d times across 2 program analyzers, want 1", builds)
	}
	// pkgA's const fires for both analyzers; pkgB's waiver names only
	// `prog`, so `prog2` still fires there.
	var gotA, gotB2 int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "consta"):
			gotA++
		case strings.Contains(d.Message, "constb") && d.Analyzer == "prog2":
			gotB2++
		case strings.Contains(d.Message, "constb") && d.Analyzer == "prog":
			t.Errorf("waived prog finding leaked: %+v", d)
		}
	}
	if gotA != 2 || gotB2 != 1 {
		t.Errorf("got %d consta findings (want 2) and %d prog2 constb findings (want 1): %v", gotA, gotB2, diags)
	}
}

// TestLoadDeterministicOrder: the parallel loader returns units in
// discovery order regardless of goroutine scheduling.
func TestLoadDeterministicOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("shells go list and type-checks real packages")
	}
	patterns := []string{"kairos/internal/floats", "kairos/internal/lint/analysis", "kairos/internal/lint/lintutil"}
	var first []string
	for round := 0; round < 3; round++ {
		pkgs, err := Load(patterns)
		if err != nil {
			t.Fatal(err)
		}
		var order []string
		for _, p := range pkgs {
			order = append(order, p.Path)
		}
		if round == 0 {
			first = order
			continue
		}
		if strings.Join(order, ",") != strings.Join(first, ",") {
			t.Fatalf("round %d order %v != first %v", round, order, first)
		}
	}
	t.Logf("stable order: %v", first)
}
