// Package driver loads Go packages and runs kairoslint analyzers over
// them. It enumerates packages with `go list -json` (so build constraints
// and file lists match the real build exactly), parses and type-checks
// each one with the stdlib source importer, runs every analyzer, and
// filters //kairoslint:allow-suppressed findings. It is the multichecker
// behind cmd/kairoslint and `make lint`.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// Package is one type-checked analysis unit. A listed package yields one
// unit covering its GoFiles plus in-package test files, and — when it has
// external (package foo_test) test files — a second unit for those.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates the packages matching patterns (relative to the current
// working directory, which must be inside the module) and type-checks
// them. Test files are included: the analyzers' contracts bind tests too.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := lintutil.NewImporter(fset)
	var pkgs []*Package
	for _, lp := range listed {
		units := [][]string{append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)}
		paths := []string{lp.ImportPath}
		if len(lp.XTestGoFiles) > 0 {
			units = append(units, lp.XTestGoFiles)
			paths = append(paths, lp.ImportPath+"_test")
		}
		for i, names := range units {
			if len(names) == 0 {
				continue
			}
			files := make([]*ast.File, len(names))
			for j, name := range names {
				f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
				if err != nil {
					return nil, err
				}
				files[j] = f
			}
			tpkg, info, err := lintutil.TypeCheck(fset, imp, paths[i], files)
			if err != nil {
				return nil, fmt.Errorf("type-checking %s: %w", paths[i], err)
			}
			pkgs = append(pkgs, &Package{Path: paths[i], Fset: fset, Files: files, Types: tpkg, Info: info})
		}
	}
	return pkgs, nil
}

// goList shells out to `go list -json` for the patterns.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package, drops suppressed findings,
// and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		supp := lintutil.NewSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if supp.Allowed(d.Pos, a.Name) {
					return
				}
				out = append(out, Diagnostic{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
