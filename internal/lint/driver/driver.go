// Package driver loads Go packages and runs kairoslint analyzers over
// them. It enumerates packages with `go list -json` (so build constraints
// and file lists match the real build exactly), parses and type-checks
// each one with the stdlib source importer, runs every analyzer, and
// filters //kairoslint:allow-suppressed findings. It is the multichecker
// behind cmd/kairoslint and `make lint`.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// Package is one type-checked analysis unit. A listed package yields one
// unit covering its GoFiles plus in-package test files, and — when it has
// external (package foo_test) test files — a second unit for those.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates the packages matching patterns (relative to the current
// working directory, which must be inside the module) and type-checks
// them. Test files are included: the analyzers' contracts bind tests too.
//
// Units are checked concurrently on a worker pool. The FileSet is shared
// (its methods are synchronized) and the source importer is serialized
// behind a mutex, so the parallel win is each unit's own parse and
// type-check; the output slice is ordered by unit discovery order,
// independent of scheduling.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	type unit struct {
		path  string
		dir   string
		names []string
	}
	var units []unit
	for _, lp := range listed {
		base := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		if len(base) > 0 {
			units = append(units, unit{path: lp.ImportPath, dir: lp.Dir, names: base})
		}
		if len(lp.XTestGoFiles) > 0 {
			units = append(units, unit{path: lp.ImportPath + "_test", dir: lp.Dir, names: lp.XTestGoFiles})
		}
	}
	fset := token.NewFileSet()
	imp := &lockedImporter{imp: lintutil.NewImporter(fset)}
	pkgs := make([]*Package, len(units))
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	sem := make(chan struct{}, loadWorkers())
	for i, u := range units {
		wg.Add(1)
		go func(i int, u unit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			files := make([]*ast.File, len(u.names))
			for j, name := range u.names {
				f, err := parser.ParseFile(fset, filepath.Join(u.dir, name), nil, parser.ParseComments)
				if err != nil {
					errs[i] = err
					return
				}
				files[j] = f
			}
			tpkg, info, err := lintutil.TypeCheck(fset, imp, u.path, files)
			if err != nil {
				errs[i] = fmt.Errorf("type-checking %s: %w", u.path, err)
				return
			}
			pkgs[i] = &Package{Path: u.path, Fset: fset, Files: files, Types: tpkg, Info: info}
		}(i, u)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

func loadWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8 // past this the serialized importer is the bottleneck
	}
	if n < 1 {
		n = 1
	}
	return n
}

// lockedImporter serializes the stdlib source importer, which caches
// behind plain maps and is not safe for concurrent ImportFrom calls.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.ImporterFrom
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.ImportFrom(path, dir, mode)
}

// goList shells out to `go list -json` for the patterns.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package, drops suppressed
// findings, and returns the rest sorted by position. Per-package
// analyzers run concurrently across packages; whole-program analyzers
// (RunProgram) run afterwards, sequentially, over one shared Program so
// memoized artifacts like the call graph are built once. Malformed
// //kairoslint:allow directives (no ": <reason>") are reported as
// findings of the pseudo-analyzer `allow` — and are not themselves
// suppressible.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	var pkgAs, progAs []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			progAs = append(progAs, a)
		} else {
			pkgAs = append(pkgAs, a)
		}
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, loadWorkers())
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			supp := lintutil.NewSuppressions(pkg.Fset, pkg.Files)
			for _, bw := range supp.Bad() {
				perPkg[i] = append(perPkg[i], Diagnostic{
					Analyzer: "allow",
					Pos:      pkg.Fset.Position(bw.Pos),
					Message:  fmt.Sprintf("waiver needs a reason: want //kairoslint:allow <analyzers>: <reason>, got //%s", bw.Text),
				})
			}
			for _, a := range pkgAs {
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.Info,
				}
				name := a.Name
				pass.Report = func(d analysis.Diagnostic) {
					if supp.Allowed(d.Pos, name) {
						return
					}
					perPkg[i] = append(perPkg[i], Diagnostic{
						Analyzer: name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				}
				if _, err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
					return
				}
			}
		}(i, pkg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Diagnostic
	for _, diags := range perPkg {
		out = append(out, diags...)
	}

	if len(progAs) > 0 {
		fset := pkgs[0].Fset
		prog := &analysis.Program{Fset: fset}
		var allFiles []*ast.File
		for _, pkg := range pkgs {
			prog.Packages = append(prog.Packages, &analysis.ProgramPackage{
				Path:      pkg.Path,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			})
			allFiles = append(allFiles, pkg.Files...)
		}
		supp := lintutil.NewSuppressions(fset, allFiles)
		for _, a := range progAs {
			name := a.Name
			prog.Report = func(d analysis.Diagnostic) {
				if supp.Allowed(d.Pos, name) {
					return
				}
				out = append(out, Diagnostic{
					Analyzer: name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.RunProgram(prog); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
