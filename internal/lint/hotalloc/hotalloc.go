// Package hotalloc forbids allocating constructs inside functions
// annotated //kairos:hotpath — the static half of the repo's
// zero-allocation contracts (the dynamic half is the
// testing.AllocsPerRun assertions on the LoadState/coarse pricers).
//
// Inside an annotated function the analyzer reports:
//
//   - map and slice composite literals, and address-of composite
//     literals (&T{...})
//   - make and new calls
//   - append calls — growth cannot be ruled out statically; appends into
//     scratch whose capacity is retained across calls carry a
//     //kairoslint:allow hotalloc comment
//   - function literals (closures capture by reference and escape)
//   - string concatenation
//   - implicit conversions to interface parameters and explicit
//     conversions to interface types (boxing)
//   - calls that build a variadic argument slice
//   - go statements
//
// panic calls and their arguments are exempt: a panicking hot path is
// already cold, and the guard-clause panics in loadstate.go format their
// message lazily only on the failure path.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// Marker is the doc-comment directive that makes a function hot.
const Marker = "kairos:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reports allocating constructs in //kairos:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintutil.HasMarker(fd.Doc, Marker) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkBody reports every allocating construct in one hot function body.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch types.Unalias(pass.TypesInfo.TypeOf(n)).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-of composite literal allocates in hot path")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in hot path")
			return false // its body only runs if the closure survives; one report suffices
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates in hot path")
		case *ast.CallExpr:
			return checkCall(pass, n)
		}
		return true
	})
}

// checkCall reports allocation by one call; the return value tells the
// walk whether to descend into the call's children.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	// Conversions: T(x) boxing a concrete value into an interface.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isIface(tv.Type) && !isIface(pass.TypesInfo.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to interface allocates in hot path")
		}
		return true
	}
	// Builtins.
	if name, ok := builtinName(pass, call.Fun); ok {
		switch name {
		case "make":
			pass.Reportf(call.Pos(), "make allocates in hot path")
		case "new":
			pass.Reportf(call.Pos(), "new allocates in hot path")
		case "append":
			pass.Reportf(call.Pos(), "append may grow its backing array in hot path")
		case "panic":
			// Cold by definition: the guard-clause panics in the pricers
			// pay their fmt.Sprintf only on the failure path.
			return false
		}
		return true
	}
	sig, ok := types.Unalias(pass.TypesInfo.TypeOf(call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return true
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				param = sig.Params().At(np - 1).Type() // xs... passes the slice through
			} else {
				param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		argType := pass.TypesInfo.TypeOf(arg)
		if isIface(param) && !isIface(argType) && !isUntypedNil(argType) {
			pass.Reportf(arg.Pos(), "implicit conversion to interface allocates in hot path")
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		pass.Reportf(call.Pos(), "variadic call allocates its argument slice in hot path")
	}
	return true
}

// builtinName resolves fun to a builtin's name when it is one.
func builtinName(pass *analysis.Pass, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

func isIface(t types.Type) bool {
	return t != nil && types.IsInterface(types.Unalias(t))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
