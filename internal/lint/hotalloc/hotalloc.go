// Package hotalloc forbids allocating constructs inside functions
// annotated //kairos:hotpath — the static half of the repo's
// zero-allocation contracts (the dynamic half is the
// testing.AllocsPerRun assertions on the LoadState/coarse pricers).
//
// Inside an annotated function the analyzer reports:
//
//   - map and slice composite literals, and address-of composite
//     literals (&T{...})
//   - make and new calls
//   - append calls — growth cannot be ruled out statically; appends into
//     scratch whose capacity is retained across calls carry a
//     //kairoslint:allow hotalloc: <reason> comment
//   - function literals (closures capture by reference and escape)
//   - string concatenation
//   - implicit conversions to interface parameters and explicit
//     conversions to interface types (boxing)
//   - calls that build a variadic argument slice
//   - go statements
//
// panic calls and their arguments are exempt: a panicking hot path is
// already cold, and the guard-clause panics in loadstate.go format their
// message lazily only on the failure path.
//
// The detection engine lives in internal/lint/allocscan, shared with the
// hotcall analyzer, which closes the same contract over the call graph.
package hotalloc

import (
	"go/ast"

	"kairos/internal/lint/allocscan"
	"kairos/internal/lint/analysis"
	"kairos/internal/lint/lintutil"
)

// Marker is the doc-comment directive that makes a function hot.
const Marker = "kairos:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reports allocating constructs in //kairos:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintutil.HasMarker(fd.Doc, Marker) {
				continue
			}
			for _, fnd := range allocscan.Body(pass.TypesInfo, fd.Body) {
				pass.Reportf(fnd.Pos, "%s", fnd.Message)
			}
		}
	}
	return nil, nil
}
