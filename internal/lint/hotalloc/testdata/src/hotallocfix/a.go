// Package hotallocfix exercises every construct hotalloc reports, the
// cold-path exemptions, and the //kairoslint:allow escape hatch.
package hotallocfix

import "fmt"

type sink struct {
	buf []int
}

func takesAny(v any) { _ = v }

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func (s *sink) cold() {}

// hot trips every allocating construct.
//
//kairos:hotpath
func (s *sink) hot(n int, name string) {
	m := map[int]int{} // want "map literal allocates in hot path"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates in hot path"
	_ = sl
	p := &sink{} // want "address-of composite literal allocates in hot path"
	_ = p
	b := make([]byte, n) // want "make allocates in hot path"
	_ = b
	q := new(int) // want "new allocates in hot path"
	_ = q
	s.buf = append(s.buf, n) // want "append may grow its backing array in hot path"
	f := func() {}           // want "closure allocates in hot path"
	f()
	_ = name + "!"          // want "string concatenation allocates in hot path"
	go s.cold()             // want "go statement allocates in hot path"
	_ = any(n)              // want "conversion to interface allocates in hot path"
	takesAny(n)             // want "implicit conversion to interface allocates in hot path"
	_ = fmt.Sprint(name, n) // want "implicit conversion to interface" "implicit conversion to interface" "variadic call allocates its argument slice"
	_ = sum(1, n)           // want "variadic call allocates its argument slice in hot path"
}

// hotGuarded shows the cold-path exemptions: panic subtrees are skipped
// wholesale, slice pass-through variadics do not allocate, and retained
// scratch appends carry the allow waiver.
//
//kairos:hotpath
func (s *sink) hotGuarded(n int, name string, xs []int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d for %s", n, "x"+name))
	}
	s.buf = append(s.buf, n) //kairoslint:allow hotalloc: capacity retained
	takesAny(nil)            // untyped nil boxes no value
	return sum(xs...)
}

// coldPath has no marker, so nothing fires.
func (s *sink) coldPath(n int) {
	s.buf = append(s.buf, make([]int, n)...)
	go s.cold()
	takesAny(n)
}
