package hotalloc_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotallocfix")
}
