package floatdet_test

import (
	"testing"

	"kairos/internal/lint/analysistest"
	"kairos/internal/lint/floatdet"
)

func TestFloatdet(t *testing.T) {
	analysistest.Run(t, "testdata", floatdet.Analyzer, "floatdetfix")
}
