// Package floatdetfix exercises floatdet: variable-vs-variable float
// equality fires, constant comparisons and non-floats stay silent, and
// the allow waiver works.
package floatdetfix

const eps = 1e-9

func cmp(a, b float64) bool {
	if a == b { // want "raw float == comparison"
		return true
	}
	return a != b // want "raw float != comparison"
}

func cmp32(a, b float32) bool {
	return a == b // want "raw float == comparison"
}

func mixed(a float64, i int) bool {
	return a == float64(i) // want "raw float == comparison"
}

func constSentinels(x float64) bool {
	return x == 0 || x != eps || 1.5 == x
}

func nonFloats(i, j int, s, t string) bool {
	return i == j || s != t
}

func ordered(a, b float64) bool {
	return a < b || a >= b // only ==/!= are nondeterminism hazards
}

func waived(a, b float64) bool {
	return a == b //kairoslint:allow floatdet: bit-identity proven upstream
}
