// Package floatdet forbids raw == and != between two computed
// floating-point values. The solver's bit-identical-plan guarantees
// (screened vs unscreened search, incremental vs scratch pricing) make
// float equality load-bearing in this repo, so every exact comparison
// must go through the canonical helpers in internal/floats — floats.Same
// spells out bit-exact intent, floats.Near takes a tolerance — or carry a
// //kairoslint:allow floatdet waiver.
//
// Comparisons against compile-time constants (x == 0, k != defaultWidth)
// are allowed: sentinel and threshold checks against literals are
// deterministic and idiomatic. The dangerous shape is variable-vs-
// variable, where a refactor that perturbs one ulp silently flips the
// branch.
package floatdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"kairos/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatdet",
	Doc:  "reports raw ==/!= between computed floats; use internal/floats helpers",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "raw float %s comparison; use floats.Same (bit-exact intent) or floats.Near (tolerance)", be.Op)
			return true
		})
	}
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}
