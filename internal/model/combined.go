package model

import (
	"fmt"

	"kairos/internal/series"
	"kairos/internal/stats"
)

// Estimator predicts the combined resource consumption of co-located
// workloads from their individual profiles (paper Section 4). CPU and RAM
// combine (near-)linearly; disk goes through the empirical profile.
type Estimator struct {
	// Disk is the hardware profile of the consolidation target.
	Disk *DiskProfile
	// CPUOverheadPerInstance is the CPU fraction each eliminated OS+DBMS
	// copy was burning; summing raw measurements double-counts it, so the
	// combined estimate subtracts it per additional workload.
	CPUOverheadPerInstance float64
	// RAMScaling linearly scales measured RAM values down for workloads
	// whose statistics could not be gauged (the paper uses ≈0.7 for the
	// Wikipedia and Second Life historical data, a 30% saving).
	RAMScaling float64
}

// NewEstimator builds an estimator with the paper's default corrections.
func NewEstimator(dp *DiskProfile) *Estimator {
	return &Estimator{Disk: dp, CPUOverheadPerInstance: 0.02, RAMScaling: 1.0}
}

// CombinedCPU predicts the CPU utilization series of n co-located
// workloads: the sum of the individual series minus the per-instance
// overhead for the n−1 eliminated OS+DBMS copies.
func (e *Estimator) CombinedCPU(cpus []*series.Series) (*series.Series, error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("model: no CPU series")
	}
	sum, err := series.Sum(cpus)
	if err != nil {
		return nil, err
	}
	saving := e.CPUOverheadPerInstance * float64(len(cpus)-1)
	return sum.Shift(-saving).Clamp(0, 1), nil
}

// BaselineCPU is the naive estimate: a straight sum of OS-reported CPU.
func (e *Estimator) BaselineCPU(cpus []*series.Series) (*series.Series, error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("model: no CPU series")
	}
	sum, err := series.Sum(cpus)
	if err != nil {
		return nil, err
	}
	return sum.Clamp(0, 1), nil
}

// CombinedRAM predicts the combined memory requirement from gauged working
// sets (or scaled historical measurements).
func (e *Estimator) CombinedRAM(rams []*series.Series) (*series.Series, error) {
	if len(rams) == 0 {
		return nil, fmt.Errorf("model: no RAM series")
	}
	sum, err := series.Sum(rams)
	if err != nil {
		return nil, err
	}
	scale := e.RAMScaling
	if scale <= 0 {
		scale = 1
	}
	return sum.Scale(scale), nil
}

// CombinedDisk predicts the disk write throughput series (bytes/sec) of
// co-located workloads by pushing the aggregate working set and update rate
// through the hardware profile at every time step.
func (e *Estimator) CombinedDisk(wsBytes, updateRates []*series.Series) (*series.Series, error) {
	if e.Disk == nil {
		return nil, fmt.Errorf("model: estimator has no disk profile")
	}
	if len(wsBytes) == 0 || len(wsBytes) != len(updateRates) {
		return nil, fmt.Errorf("model: mismatched series counts ws=%d rates=%d", len(wsBytes), len(updateRates))
	}
	wsSum, err := series.Sum(wsBytes)
	if err != nil {
		return nil, err
	}
	rateSum, err := series.Sum(updateRates)
	if err != nil {
		return nil, err
	}
	if wsSum.Len() != rateSum.Len() {
		return nil, series.ErrMismatch
	}
	out := wsSum.Clone()
	for i := range out.Values {
		out.Values[i] = e.Disk.PredictWriteMBps(wsSum.Values[i], rateSum.Values[i]) * 1e6
	}
	return out, nil
}

// BaselineDisk is the naive estimate: a straight sum of each workload's
// measured standalone disk writes. Because an idle-flushing DBMS uses spare
// bandwidth, this overstates the requirement badly at high load (up to 32×
// in the paper's Figure 6).
func (e *Estimator) BaselineDisk(writeBps []*series.Series) (*series.Series, error) {
	if len(writeBps) == 0 {
		return nil, fmt.Errorf("model: no disk series")
	}
	return series.Sum(writeBps)
}

// HybridDisk implements the paper's Section 7.2 suggestion: "one could
// create a hybrid model that uses the baseline for percentiles below 30%".
// Time steps whose naive-baseline value falls below that baseline's
// lowPct-th percentile use the baseline (which is accurate at low load);
// the rest use the profile-based model (accurate near saturation, which is
// what consolidation decisions depend on).
func (e *Estimator) HybridDisk(wsBytes, updateRates, measuredBps []*series.Series, lowPct float64) (*series.Series, error) {
	pred, err := e.CombinedDisk(wsBytes, updateRates)
	if err != nil {
		return nil, err
	}
	base, err := e.BaselineDisk(measuredBps)
	if err != nil {
		return nil, err
	}
	if base.Len() != pred.Len() {
		return nil, series.ErrMismatch
	}
	cut, err := stats.Percentile(base.Values, lowPct)
	if err != nil {
		return nil, err
	}
	out := pred.Clone()
	for t, b := range base.Values {
		if b <= cut {
			out.Values[t] = b
		}
	}
	return out, nil
}

// DiskFeasible reports whether the combined workload fits the disk: the
// predicted write throughput stays within the budget at every time step, and
// the aggregate update rate stays within the saturation envelope.
//
// Boundary semantics follow EnvelopeFeasible and core's objective: exactly
// at the budget or exactly at the envelope is feasible; only strict excess
// rejects. In particular an all-idle placement (aggregate rate 0) is always
// envelope-feasible, even where the clamped envelope is 0 — the old `>=`
// checks rejected such placements spuriously.
func (e *Estimator) DiskFeasible(wsBytes, updateRates []*series.Series, budgetBps float64) (bool, error) {
	pred, err := e.CombinedDisk(wsBytes, updateRates)
	if err != nil {
		return false, err
	}
	if pred.Max() > budgetBps {
		return false, nil
	}
	if e.Disk.HasEnvelope {
		wsSum, err := series.Sum(wsBytes)
		if err != nil {
			return false, err
		}
		rateSum, err := series.Sum(updateRates)
		if err != nil {
			return false, err
		}
		for i := range rateSum.Values {
			if !EnvelopeFeasible(rateSum.Values[i], e.Disk.MaxRowsPerSec(wsSum.Values[i])) {
				return false, nil
			}
		}
	}
	return true, nil
}
