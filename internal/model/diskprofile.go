// Package model implements Kairos' combined-load estimator (paper Section
// 4): linear composition with overhead correction for CPU, working-set
// summation for RAM, and — the hard part — an empirical, hardware-specific
// disk model built by sweeping a DBMS/OS/disk configuration with a synthetic
// OLTP workload across working-set sizes and row-update rates, then fitting
// a second-order Least-Absolute-Residuals polynomial (Figure 4).
//
// The key property the profile exploits (Section 4.1): running multiple
// databases with aggregate working set X at aggregate update throughput Y
// produces the same disk I/O as a single workload with working set X at
// rate Y — so one profile predicts arbitrary workload mixes.
package model

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/polyfit"
	"kairos/internal/workload"
)

// ProfilePoint is one measured sweep point.
type ProfilePoint struct {
	// WSMB is the working-set size in megabytes.
	//kairos:unit MB
	WSMB float64 `json:"ws_mb"`
	// DemandRows and AchievedRows are the demanded and completed row-update
	// rates in rows/sec.
	DemandRows   float64 `json:"demand_rows"`   //kairos:unit RowsPerSec
	AchievedRows float64 `json:"achieved_rows"` //kairos:unit RowsPerSec
	// WriteMBps is the measured total disk write throughput (log + pages).
	//kairos:unit MBps
	WriteMBps float64 `json:"write_mbps"`
	// Saturated marks points where the disk could not keep up.
	Saturated bool `json:"saturated"`
}

// DiskProfile is the empirical transfer function of one
// DBMS/OS/hardware configuration.
type DiskProfile struct {
	// Fit maps (wsMB, rowsPerSec) → write MB/s; a degree-2 2-D polynomial
	// fitted with least absolute residuals, as in the paper.
	Fit polyfit.Poly2D `json:"fit"`
	// Envelope maps wsMB → the maximum sustainable row-update rate (the
	// paper's thick dashed quadratic in Figure 4).
	Envelope polyfit.Poly1D `json:"envelope"`
	// HasEnvelope reports whether any sweep point saturated the disk (the
	// envelope is meaningless otherwise).
	HasEnvelope bool `json:"has_envelope"`
	// Points is the raw sweep data.
	Points []ProfilePoint `json:"points"`
	// WSMinMB and WSMaxMB bound the working-set range the profile was
	// fitted on; predictions clamp the working set into this range, since
	// a degree-2 polynomial extrapolates wildly outside its data.
	WSMinMB float64 `json:"ws_min_mb"` //kairos:unit MB
	WSMaxMB float64 `json:"ws_max_mb"` //kairos:unit MB
	// ConfigName describes the profiled configuration.
	ConfigName string `json:"config_name"`
}

// clampWS restricts a working-set size (MB) to the fitted range.
//
//kairos:unit wsMB MB
//kairos:unit return MB
func (p *DiskProfile) clampWS(wsMB float64) float64 {
	if p.WSMaxMB > p.WSMinMB {
		if wsMB < p.WSMinMB {
			return p.WSMinMB
		}
		if wsMB > p.WSMaxMB {
			return p.WSMaxMB
		}
	}
	return wsMB
}

// PredictWriteMBps estimates the disk write throughput of a combined
// workload with the given aggregate working set and row-update rate.
//
//kairos:unit wsBytes Bytes
//kairos:unit rowsPerSec RowsPerSec
//kairos:unit return MBps
func (p *DiskProfile) PredictWriteMBps(wsBytes, rowsPerSec float64) float64 {
	v := p.Fit.Eval(p.clampWS(wsBytes/1e6), rowsPerSec)
	if v < 0 {
		return 0
	}
	return v
}

// MaxRowsPerSec returns the saturation row-update rate for an aggregate
// working set, from the envelope fit. It returns +Inf-like large values only
// if the profile never saturated; callers should check HasEnvelope.
//
// The fitted quadratic can dip negative for working sets near the top of the
// sweep range; a negative sustainable rate is meaningless, so the result is
// clamped to 0. A zero envelope means "no update rate is sustainable at this
// working set": per the boundary rule (see EnvelopeFeasible), an aggregate
// rate of exactly 0 is still feasible there, and any positive rate is not.
//
//kairos:unit wsBytes Bytes
//kairos:unit return RowsPerSec
func (p *DiskProfile) MaxRowsPerSec(wsBytes float64) float64 {
	v := p.Envelope.Eval(p.clampWS(wsBytes / 1e6))
	if v < 0 {
		return 0
	}
	return v
}

// EnvelopeFeasible is the single boundary rule every envelope check in the
// system uses: an aggregate row-update rate is sustainable iff it does not
// exceed the envelope, with exactly-at-envelope counting as feasible — the
// same "at capacity is feasible" convention core's objective applies to CPU,
// RAM and the disk-write budget. With a zero (clamped) envelope only a zero
// rate passes; the old `rate >= max` / `max > 0` variants either rejected
// idle placements (rate 0 vs envelope 0) or silently disabled the check for
// large working sets.
//
//kairos:unit rowsPerSec RowsPerSec
//kairos:unit maxRowsPerSec RowsPerSec
func EnvelopeFeasible(rowsPerSec, maxRowsPerSec float64) bool {
	return rowsPerSec <= maxRowsPerSec
}

// Save writes the profile as JSON.
func (p *DiskProfile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadProfile reads a profile saved by Save.
func LoadProfile(r io.Reader) (*DiskProfile, error) {
	var p DiskProfile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("model: decoding disk profile: %w", err)
	}
	return &p, nil
}

// Profiler sweeps a machine configuration with a controlled synthetic
// workload — the paper's offline profiling tool ("this takes about two
// hours" on real hardware; seconds on the simulator).
type Profiler struct {
	// DBMS is the instance configuration to profile. The buffer pool must
	// hold the largest working set in the sweep.
	DBMS dbms.Config
	// Disk is the disk hardware to profile.
	Disk disk.Params
	// WSPointsMB are the working-set sizes to sweep.
	WSPointsMB []float64
	// RatePoints are the demanded row-update rates to sweep.
	RatePoints []float64
	// Settle and Measure are the per-point warm-up and measurement windows.
	Settle, Measure time.Duration
	// Tick is the simulation step.
	Tick time.Duration
	// ConfigName labels the resulting profile.
	ConfigName string
}

// DefaultProfiler returns a profiler for the paper's test server sweeping
// the Figure 4 ranges: working sets 1000–3500 MB, rates up to 20K rows/sec.
func DefaultProfiler() Profiler {
	cfg := dbms.DefaultConfig()
	cfg.BufferPoolBytes = 8 << 30 // hold the largest working set with slack
	// The sweep characterizes the disk; give the profiling instance enough
	// CPU that the processor never becomes the bottleneck within the grid.
	cfg.CPUCores = 16
	cfg.CoreOpsPerSec = 2.5e6
	return Profiler{
		DBMS:       cfg,
		Disk:       disk.Server7200SATA(),
		WSPointsMB: []float64{1000, 1500, 2000, 2500, 3000, 3500},
		RatePoints: []float64{500, 1000, 2000, 4000, 8000, 12000, 16000, 20000, 30000, 40000},
		Settle:     40 * time.Second,
		Measure:    60 * time.Second,
		Tick:       100 * time.Millisecond,
		ConfigName: "mysql-7200rpm-sata",
	}
}

// Run executes the sweep and fits the profile.
func (pr Profiler) Run() (*DiskProfile, error) {
	if len(pr.WSPointsMB) == 0 || len(pr.RatePoints) == 0 {
		return nil, fmt.Errorf("model: empty sweep grid")
	}
	if pr.Tick <= 0 || pr.Measure < pr.Tick {
		return nil, fmt.Errorf("model: invalid timing (tick=%v measure=%v)", pr.Tick, pr.Measure)
	}
	var points []ProfilePoint
	for _, wsMB := range pr.WSPointsMB {
		wsPages := int64(wsMB * 1e6 / float64(pr.DBMS.PageSize))
		if wsPages*int64(pr.DBMS.PageSize) > pr.DBMS.BufferPoolBytes {
			return nil, fmt.Errorf("model: working set %v MB exceeds buffer pool", wsMB)
		}
		for _, rate := range pr.RatePoints {
			pt, err := pr.measurePoint(wsPages, wsMB, rate)
			if err != nil {
				return nil, err
			}
			points = append(points, pt)
		}
	}
	return fitProfile(points, pr.ConfigName)
}

// measurePoint runs one (working set, rate) cell of the sweep on a fresh
// instance and disk.
func (pr Profiler) measurePoint(wsPages int64, wsMB, rate float64) (ProfilePoint, error) {
	d, err := disk.New(pr.Disk)
	if err != nil {
		return ProfilePoint{}, err
	}
	in, err := dbms.NewInstance(pr.DBMS, d, 0)
	if err != nil {
		return ProfilePoint{}, err
	}
	// The sweep workload is update-only over the working set, like the
	// paper's TPC-C-derived generator with controlled update rate.
	spec := workload.Spec{
		Name:            "sweep",
		DataPages:       wsPages,
		WorkingSetPages: wsPages,
		TPS:             rate, // one update per "transaction"
		UpdatesPerTxn:   1,
	}
	gen, err := workload.Provision(in, spec, true)
	if err != nil {
		return ProfilePoint{}, err
	}
	run := func(dur time.Duration) {
		ticks := int(dur / pr.Tick)
		for t := 0; t < ticks; t++ {
			in.Tick(pr.Tick, []dbms.Request{gen.Next(pr.Tick)})
		}
	}
	run(pr.Settle)
	in.DropBacklog()
	gen.DB().TakeStats()
	d.TakeStats()
	run(pr.Measure)
	dwin := d.TakeStats()
	wwin := gen.DB().TakeStats()

	sec := pr.Measure.Seconds()
	achieved := float64(wwin.Updates) / sec
	return ProfilePoint{
		WSMB:         wsMB,
		DemandRows:   rate,
		AchievedRows: achieved,
		WriteMBps:    float64(dwin.WriteBytes()) / 1e6 / sec,
		Saturated:    achieved < rate*0.95,
	}, nil
}

// fitProfile fits the LAR polynomial and the saturation envelope.
func fitProfile(points []ProfilePoint, name string) (*DiskProfile, error) {
	xs := make([]float64, len(points)) // wsMB
	ys := make([]float64, len(points)) // achieved rows/sec
	zs := make([]float64, len(points)) // write MB/s
	for i, pt := range points {
		xs[i], ys[i], zs[i] = pt.WSMB, pt.AchievedRows, pt.WriteMBps
	}
	fit, err := polyfit.FitLAR2D(xs, ys, zs, 2, 30)
	if err != nil {
		return nil, fmt.Errorf("model: LAR fit: %w", err)
	}

	// Envelope: for each working-set size, the maximum achieved rate among
	// saturated points (black circles in Figure 4), fitted quadratically.
	maxByWS := map[float64]float64{}
	sawSaturation := false
	for _, pt := range points {
		if pt.Saturated {
			sawSaturation = true
		}
		if pt.AchievedRows > maxByWS[pt.WSMB] {
			maxByWS[pt.WSMB] = pt.AchievedRows
		}
	}
	var ex, ey []float64
	for ws, maxRate := range maxByWS {
		ex = append(ex, ws)
		ey = append(ey, maxRate)
	}
	prof := &DiskProfile{Fit: fit, Points: points, ConfigName: name, HasEnvelope: sawSaturation}
	prof.WSMinMB, prof.WSMaxMB = points[0].WSMB, points[0].WSMB
	for _, pt := range points {
		if pt.WSMB < prof.WSMinMB {
			prof.WSMinMB = pt.WSMB
		}
		if pt.WSMB > prof.WSMaxMB {
			prof.WSMaxMB = pt.WSMB
		}
	}
	if len(ex) >= 3 && sawSaturation {
		env, err := polyfit.Fit1D(ex, ey, 2)
		if err != nil {
			return nil, fmt.Errorf("model: envelope fit: %w", err)
		}
		prof.Envelope = env
	} else {
		// Degenerate grids: fall back to a flat envelope at the largest
		// achieved rate so MaxRowsPerSec still returns something sane.
		var mx float64
		for _, r := range ey {
			if r > mx {
				mx = r
			}
		}
		prof.Envelope = polyfit.Poly1D{Coeffs: []float64{mx}}
	}
	return prof, nil
}
