package model

import (
	"bytes"
	"math"
	"testing"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/floats"
	"kairos/internal/polyfit"
	"kairos/internal/series"
)

// quickProfiler returns a small, fast sweep for tests.
func quickProfiler() Profiler {
	pr := DefaultProfiler()
	pr.WSPointsMB = []float64{200, 500, 1000}
	pr.RatePoints = []float64{500, 2000, 8000, 20000, 40000}
	pr.DBMS.BufferPoolBytes = 2 << 30
	pr.Settle = 40 * time.Second
	pr.Measure = 30 * time.Second
	return pr
}

// sharedProfile is built once; the profiler is deterministic.
var sharedProfile *DiskProfile

func getProfile(t *testing.T) *DiskProfile {
	t.Helper()
	if testing.Short() {
		// The simulated hardware sweep dominates this package's runtime
		// (~18s); profile-backed assertions run in full mode only.
		t.Skip("skipping profiler sweep in -short mode")
	}
	if sharedProfile == nil {
		p, err := quickProfiler().Run()
		if err != nil {
			t.Fatalf("profiler: %v", err)
		}
		sharedProfile = p
	}
	return sharedProfile
}

func TestProfilerValidation(t *testing.T) {
	pr := quickProfiler()
	pr.WSPointsMB = nil
	if _, err := pr.Run(); err == nil {
		t.Error("empty grid accepted")
	}
	pr = quickProfiler()
	pr.Measure = 0
	if _, err := pr.Run(); err == nil {
		t.Error("zero measure window accepted")
	}
	pr = quickProfiler()
	pr.WSPointsMB = []float64{100000} // exceeds pool
	if _, err := pr.Run(); err == nil {
		t.Error("working set above pool accepted")
	}
}

func TestProfileShape(t *testing.T) {
	p := getProfile(t)
	if len(p.Points) != 15 {
		t.Fatalf("expected 15 sweep points, got %d", len(p.Points))
	}
	// Figure 4, property 1: at fixed working set, writes grow sub-linearly
	// with the (achieved) update rate but do grow.
	lowRate := p.PredictWriteMBps(500e6, 1000)
	highRate := p.PredictWriteMBps(500e6, 8000)
	if highRate <= lowRate {
		t.Errorf("writes should grow with rate: %v (1K) vs %v (8K)", lowRate, highRate)
	}
	if highRate >= 8*lowRate {
		t.Errorf("writes should grow sub-linearly: 8x rate gave %vx writes", highRate/lowRate)
	}
	// Figure 4, property 2: at fixed rate, a larger working set needs more
	// write throughput.
	smallWS := p.PredictWriteMBps(200e6, 4000)
	largeWS := p.PredictWriteMBps(1000e6, 4000)
	if largeWS <= smallWS {
		t.Errorf("writes should grow with working set: %v (200MB) vs %v (1GB)", smallWS, largeWS)
	}
}

func TestProfileSaturationDetected(t *testing.T) {
	p := getProfile(t)
	// 20K rows/sec against one 7200 RPM disk must saturate.
	saturated := 0
	for _, pt := range p.Points {
		if pt.Saturated {
			saturated++
		}
		if pt.AchievedRows > pt.DemandRows*1.05 {
			t.Errorf("achieved %v exceeds demand %v", pt.AchievedRows, pt.DemandRows)
		}
	}
	if saturated == 0 {
		t.Error("no sweep point saturated the disk; grid too easy")
	}
	if !p.HasEnvelope {
		t.Error("envelope missing despite saturation")
	}
}

func TestEnvelopeDecreasesWithWS(t *testing.T) {
	// Figure 4's dashed line: larger working sets yield lower max update
	// throughput (more distinct pages per update to write back).
	p := getProfile(t)
	small := p.MaxRowsPerSec(200e6)
	large := p.MaxRowsPerSec(1000e6)
	if small <= 0 || large <= 0 {
		t.Fatalf("envelope not positive: %v / %v", small, large)
	}
	if large >= small {
		t.Errorf("envelope should fall with working set: %v (200MB) vs %v (1GB)", small, large)
	}
}

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	p := getProfile(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.ConfigName != p.ConfigName || len(q.Points) != len(p.Points) {
		t.Error("round trip lost data")
	}
	for _, ws := range []float64{200e6, 600e6, 900e6} {
		for _, r := range []float64{1000, 5000} {
			a, b := p.PredictWriteMBps(ws, r), q.PredictWriteMBps(ws, r)
			if math.Abs(a-b) > 1e-9 {
				t.Errorf("prediction changed after round trip: %v vs %v", a, b)
			}
		}
	}
	if _, err := LoadProfile(bytes.NewBufferString("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestPredictionNonNegative(t *testing.T) {
	p := getProfile(t)
	for _, ws := range []float64{0, 1e6, 5e9} {
		for _, r := range []float64{0, 100, 1e6} {
			if v := p.PredictWriteMBps(ws, r); v < 0 {
				t.Errorf("negative prediction %v at ws=%v rate=%v", v, ws, r)
			}
		}
	}
	if p.MaxRowsPerSec(1e12) < 0 {
		t.Error("negative envelope")
	}
}

// --- combined estimator ---

func constSeries(v float64, n int) *series.Series {
	return series.Constant(time.Unix(0, 0), time.Minute, n, v)
}

func TestCombinedCPUSubtractsOverhead(t *testing.T) {
	e := NewEstimator(nil)
	e.CPUOverheadPerInstance = 0.02
	cpus := []*series.Series{constSeries(0.10, 4), constSeries(0.20, 4), constSeries(0.30, 4)}
	got, err := e.CombinedCPU(cpus)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.10 + 0.20 + 0.30 - 2*0.02
	if math.Abs(got.Values[0]-want) > 1e-12 {
		t.Errorf("combined CPU = %v, want %v", got.Values[0], want)
	}
	base, err := e.BaselineCPU(cpus)
	if err != nil {
		t.Fatal(err)
	}
	if base.Values[0] <= got.Values[0] {
		t.Error("baseline should exceed the corrected estimate")
	}
	if _, err := e.CombinedCPU(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCombinedCPUClamps(t *testing.T) {
	e := NewEstimator(nil)
	got, err := e.CombinedCPU([]*series.Series{constSeries(0.9, 2), constSeries(0.8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0] != 1 {
		t.Errorf("combined CPU should clamp at 1, got %v", got.Values[0])
	}
}

func TestCombinedRAMScaling(t *testing.T) {
	e := NewEstimator(nil)
	e.RAMScaling = 0.7
	got, err := e.CombinedRAM([]*series.Series{constSeries(1e9, 3), constSeries(2e9, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Values[0]-2.1e9) > 1 {
		t.Errorf("scaled RAM = %v, want 2.1e9", got.Values[0])
	}
	e.RAMScaling = 0 // treated as 1
	got, _ = e.CombinedRAM([]*series.Series{constSeries(1e9, 3)})
	if got.Values[0] != 1e9 {
		t.Errorf("zero scaling should mean no scaling, got %v", got.Values[0])
	}
	if _, err := e.CombinedRAM(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCombinedDiskUsesProfile(t *testing.T) {
	p := getProfile(t)
	e := NewEstimator(p)
	ws := []*series.Series{constSeries(200e6, 2), constSeries(300e6, 2)}
	rates := []*series.Series{constSeries(1000, 2), constSeries(2000, 2)}
	got, err := e.CombinedDisk(ws, rates)
	if err != nil {
		t.Fatal(err)
	}
	want := p.PredictWriteMBps(500e6, 3000) * 1e6
	if math.Abs(got.Values[0]-want) > 1e-6 {
		t.Errorf("combined disk = %v, want %v", got.Values[0], want)
	}
	// Error paths.
	if _, err := e.CombinedDisk(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := e.CombinedDisk(ws, rates[:1]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := (&Estimator{}).CombinedDisk(ws, rates); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestDiskFeasible(t *testing.T) {
	p := getProfile(t)
	e := NewEstimator(p)
	ws := []*series.Series{constSeries(300e6, 2)}
	lowRate := []*series.Series{constSeries(500, 2)}
	hugeRate := []*series.Series{constSeries(1e6, 2)}

	ok, err := e.DiskFeasible(ws, lowRate, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("light load should be feasible")
	}
	ok, err = e.DiskFeasible(ws, hugeRate, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("1M rows/sec should exceed the envelope")
	}
	// Tiny budget rejects everything with writes.
	ok, err = e.DiskFeasible(ws, lowRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("1 B/s budget should be infeasible")
	}
}

// TestCombinedPropertyMatchesSingle verifies the paper's core modeling
// property on the simulator itself: N databases with aggregate working set
// X and aggregate rate Y produce (approximately) the same disk write
// throughput as one database with working set X at rate Y.
func TestCombinedPropertyMatchesSingle(t *testing.T) {
	run := func(nDBs int, totalWSPages int64, totalRate float64) float64 {
		d, err := disk.New(disk.Server7200SATA())
		if err != nil {
			t.Fatal(err)
		}
		cfg := dbms.DefaultConfig()
		cfg.BufferPoolBytes = 2 << 30
		in, err := dbms.NewInstance(cfg, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct {
			db *dbms.Database
			ws int64
		}
		dbs := make([]pair, nDBs)
		for i := range dbs {
			db, err := in.CreateDatabase(string(rune('a'+i)), totalWSPages/int64(nDBs))
			if err != nil {
				t.Fatal(err)
			}
			in.Preload(db, totalWSPages/int64(nDBs))
			dbs[i] = pair{db, totalWSPages / int64(nDBs)}
		}
		dt := 100 * time.Millisecond
		perDBUpdates := totalRate / float64(nDBs) * dt.Seconds()
		carry := 0.0
		for tick := 0; tick < 600; tick++ {
			reqs := make([]dbms.Request, nDBs)
			carry += perDBUpdates
			n := int(carry)
			carry -= float64(n)
			for i, p := range dbs {
				reqs[i] = dbms.Request{DB: p.db, Updates: n, WorkingSetPages: p.ws}
			}
			in.Tick(dt, reqs)
		}
		st := d.Stats()
		return float64(st.WriteBytes()) / 1e6 / st.ElapsedTime.Seconds()
	}
	single := run(1, 40000, 3000)
	multi := run(4, 40000, 3000)
	if single <= 0 || multi <= 0 {
		t.Fatalf("no writes measured: single=%v multi=%v", single, multi)
	}
	ratio := multi / single
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("aggregation property violated: single=%.2f MB/s multi=%.2f MB/s (ratio %.2f)",
			single, multi, ratio)
	}
}

func TestHybridDisk(t *testing.T) {
	p := getProfile(t)
	e := NewEstimator(p)
	// Two workloads with a time-varying baseline: low in the first half,
	// high in the second.
	n := 10
	ws := []*series.Series{constSeries(300e6, n)}
	rates := []*series.Series{constSeries(2000, n)}
	measured := series.Constant(time.Unix(0, 0), time.Minute, n, 0)
	for t2 := 0; t2 < n; t2++ {
		if t2 < n/2 {
			measured.Values[t2] = 1e6 // quiet
		} else {
			measured.Values[t2] = 50e6 // busy
		}
	}
	hybrid, err := e.HybridDisk(ws, rates, []*series.Series{measured}, 50)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := e.CombinedDisk(ws, rates)
	if err != nil {
		t.Fatal(err)
	}
	// Low-percentile steps use the baseline; high steps use the model.
	for t2 := 0; t2 < n/2; t2++ {
		if !floats.Same(hybrid.Values[t2], measured.Values[t2]) {
			t.Errorf("step %d: hybrid = %v, want baseline %v", t2, hybrid.Values[t2], measured.Values[t2])
		}
	}
	for t2 := n/2 + 1; t2 < n; t2++ {
		if !floats.Same(hybrid.Values[t2], pred.Values[t2]) {
			t.Errorf("step %d: hybrid = %v, want model %v", t2, hybrid.Values[t2], pred.Values[t2])
		}
	}
	// Error paths.
	if _, err := e.HybridDisk(nil, nil, nil, 30); err == nil {
		t.Error("empty inputs accepted")
	}
	short := []*series.Series{constSeries(1e6, n-1)}
	if _, err := e.HybridDisk(ws, rates, short, 30); err == nil {
		t.Error("length mismatch accepted")
	}
}

// syntheticEnvelopeProfile hand-writes a profile whose envelope goes
// negative (and so clamps to 0) for large working sets, with a zero write
// fit so envelope behavior is isolated from the write-budget check.
func syntheticEnvelopeProfile() *DiskProfile {
	return &DiskProfile{
		Fit:         polyfit.Poly2D{Degree: 2, Coeffs: []float64{0, 0, 0, 0, 0, 0}},
		Envelope:    polyfit.Poly1D{Coeffs: []float64{9000, -1.5}}, // 0 at 6000 MB
		HasEnvelope: true,
		WSMinMB:     100,
		WSMaxMB:     100000,
	}
}

// TestMaxRowsPerSecClampsNegativeEnvelope pins the clamp: beyond the
// envelope's root the fitted quadratic goes negative and the sustainable
// rate must read 0, not a negative rate.
func TestMaxRowsPerSecClampsNegativeEnvelope(t *testing.T) {
	p := syntheticEnvelopeProfile()
	if got := p.MaxRowsPerSec(1000e6); got != 7500 {
		t.Errorf("MaxRowsPerSec(1000 MB) = %v, want 7500", got)
	}
	if got := p.MaxRowsPerSec(50000e6); got != 0 {
		t.Errorf("MaxRowsPerSec(50 GB) = %v, want 0 (clamped)", got)
	}
}

// TestEnvelopeFeasibleBoundary pins the single boundary rule: exactly at
// the envelope is feasible, strictly beyond is not, and a zero envelope
// admits exactly the zero rate.
func TestEnvelopeFeasibleBoundary(t *testing.T) {
	cases := []struct {
		rate, max float64
		want      bool
	}{
		{0, 0, true},     // idle placement over a saturated working set
		{0, 100, true},   // idle under headroom
		{100, 100, true}, // exactly at the envelope
		{100.01, 100, false},
		{1, 0, false}, // any positive rate over a zero envelope
	}
	for _, c := range cases {
		if got := EnvelopeFeasible(c.rate, c.max); got != c.want {
			t.Errorf("EnvelopeFeasible(%v, %v) = %v, want %v", c.rate, c.max, got, c.want)
		}
	}
}

// TestDiskFeasibleZeroRateLargeWorkingSet is the regression test for the
// spurious rejection this PR fixes: with the envelope clamped to 0 at a
// large aggregate working set, an idle placement (update rate 0) used to
// fail the old `rateSum >= MaxRowsPerSec` check — `0 >= 0` — even though
// zero updates are trivially sustainable.
func TestDiskFeasibleZeroRateLargeWorkingSet(t *testing.T) {
	e := NewEstimator(syntheticEnvelopeProfile())
	ws := []*series.Series{constSeries(30000e6, 3), constSeries(30000e6, 3)}
	idle := []*series.Series{constSeries(0, 3), constSeries(0, 3)}
	ok, err := e.DiskFeasible(ws, idle, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("idle workloads over a saturated working set must be disk-feasible")
	}
	// A positive rate over the zero envelope is genuinely unsustainable.
	busy := []*series.Series{constSeries(10, 3), constSeries(10, 3)}
	ok, err = e.DiskFeasible(ws, busy, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("positive update rate over a zero envelope must be infeasible")
	}
}

// TestDiskFeasibleAtCapacityBoundaries verifies exactly-at-capacity is
// feasible for both the write budget and the envelope, matching core's
// objective semantics.
func TestDiskFeasibleAtCapacityBoundaries(t *testing.T) {
	// Fit: write MB/s = 0.001·rate; envelope flat at 5000 rows/sec.
	p := &DiskProfile{
		Fit:         polyfit.Poly2D{Degree: 2, Coeffs: []float64{0, 0, 0.001, 0, 0, 0}},
		Envelope:    polyfit.Poly1D{Coeffs: []float64{5000}},
		HasEnvelope: true,
		WSMinMB:     100,
		WSMaxMB:     10000,
	}
	e := NewEstimator(p)
	ws := []*series.Series{constSeries(500e6, 2)}

	// Exactly at the envelope: 5000 rows/sec.
	atEnv := []*series.Series{constSeries(5000, 2)}
	if ok, err := e.DiskFeasible(ws, atEnv, 1e12); err != nil || !ok {
		t.Errorf("exactly-at-envelope = (%v, %v), want feasible", ok, err)
	}
	over := []*series.Series{constSeries(5000.5, 2)}
	if ok, err := e.DiskFeasible(ws, over, 1e12); err != nil || ok {
		t.Errorf("above-envelope = (%v, %v), want infeasible", ok, err)
	}
	// Exactly at the write budget: 1000 rows/sec → 1 MB/s = 1e6 B/s.
	atBudget := []*series.Series{constSeries(1000, 2)}
	if ok, err := e.DiskFeasible(ws, atBudget, 1e6); err != nil || !ok {
		t.Errorf("exactly-at-budget = (%v, %v), want feasible", ok, err)
	}
	if ok, err := e.DiskFeasible(ws, atBudget, 0.999e6); err != nil || ok {
		t.Errorf("above-budget = (%v, %v), want infeasible", ok, err)
	}
}
