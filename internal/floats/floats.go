// Package floats holds the canonical floating-point comparison helpers.
// The solver's correctness discipline makes float equality load-bearing
// — screened and unscreened search must accept bit-identical plans, and
// the incremental pricers must match the scratch pricer bit for bit — so
// the kairoslint floatdet analyzer forbids raw ==/!= between computed
// floats and routes every exact comparison through this package, where
// the intent is spelled out.
package floats

import "math"

// Same reports exact (bit-level, modulo -0 == +0) equality. Use it where
// the comparison is part of a bit-identity contract — anywhere a one-ulp
// perturbation MUST flip the result. NaN is never Same as anything,
// matching ==.
func Same(a, b float64) bool {
	return a == b //kairoslint:allow floatdet: this is the canonical exact-equality helper
}

// Near reports |a-b| <= tol. NaN operands are never Near; infinities of
// equal sign are Near regardless of tol.
func Near(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //kairoslint:allow floatdet: infinities compare exactly by design
	}
	return math.Abs(a-b) <= tol
}

// NearRel reports relative closeness: |a-b| <= tol·max(|a|,|b|), with an
// exact-equality fast path so zeros and infinities compare sanely.
func NearRel(a, b, tol float64) bool {
	if Same(a, b) {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}
