// Package direct implements the DIRECT (DIviding RECTangles) global
// optimization algorithm of Jones, Perttunen and Stuckman — the solver the
// paper uses (via Tomlab) for its mixed-integer non-linear consolidation
// program (Section 5: "we employ a general-purpose global optimization
// algorithm called DIRECT").
//
// DIRECT is a deterministic, derivative-free, Lipschitz-inspired method: it
// normalizes the search box to the unit hypercube, keeps a set of
// hyper-rectangles with sampled centers, and at each iteration selects the
// "potentially optimal" rectangles — those on the lower convex hull of the
// (size, f) scatter — and trisects them along their longest sides. The
// Epsilon parameter trades global exploration against local refinement,
// which is exactly the knob Section 6 of the paper tunes after bounding the
// number of servers.
//
// The engine evaluates each iteration's candidate points as one batch, so
// MinimizeParallel can spread a batch across a worker pool: every worker
// owns a private Objective (cloned evaluator state) and writes results into
// its own index slots, which keeps the search bit-identical to the
// sequential path for any worker count.
package direct

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"kairos/internal/floats"
)

// defaultWorkers is the pool size when Options.Workers is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Objective is a function to minimize. The slice must not be retained.
type Objective func(x []float64) float64

// Options controls the optimizer budget and behaviour.
type Options struct {
	// MaxFevals caps objective evaluations (default 5000).
	MaxFevals int
	// MaxIters caps DIRECT iterations (default 1000).
	MaxIters int
	// Epsilon is the potential-optimality slack: larger values bias the
	// search toward rectangles that promise global improvement, smaller
	// values allow more local polishing around the incumbent (default 1e-4).
	Epsilon float64
	// Target stops the search early once f ≤ Target (use -Inf to disable;
	// the zero value disables too when TargetSet is false). The condition is
	// checked after each completed iteration batch.
	Target float64
	// TargetSet enables Target.
	TargetSet bool
	// Workers sets the batch-evaluation parallelism for MinimizeParallel
	// (≤ 0 means one worker per GOMAXPROCS slot). Minimize ignores it.
	Workers int
	// Ctx optionally cancels the search between iterations: when it
	// expires, the best point found so far is returned along with the
	// context's error. Nil means never cancel.
	Ctx context.Context
}

// Result is the outcome of a minimization.
type Result struct {
	// X is the best point found, in original (unnormalized) coordinates.
	X []float64
	// F is the objective value at X.
	F float64
	// Fevals is the number of objective evaluations performed.
	Fevals int
	// Iters is the number of DIRECT iterations performed.
	Iters int
}

// rect is one hyper-rectangle: a center point (normalized coordinates), its
// objective value, and per-dimension trisection levels (side i has length
// 3^-levels[i]).
type rect struct {
	center []float64
	f      float64
	levels []int8
	// d is the half-diagonal, the rectangle's "size" in the (size, f)
	// potential-optimality plane.
	d float64
}

func (r *rect) computeSize() {
	var s float64
	for _, l := range r.levels {
		side := math.Pow(3, -float64(l))
		s += side * side / 4
	}
	r.d = math.Sqrt(s)
}

// batchEvaler evaluates a batch of normalized points and returns one
// objective value per point, in order. Implementations may evaluate the
// points concurrently but must keep results index-aligned.
type batchEvaler func(points [][]float64) []float64

// checkBounds validates the search box.
func checkBounds(lower, upper []float64) (int, error) {
	n := len(lower)
	if n == 0 || len(upper) != n {
		return 0, fmt.Errorf("direct: bounds must be non-empty and equal length (got %d/%d)",
			len(lower), len(upper))
	}
	for i := range lower {
		if !(upper[i] > lower[i]) {
			return 0, fmt.Errorf("direct: upper[%d]=%v not greater than lower[%d]=%v",
				i, upper[i], i, lower[i])
		}
	}
	return n, nil
}

func (o *Options) applyDefaults() {
	if o.MaxFevals <= 0 {
		o.MaxFevals = 5000
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 1000
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
}

// Minimize runs DIRECT on f over the box [lower, upper]. The objective is
// called from the invoking goroutine only.
func Minimize(f Objective, lower, upper []float64, opt Options) (Result, error) {
	if f == nil {
		return Result{}, fmt.Errorf("direct: nil objective")
	}
	n, err := checkBounds(lower, upper)
	if err != nil {
		return Result{}, err
	}
	opt.applyDefaults()
	buf := make([]float64, n)
	eval := func(points [][]float64) []float64 {
		out := make([]float64, len(points))
		for i, x := range points {
			for d := range x {
				buf[d] = lower[d] + x[d]*(upper[d]-lower[d])
			}
			out[i] = f(buf)
		}
		return out
	}
	return minimizeBatched(eval, lower, upper, opt)
}

// MinimizeParallel runs DIRECT evaluating each iteration's candidate batch
// concurrently across a pool of opt.Workers goroutines. mkObj is invoked
// once per worker (worker indices 0..Workers-1) to create that worker's
// private Objective, so non-thread-safe evaluation state can be cloned per
// worker instead of locked. The search visits exactly the points the
// sequential engine would and is bit-identical to Minimize for objectives
// that agree across workers, regardless of the worker count.
func MinimizeParallel(mkObj func(worker int) Objective, lower, upper []float64, opt Options) (Result, error) {
	if mkObj == nil {
		return Result{}, fmt.Errorf("direct: nil objective factory")
	}
	n, err := checkBounds(lower, upper)
	if err != nil {
		return Result{}, err
	}
	opt.applyDefaults()
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers == 1 {
		return Minimize(mkObj(0), lower, upper, opt)
	}

	type workerState struct {
		obj Objective
		buf []float64
	}
	pool := make([]workerState, workers)
	for w := range pool {
		pool[w] = workerState{obj: mkObj(w), buf: make([]float64, n)}
		if pool[w].obj == nil {
			return Result{}, fmt.Errorf("direct: objective factory returned nil for worker %d", w)
		}
	}
	eval := func(points [][]float64) []float64 {
		out := make([]float64, len(points))
		if len(points) == 0 {
			return out
		}
		// Contiguous slabs keep each worker's share deterministic and its
		// result writes disjoint.
		per := (len(points) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*per, (w+1)*per
			if lo >= len(points) {
				break
			}
			if hi > len(points) {
				hi = len(points)
			}
			wg.Add(1)
			go func(ws *workerState, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					for d, v := range points[i] {
						ws.buf[d] = lower[d] + v*(upper[d]-lower[d])
					}
					out[i] = ws.obj(ws.buf)
				}
			}(&pool[w], lo, hi)
		}
		wg.Wait()
		return out
	}
	return minimizeBatched(eval, lower, upper, opt)
}

// minimizeBatched is the shared DIRECT engine. Each iteration gathers every
// candidate point allowed by the remaining budget, evaluates the batch via
// eval, then processes results in gathering order — so the trajectory does
// not depend on how eval schedules the batch internally.
func minimizeBatched(eval batchEvaler, lower, upper []float64, opt Options) (Result, error) {
	n := len(lower)
	fevals := 0

	// Seed: the center of the cube.
	c0 := make([]float64, n)
	for i := range c0 {
		c0[i] = 0.5
	}
	fevals++
	first := &rect{center: c0, f: eval([][]float64{c0})[0], levels: make([]int8, n)}
	first.computeSize()
	rects := []*rect{first}

	best := first
	res := Result{Iters: 0}

	done := func() bool {
		return fevals >= opt.MaxFevals || (opt.TargetSet && best.f <= opt.Target)
	}
	cancelled := func() bool {
		if opt.Ctx == nil {
			return false
		}
		select {
		case <-opt.Ctx.Done():
			return true
		default:
			return false
		}
	}

	var ctxErr error
	for it := 0; it < opt.MaxIters && !done(); it++ {
		if cancelled() {
			ctxErr = opt.Ctx.Err()
			break
		}
		res.Iters = it + 1
		po := potentiallyOptimal(rects, best.f, opt.Epsilon)
		if len(po) == 0 {
			break
		}

		// Gather this iteration's candidate points: c ± delta·e_dim for each
		// longest dimension of each potentially-optimal rectangle, truncated
		// in deterministic order when the feval budget runs out.
		type probe struct {
			rectIdx    int
			dim        int
			loIdx      int // index of the c-delta point in the batch
			lo, hi     *rect
			bestOfPair float64
		}
		var probes []probe
		var points [][]float64
		planned := fevals
		for _, ri := range po {
			r := rects[ri]
			minLevel := r.levels[0]
			for _, l := range r.levels {
				if l < minLevel {
					minLevel = l
				}
			}
			delta := math.Pow(3, -float64(minLevel)) / 3
			for dim, l := range r.levels {
				if l != minLevel {
					continue
				}
				if planned+2 > opt.MaxFevals {
					break
				}
				mk := func(off float64) []float64 {
					c := append([]float64(nil), r.center...)
					c[dim] += off
					return c
				}
				probes = append(probes, probe{rectIdx: ri, dim: dim, loIdx: len(points)})
				points = append(points, mk(-delta), mk(+delta))
				planned += 2
			}
		}
		if len(points) == 0 {
			break
		}
		values := eval(points)
		fevals += len(points)

		// Process results rect by rect, in gathering order.
		for pi := 0; pi < len(probes); {
			ri := probes[pi].rectIdx
			r := rects[ri]
			var group []probe
			for pi < len(probes) && probes[pi].rectIdx == ri {
				p := probes[pi]
				p.lo = &rect{center: points[p.loIdx], f: values[p.loIdx]}
				p.hi = &rect{center: points[p.loIdx+1], f: values[p.loIdx+1]}
				if p.lo.f < best.f {
					best = p.lo
				}
				if p.hi.f < best.f {
					best = p.hi
				}
				p.bestOfPair = math.Min(p.lo.f, p.hi.f)
				group = append(group, p)
				pi++
			}
			// Divide along the probed dimensions, best pair first (the
			// original DIRECT ordering keeps good regions in big boxes).
			sort.SliceStable(group, func(a, b int) bool {
				return group[a].bestOfPair < group[b].bestOfPair
			})
			for _, p := range group {
				r.levels[p.dim]++
				p.lo.levels = append([]int8(nil), r.levels...)
				p.hi.levels = append([]int8(nil), r.levels...)
				p.lo.computeSize()
				p.hi.computeSize()
				rects = append(rects, p.lo, p.hi)
			}
			r.computeSize()
		}
	}

	res.Fevals = fevals
	res.F = best.f
	res.X = make([]float64, n)
	for i := range res.X {
		res.X[i] = lower[i] + best.center[i]*(upper[i]-lower[i])
	}
	return res, ctxErr
}

// potentiallyOptimal returns indices of rectangles on the lower-right convex
// hull of the (size, f) scatter that also promise sufficient improvement
// over fmin (the epsilon condition).
func potentiallyOptimal(rects []*rect, fmin, eps float64) []int {
	// Representative per size class: the rect with minimal f.
	type classRep struct {
		d   float64
		f   float64
		idx int
	}
	byClass := map[int64]classRep{}
	for i, r := range rects {
		key := int64(math.Round(r.d * 1e12))
		rep, ok := byClass[key]
		if !ok || r.f < rep.f {
			byClass[key] = classRep{d: r.d, f: r.f, idx: i}
		}
	}
	reps := make([]classRep, 0, len(byClass))
	for _, rep := range byClass {
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(a, b int) bool {
		if !floats.Same(reps[a].d, reps[b].d) {
			return reps[a].d < reps[b].d
		}
		return reps[a].f < reps[b].f
	})

	// Lower convex hull over (d, f), d ascending.
	var hull []classRep
	for _, p := range reps {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Remove b if it lies above segment a→p.
			if (b.f-a.f)*(p.d-a.d) >= (p.f-a.f)*(b.d-a.d) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}

	// Epsilon condition: the rectangle must be able to beat
	// fmin − eps·|fmin| given the hull slope to its right neighbours.
	threshold := fmin - eps*math.Abs(fmin)
	var out []int
	for i, p := range hull {
		if i == len(hull)-1 {
			// The largest rectangle is always potentially optimal.
			out = append(out, p.idx)
			continue
		}
		next := hull[i+1]
		slope := (next.f - p.f) / (next.d - p.d)
		if p.f-slope*p.d <= threshold {
			out = append(out, p.idx)
		}
	}
	return out
}
