// Package direct implements the DIRECT (DIviding RECTangles) global
// optimization algorithm of Jones, Perttunen and Stuckman — the solver the
// paper uses (via Tomlab) for its mixed-integer non-linear consolidation
// program (Section 5: "we employ a general-purpose global optimization
// algorithm called DIRECT").
//
// DIRECT is a deterministic, derivative-free, Lipschitz-inspired method: it
// normalizes the search box to the unit hypercube, keeps a set of
// hyper-rectangles with sampled centers, and at each iteration selects the
// "potentially optimal" rectangles — those on the lower convex hull of the
// (size, f) scatter — and trisects them along their longest sides. The
// Epsilon parameter trades global exploration against local refinement,
// which is exactly the knob Section 6 of the paper tunes after bounding the
// number of servers.
package direct

import (
	"fmt"
	"math"
	"sort"
)

// Objective is a function to minimize. The slice must not be retained.
type Objective func(x []float64) float64

// Options controls the optimizer budget and behaviour.
type Options struct {
	// MaxFevals caps objective evaluations (default 5000).
	MaxFevals int
	// MaxIters caps DIRECT iterations (default 1000).
	MaxIters int
	// Epsilon is the potential-optimality slack: larger values bias the
	// search toward rectangles that promise global improvement, smaller
	// values allow more local polishing around the incumbent (default 1e-4).
	Epsilon float64
	// Target stops the search early once f ≤ Target (use -Inf to disable;
	// the zero value disables too when TargetSet is false).
	Target float64
	// TargetSet enables Target.
	TargetSet bool
}

// Result is the outcome of a minimization.
type Result struct {
	// X is the best point found, in original (unnormalized) coordinates.
	X []float64
	// F is the objective value at X.
	F float64
	// Fevals is the number of objective evaluations performed.
	Fevals int
	// Iters is the number of DIRECT iterations performed.
	Iters int
}

// rect is one hyper-rectangle: a center point (normalized coordinates), its
// objective value, and per-dimension trisection levels (side i has length
// 3^-levels[i]).
type rect struct {
	center []float64
	f      float64
	levels []int8
	// d is the half-diagonal, the rectangle's "size" in the (size, f)
	// potential-optimality plane.
	d float64
}

func (r *rect) computeSize() {
	var s float64
	for _, l := range r.levels {
		side := math.Pow(3, -float64(l))
		s += side * side / 4
	}
	r.d = math.Sqrt(s)
}

// Minimize runs DIRECT on f over the box [lower, upper].
func Minimize(f Objective, lower, upper []float64, opt Options) (Result, error) {
	n := len(lower)
	if n == 0 || len(upper) != n {
		return Result{}, fmt.Errorf("direct: bounds must be non-empty and equal length (got %d/%d)",
			len(lower), len(upper))
	}
	for i := range lower {
		if !(upper[i] > lower[i]) {
			return Result{}, fmt.Errorf("direct: upper[%d]=%v not greater than lower[%d]=%v",
				i, upper[i], i, lower[i])
		}
	}
	if f == nil {
		return Result{}, fmt.Errorf("direct: nil objective")
	}
	if opt.MaxFevals <= 0 {
		opt.MaxFevals = 5000
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 1000
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 1e-4
	}

	// denorm maps unit-cube coordinates to the original box.
	buf := make([]float64, n)
	fevals := 0
	eval := func(x []float64) float64 {
		for i := range x {
			buf[i] = lower[i] + x[i]*(upper[i]-lower[i])
		}
		fevals++
		return f(buf)
	}

	// Seed: the center of the cube.
	c0 := make([]float64, n)
	for i := range c0 {
		c0[i] = 0.5
	}
	first := &rect{center: c0, f: eval(c0), levels: make([]int8, n)}
	first.computeSize()
	rects := []*rect{first}

	best := first
	res := Result{Iters: 0}

	done := func() bool {
		return fevals >= opt.MaxFevals || (opt.TargetSet && best.f <= opt.Target)
	}

	for it := 0; it < opt.MaxIters && !done(); it++ {
		res.Iters = it + 1
		po := potentiallyOptimal(rects, best.f, opt.Epsilon)
		if len(po) == 0 {
			break
		}
		for _, ri := range po {
			if done() {
				break
			}
			r := rects[ri]
			// Longest sides (smallest level).
			minLevel := r.levels[0]
			for _, l := range r.levels {
				if l < minLevel {
					minLevel = l
				}
			}
			var dims []int
			for i, l := range r.levels {
				if l == minLevel {
					dims = append(dims, i)
				}
			}
			delta := math.Pow(3, -float64(minLevel)) / 3

			// Sample c ± delta·e_i for each longest dimension.
			type probe struct {
				dim        int
				lo, hi     *rect
				bestOfPair float64
			}
			probes := make([]probe, 0, len(dims))
			for _, dim := range dims {
				if fevals+2 > opt.MaxFevals {
					break
				}
				mk := func(off float64) *rect {
					c := append([]float64(nil), r.center...)
					c[dim] += off
					nr := &rect{center: c, f: eval(c), levels: append([]int8(nil), r.levels...)}
					return nr
				}
				lo := mk(-delta)
				hi := mk(+delta)
				if lo.f < best.f {
					best = lo
				}
				if hi.f < best.f {
					best = hi
				}
				probes = append(probes, probe{dim: dim, lo: lo, hi: hi,
					bestOfPair: math.Min(lo.f, hi.f)})
			}
			// Divide along the probed dimensions, best pair first (the
			// original DIRECT ordering keeps good regions in big boxes).
			sort.SliceStable(probes, func(a, b int) bool {
				return probes[a].bestOfPair < probes[b].bestOfPair
			})
			for _, p := range probes {
				r.levels[p.dim]++
				p.lo.levels = append([]int8(nil), r.levels...)
				p.hi.levels = append([]int8(nil), r.levels...)
				p.lo.computeSize()
				p.hi.computeSize()
				rects = append(rects, p.lo, p.hi)
			}
			r.computeSize()
		}
	}

	res.Fevals = fevals
	res.F = best.f
	res.X = make([]float64, n)
	for i := range res.X {
		res.X[i] = lower[i] + best.center[i]*(upper[i]-lower[i])
	}
	return res, nil
}

// potentiallyOptimal returns indices of rectangles on the lower-right convex
// hull of the (size, f) scatter that also promise sufficient improvement
// over fmin (the epsilon condition).
func potentiallyOptimal(rects []*rect, fmin, eps float64) []int {
	// Representative per size class: the rect with minimal f.
	type classRep struct {
		d   float64
		f   float64
		idx int
	}
	byClass := map[int64]classRep{}
	for i, r := range rects {
		key := int64(math.Round(r.d * 1e12))
		rep, ok := byClass[key]
		if !ok || r.f < rep.f {
			byClass[key] = classRep{d: r.d, f: r.f, idx: i}
		}
	}
	reps := make([]classRep, 0, len(byClass))
	for _, rep := range byClass {
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(a, b int) bool {
		if reps[a].d != reps[b].d {
			return reps[a].d < reps[b].d
		}
		return reps[a].f < reps[b].f
	})

	// Lower convex hull over (d, f), d ascending.
	var hull []classRep
	for _, p := range reps {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Remove b if it lies above segment a→p.
			if (b.f-a.f)*(p.d-a.d) >= (p.f-a.f)*(b.d-a.d) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}

	// Epsilon condition: the rectangle must be able to beat
	// fmin − eps·|fmin| given the hull slope to its right neighbours.
	threshold := fmin - eps*math.Abs(fmin)
	var out []int
	for i, p := range hull {
		if i == len(hull)-1 {
			// The largest rectangle is always potentially optimal.
			out = append(out, p.idx)
			continue
		}
		next := hull[i+1]
		slope := (next.f - p.f) / (next.d - p.d)
		if p.f-slope*p.d <= threshold {
			out = append(out, p.idx)
		}
	}
	return out
}
