package direct

import (
	"context"
	"math"
	"testing"
	"time"

	"kairos/internal/floats"
)

// rastrigin is an expensive-ish multimodal objective for parallel tests.
func rastrigin(x []float64) float64 {
	sum := 10.0 * float64(len(x))
	for _, v := range x {
		sum += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return sum
}

func sameResult(t *testing.T, a, b Result, label string) {
	t.Helper()
	if !floats.Same(a.F, b.F) || a.Fevals != b.Fevals || a.Iters != b.Iters {
		t.Errorf("%s: (F=%v fevals=%d iters=%d) vs (F=%v fevals=%d iters=%d)",
			label, a.F, a.Fevals, a.Iters, b.F, b.Fevals, b.Iters)
	}
	for i := range a.X {
		if !floats.Same(a.X[i], b.X[i]) {
			t.Errorf("%s: X[%d] = %v vs %v", label, i, a.X[i], b.X[i])
		}
	}
}

// The parallel engine must visit exactly the sequential engine's points:
// the result is bit-identical for every worker count.
func TestMinimizeParallelMatchesSequential(t *testing.T) {
	lo := []float64{-5.12, -5.12, -5.12}
	hi := []float64{5.12, 5.12, 5.12}
	seq, err := Minimize(rastrigin, lo, hi, Options{MaxFevals: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		par, err := MinimizeParallel(func(int) Objective { return rastrigin },
			lo, hi, Options{MaxFevals: 3000, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, seq, par, "workers="+string(rune('0'+workers)))
	}
}

func TestMinimizeParallelDeterministic(t *testing.T) {
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	r1, err := MinimizeParallel(func(int) Objective { return f }, lo, hi,
		Options{MaxFevals: 2000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MinimizeParallel(func(int) Objective { return f }, lo, hi,
		Options{MaxFevals: 2000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, r1, r2, "repeat run")
}

func TestMinimizeParallelValidation(t *testing.T) {
	lo, hi := []float64{0}, []float64{1}
	if _, err := MinimizeParallel(nil, lo, hi, Options{}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := MinimizeParallel(func(int) Objective { return nil }, lo, hi,
		Options{Workers: 2}); err == nil {
		t.Error("nil worker objective accepted")
	}
	if _, err := MinimizeParallel(func(int) Objective { return rastrigin },
		[]float64{1}, []float64{0}, Options{Workers: 2}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

// A cancelled context stops the search between iterations and surfaces the
// context error along with the best point found so far.
func TestMinimizeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	slow := func(x []float64) float64 {
		evals++
		if evals == 50 {
			cancel()
		}
		return rastrigin(x)
	}
	res, err := Minimize(slow, []float64{-5, -5}, []float64{5, 5},
		Options{MaxFevals: 1_000_000, MaxIters: 1_000_000, Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res.Fevals >= 1000 {
		t.Errorf("cancellation ignored: %d fevals", res.Fevals)
	}
	if len(res.X) != 2 {
		t.Errorf("cancelled run lost the best point: %v", res.X)
	}
}

// Cancellation must also interrupt a parallel run promptly.
func TestMinimizeParallelContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	start := time.Now()
	_, err := MinimizeParallel(func(int) Objective { return rastrigin },
		[]float64{-5, -5}, []float64{5, 5},
		Options{MaxFevals: 1_000_000, MaxIters: 1_000_000, Workers: 4, Ctx: ctx})
	if err == nil {
		t.Fatal("expired context returned nil error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation took too long")
	}
}
