package direct

import (
	"math"
	"testing"
	"testing/quick"

	"kairos/internal/floats"
)

func TestMinimizeValidation(t *testing.T) {
	f := func(x []float64) float64 { return x[0] }
	if _, err := Minimize(f, nil, nil, Options{}); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := Minimize(f, []float64{0}, []float64{0, 1}, Options{}); err == nil {
		t.Error("mismatched bounds accepted")
	}
	if _, err := Minimize(f, []float64{1}, []float64{0}, Options{}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Minimize(nil, []float64{0}, []float64{1}, Options{}); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestSphere(t *testing.T) {
	// Global minimum 0 at (0.3, -0.7) inside an asymmetric box.
	f := func(x []float64) float64 {
		dx, dy := x[0]-0.3, x[1]+0.7
		return dx*dx + dy*dy
	}
	res, err := Minimize(f, []float64{-2, -2}, []float64{2, 2}, Options{MaxFevals: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-4 {
		t.Errorf("sphere: F = %v at %v, want ≈0", res.F, res.X)
	}
}

func TestBranin(t *testing.T) {
	// Branin-Hoo: three global minima with f* ≈ 0.397887.
	f := func(x []float64) float64 {
		a, b, c := 1.0, 5.1/(4*math.Pi*math.Pi), 5/math.Pi
		r, s, tt := 6.0, 10.0, 1/(8*math.Pi)
		v := x[1] - b*x[0]*x[0] + c*x[0] - r
		return a*v*v + s*(1-tt)*math.Cos(x[0]) + s
	}
	res, err := Minimize(f, []float64{-5, 0}, []float64{10, 15}, Options{MaxFevals: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 0.398+0.01 {
		t.Errorf("branin: F = %v, want ≈0.3979", res.F)
	}
}

func TestSixHumpCamel(t *testing.T) {
	// f* = -1.0316 at (±0.0898, ∓0.7126).
	f := func(x []float64) float64 {
		x1, x2 := x[0], x[1]
		return (4-2.1*x1*x1+x1*x1*x1*x1/3)*x1*x1 + x1*x2 + (-4+4*x2*x2)*x2*x2
	}
	res, err := Minimize(f, []float64{-3, -2}, []float64{3, 2}, Options{MaxFevals: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > -1.0316+0.01 {
		t.Errorf("camel: F = %v, want ≈-1.0316", res.F)
	}
}

func TestRastrigin(t *testing.T) {
	// Highly multimodal; global minimum 0 at origin. DIRECT should get
	// close to the global basin, far below the best local minima (≈1).
	f := func(x []float64) float64 {
		sum := 10.0 * float64(len(x))
		for _, v := range x {
			sum += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return sum
	}
	res, err := Minimize(f, []float64{-5.12, -5.12}, []float64{5.12, 5.12}, Options{MaxFevals: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 0.5 {
		t.Errorf("rastrigin: F = %v, want < 0.5 (global basin)", res.F)
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Minimize(f, []float64{-2, -2}, []float64{2, 2}, Options{MaxFevals: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 0.05 {
		t.Errorf("rosenbrock: F = %v at %v, want < 0.05", res.F, res.X)
	}
}

func TestHigherDimensional(t *testing.T) {
	// 6-D shifted sphere: DIRECT must make clear progress from the center.
	f := func(x []float64) float64 {
		var s float64
		for i, v := range x {
			d := v - 0.2*float64(i%3)
			s += d * d
		}
		return s
	}
	lo := make([]float64, 6)
	hi := make([]float64, 6)
	for i := range lo {
		lo[i], hi[i] = -1, 1
	}
	res, err := Minimize(f, lo, hi, Options{MaxFevals: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 0.01 {
		t.Errorf("6-D sphere: F = %v, want < 0.01", res.F)
	}
}

func TestBudgetRespected(t *testing.T) {
	count := 0
	f := func(x []float64) float64 {
		count++
		return x[0] * x[0]
	}
	res, err := Minimize(f, []float64{-1}, []float64{1}, Options{MaxFevals: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Each division samples at most 2 points past the check; allow slack 2.
	if count > 102 {
		t.Errorf("evaluations = %d, budget 100", count)
	}
	if res.Fevals != count {
		t.Errorf("Fevals = %d, actual %d", res.Fevals, count)
	}
}

func TestTargetStopsEarly(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	res, err := Minimize(f, []float64{-1}, []float64{1},
		Options{MaxFevals: 100000, Target: 0.01, TargetSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 0.01 {
		t.Errorf("target not reached: F = %v", res.F)
	}
	if res.Fevals > 1000 {
		t.Errorf("target stop ignored: used %d evals", res.Fevals)
	}
}

func TestDeterministic(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(5*x[0]) + x[1]*x[1] }
	opts := Options{MaxFevals: 500}
	r1, err := Minimize(f, []float64{0, -1}, []float64{3, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Minimize(f, []float64{0, -1}, []float64{3, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Same(r1.F, r2.F) || !floats.Same(r1.X[0], r2.X[0]) || !floats.Same(r1.X[1], r2.X[1]) {
		t.Error("DIRECT should be fully deterministic")
	}
}

func TestEpsilonTradeoff(t *testing.T) {
	// With a large epsilon DIRECT explores more; with a tiny epsilon it
	// polishes more. Both must still find the smooth unimodal optimum.
	f := func(x []float64) float64 {
		return (x[0] - 0.77) * (x[0] - 0.77)
	}
	for _, eps := range []float64{1e-7, 1e-4, 1e-2} {
		res, err := Minimize(f, []float64{0}, []float64{1}, Options{MaxFevals: 500, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.F > 1e-4 {
			t.Errorf("eps=%v: F = %v, want ≈0", eps, res.F)
		}
	}
}

// Property: the result always lies within bounds and F matches f(X).
func TestPropertyWithinBounds(t *testing.T) {
	prop := func(aRaw, bRaw uint8, c uint8) bool {
		lo := float64(aRaw)/16 - 8
		hi := lo + 0.5 + float64(bRaw)/32
		shift := float64(c) / 255 * (hi - lo)
		f := func(x []float64) float64 {
			d := x[0] - (lo + shift)
			return d * d
		}
		res, err := Minimize(f, []float64{lo}, []float64{hi}, Options{MaxFevals: 200})
		if err != nil {
			return false
		}
		if res.X[0] < lo-1e-9 || res.X[0] > hi+1e-9 {
			return false
		}
		d := res.X[0] - (lo + shift)
		return math.Abs(res.F-d*d) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
