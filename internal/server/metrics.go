package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kairos/internal/journal"
)

// metrics is a minimal Prometheus text-format registry: per-fleet counters
// for the control plane's hot numbers plus a latency histogram for the
// triggered re-solves. Hand-rolled on purpose — the repo takes no
// dependencies, and the scrape format is a stable plain-text contract.
type metrics struct {
	mu sync.Mutex
	// perFleet maps fleet ID -> counter set.
	perFleet map[string]*fleetMetrics // guarded by mu
	fleets   int                      // guarded by mu
}

// resolveBuckets are the histogram upper bounds (seconds) for re-solve
// latency; chosen to straddle the observed range from sub-100ms synthetic
// fleets to multi-second 197-server warm re-solves.
var resolveBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// fleetMetrics is one fleet's counter set.
type fleetMetrics struct {
	windows      int64
	ingestErrors int64
	triggers     int64
	fevals       int64
	migrations   int64
	// failStreak is the consecutive-failure gauge behind the reconcile
	// loop's solver backoff (reset to 0 on a successful observe).
	failStreak int64
	// histogram state for kairos_resolve_duration_seconds.
	bucketCounts []int64
	resolveSum   float64 //kairos:unit Seconds
	resolveCount int64
}

func newMetrics() *metrics {
	return &metrics{perFleet: map[string]*fleetMetrics{}}
}

// fleetLocked returns (creating if needed) the counter set for id.
// Callers hold m.mu — the Locked suffix is the lockguard exemption.
func (m *metrics) fleetLocked(id string) *fleetMetrics {
	fm := m.perFleet[id]
	if fm == nil {
		fm = &fleetMetrics{bucketCounts: make([]int64, len(resolveBuckets))}
		m.perFleet[id] = fm
	}
	return fm
}

// setFleets records the current registry size (a gauge).
func (m *metrics) setFleets(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleets = n
}

// observeWindow counts one ingested window (or one rejected one).
func (m *metrics) observeWindow(id string, err bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm := m.fleetLocked(id)
	if err {
		fm.ingestErrors++
		return
	}
	fm.windows++
}

// setResolveFailures records a fleet's consecutive re-solve failure count
// (a gauge; 0 clears it).
func (m *metrics) setResolveFailures(id string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleetLocked(id).failStreak = int64(n)
}

// observeTrigger counts one drift-triggered re-solve and its cost.
func (m *metrics) observeTrigger(id string, fevals, migrations int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm := m.fleetLocked(id)
	fm.triggers++
	fm.fevals += int64(fevals)
	fm.migrations += int64(migrations)
	sec := elapsed.Seconds()
	fm.resolveSum += sec
	fm.resolveCount++
	for i, le := range resolveBuckets {
		if sec <= le {
			fm.bucketCounts[i]++
		}
	}
}

// write renders the registry in Prometheus text exposition format, fleets
// in sorted order so scrapes are deterministic.
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP kairos_fleets Registered fleets.\n# TYPE kairos_fleets gauge\nkairos_fleets %d\n", m.fleets)
	ids := make([]string, 0, len(m.perFleet))
	for id := range m.perFleet {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	counter := func(name, help string, get func(*fleetMetrics) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, id := range ids {
			fmt.Fprintf(w, "%s{fleet=%q} %d\n", name, id, get(m.perFleet[id]))
		}
	}
	counter("kairos_windows_ingested_total", "Observation windows ingested.",
		func(fm *fleetMetrics) int64 { return fm.windows })
	counter("kairos_ingest_errors_total", "Observation windows rejected.",
		func(fm *fleetMetrics) int64 { return fm.ingestErrors })
	counter("kairos_triggers_total", "Drift-triggered re-solves.",
		func(fm *fleetMetrics) int64 { return fm.triggers })
	counter("kairos_resolve_fevals_total", "Objective evaluations spent in triggered re-solves.",
		func(fm *fleetMetrics) int64 { return fm.fevals })
	counter("kairos_migrations_total", "Units migrated by triggered re-solves.",
		func(fm *fleetMetrics) int64 { return fm.migrations })

	const gauge = "kairos_resolve_failures_consecutive"
	fmt.Fprintf(w, "# HELP %s Consecutive failed re-solves (drives the solver backoff).\n# TYPE %s gauge\n", gauge, gauge)
	for _, id := range ids {
		fmt.Fprintf(w, "%s{fleet=%q} %d\n", gauge, id, m.perFleet[id].failStreak)
	}

	const hist = "kairos_resolve_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Triggered re-solve latency.\n# TYPE %s histogram\n", hist, hist)
	for _, id := range ids {
		fm := m.perFleet[id]
		for i, le := range resolveBuckets {
			fmt.Fprintf(w, "%s_bucket{fleet=%q,le=%q} %d\n", hist, id, trimFloat(le), fm.bucketCounts[i])
		}
		fmt.Fprintf(w, "%s_bucket{fleet=%q,le=\"+Inf\"} %d\n", hist, id, fm.resolveCount)
		fmt.Fprintf(w, "%s_sum{fleet=%q} %g\n", hist, id, fm.resolveSum)
		fmt.Fprintf(w, "%s_count{fleet=%q} %d\n", hist, id, fm.resolveCount)
	}
}

// trimFloat renders a bucket bound the way Prometheus conventionally does
// (no trailing zeros).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

// writeJournalMetrics renders the durability metrics: journal counters
// from the write-ahead log plus the last recovery's summary.
func writeJournalMetrics(w io.Writer, st journal.Stats, rec *RecoveryStats) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	c("kairos_journal_appends_total", "Journal records appended.", st.Appends)
	c("kairos_journal_syncs_total", "Journal fsync calls.", st.Syncs)
	c("kairos_journal_snapshots_total", "Journal snapshot rotations.", st.Snapshots)
	g("kairos_journal_size_bytes", "Journal file size.", st.SizeBytes)
	g("kairos_journal_seq", "Last assigned journal sequence number.", int64(st.Seq))
	if rec == nil {
		return
	}
	g("kairos_recovery_fleets", "Fleets rebuilt by the last journal replay.", int64(rec.Fleets))
	g("kairos_recovery_windows_replayed", "Window records replayed by the last recovery.", int64(rec.Windows))
	g("kairos_recovery_advances_replayed", "Advance records replayed by the last recovery.", int64(rec.Advances))
	g("kairos_recovery_rearms_replayed", "Rearm records replayed by the last recovery.", int64(rec.Rearms))
	g("kairos_recovery_triggers_healed", "Dangling triggers re-armed by the last recovery.", int64(rec.Healed))
	torn := int64(0)
	if rec.TornTail {
		torn = 1
	}
	g("kairos_recovery_torn_tail", "Whether the last recovery truncated a torn journal tail.", torn)
	fmt.Fprintf(w, "# HELP kairos_recovery_duration_seconds Duration of the last journal replay.\n# TYPE kairos_recovery_duration_seconds gauge\nkairos_recovery_duration_seconds %g\n", rec.Elapsed.Seconds())
}
