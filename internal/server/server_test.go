package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// testWorkloads builds n wire workloads of T samples whose CPU sits at
// base·scale — scale 1.0 reproduces the registered baseline, larger
// scales are drifted observations.
func testWorkloads(n, T int, scale float64) []WorkloadWire {
	out := make([]WorkloadWire, n)
	for i := range out {
		base := (0.10 + 0.02*float64(i%5)) * scale
		cpu := make([]float64, T)
		ram := make([]float64, T)
		for t := range cpu {
			cpu[t] = base
			ram[t] = (4e9 + 1e9*float64(i%3)) * scale
		}
		out[i] = WorkloadWire{
			Name:        fmt.Sprintf("db-%02d", i),
			StepSeconds: 300,
			CPU:         cpu,
			RAMBytes:    ram,
		}
	}
	return out
}

// registerBody builds a registration request for a small synthetic fleet.
func registerBody(id string, n, T int) []byte {
	req := RegisterRequest{
		ID:           id,
		Workloads:    testWorkloads(n, T, 1.0),
		AutoMachines: &AutoMachines{Count: n},
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return b
}

// newTestServer starts a control plane on an httptest listener.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// do issues a request and returns status plus body.
func do(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestRegisterEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	base := ts.URL + "/v1/fleets"

	tests := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed JSON", `{"id": "x", "workloads": [`, http.StatusBadRequest},
		{"missing id", `{"workloads": [], "auto_machines": {"count": 1}}`, http.StatusBadRequest},
		{"id with slash", `{"id": "a/b", "workloads": [], "auto_machines": {"count": 1}}`, http.StatusBadRequest},
		{"no workloads", `{"id": "x", "auto_machines": {"count": 1}}`, http.StatusBadRequest},
		{"no machines", string(mustJSON(RegisterRequest{ID: "x", Workloads: testWorkloads(2, 4, 1)})), http.StatusBadRequest},
		{"machines and auto_machines", string(mustJSON(RegisterRequest{
			ID: "x", Workloads: testWorkloads(2, 4, 1),
			Machines:     []MachineWire{{CPUCapacity: 1, RAMBytes: 96e9}},
			AutoMachines: &AutoMachines{Count: 2},
		})), http.StatusBadRequest},
		{"unnamed workload", `{"id": "x", "workloads": [{"cpu": [0.1], "ram_bytes": [1e9]}], "auto_machines": {"count": 1}}`, http.StatusBadRequest},
		{"missing ram series", `{"id": "x", "workloads": [{"name": "a", "cpu": [0.1]}], "auto_machines": {"count": 1}}`, http.StatusBadRequest},
		{"duplicate workload names", string(mustJSON(RegisterRequest{
			ID:        "x",
			Workloads: append(testWorkloads(1, 4, 1), testWorkloads(1, 4, 1)...),
			AutoMachines: &AutoMachines{
				Count: 2,
			},
		})), http.StatusBadRequest},
		{"zero-capacity machine", string(mustJSON(RegisterRequest{
			ID: "x", Workloads: testWorkloads(2, 4, 1),
			Machines: []MachineWire{{CPUCapacity: 0, RAMBytes: 96e9}, {CPUCapacity: 1, RAMBytes: 96e9}},
		})), http.StatusBadRequest},
		{"happy path", string(registerBody("alpha", 4, 8)), http.StatusCreated},
		{"double register", string(registerBody("alpha", 4, 8)), http.StatusConflict},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, http.MethodPost, base, []byte(tc.body))
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			if tc.status == http.StatusCreated {
				var st FleetStatus
				if err := json.Unmarshal(body, &st); err != nil {
					t.Fatal(err)
				}
				if st.ID != "alpha" || st.Workloads != 4 || st.K < 1 || !st.Feasible {
					t.Errorf("register response = %+v", st)
				}
			}
		})
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func TestWindowEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("beta", 4, 8)); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}

	windowBody := func(scale float64) []byte {
		return mustJSON(WindowRequest{Workloads: testWorkloads(4, 8, scale)})
	}
	tests := []struct {
		name      string
		url       string
		body      []byte
		status    int
		triggered bool
	}{
		{"unknown fleet", ts.URL + "/v1/fleets/nope/windows", windowBody(1.0), http.StatusNotFound, false},
		{"malformed JSON", ts.URL + "/v1/fleets/beta/windows", []byte(`{"workloads": [`), http.StatusBadRequest, false},
		{"unknown workload name", ts.URL + "/v1/fleets/beta/windows",
			mustJSON(WindowRequest{Workloads: testWorkloads(5, 8, 1.0)}), http.StatusUnprocessableEntity, false},
		{"quiet window holds", ts.URL + "/v1/fleets/beta/windows", windowBody(1.002), http.StatusOK, false},
		{"drifted window triggers", ts.URL + "/v1/fleets/beta/windows", windowBody(1.25), http.StatusOK, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, http.MethodPost, tc.url, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			if status != http.StatusOK {
				return
			}
			var resp WindowResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Triggered != tc.triggered {
				t.Errorf("triggered = %v, want %v", resp.Triggered, tc.triggered)
			}
			if tc.triggered && (resp.Event == nil || resp.Event.K < 1) {
				t.Errorf("triggered response missing event: %+v", resp)
			}
		})
	}

	// The rejected window (unknown workload) must not have advanced the
	// loop: 2 valid windows consumed, 1 trigger.
	status, body := do(t, http.MethodGet, ts.URL+"/v1/fleets/beta", nil)
	if status != http.StatusOK {
		t.Fatalf("status query: %d %s", status, body)
	}
	var st FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Windows != 2 || st.Triggers != 1 || st.LastTrigger != 1 {
		t.Errorf("fleet status = %+v, want 2 windows, 1 trigger at window 1", st)
	}
}

func TestQueryEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	for _, id := range []string{"q1", "q2"} {
		if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody(id, 3, 6)); status != http.StatusCreated {
			t.Fatalf("register %s: %d %s", id, status, body)
		}
	}

	t.Run("list", func(t *testing.T) {
		status, body := do(t, http.MethodGet, ts.URL+"/v1/fleets", nil)
		if status != http.StatusOK {
			t.Fatalf("list: %d %s", status, body)
		}
		var fleets []FleetStatus
		if err := json.Unmarshal(body, &fleets); err != nil {
			t.Fatal(err)
		}
		if len(fleets) != 2 || fleets[0].ID != "q1" || fleets[1].ID != "q2" {
			t.Errorf("list = %+v, want [q1 q2]", fleets)
		}
	})

	t.Run("plan", func(t *testing.T) {
		status, body := do(t, http.MethodGet, ts.URL+"/v1/fleets/q1/plan", nil)
		if status != http.StatusOK {
			t.Fatalf("plan: %d %s", status, body)
		}
		var plan PlanWire
		if err := json.Unmarshal(body, &plan); err != nil {
			t.Fatal(err)
		}
		if plan.K < 1 || !plan.Feasible || len(plan.Assignments) != 3 {
			t.Errorf("plan = %+v", plan)
		}
		for _, a := range plan.Assignments {
			if a.Workload == "" || a.Machine < 0 || a.Machine >= plan.K || a.MachineName == "" {
				t.Errorf("assignment = %+v", a)
			}
		}
	})

	t.Run("events empty", func(t *testing.T) {
		status, body := do(t, http.MethodGet, ts.URL+"/v1/fleets/q1/events", nil)
		if status != http.StatusOK {
			t.Fatalf("events: %d %s", status, body)
		}
		var events []*EventWire
		if err := json.Unmarshal(body, &events); err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 {
			t.Errorf("events = %+v, want none", events)
		}
	})

	t.Run("unknown ids 404", func(t *testing.T) {
		for _, path := range []string{"/v1/fleets/zz", "/v1/fleets/zz/plan", "/v1/fleets/zz/events"} {
			if status, _ := do(t, http.MethodGet, ts.URL+path, nil); status != http.StatusNotFound {
				t.Errorf("GET %s = %d, want 404", path, status)
			}
		}
	})

	t.Run("healthz", func(t *testing.T) {
		status, body := do(t, http.MethodGet, ts.URL+"/healthz", nil)
		if status != http.StatusOK || !strings.Contains(string(body), "ok") {
			t.Errorf("healthz = %d %q", status, body)
		}
	})

	t.Run("delete", func(t *testing.T) {
		if status, _ := do(t, http.MethodDelete, ts.URL+"/v1/fleets/q2", nil); status != http.StatusNoContent {
			t.Fatalf("delete: %d", status)
		}
		if status, _ := do(t, http.MethodGet, ts.URL+"/v1/fleets/q2", nil); status != http.StatusNotFound {
			t.Errorf("status after delete = %d, want 404", status)
		}
		if status, _ := do(t, http.MethodDelete, ts.URL+"/v1/fleets/q2", nil); status != http.StatusNotFound {
			t.Errorf("double delete = %d, want 404", status)
		}
		// Ingestion to the deleted fleet 404s; q1 is unaffected.
		status, _ := do(t, http.MethodPost, ts.URL+"/v1/fleets/q2/windows",
			mustJSON(WindowRequest{Workloads: testWorkloads(3, 6, 1.0)}))
		if status != http.StatusNotFound {
			t.Errorf("ingest after delete = %d, want 404", status)
		}
		if status, _ := do(t, http.MethodGet, ts.URL+"/v1/fleets/q1", nil); status != http.StatusOK {
			t.Errorf("q1 disturbed by q2 delete: %d", status)
		}
	})
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("m1", 4, 8)); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}
	for _, scale := range []float64{1.001, 1.002, 1.3} {
		status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/m1/windows",
			mustJSON(WindowRequest{Workloads: testWorkloads(4, 8, scale)}))
		if status != http.StatusOK {
			t.Fatalf("window scale %v: %d %s", scale, status, body)
		}
	}
	status, body := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"kairos_fleets 1",
		`kairos_windows_ingested_total{fleet="m1"} 3`,
		`kairos_triggers_total{fleet="m1"} 1`,
		`kairos_resolve_duration_seconds_count{fleet="m1"} 1`,
		`kairos_resolve_duration_seconds_bucket{fleet="m1",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// Fevals and migrations are plan-dependent; assert the series exist
	// with a non-negative value rather than pinning solver internals.
	for _, prefix := range []string{
		`kairos_resolve_fevals_total{fleet="m1"} `,
		`kairos_migrations_total{fleet="m1"} `,
	} {
		if !strings.Contains(text, prefix) {
			t.Errorf("metrics missing series %q", prefix)
		}
	}
}
