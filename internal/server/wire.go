// Package server is the Kairos control plane: a long-running HTTP service
// (stdlib net/http, versioned /v1/ JSON API) that registers fleets, ingests
// observation windows from concurrent collectors, runs one reconcile loop
// per fleet around a kairos.Fleet session handle — drift-triggered warm
// re-solves, exactly the library's Observe semantics — and serves plan,
// drift-status and event queries plus Prometheus-text metrics. It is what
// `kairos serve` runs.
//
// API summary (all bodies JSON):
//
//	POST   /v1/fleets               register a fleet (workloads+machines+options)
//	GET    /v1/fleets               list registered fleets
//	GET    /v1/fleets/{id}          one fleet's status (plan K, drift, windows)
//	DELETE /v1/fleets/{id}          deregister and stop the reconcile loop
//	POST   /v1/fleets/{id}/windows  ingest one observation window
//	GET    /v1/fleets/{id}/plan     the current plan (assignments, loads)
//	GET    /v1/fleets/{id}/events   the re-consolidation event log
//	GET    /metrics                 Prometheus text-format metrics
//	GET    /healthz                 liveness probe
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"kairos"
	"kairos/internal/model"
	"kairos/internal/series"
)

// WorkloadWire is one workload's resource profile on the wire. Series are
// plain sample arrays sharing the workload's start/step; all arrays of one
// workload must have equal length.
type WorkloadWire struct {
	Name string `json:"name"`
	// StartUnix is the Unix-seconds timestamp of the first sample
	// (optional; series alignment is positional, not by wall clock).
	StartUnix int64 `json:"start_unix,omitempty"`
	// StepSeconds is the sampling interval. Defaults to 300 (the paper's
	// 5-minute windows) when omitted.
	StepSeconds float64 `json:"step_seconds,omitempty"`
	// CPU is utilization as a fraction of the target machine; required.
	CPU []float64 `json:"cpu"`
	// RAMBytes is the working-set memory requirement; required.
	RAMBytes []float64 `json:"ram_bytes"`
	// WSBytes is the working set driving the disk model (defaults to
	// RAMBytes when a disk profile is present and it is omitted).
	WSBytes []float64 `json:"ws_bytes,omitempty"`
	// UpdateRate is the row-modification rate (rows/sec).
	UpdateRate []float64 `json:"update_rate,omitempty"`
	// DiskWriteBps is the measured standalone disk write rate.
	DiskWriteBps []float64 `json:"disk_write_bps,omitempty"`
	// Replicas places this many copies on distinct machines (0 = 1).
	Replicas int `json:"replicas,omitempty"`
	// PinTo pins the first replica to a machine index (omitted = free).
	PinTo *int `json:"pin_to,omitempty"`
}

// MachineWire is one consolidation target on the wire.
type MachineWire struct {
	Name         string  `json:"name,omitempty"`
	CPUCapacity  float64 `json:"cpu_capacity"`
	RAMBytes     float64 `json:"ram_bytes"`
	DiskWriteBps float64 `json:"disk_write_bps,omitempty"`
	Headroom     float64 `json:"headroom,omitempty"`
}

// AutoMachines is shorthand for a homogeneous target fleet: Count copies
// of the paper's standard 12-core/96GB machine.
type AutoMachines struct {
	Count int `json:"count"`
	// DiskWriteBps is the per-machine disk write budget (default 50 MB/s).
	DiskWriteBps float64 `json:"disk_write_bps,omitempty"`
	// Headroom is the per-machine safety margin (default 0.05).
	Headroom float64 `json:"headroom,omitempty"`
}

// OptionsWire are the registration-time knobs: a flat projection of the
// library's functional options.
type OptionsWire struct {
	// FullSolve enables the global DIRECT run for the initial solve. The
	// server default is the local-search path (SkipDirect), which is what
	// fleet-scale streams use.
	FullSolve bool `json:"full_solve,omitempty"`
	// Workers is the solver's evaluation parallelism (0 = sequential).
	Workers int `json:"workers,omitempty"`
	// Shards >0 solves the initial plan with the sharded fleet engine.
	Shards int `json:"shards,omitempty"`
	// DriftThreshold is the relative drift that triggers a re-solve
	// (default 0.04).
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	// Rearm is the hysteresis re-arm level (0 = half the threshold).
	Rearm float64 `json:"rearm,omitempty"`
	// Cooldown is the number of windows suppressed after a trigger
	// (default 1).
	Cooldown *int `json:"cooldown,omitempty"`
	// History is the number of windows averaged into the rolling forecast
	// (default 2).
	History int `json:"history,omitempty"`
	// MinWorkloads is the drifted-workload quorum for a trigger.
	MinWorkloads int `json:"min_workloads,omitempty"`
	// MigrationWeight prices warm-re-solve migrations (default 0.05).
	MigrationWeight *float64 `json:"migration_weight,omitempty"`
	// MaxMigrations caps units migrated per re-solve (0 = unlimited).
	MaxMigrations int `json:"max_migrations,omitempty"`
}

// RegisterRequest is the POST /v1/fleets body.
type RegisterRequest struct {
	// ID names the fleet; path segments address it, so it must be
	// non-empty and contain no '/'.
	ID        string         `json:"id"`
	Workloads []WorkloadWire `json:"workloads"`
	// Machines lists explicit targets; AutoMachines is the homogeneous
	// shorthand. Exactly one must be provided.
	Machines     []MachineWire   `json:"machines,omitempty"`
	AutoMachines *AutoMachines   `json:"auto_machines,omitempty"`
	DiskProfile  json.RawMessage `json:"disk_profile,omitempty"`
	Options      OptionsWire     `json:"options,omitempty"`
}

// WindowRequest is the POST /v1/fleets/{id}/windows body: one observation
// window, matched to the registered workloads by name.
type WindowRequest struct {
	Workloads []WorkloadWire `json:"workloads"`
}

// WindowResponse acknowledges an ingested window after the reconcile loop
// has processed it.
type WindowResponse struct {
	// Window is the 0-based index the window was consumed as.
	Window int `json:"window"`
	// Triggered reports whether this window fired a re-solve.
	Triggered bool `json:"triggered"`
	// Duplicate marks an idempotent resend: the window (keyed by its
	// start_unix) was already acked and this response echoes the original
	// acknowledgement without re-applying it.
	Duplicate bool `json:"duplicate,omitempty"`
	// Event is the re-consolidation event when Triggered (summary form).
	Event *EventWire `json:"event,omitempty"`
}

// FleetStatus is the GET /v1/fleets/{id} response (and the list entry).
type FleetStatus struct {
	ID        string `json:"id"`
	Workloads int    `json:"workloads"`
	Machines  int    `json:"machines"`
	// K and Feasible describe the current plan.
	K        int  `json:"k"`
	Feasible bool `json:"feasible"`
	// Windows, Triggers and LastTrigger summarize the watch loop.
	Windows     int `json:"windows"`
	Triggers    int `json:"triggers"`
	LastTrigger int `json:"last_trigger"`
}

// PlanWire is the GET /v1/fleets/{id}/plan response.
type PlanWire struct {
	K         int     `json:"k"`
	Feasible  bool    `json:"feasible"`
	Objective float64 `json:"objective"`
	// Assignments maps each placement unit to its machine.
	Assignments []AssignmentWire `json:"assignments"`
	// Migrated/MigrationCost report the churn of warm re-solves.
	Migrated      int     `json:"migrated,omitempty"`
	MigrationCost float64 `json:"migration_cost,omitempty"`
	Fevals        int     `json:"fevals"`
	ElapsedMs     float64 `json:"elapsed_ms"`
}

// AssignmentWire is one unit's placement.
type AssignmentWire struct {
	Unit     string `json:"unit"`
	Workload string `json:"workload"`
	Replica  int    `json:"replica,omitempty"`
	Machine  int    `json:"machine"`
	// MachineName is the target machine's name when it has one.
	MachineName string `json:"machine_name,omitempty"`
}

// EventWire is one re-consolidation event in the GET events response.
type EventWire struct {
	Window int `json:"window"`
	// Trigger is the drift evidence rendered as the detector reports it.
	Trigger string `json:"trigger"`
	// MaxDrift is the largest cause's relative drift.
	MaxDrift float64 `json:"max_drift"`
	// DriftedWorkloads counts distinct workloads past the threshold.
	DriftedWorkloads int `json:"drifted_workloads"`
	K                int `json:"k"`
	Migrated         int `json:"migrated"`
	// Objective/StaleObjective/ObjectiveDelta price the new plan vs
	// keeping the old one on the forecast series.
	StaleObjective float64 `json:"stale_objective"`
	Objective      float64 `json:"objective"`
	ObjectiveDelta float64 `json:"objective_delta"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// RecordWire is one journal record of the durable control plane: exactly
// one operation field is set. Every control-plane mutation — registering
// a fleet, acking an observation window, advancing the incumbent plan,
// re-arming the detector after a failed re-solve, deregistering — has a
// record type here and a replay case in recovery.go (the CONTRIBUTING
// convention for new mutations).
type RecordWire struct {
	Register   *RegisterRecord   `json:"register,omitempty"`
	Window     *WindowRecord     `json:"window,omitempty"`
	Advance    *AdvanceRecord    `json:"advance,omitempty"`
	Rearm      *RearmRecord      `json:"rearm,omitempty"`
	Deregister *DeregisterRecord `json:"deregister,omitempty"`
}

// RegisterRecord journals one fleet registration: the request as received
// plus the incumbent the registration-time solve produced, so replay
// rebuilds the session without re-solving.
type RegisterRecord struct {
	Request *RegisterRequest `json:"request"`
	// Incumbent is the initial plan in durable form.
	Incumbent *kairos.Incumbent `json:"incumbent"`
}

// WindowRecord journals one acked observation window, verbatim as it
// arrived on the wire. It is written before the window is applied (and
// before it is acked), so every acked window survives a crash.
type WindowRecord struct {
	Fleet     string         `json:"fleet"`
	Workloads []WorkloadWire `json:"workloads"`
}

// AdvanceRecord journals one incumbent-plan advance. The reconcile loop
// writes it after the triggered re-solve succeeds but before the plan is
// published (the library's advance hook), so a recovered server never
// serves an older plan than one it already published.
type AdvanceRecord struct {
	Fleet string `json:"fleet"`
	// Incumbent is the advanced plan in durable form.
	Incumbent *kairos.Incumbent `json:"incumbent"`
	// Event is the published event, for the recovered event log.
	Event *EventWire `json:"event"`
}

// RearmRecord journals a detector re-arm: a trigger fired but its
// re-solve failed (or was suppressed by backoff), so the disarm must not
// survive replay — otherwise a recovered detector would wait for a
// hysteresis reset that the live one never required.
type RearmRecord struct {
	Fleet string `json:"fleet"`
}

// DeregisterRecord journals a fleet removal.
type DeregisterRecord struct {
	Fleet string `json:"fleet"`
}

// SnapshotWire is the compacted control-plane state a journal snapshot
// holds: everything replay needs without the journal prefix it replaces.
type SnapshotWire struct {
	Fleets []FleetSnapshot `json:"fleets"`
}

// FleetSnapshot is one fleet's durable state inside a snapshot.
type FleetSnapshot struct {
	// Request is the registration request, replayed structurally (machine
	// lists, options, disk profile) without re-solving.
	Request *RegisterRequest `json:"request"`
	// Incumbent is the current plan in durable form.
	Incumbent *kairos.Incumbent `json:"incumbent"`
	// Baseline is the workload set the detector's assumptions came from
	// (empty while no trigger has fired: the spec itself is the baseline).
	Baseline []WorkloadWire `json:"baseline,omitempty"`
	// History is the retained observation windows, oldest first.
	History [][]WorkloadWire `json:"history,omitempty"`
	// Detector is the drift detector's counter state.
	Detector DetectorWire `json:"detector"`
	// Events is the fleet's re-consolidation event log.
	Events []*EventWire `json:"events,omitempty"`
	// Acks is the idempotent-ingest ring: recently acked windows keyed by
	// start time, so a collector retrying across the restart gets its
	// original acknowledgement instead of a duplicate apply.
	Acks []AckWire `json:"acks,omitempty"`
	// Failures is the reconcile loop's consecutive re-solve failure count.
	Failures int `json:"failures,omitempty"`
}

// DetectorWire is the drift detector's checkpointed counter state.
type DetectorWire struct {
	Windows  int  `json:"windows"`
	Armed    bool `json:"armed"`
	Cooldown int  `json:"cooldown"`
}

// AckWire is one acked window in the idempotent-ingest ring.
type AckWire struct {
	// StartUnix keys the window (the retry contract: collectors that set
	// start_unix may resend a window and get the original ack back).
	StartUnix int64 `json:"start_unix"`
	// Window and Triggered echo the original WindowResponse.
	Window    int  `json:"window"`
	Triggered bool `json:"triggered"`
}

// toWorkloads converts wire workloads into consolidation workloads.
// needDisk forces WSBytes (defaulted from RAMBytes) and UpdateRate so the
// result is usable with a disk profile.
func toWorkloads(ws []WorkloadWire, needDisk bool) ([]kairos.Workload, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("no workloads")
	}
	out := make([]kairos.Workload, len(ws))
	for i, w := range ws {
		if w.Name == "" {
			return nil, fmt.Errorf("workload %d has no name", i)
		}
		step := w.StepSeconds
		if step == 0 {
			step = 300
		}
		if step <= 0 {
			return nil, fmt.Errorf("workload %q: step_seconds %v must be positive", w.Name, w.StepSeconds)
		}
		if len(w.CPU) == 0 || len(w.RAMBytes) == 0 {
			return nil, fmt.Errorf("workload %q: cpu and ram_bytes series are required", w.Name)
		}
		start := time.Unix(w.StartUnix, 0).UTC()
		dt := time.Duration(step * float64(time.Second))
		mk := func(vals []float64) *series.Series {
			if len(vals) == 0 {
				return nil
			}
			return series.New(start, dt, append([]float64(nil), vals...))
		}
		wl := kairos.Workload{
			Name:         w.Name,
			CPU:          mk(w.CPU),
			RAMBytes:     mk(w.RAMBytes),
			WSBytes:      mk(w.WSBytes),
			UpdateRate:   mk(w.UpdateRate),
			DiskWriteBps: mk(w.DiskWriteBps),
			Replicas:     w.Replicas,
			PinTo:        -1,
		}
		if w.PinTo != nil {
			wl.PinTo = *w.PinTo
		}
		if needDisk {
			if wl.WSBytes == nil {
				wl.WSBytes = wl.RAMBytes.Clone()
			}
			if wl.UpdateRate == nil {
				return nil, fmt.Errorf("workload %q: update_rate is required when the fleet has a disk profile", w.Name)
			}
		}
		out[i] = wl
	}
	return out, nil
}

// toMachines resolves the explicit machine list or the AutoMachines
// shorthand into consolidation targets.
func toMachines(req *RegisterRequest) ([]kairos.Machine, error) {
	switch {
	case len(req.Machines) > 0 && req.AutoMachines != nil:
		return nil, fmt.Errorf("machines and auto_machines are mutually exclusive")
	case len(req.Machines) > 0:
		out := make([]kairos.Machine, len(req.Machines))
		for i, m := range req.Machines {
			name := m.Name
			if name == "" {
				name = fmt.Sprintf("machine-%02d", i)
			}
			out[i] = kairos.Machine{
				Name:         name,
				CPUCapacity:  m.CPUCapacity,
				RAMBytes:     m.RAMBytes,
				DiskWriteBps: m.DiskWriteBps,
				Headroom:     m.Headroom,
			}
		}
		return out, nil
	case req.AutoMachines != nil:
		am := req.AutoMachines
		if am.Count <= 0 {
			return nil, fmt.Errorf("auto_machines.count must be positive")
		}
		disk := am.DiskWriteBps
		if disk == 0 {
			disk = 50e6
		}
		headroom := am.Headroom
		if headroom == 0 {
			headroom = 0.05
		}
		out := make([]kairos.Machine, am.Count)
		for i := range out {
			out[i] = kairos.Machine{
				Name:         fmt.Sprintf("target-%02d", i),
				CPUCapacity:  1.0,
				RAMBytes:     96e9,
				DiskWriteBps: disk,
				Headroom:     headroom,
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("either machines or auto_machines is required")
	}
}

// toFleetOptions maps the wire options onto the library's functional
// options.
func toFleetOptions(o OptionsWire) []kairos.FleetOption {
	solve := kairos.DefaultOptions()
	solve.SkipDirect = !o.FullSolve
	solve.Workers = o.Workers
	resolve := kairos.DefaultResolveOptions()
	resolve.SkipDirect = true
	resolve.Workers = o.Workers
	if o.MigrationWeight != nil {
		resolve.MigrationWeight = *o.MigrationWeight
	}
	resolve.MaxMigrations = o.MaxMigrations
	driftCfg := kairos.DriftConfig{
		Threshold:    0.04,
		Rearm:        o.Rearm,
		Cooldown:     1,
		History:      o.History,
		MinWorkloads: o.MinWorkloads,
	}
	if o.DriftThreshold > 0 {
		driftCfg.Threshold = o.DriftThreshold
	}
	if o.Cooldown != nil {
		driftCfg.Cooldown = *o.Cooldown
	}
	opts := []kairos.FleetOption{
		kairos.WithSolveOptions(solve),
		kairos.WithResolveOptions(resolve),
		kairos.WithDrift(driftCfg),
	}
	if o.Shards > 0 {
		opts = append(opts, kairos.WithShards(o.Shards))
	}
	return opts
}

// toDiskProfile parses the raw registration disk-profile JSON (the format
// `kairos profile-disk` writes), or returns nil when absent.
func toDiskProfile(raw json.RawMessage) (*model.DiskProfile, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	dp, err := model.LoadProfile(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return dp, nil
}

// fromWorkloads is toWorkloads' inverse: it renders library workloads
// back into wire form for snapshots, preserving start/step so the
// round-trip through toWorkloads reproduces identical series.
func fromWorkloads(wls []kairos.Workload) []WorkloadWire {
	vals := func(s *series.Series) []float64 {
		if s == nil {
			return nil
		}
		return append([]float64(nil), s.Values...)
	}
	out := make([]WorkloadWire, len(wls))
	for i, w := range wls {
		ww := WorkloadWire{
			Name:         w.Name,
			StartUnix:    w.CPU.Start.Unix(),
			StepSeconds:  w.CPU.Step.Seconds(),
			CPU:          vals(w.CPU),
			RAMBytes:     vals(w.RAMBytes),
			WSBytes:      vals(w.WSBytes),
			UpdateRate:   vals(w.UpdateRate),
			DiskWriteBps: vals(w.DiskWriteBps),
			Replicas:     w.Replicas,
		}
		if w.PinTo >= 0 {
			pin := w.PinTo
			ww.PinTo = &pin
		}
		out[i] = ww
	}
	return out
}

// fromHistory renders checkpointed observation windows for a snapshot.
func fromHistory(history [][]kairos.Workload) [][]WorkloadWire {
	out := make([][]WorkloadWire, len(history))
	for i, w := range history {
		out[i] = fromWorkloads(w)
	}
	return out
}

// toHistory is fromHistory's inverse.
func toHistory(history [][]WorkloadWire, needDisk bool) ([][]kairos.Workload, error) {
	out := make([][]kairos.Workload, len(history))
	for i, w := range history {
		wls, err := toWorkloads(w, needDisk)
		if err != nil {
			return nil, fmt.Errorf("history window %d: %w", i, err)
		}
		out[i] = wls
	}
	return out, nil
}

// planWire renders a plan for the wire. workloads and machines are the
// registered spec, used to name assignments.
func planWire(p *kairos.Plan, workloads []kairos.Workload, machines []kairos.Machine) *PlanWire {
	out := &PlanWire{
		K:             p.K,
		Feasible:      p.Feasible,
		Objective:     p.Objective,
		Migrated:      p.Migrated,
		MigrationCost: p.MigrationCost,
		Fevals:        p.Fevals,
		ElapsedMs:     float64(p.Elapsed.Microseconds()) / 1e3,
		Assignments:   make([]AssignmentWire, len(p.Assign)),
	}
	for i, j := range p.Assign {
		a := AssignmentWire{Unit: p.Names[i], Machine: j}
		ref := p.Units[i]
		a.Replica = ref.Replica
		if ref.Workload >= 0 && ref.Workload < len(workloads) {
			a.Workload = workloads[ref.Workload].Name
		}
		if j >= 0 && j < len(machines) {
			a.MachineName = machines[j].Name
		}
		out.Assignments[i] = a
	}
	return out
}

// eventWire renders a re-consolidation event for the wire.
func eventWire(ev *kairos.ReconsolidationEvent) *EventWire {
	out := &EventWire{
		Window:         ev.Window,
		K:              ev.Plan.K,
		Migrated:       ev.Plan.Migrated,
		StaleObjective: ev.StaleObjective,
		Objective:      ev.Plan.Objective,
		ObjectiveDelta: ev.ObjectiveDelta,
	}
	if ev.Trigger != nil {
		out.Trigger = ev.Trigger.String()
		out.MaxDrift = ev.Trigger.MaxDrift
		out.DriftedWorkloads = ev.Trigger.Workloads
	}
	return out
}
