package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kairos"
	"kairos/internal/fleet"
)

// wireWorkloads renders library workloads (as built by the dataset
// generators) into their wire form, with every series scaled by f — the
// collector's view of the fleet at one utilization level.
func wireWorkloads(wls []kairos.Workload, f float64) []WorkloadWire {
	out := make([]WorkloadWire, len(wls))
	for i, w := range wls {
		scaled := func(s []float64) []float64 {
			v := make([]float64, len(s))
			for j, x := range s {
				v[j] = x * f
			}
			return v
		}
		ww := WorkloadWire{
			Name:        w.Name,
			StepSeconds: w.CPU.Step.Seconds(),
			CPU:         scaled(w.CPU.Values),
			RAMBytes:    scaled(w.RAMBytes.Values),
		}
		if w.WSBytes != nil {
			ww.WSBytes = scaled(w.WSBytes.Values)
		}
		if w.UpdateRate != nil {
			ww.UpdateRate = scaled(w.UpdateRate.Values)
		}
		out[i] = ww
	}
	return out
}

// TestServeE2E197 is the acceptance scenario end to end: register the
// 197-server ALL fleet over HTTP, stream quiet observation windows from
// concurrent collectors, then a drifted window; a drift-triggered warm
// re-solve must fire in the reconcile loop, the served plan must advance,
// and the event log and /metrics must reflect the trigger. Runs under
// -race (see TestAutoReconsolidatorConcurrentObserve for the library-level
// hammer).
func TestServeE2E197(t *testing.T) {
	fl := fleet.All()
	baseline := fl.Workloads(0.7)
	if len(baseline) != 197 {
		t.Fatalf("ALL fleet has %d servers, want 197", len(baseline))
	}

	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Register over /v1/fleets with the paper's standard homogeneous
	// targets (one candidate machine per consolidated server).
	status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", mustJSON(RegisterRequest{
		ID:           "all-197",
		Workloads:    wireWorkloads(baseline, 1.0),
		AutoMachines: &AutoMachines{Count: len(baseline)},
	}))
	if status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}
	var st FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workloads != 197 || st.K < 1 || st.K > 197 || !st.Feasible {
		t.Fatalf("registration status = %+v", st)
	}
	t.Logf("registered: 197 workloads -> K=%d", st.K)

	status, initialPlan := do(t, http.MethodGet, ts.URL+"/v1/fleets/all-197/plan", nil)
	if status != http.StatusOK {
		t.Fatalf("initial plan: %d %s", status, initialPlan)
	}

	// Concurrent collectors each stream quiet windows (±0.3% of the
	// registered baseline): the reconcile loop must serialize them and
	// none may trigger.
	const collectors = 4
	quiet := [collectors][]byte{}
	for c := range quiet {
		quiet[c] = mustJSON(WindowRequest{Workloads: wireWorkloads(baseline, 1.0+0.003*float64(c%2))})
	}
	var wg sync.WaitGroup
	errs := make(chan string, collectors)
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/all-197/windows", quiet[c])
			if status != http.StatusOK {
				errs <- string(body)
				return
			}
			var resp WindowResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				errs <- err.Error()
				return
			}
			if resp.Triggered {
				errs <- "quiet window triggered a re-solve"
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatalf("quiet collector: %s", msg)
	}

	// One drifted window (12% above baseline, threshold 0.04) must fire
	// the warm re-solve, and the ack carries the event.
	status, body = do(t, http.MethodPost, ts.URL+"/v1/fleets/all-197/windows",
		mustJSON(WindowRequest{Workloads: wireWorkloads(baseline, 1.12)}))
	if status != http.StatusOK {
		t.Fatalf("drifted window: %d %s", status, body)
	}
	var resp WindowResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Triggered || resp.Event == nil {
		t.Fatalf("drifted window did not trigger: %+v (%s)", resp, body)
	}
	if resp.Window != collectors {
		t.Errorf("drifted window consumed as %d, want %d", resp.Window, collectors)
	}
	if resp.Event.MaxDrift < 0.04 {
		t.Errorf("event drift %v below the threshold that fired it", resp.Event.MaxDrift)
	}
	t.Logf("trigger: %s", resp.Event.Trigger)

	// The served plan advanced to the re-solve.
	status, newPlan := do(t, http.MethodGet, ts.URL+"/v1/fleets/all-197/plan", nil)
	if status != http.StatusOK {
		t.Fatalf("plan after trigger: %d %s", status, newPlan)
	}
	if string(newPlan) == string(initialPlan) {
		t.Error("served plan did not advance after the trigger")
	}
	var plan PlanWire
	if err := json.Unmarshal(newPlan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.K != resp.Event.K {
		t.Errorf("served plan K=%d != event K=%d", plan.K, resp.Event.K)
	}
	if len(plan.Assignments) != 197 {
		t.Errorf("plan has %d assignments, want 197", len(plan.Assignments))
	}

	// The event log over /v1/ holds exactly the trigger.
	status, body = do(t, http.MethodGet, ts.URL+"/v1/fleets/all-197/events", nil)
	if status != http.StatusOK {
		t.Fatalf("events: %d %s", status, body)
	}
	var events []*EventWire
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Window != collectors {
		t.Fatalf("event log = %s, want one trigger at window %d", body, collectors)
	}

	// Fleet status summarizes the loop: all windows consumed, one trigger.
	status, body = do(t, http.MethodGet, ts.URL+"/v1/fleets/all-197", nil)
	if status != http.StatusOK {
		t.Fatalf("status: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Windows != collectors+1 || st.Triggers != 1 || st.LastTrigger != collectors {
		t.Errorf("fleet status = %+v, want %d windows and 1 trigger at window %d",
			st, collectors+1, collectors)
	}

	// /metrics reflects the trigger.
	status, body = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`kairos_windows_ingested_total{fleet="all-197"} 5`,
		`kairos_triggers_total{fleet="all-197"} 1`,
		`kairos_resolve_duration_seconds_count{fleet="all-197"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
