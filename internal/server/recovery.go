package server

// Crash recovery for the durable control plane. The journal (see
// internal/journal) holds a snapshot of the full registry plus an ordered
// suffix of mutation records (RecordWire); replay restores the snapshot,
// then reconsumes each record through the same state machines the live
// server used — windows detect-only (so the drift detector cannot
// double-fire on a replayed window), advances from their journaled
// incumbents (no re-solve) — and finally starts a reconcile loop per
// recovered fleet.
//
// Convention (see CONTRIBUTING.md): every new control-plane mutation
// needs a RecordWire field, an append at its live mutation site, and a
// replay case in this file.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"kairos"
	"kairos/internal/journal"
)

// RecoveryStats summarizes one journal replay for logs and /metrics.
type RecoveryStats struct {
	// SnapshotFleets is how many fleets the snapshot restored.
	SnapshotFleets int
	// Fleets is the registry size after the full replay.
	Fleets int
	// Windows, Advances and Rearms count replayed journal records.
	Windows  int
	Advances int
	Rearms   int
	// Healed counts pending triggers re-armed by the self-heal rule: a
	// journaled trigger whose outcome (advance or rearm) never made the
	// journal before the crash.
	Healed int
	// TornTail reports the journal ended in a truncated partial record.
	TornTail bool
	// Elapsed is how long the replay took.
	Elapsed time.Duration
}

// appendRecord journals one control-plane mutation, marshalled as
// RecordWire. A nil journal (no state dir) accepts everything: the
// in-memory server behaves exactly as before durability existed.
func (s *Server) appendRecord(rec *RecordWire) error {
	if s.jl == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = s.jl.Append(b)
	return err
}

// installHook wires the session's advance hook: every drift-triggered
// incumbent advance is journaled before the library publishes it, so a
// recovered server can never serve an older plan than one a client
// already saw. A refused append aborts the advance (the detector
// re-arms and the drift fires again).
func (s *Server) installHook(sess *session) {
	sess.fleet.SetAdvanceHook(func(ev *kairos.ReconsolidationEvent) error {
		return s.appendRecord(&RecordWire{Advance: &AdvanceRecord{
			Fleet:     sess.id,
			Incumbent: ev.Plan.Incumbent(),
			Event:     eventWire(ev),
		}})
	})
}

// jitterDuration returns a uniformly random duration in [0, d).
func jitterDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d)))
}

// restoreSession rebuilds one fleet session from its registration
// request and durable incumbent, without solving. Shared by snapshot
// restore and RegisterRecord replay; the reconcile loop is started by
// the caller once the whole journal has replayed.
func (s *Server) restoreSession(req *RegisterRequest, inc *kairos.Incumbent) (*session, error) {
	if req == nil || req.ID == "" {
		return nil, fmt.Errorf("registration record has no request")
	}
	if inc == nil {
		return nil, fmt.Errorf("fleet %q journaled without an incumbent", req.ID)
	}
	dp, err := toDiskProfile(req.DiskProfile)
	if err != nil {
		return nil, fmt.Errorf("fleet %q disk_profile: %w", req.ID, err)
	}
	machines, err := toMachines(req)
	if err != nil {
		return nil, fmt.Errorf("fleet %q: %w", req.ID, err)
	}
	workloads, err := toWorkloads(req.Workloads, dp != nil)
	if err != nil {
		return nil, fmt.Errorf("fleet %q: %w", req.ID, err)
	}
	if err := uniqueNames(workloads); err != nil {
		return nil, fmt.Errorf("fleet %q: %w", req.ID, err)
	}
	fleet, err := kairos.NewFleet(
		kairos.FleetSpec{Name: req.ID, Workloads: workloads, Machines: machines, Disk: dp},
		toFleetOptions(req.Options)...)
	if err != nil {
		return nil, fmt.Errorf("fleet %q spec: %w", req.ID, err)
	}
	if _, err := fleet.AdoptIncumbent(inc); err != nil {
		return nil, fmt.Errorf("fleet %q incumbent: %w", req.ID, err)
	}
	sess := &session{
		id:        req.ID,
		req:       req,
		fleet:     fleet,
		workloads: workloads,
		machines:  machines,
		needDisk:  dp != nil,
		ingest:    make(chan ingestReq),
		done:      make(chan struct{}),
		acks:      map[int64]AckWire{},
	}
	s.installHook(sess)
	return sess, nil
}

// replay rebuilds the registry from a recovered journal, then starts the
// reconcile loops. It runs inside Open, before the HTTP surface accepts
// traffic (Handler answers 503 while s.recovering), but still holds s.mu
// throughout so the registry writes satisfy the lock contract the live
// paths rely on. Records referencing unknown fleets — possible after a
// snapshot compacted away their registration and deregistration — are
// skipped; structurally invalid records are fatal (they can only mean a
// software bug, the CRC already vouched for the bytes).
func (s *Server) replay(rec *journal.Recovered) (*RecoveryStats, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := &RecoveryStats{TornTail: rec.TornTail}
	if rec.TornTail {
		s.logf("journal tail torn at byte %d: truncated (last records were never acked)", rec.TornOffset)
	}

	if len(rec.Snapshot) > 0 {
		var snap SnapshotWire
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("decoding snapshot: %w", err)
		}
		for i := range snap.Fleets {
			fs := &snap.Fleets[i]
			sess, err := s.restoreSession(fs.Request, fs.Incumbent)
			if err != nil {
				return nil, fmt.Errorf("snapshot: %w", err)
			}
			if fs.Detector.Windows > 0 || len(fs.History) > 0 {
				cp := &kairos.FleetCheckpoint{
					Incumbent: fs.Incumbent,
					Windows:   fs.Detector.Windows,
					Armed:     fs.Detector.Armed,
					Cooldown:  fs.Detector.Cooldown,
				}
				if len(fs.Baseline) > 0 {
					if cp.Baseline, err = toWorkloads(fs.Baseline, sess.needDisk); err != nil {
						return nil, fmt.Errorf("snapshot fleet %q baseline: %w", sess.id, err)
					}
				}
				if cp.History, err = toHistory(fs.History, sess.needDisk); err != nil {
					return nil, fmt.Errorf("snapshot fleet %q: %w", sess.id, err)
				}
				if err := sess.fleet.RestoreWatch(cp); err != nil {
					return nil, fmt.Errorf("snapshot fleet %q watch state: %w", sess.id, err)
				}
			}
			sess.mu.Lock()
			sess.events = append(sess.events, fs.Events...)
			for _, a := range fs.Acks {
				if _, ok := sess.acks[a.StartUnix]; !ok {
					sess.ackOrder = append(sess.ackOrder, a.StartUnix)
				}
				sess.acks[a.StartUnix] = a
			}
			sess.failures = fs.Failures
			sess.mu.Unlock()
			s.fleets[sess.id] = sess
		}
		stats.SnapshotFleets = len(snap.Fleets)
	}

	// pending marks fleets whose last replayed window fired a trigger with
	// no journaled outcome yet. Live, the outcome record (advance or
	// rearm) immediately follows; a crash between them leaves the trigger
	// dangling, and the self-heal re-arms it so the drift fires again.
	pending := map[string]bool{}
	heal := func(id string) {
		if pending[id] {
			if sess := s.fleets[id]; sess != nil {
				sess.fleet.RearmDetector()
				stats.Healed++
			}
			delete(pending, id)
		}
	}
	for _, r := range rec.Records {
		var rw RecordWire
		if err := json.Unmarshal(r.Payload, &rw); err != nil {
			return nil, fmt.Errorf("decoding journal record %d: %w", r.Seq, err)
		}
		switch {
		case rw.Register != nil:
			sess, err := s.restoreSession(rw.Register.Request, rw.Register.Incumbent)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", r.Seq, err)
			}
			s.fleets[sess.id] = sess
		case rw.Window != nil:
			id := rw.Window.Fleet
			sess := s.fleets[id]
			if sess == nil {
				s.logf("journal record %d: window for unknown fleet %q skipped", r.Seq, id)
				continue
			}
			heal(id)
			window, err := toWorkloads(rw.Window.Workloads, sess.needDisk)
			if err != nil {
				// The live server journaled before validating against the
				// session; a window it went on to reject replays as rejected.
				s.logf("journal record %d: window for %q rejected on replay (as live): %v", r.Seq, id, err)
				continue
			}
			triggered, err := sess.fleet.ObserveDetectOnly(window)
			if err != nil {
				s.logf("journal record %d: window for %q rejected on replay (as live): %v", r.Seq, id, err)
				continue
			}
			stats.Windows++
			if triggered {
				pending[id] = true
			}
			if key := windowKey(rw.Window.Workloads); key != 0 {
				s.recordAck(sess, key, ingestResp{window: sess.fleet.Window() - 1, triggered: triggered})
			}
		case rw.Advance != nil:
			id := rw.Advance.Fleet
			sess := s.fleets[id]
			if sess == nil {
				s.logf("journal record %d: advance for unknown fleet %q skipped", r.Seq, id)
				continue
			}
			if _, err := sess.fleet.ReplayAdvance(rw.Advance.Incumbent); err != nil {
				return nil, fmt.Errorf("record %d: replaying advance for %q: %w", r.Seq, id, err)
			}
			if rw.Advance.Event != nil {
				sess.mu.Lock()
				sess.events = append(sess.events, rw.Advance.Event)
				sess.mu.Unlock()
			}
			delete(pending, id)
			stats.Advances++
		case rw.Rearm != nil:
			id := rw.Rearm.Fleet
			if sess := s.fleets[id]; sess != nil {
				sess.fleet.RearmDetector()
				stats.Rearms++
			}
			delete(pending, id)
		case rw.Deregister != nil:
			delete(pending, rw.Deregister.Fleet)
			delete(s.fleets, rw.Deregister.Fleet)
		default:
			return nil, fmt.Errorf("journal record %d has no operation", r.Seq)
		}
	}
	for id := range pending {
		heal(id)
	}

	stats.Fleets = len(s.fleets)
	for _, sess := range s.fleets {
		ctx, cancel := context.WithCancel(s.ctx)
		sess.cancel = cancel
		s.wg.Add(1)
		go s.reconcile(ctx, sess)
	}
	s.met.setFleets(len(s.fleets))
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// maybeSnapshot compacts the journal into a snapshot once enough windows
// have been ingested since the last one. Called by reconcile loops after
// releasing the snapshot read-lock; a failed snapshot is logged and
// retried after the next window (the journal keeps growing but loses
// nothing).
func (s *Server) maybeSnapshot() {
	if s.jl == nil {
		return
	}
	if s.sinceSnap.Add(1) < s.snapEvery {
		return
	}
	if err := s.snapshot(); err != nil {
		s.logf("snapshot failed (journal retained, will retry): %v", err)
	}
}

// snapshot checkpoints every fleet under the ingestion write-lock and
// hands the marshalled registry to the journal, which swaps it in and
// truncates the replayed prefix. Quiescing ingestion guarantees the
// snapshot observes no window between its journal record and its
// effects.
func (s *Server) snapshot() error {
	s.pauseRW.Lock()
	defer s.pauseRW.Unlock()
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.fleets))
	for _, sess := range s.fleets {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	// Deterministic order keeps snapshots byte-comparable across runs.
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	snap := SnapshotWire{Fleets: make([]FleetSnapshot, 0, len(sessions))}
	for _, sess := range sessions {
		cp := sess.fleet.Checkpoint()
		fs := FleetSnapshot{
			Request:   sess.req,
			Incumbent: cp.Incumbent,
			Baseline:  fromWorkloads(cp.Baseline),
			History:   fromHistory(cp.History),
			Detector:  DetectorWire{Windows: cp.Windows, Armed: cp.Armed, Cooldown: cp.Cooldown},
		}
		sess.mu.Lock()
		fs.Events = append([]*EventWire(nil), sess.events...)
		for _, k := range sess.ackOrder {
			fs.Acks = append(fs.Acks, sess.acks[k])
		}
		fs.Failures = sess.failures
		sess.mu.Unlock()
		snap.Fleets = append(snap.Fleets, fs)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := s.jl.Snapshot(b); err != nil {
		return err
	}
	s.sinceSnap.Store(0)
	return nil
}
