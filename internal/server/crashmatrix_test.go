package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kairos/internal/journal"
)

// The crash matrix: for every io-level injection point in the journal,
// "crash" the control plane there (injected fault + kill switch, so
// nothing after the crash point persists), restart from the state
// directory, and assert the recovery invariants:
//
//  1. every window the client saw acked is replayed (a resend returns the
//     original ack as a duplicate, the window counter matches),
//  2. the recovered plan equals the last plan the crashed server served,
//  3. the drift detector does not double-fire on replayed windows (the
//     recovered event log and trigger count equal the acked ones),
//  4. the recovered server accepts new windows and can still trigger.

// openDurable starts a durable control plane over dir.
func openDurable(t *testing.T, dir string, opt journal.Options, snapEvery int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(Config{StateDir: dir, Journal: opt, SnapshotEvery: snapEvery, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open durable server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

// samePlacement asserts two served plans place identically: same K,
// feasibility and unit assignments. The recovered plan's bookkeeping
// (fevals, elapsed) and — after a snapshot restore — its pricing basis
// differ legitimately; the placement is the published contract.
func samePlacement(t *testing.T, label string, got, want []byte) {
	t.Helper()
	var g, w PlanWire
	if err := json.Unmarshal(got, &g); err != nil {
		t.Fatalf("%s: %v (%s)", label, err, got)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		t.Fatalf("%s: %v (%s)", label, err, want)
	}
	if g.K != w.K || g.Feasible != w.Feasible || len(g.Assignments) != len(w.Assignments) {
		t.Fatalf("%s: got K=%d feasible=%v (%d units), want K=%d feasible=%v (%d units)",
			label, g.K, g.Feasible, len(g.Assignments), w.K, w.Feasible, len(w.Assignments))
	}
	for i := range g.Assignments {
		if g.Assignments[i] != w.Assignments[i] {
			t.Fatalf("%s: assignment %d = %+v, want %+v", label, i, g.Assignments[i], w.Assignments[i])
		}
	}
}

// stampedWindow is testWorkloads with a start_unix key, so ingest is
// idempotent under retries.
func stampedWindow(n, T int, scale float64, key int64) []byte {
	wls := testWorkloads(n, T, scale)
	for i := range wls {
		wls[i].StartUnix = key
	}
	return mustJSON(WindowRequest{Workloads: wls})
}

func TestCrashMatrix(t *testing.T) {
	type cell struct {
		name string
		arm  func(fi *journal.FaultInjector)
	}
	cells := []cell{}
	for _, p := range journal.Points {
		p := p
		cells = append(cells, cell{name: p, arm: func(fi *journal.FaultInjector) { fi.Crash(p, 1) }})
	}
	// A torn append: half the record frame reaches disk before the crash —
	// recovery must truncate the torn tail, not refuse to start.
	cells = append(cells, cell{name: "append.write/torn", arm: func(fi *journal.FaultInjector) {
		fi.CrashPartial(journal.PointAppendWrite, 1, 0.5)
	}})

	// The scripted stream: quiet, quiet, drifted (trigger), quiet, drifted
	// (trigger), quiet. SnapshotEvery=2 makes snapshots happen mid-stream,
	// so the snapshot points in the matrix actually fire.
	scales := []float64{1.001, 1.002, 1.3, 1.004, 1.3, 1.001}

	for _, tc := range cells {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := &journal.FaultInjector{}
			s, ts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways, Fault: inj}, 2)
			defer func() { ts.Close(); s.Kill() }()

			if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("cm", 4, 8)); status != http.StatusCreated {
				t.Fatalf("register: %d %s", status, body)
			}
			// Arm after registration: the crash lands mid-stream.
			tc.arm(inj)

			// Drive the stream, keeping a client-side ledger of every acked
			// window and the plan served after each ack. The moment the armed
			// point has been crossed, flip the kill switch — a real SIGKILL
			// persists nothing past the crash point either.
			point := strings.TrimSuffix(tc.name, "/torn")
			type acked struct {
				key  int64
				resp WindowResponse
			}
			var ledger []acked
			var lastPlan []byte
			triggers := 0
			for i, scale := range scales {
				key := int64(1000 * (i + 1))
				status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/cm/windows", stampedWindow(4, 8, scale, key))
				if status == http.StatusOK {
					var resp WindowResponse
					if err := json.Unmarshal(body, &resp); err != nil {
						t.Fatal(err)
					}
					ledger = append(ledger, acked{key, resp})
					if resp.Triggered {
						triggers++
					}
					if ps, pb := do(t, http.MethodGet, ts.URL+"/v1/fleets/cm/plan", nil); ps == http.StatusOK {
						lastPlan = pb
					}
				} else if status != http.StatusServiceUnavailable {
					t.Fatalf("window %d: unexpected status %d (%s)", i, status, body)
				}
				if inj.Hits(point) > 0 {
					inj.Kill()
					break
				}
			}
			ts.Close()
			s.Kill()

			// Restart from the state directory, no faults.
			rs, rts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 256)
			defer func() { rts.Close(); rs.Close() }()

			// Invariants 1 and 3: every acked window (and trigger) is
			// replayed. The journal may hold at most one more of each — a
			// window (or its advance) whose append persisted but whose ack
			// never reached the client; recovery replays it and the client's
			// retry deduplicates (at-least-once for unacked work).
			status, body := do(t, http.MethodGet, rts.URL+"/v1/fleets/cm", nil)
			if status != http.StatusOK {
				t.Fatalf("recovered status: %d %s", status, body)
			}
			var st FleetStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			if st.Windows < len(ledger) || st.Windows > len(ledger)+1 {
				t.Errorf("recovered windows = %d, want %d acked (+ at most 1 in-flight)", st.Windows, len(ledger))
			}
			if st.Triggers < triggers || st.Triggers > triggers+1 {
				t.Errorf("recovered triggers = %d, want %d acked (+ at most 1 in-flight); double-fire or lost advance", st.Triggers, triggers)
			}

			// Invariant 2: the recovered plan is the last served plan —
			// unless the journal held an in-flight advance the client never
			// saw acked, in which case the recovered plan is the newer one
			// (a recovered server must never serve an OLDER plan).
			status, body = do(t, http.MethodGet, rts.URL+"/v1/fleets/cm/plan", nil)
			if status != http.StatusOK {
				t.Fatalf("recovered plan: %d %s", status, body)
			}
			if lastPlan != nil && st.Triggers == triggers {
				samePlacement(t, "recovered plan vs last served", body, lastPlan)
			}

			// Invariant 1, the retry contract: resending every acked window
			// returns its original ack as a duplicate, not a re-apply.
			for i, a := range ledger {
				status, body := do(t, http.MethodPost, rts.URL+"/v1/fleets/cm/windows",
					stampedWindow(4, 8, scales[i], a.key))
				if status != http.StatusOK {
					t.Fatalf("resend acked window %d: %d %s", i, status, body)
				}
				var resp WindowResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatal(err)
				}
				if !resp.Duplicate {
					t.Errorf("resent acked window %d re-applied instead of deduplicating", i)
				}
				if resp.Window != a.resp.Window || resp.Triggered != a.resp.Triggered {
					t.Errorf("resent window %d acked as (%d,%v), original (%d,%v)",
						i, resp.Window, resp.Triggered, a.resp.Window, a.resp.Triggered)
				}
			}

			// Invariant 4: the recovered server is live — a strongly drifted
			// fresh window is consumed (and may trigger a new re-solve).
			status, body = do(t, http.MethodPost, rts.URL+"/v1/fleets/cm/windows",
				stampedWindow(4, 8, 1.5, 99999))
			if status != http.StatusOK {
				t.Fatalf("fresh window after recovery: %d %s", status, body)
			}

			// The recovery surfaced its own metrics.
			status, body = do(t, http.MethodGet, rts.URL+"/metrics", nil)
			if status != http.StatusOK {
				t.Fatalf("metrics: %d", status)
			}
			if !strings.Contains(string(body), "kairos_recovery_fleets 1") {
				t.Errorf("metrics missing recovery gauge:\n%s", body)
			}
		})
	}
}

// TestRecoveryAfterGracefulClose: a clean shutdown snapshots, and the
// restart restores everything from the snapshot — plan, detector
// counters, event log, ack ring — without replaying window records.
func TestRecoveryAfterGracefulClose(t *testing.T) {
	dir := t.TempDir()
	s, ts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 256)
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("gc", 4, 8)); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}
	var acks []WindowResponse
	for i, scale := range []float64{1.001, 1.3, 1.002} {
		status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/gc/windows",
			stampedWindow(4, 8, scale, int64(1000*(i+1))))
		if status != http.StatusOK {
			t.Fatalf("window %d: %d %s", i, status, body)
		}
		var resp WindowResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		acks = append(acks, resp)
	}
	_, wantPlan := do(t, http.MethodGet, ts.URL+"/v1/fleets/gc/plan", nil)
	_, wantEvents := do(t, http.MethodGet, ts.URL+"/v1/fleets/gc/events", nil)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	rs, rts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 256)
	defer func() { rts.Close(); rs.Close() }()
	if rs.recovery == nil || rs.recovery.SnapshotFleets != 1 {
		t.Fatalf("recovery stats %+v, want 1 fleet from the shutdown snapshot", rs.recovery)
	}
	if rs.recovery.Windows != 0 {
		t.Errorf("replayed %d window records, want 0 (snapshot should cover them)", rs.recovery.Windows)
	}
	_, gotPlan := do(t, http.MethodGet, rts.URL+"/v1/fleets/gc/plan", nil)
	samePlacement(t, "plan after graceful restart", gotPlan, wantPlan)
	_, gotEvents := do(t, http.MethodGet, rts.URL+"/v1/fleets/gc/events", nil)
	if string(gotEvents) != string(wantEvents) {
		t.Errorf("event log after graceful restart differs:\n got %s\nwant %s", gotEvents, wantEvents)
	}
	// The ack ring survives via the snapshot: a resend deduplicates.
	status, body := do(t, http.MethodPost, rts.URL+"/v1/fleets/gc/windows",
		stampedWindow(4, 8, 1.3, 2000))
	if status != http.StatusOK {
		t.Fatalf("resend: %d %s", status, body)
	}
	var resp WindowResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate || resp.Window != acks[1].Window || resp.Triggered != acks[1].Triggered {
		t.Errorf("resend after snapshot restore = %+v, want duplicate of %+v", resp, acks[1])
	}
}

// TestDeregisterSurvivesRestart: a journaled deregistration must not be
// resurrected by replay.
func TestDeregisterSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, ts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 256)
	for _, id := range []string{"keep", "drop"} {
		if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody(id, 3, 6)); status != http.StatusCreated {
			t.Fatalf("register %s: %d %s", id, status, body)
		}
	}
	if status, _ := do(t, http.MethodDelete, ts.URL+"/v1/fleets/drop", nil); status != http.StatusNoContent {
		t.Fatalf("delete: %d", status)
	}
	ts.Close()
	s.Kill() // no shutdown snapshot: the journal alone must get this right

	rs, rts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 256)
	defer func() { rts.Close(); rs.Close() }()
	if status, _ := do(t, http.MethodGet, rts.URL+"/v1/fleets/keep", nil); status != http.StatusOK {
		t.Errorf("fleet keep lost across restart: %d", status)
	}
	if status, _ := do(t, http.MethodGet, rts.URL+"/v1/fleets/drop", nil); status != http.StatusNotFound {
		t.Errorf("deregistered fleet resurrected by replay: %d", status)
	}
}

// TestIdempotentIngestLive: the retry contract holds without any crash —
// a resend of an acked window (same start_unix) is answered from the ack
// ring, and windows without a start_unix are never deduplicated.
func TestIdempotentIngestLive(t *testing.T) {
	_, ts := newTestServer(t)
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("idem", 4, 8)); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}
	status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/idem/windows", stampedWindow(4, 8, 1.001, 7000))
	if status != http.StatusOK {
		t.Fatalf("window: %d %s", status, body)
	}
	var first WindowResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	status, body = do(t, http.MethodPost, ts.URL+"/v1/fleets/idem/windows", stampedWindow(4, 8, 1.001, 7000))
	if status != http.StatusOK {
		t.Fatalf("resend: %d %s", status, body)
	}
	var again WindowResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Duplicate || again.Window != first.Window {
		t.Errorf("resend = %+v, want duplicate of %+v", again, first)
	}
	// Unstamped windows (start_unix 0) apply every time.
	for want := 1; want <= 2; want++ {
		status, body = do(t, http.MethodPost, ts.URL+"/v1/fleets/idem/windows",
			mustJSON(WindowRequest{Workloads: testWorkloads(4, 8, 1.001)}))
		if status != http.StatusOK {
			t.Fatalf("unstamped window: %d %s", status, body)
		}
		var resp WindowResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Duplicate || resp.Window != want {
			t.Errorf("unstamped window = %+v, want fresh apply as window %d", resp, want)
		}
	}
}

// TestSolverBackoffSuppressesSolves: during backoff a drifted window is
// monitored detect-only (no re-solve, detector re-armed) and the
// consecutive-failure gauge is visible; once the backoff expires the
// same drift triggers normally.
func TestSolverBackoffSuppressesSolves(t *testing.T) {
	s, ts := newTestServer(t)
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("bk", 4, 8)); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}
	s.mu.Lock()
	sess := s.fleets["bk"]
	s.mu.Unlock()
	sess.mu.Lock()
	sess.failures = 3
	sess.backoffUntil = time.Now().Add(time.Hour)
	sess.mu.Unlock()
	s.met.setResolveFailures("bk", 3)

	status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/bk/windows", stampedWindow(4, 8, 1.3, 1000))
	if status != http.StatusOK {
		t.Fatalf("backoff window: %d %s", status, body)
	}
	var resp WindowResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Triggered || resp.Event != nil {
		t.Fatalf("backoff window still triggered a re-solve: %+v", resp)
	}
	status, body = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if !strings.Contains(string(body), `kairos_resolve_failures_consecutive{fleet="bk"} 3`) {
		t.Errorf("metrics missing failure gauge:\n%s", body)
	}

	// Backoff expires: the held drift fires on the next window, because
	// the suppressed trigger re-armed the detector.
	sess.mu.Lock()
	sess.backoffUntil = time.Time{}
	sess.mu.Unlock()
	status, body = do(t, http.MethodPost, ts.URL+"/v1/fleets/bk/windows", stampedWindow(4, 8, 1.3, 2000))
	if status != http.StatusOK {
		t.Fatalf("post-backoff window: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Triggered {
		t.Fatal("drift did not fire after the backoff expired")
	}
	status, body = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	if !strings.Contains(string(body), `kairos_resolve_failures_consecutive{fleet="bk"} 0`) {
		t.Errorf("failure gauge not cleared by the successful solve:\n%s", body)
	}
}

// TestBumpBackoff pins the backoff schedule: exponential growth from the
// base, jitter confined to the upper half, capped.
func TestBumpBackoff(t *testing.T) {
	s := &Server{backoffBase: 10 * time.Millisecond, backoffCap: 80 * time.Millisecond}
	sess := &session{}
	expect := []time.Duration{10, 20, 40, 80, 80, 80} // pre-jitter targets, ms
	for i, wantMs := range expect {
		n, d := s.bumpBackoff(sess)
		if n != i+1 {
			t.Fatalf("failure count = %d, want %d", n, i+1)
		}
		want := wantMs * time.Millisecond
		if d < want/2 || d > want {
			t.Errorf("backoff %d = %v, want within [%v, %v]", n, d, want/2, want)
		}
	}
}

// TestDegradedWhileRecovering: every request during journal replay is
// answered 503 with a Retry-After, including health checks.
func TestDegradedWhileRecovering(t *testing.T) {
	s, ts := newTestServer(t)
	s.recovering.Store(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status during recovery = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After")
	}
	s.recovering.Store(false)
	if status, _ := do(t, http.MethodGet, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Error("server did not exit degraded mode")
	}
}

// TestRetryAfterOnShutdown: the shutdown-abort 503 carries Retry-After,
// telling collectors the window is safe to resend to a replacement.
func TestRetryAfterOnShutdown(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", registerBody("ra", 3, 6)); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}
	s.Close()
	resp, err := http.Post(ts.URL+"/v1/fleets/ra/windows", "application/json",
		strings.NewReader(string(stampedWindow(3, 6, 1.0, 1000))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("window during shutdown = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shutdown 503 missing Retry-After")
	}
}

// TestOversizedBody413: a /v1/ body beyond the MaxBytesReader cap is
// rejected with 413, not buffered.
func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t)
	var huge []byte
	huge = append(huge, `{"id": "big", "workloads": "`...)
	huge = append(huge, bytes.Repeat([]byte("a"), maxBodyBytes+1024)...)
	huge = append(huge, `"}`...)
	status, _ := do(t, http.MethodPost, ts.URL+"/v1/fleets", huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized register body = %d, want 413", status)
	}
}
