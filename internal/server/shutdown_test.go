package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kairos/internal/fleet"
)

// TestShutdownAbortsInflightSolve: Server.Close cancels the reconcile
// loops' contexts, which must abort a drift-triggered 197-server warm
// re-solve mid-flight — Close returns within a shutdown grace window
// instead of waiting out the solve, and the in-flight window is answered
// with the cancellation instead of left hanging.
func TestShutdownAbortsInflightSolve(t *testing.T) {
	fl := fleet.All()
	baseline := fl.Workloads(0.7)
	if len(baseline) != 197 {
		t.Fatalf("ALL fleet has %d servers, want 197", len(baseline))
	}

	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", mustJSON(RegisterRequest{
		ID:           "all-197",
		Workloads:    wireWorkloads(baseline, 1.0),
		AutoMachines: &AutoMachines{Count: len(baseline)},
	}))
	if status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}

	// Hand a heavily drifted window (12% over baseline, threshold 4%) to
	// the reconcile loop directly: the channel send completes exactly when
	// the loop receives it, so the warm re-solve is deterministically in
	// flight when Close lands below — no timing guess, unlike an HTTP post.
	window, err := toWorkloads(wireWorkloads(baseline, 1.12), false)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	sess := s.fleets["all-197"]
	s.mu.Unlock()
	ir := ingestReq{window: window, reply: make(chan ingestResp, 1)}
	select {
	case sess.ingest <- ir:
	case <-time.After(10 * time.Second):
		t.Fatal("reconcile loop never picked up the window")
	}
	// Let the loop get past drift detection and into the solve. (Even if
	// Close lands before the solve starts, Resolve returns the
	// cancellation immediately — the assertion below holds either way.)
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	closeDur := time.Since(start)
	// An uncancelled 197-server re-solve holds the loop for seconds; the
	// abort must bring Close well under a serve -grace window (10s default,
	// bound loose for slow CI).
	if closeDur > 5*time.Second {
		t.Errorf("Close took %v with a solve in flight", closeDur)
	}
	t.Logf("Close returned in %v", closeDur)

	select {
	case resp := <-ir.reply:
		if !errors.Is(resp.err, context.Canceled) {
			t.Fatalf("in-flight window answered (%+v, %v), want context.Canceled", resp, resp.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight window was never answered after Close")
	}

	// Windows posted over HTTP after shutdown are answered 503, not hung
	// and not 410 (the fleet was not deregistered — the server is gone).
	status, body = do(t, http.MethodPost, ts.URL+"/v1/fleets/all-197/windows",
		mustJSON(WindowRequest{Workloads: wireWorkloads(baseline, 1.0)}))
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "shutting down") {
		t.Errorf("window after Close: %d %s, want 503 shutting down", status, body)
	}

	// The server refuses new registrations after Close.
	status, body = do(t, http.MethodPost, ts.URL+"/v1/fleets", mustJSON(RegisterRequest{
		ID:           "late",
		Workloads:    wireWorkloads(baseline[:2], 1.0),
		AutoMachines: &AutoMachines{Count: 2},
	}))
	if status != http.StatusServiceUnavailable {
		t.Errorf("register after Close: %d %s, want 503", status, body)
	}
}
