package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kairos"
	"kairos/internal/journal"
)

// maxBodyBytes caps every /v1/ request body (http.MaxBytesReader): a
// hostile or broken collector posting an unbounded JSON stream gets a 413
// instead of OOMing the daemon. Sixteen MiB holds a multi-thousand-server
// observation window with week-long series.
const maxBodyBytes = 16 << 20

// ackRingSize bounds the per-fleet idempotent-ingest ring: the most
// recent acks, keyed by window start time, kept for collector retries.
const ackRingSize = 512

// Config configures a control plane for Open.
type Config struct {
	// Logf receives one line per lifecycle event (register, trigger,
	// deregister, recovery); nil discards them.
	Logf func(format string, args ...any)
	// StateDir enables durability: every control-plane mutation is
	// journaled there before it is acked or published, and Open replays
	// snapshot + journal to rebuild the registry. Empty runs in-memory,
	// exactly as a server without durability always has.
	StateDir string
	// Journal tunes the write-ahead log (fsync policy, test fault
	// injection). Ignored without StateDir.
	Journal journal.Options
	// SnapshotEvery compacts the journal into a snapshot after this many
	// ingested windows (0 = 256).
	SnapshotEvery int
	// BackoffBase and BackoffCap bound the exponential backoff a fleet's
	// reconcile loop applies after a failed re-solve (0 = 1s base, 60s
	// cap). Windows arriving during backoff are monitored but never
	// trigger a solve.
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

// Server is the control plane state: the fleet registry, one reconcile
// loop per registered fleet, the metrics registry, and (with a state
// dir) the durability journal. Create it with Open (or New for a pure
// in-memory plane), mount Handler on an http.Server, and Close it on
// shutdown — Close cancels every reconcile loop, waits for them to
// drain, and snapshots the journal.
type Server struct {
	mu     sync.Mutex
	fleets map[string]*session // guarded by mu
	closed bool                // guarded by mu

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	met  *metrics
	mux  *http.ServeMux
	logf func(format string, args ...any)

	// jl is the durability journal; nil without a state dir.
	jl *journal.Log
	// pauseRW quiesces ingestion for snapshots: every reconcile loop
	// holds the read side across one window's journal-append + apply +
	// ack, so the write side observes no window between its journal
	// record and its effects.
	pauseRW sync.RWMutex
	// recovering gates the HTTP surface while the journal replays:
	// requests get a degraded 503 + Retry-After instead of racing the
	// rebuild.
	recovering atomic.Bool
	// recovery summarizes the last replay for /metrics; nil without a
	// state dir.
	recovery *RecoveryStats
	// sinceSnap counts ingested windows since the last snapshot.
	sinceSnap atomic.Int64
	snapEvery int64

	backoffBase time.Duration
	backoffCap  time.Duration
}

// session is one registered fleet: the library session handle plus the
// channel its reconcile loop serializes ingestion through, the
// server-side event log, and the idempotent-ingest ring.
type session struct {
	id        string
	req       *RegisterRequest // registration request, reissued in snapshots
	fleet     *kairos.Fleet
	workloads []kairos.Workload
	machines  []kairos.Machine
	needDisk  bool
	ingest    chan ingestReq
	cancel    context.CancelFunc
	done      chan struct{}

	mu sync.Mutex
	// events is the fleet's re-consolidation event log in wire form —
	// server-owned so recovery can restore it from the journal without
	// reconstructing library event objects (guarded by mu).
	events []*EventWire
	// acks and ackOrder are the idempotent-ingest ring: original
	// acknowledgements keyed by window start time, eviction in arrival
	// order (guarded by mu).
	acks     map[int64]AckWire
	ackOrder []int64 // guarded by mu
	// failures counts consecutive failed re-solves; backoffUntil is when
	// the loop may solve again (guarded by mu).
	failures     int
	backoffUntil time.Time // guarded by mu
}

// ingestReq carries one observation window into the reconcile loop and
// the channel the loop acknowledges it on. wire is the window as
// received, journaled verbatim.
type ingestReq struct {
	window []kairos.Workload
	wire   []WorkloadWire
	reply  chan ingestResp
}

// ingestResp is the reconcile loop's acknowledgement of one window.
type ingestResp struct {
	window    int
	triggered bool
	event     *kairos.ReconsolidationEvent
	// duplicate marks an idempotent resend answered from the ack ring.
	duplicate bool
	// journalErr reports the window could not be made durable; the
	// client must retry (503), nothing was applied.
	journalErr error
	err        error
}

// New creates a pure in-memory control plane (no state dir). logf
// receives one line per lifecycle event; nil discards them.
func New(logf func(format string, args ...any)) *Server {
	s, err := Open(Config{Logf: logf})
	if err != nil {
		// Unreachable: only journal recovery can fail, and New opens none.
		panic(err)
	}
	return s
}

// Open creates a control plane from cfg. With a state dir it opens the
// journal, replays snapshot + journal to rebuild every registered fleet
// — incumbents, detector state, event logs, ack rings — and only then
// returns; requests hitting Handler during the replay get a degraded
// 503. A torn journal tail is truncated and logged, never fatal; a
// corrupt snapshot is fatal (see the journal package).
func Open(cfg Config) (*Server, error) {
	//kairoslint:allow ctxflow: control-plane root context; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		fleets:      map[string]*session{},
		ctx:         ctx,
		cancel:      cancel,
		met:         newMetrics(),
		logf:        cfg.Logf,
		snapEvery:   int64(cfg.SnapshotEvery),
		backoffBase: cfg.BackoffBase,
		backoffCap:  cfg.BackoffCap,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if s.snapEvery <= 0 {
		s.snapEvery = 256
	}
	if s.backoffBase <= 0 {
		s.backoffBase = time.Second
	}
	if s.backoffCap <= 0 {
		s.backoffCap = 60 * time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleets", s.handleRegister)
	mux.HandleFunc("GET /v1/fleets", s.handleList)
	mux.HandleFunc("GET /v1/fleets/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/fleets/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/fleets/{id}/windows", s.handleWindow)
	mux.HandleFunc("GET /v1/fleets/{id}/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/fleets/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux

	if cfg.StateDir != "" {
		l, rec, err := journal.Open(cfg.StateDir, cfg.Journal)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jl = l
		s.recovering.Store(true)
		stats, err := s.replay(rec)
		s.recovering.Store(false)
		if err != nil {
			l.Close() //kairoslint:allow errflow: already failing with the replay error; a close error would mask it
			cancel()
			return nil, fmt.Errorf("server: recovering from %s: %w", cfg.StateDir, err)
		}
		s.recovery = stats
		if stats.Fleets > 0 || stats.Windows > 0 || stats.TornTail {
			s.logf("recovered %d fleets from %s: %d windows, %d advances, %d rearms replayed (torn tail: %v) in %v",
				stats.Fleets, cfg.StateDir, stats.Windows, stats.Advances, stats.Rearms, stats.TornTail, stats.Elapsed)
		}
	}
	return s, nil
}

// Handler returns the HTTP handler serving the /v1/ API and /metrics.
// It degrades to 503 + Retry-After while journal replay is in progress
// and bounds every /v1/ request body.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.recovering.Load() {
			writeUnavailable(w, "recovering: replaying journal")
			return
		}
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/") {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops every reconcile loop and waits for them to exit, then
// snapshots and closes the journal. The server rejects new work
// afterwards; in-flight ingest requests are answered with a shutdown
// error.
func (s *Server) Close() error {
	return s.close(true)
}

// Kill is Close without the graceful snapshot or journal flush attempt —
// the crash-matrix tests' SIGKILL analogue: whatever the journal holds
// is what recovery gets.
func (s *Server) Kill() error {
	return s.close(false)
}

// close implements Close/Kill. Callers hold no locks.
func (s *Server) close(snapshot bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	if s.jl == nil {
		return nil
	}
	if snapshot {
		// Best effort: a failed shutdown snapshot just means the next
		// start replays the journal instead.
		if err := s.snapshot(); err != nil {
			s.logf("shutdown snapshot failed (journal replay will recover): %v", err)
		}
	}
	return s.jl.Close()
}

// writeJSON writes v as a JSON response with the given status.
//
// in any handler that journals, the append must come first.
//
//kairos:ack — a JSON body is how mutations are acknowledged to clients;
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //kairoslint:allow errflow: status already committed; an encode failure only truncates the body, which the client sees
}

// writeNoContent acknowledges a mutation that has no response body.
//
//kairos:ack — same contract as writeJSON: journal before acking.
func writeNoContent(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent)
}

// writeErr writes an ErrorResponse.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeUnavailable writes a 503 with a Retry-After header: every
// retryable condition (shutdown, recovery, journal unavailable) tells
// the collector when to resend. Resent windows are idempotent — ingest
// is keyed by window start time, so a retry of an already-acked window
// returns the original ack.
func writeUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, format, args...)
}

// writeDecodeErr maps a request-body decode failure: an oversized body
// (http.MaxBytesReader tripped) is 413, anything else 400.
func writeDecodeErr(w http.ResponseWriter, what string, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeErr(w, http.StatusRequestEntityTooLarge, "decoding %s: body exceeds %d bytes", what, mbe.Limit)
		return
	}
	writeErr(w, http.StatusBadRequest, "decoding %s: %v", what, err)
}

// lookup finds a registered session, or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.fleets[id]
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown fleet %q", id)
		return nil
	}
	return sess
}

// handleRegister is POST /v1/fleets: validate the spec, run the initial
// consolidation synchronously (the response carries the plan summary),
// commit the session to the registry, and start its reconcile loop.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeErr(w, "register request", err)
		return
	}
	if req.ID == "" || strings.ContainsAny(req.ID, "/ ") {
		writeErr(w, http.StatusBadRequest, "fleet id must be non-empty without '/' or spaces, got %q", req.ID)
		return
	}
	s.mu.Lock()
	_, exists := s.fleets[req.ID]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeUnavailable(w, "server shutting down")
		return
	}
	if exists {
		writeErr(w, http.StatusConflict, "fleet %q already registered", req.ID)
		return
	}
	dp, err := toDiskProfile(req.DiskProfile)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "disk_profile: %v", err)
		return
	}
	machines, err := toMachines(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	workloads, err := toWorkloads(req.Workloads, dp != nil)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := uniqueNames(workloads); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	fleet, err := kairos.NewFleet(
		kairos.FleetSpec{Name: req.ID, Workloads: workloads, Machines: machines, Disk: dp},
		toFleetOptions(req.Options)...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid fleet spec: %v", err)
		return
	}
	// The initial solve runs in the request: registration returns the plan
	// it will serve, and a spec the solver rejects never enters the
	// registry. The solve aborts when the server shuts down (s.ctx) or the
	// client goes away (r.Context()).
	solveCtx, solveCancel := context.WithCancel(s.ctx)
	stopAfter := context.AfterFunc(r.Context(), solveCancel)
	plan, err := fleet.Consolidate(solveCtx)
	stopAfter()
	solveCancel()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			writeUnavailable(w, "consolidation aborted: %v", err)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "initial consolidation failed: %v", err)
		return
	}

	ctx, cancel := context.WithCancel(s.ctx)
	sess := &session{
		id:        req.ID,
		req:       &req,
		fleet:     fleet,
		workloads: workloads,
		machines:  machines,
		needDisk:  dp != nil,
		ingest:    make(chan ingestReq),
		cancel:    cancel,
		done:      make(chan struct{}),
		acks:      map[int64]AckWire{},
	}
	s.installHook(sess)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		writeUnavailable(w, "server shutting down")
		return
	}
	if _, raced := s.fleets[req.ID]; raced {
		s.mu.Unlock()
		cancel()
		writeErr(w, http.StatusConflict, "fleet %q already registered", req.ID)
		return
	}
	// Journal the registration before committing it: a fleet the registry
	// serves is a fleet recovery can rebuild. Lock order: s.mu → journal.
	if err := s.appendRecord(&RecordWire{Register: &RegisterRecord{
		Request: &req, Incumbent: plan.Incumbent(),
	}}); err != nil {
		s.mu.Unlock()
		cancel()
		writeUnavailable(w, "journaling registration: %v", err)
		return
	}
	s.fleets[req.ID] = sess
	n := len(s.fleets)
	s.mu.Unlock()
	s.met.setFleets(n)

	s.wg.Add(1)
	go s.reconcile(ctx, sess)
	s.logf("fleet %q registered: %d workloads -> K=%d (feasible=%v)",
		req.ID, len(workloads), plan.K, plan.Feasible)
	writeJSON(w, http.StatusCreated, s.status(sess))
}

// uniqueNames enforces the name-matching contract windows rely on.
func uniqueNames(wls []kairos.Workload) error {
	seen := make(map[string]bool, len(wls))
	for _, w := range wls {
		if seen[w.Name] {
			return fmt.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
	return nil
}

// reconcile is a fleet's control loop: it owns all Observe calls for the
// session, so windows from any number of collectors apply in a single
// serial order, and re-solves never overlap. It exits when the session is
// deregistered or the server shuts down. Each window's
// journal-append + apply + ack runs under the snapshot read-lock, so a
// snapshot never captures state a journaled record has not yet produced.
func (s *Server) reconcile(ctx context.Context, sess *session) {
	defer s.wg.Done()
	defer close(sess.done)
	for {
		select {
		case <-ctx.Done():
			return
		case req := <-sess.ingest:
			s.pauseRW.RLock()
			resp := s.processWindow(ctx, sess, req)
			s.pauseRW.RUnlock()
			req.reply <- resp
			s.maybeSnapshot()
		}
	}
}

// windowKey is the idempotency key of an ingested window: the start time
// of its first series. Zero (collectors that do not timestamp windows)
// disables deduplication for that window.
func windowKey(wire []WorkloadWire) int64 {
	if len(wire) == 0 {
		return 0
	}
	return wire[0].StartUnix
}

// processWindow applies one observation window: dedupe against the ack
// ring, journal it, observe (detect-only while backing off after solver
// failures), and record the ack. Runs on the reconcile goroutine under
// the snapshot read-lock.
func (s *Server) processWindow(ctx context.Context, sess *session, req ingestReq) ingestResp {
	// Idempotent resend: a window already acked under this start-time key
	// returns its original acknowledgement without being re-applied.
	key := windowKey(req.wire)
	if key != 0 {
		sess.mu.Lock()
		ack, dup := sess.acks[key]
		sess.mu.Unlock()
		if dup {
			return ingestResp{window: ack.Window, triggered: ack.Triggered, duplicate: true}
		}
	}
	// Journal before applying: a window the client sees acked must exist
	// in the journal, or a crash would silently drop it. A failed append
	// refuses the window entirely (retryable 503) — nothing was applied.
	if err := s.appendRecord(&RecordWire{Window: &WindowRecord{Fleet: sess.id, Workloads: req.wire}}); err != nil {
		return ingestResp{journalErr: err}
	}

	sess.mu.Lock()
	inBackoff := time.Now().Before(sess.backoffUntil)
	sess.mu.Unlock()
	if inBackoff {
		// Solver backoff: keep the detector and history moving, but
		// suppress re-solves. A trigger during backoff re-arms (journaled,
		// so replay re-arms too) and the drift fires again once the
		// backoff expires.
		triggered, err := sess.fleet.ObserveDetectOnly(req.window)
		if err != nil {
			s.met.observeWindow(sess.id, true)
			return ingestResp{err: err}
		}
		if triggered {
			if err := s.appendRecord(&RecordWire{Rearm: &RearmRecord{Fleet: sess.id}}); err != nil {
				// The trigger is journaled as pending; recovery self-heals
				// an unresolved trigger by re-arming.
				s.logf("fleet %q: journaling backoff re-arm: %v", sess.id, err)
			}
			sess.fleet.RearmDetector()
		}
		s.met.observeWindow(sess.id, false)
		resp := ingestResp{window: sess.fleet.Window() - 1}
		s.recordAck(sess, key, resp)
		return resp
	}

	// The loop's ctx rides into the solver: Server.Close (or a
	// deregister) aborts a drift-triggered re-solve mid-flight. The
	// advance hook journals the new incumbent before Observe publishes it.
	ev, err := sess.fleet.Observe(ctx, req.window)
	if err != nil {
		var re *kairos.ResolveError
		if errors.As(err, &re) && !errors.Is(err, context.Canceled) {
			// The window was consumed and the detector re-armed by the
			// library; journal the re-arm and back off before solving again.
			if jerr := s.appendRecord(&RecordWire{Rearm: &RearmRecord{Fleet: sess.id}}); jerr != nil {
				s.logf("fleet %q: journaling failed-solve re-arm: %v", sess.id, jerr)
			}
			n, delay := s.bumpBackoff(sess)
			s.met.setResolveFailures(sess.id, n)
			s.logf("fleet %q: re-solve failed (%d consecutive), backing off %v: %v", sess.id, n, delay, err)
		}
		s.met.observeWindow(sess.id, true)
		return ingestResp{err: err}
	}
	sess.mu.Lock()
	sess.failures = 0
	sess.backoffUntil = time.Time{}
	sess.mu.Unlock()
	s.met.setResolveFailures(sess.id, 0)
	s.met.observeWindow(sess.id, false)
	resp := ingestResp{window: sess.fleet.Window() - 1}
	if ev != nil {
		resp.triggered = true
		resp.event = ev
		sess.mu.Lock()
		sess.events = append(sess.events, eventWire(ev))
		sess.mu.Unlock()
		s.met.observeTrigger(sess.id, ev.Plan.Fevals, ev.Plan.Migrated, ev.Plan.Elapsed)
		s.logf("fleet %q: %v", sess.id, ev)
	}
	s.recordAck(sess, key, resp)
	return resp
}

// recordAck stores a window's acknowledgement in the idempotent-ingest
// ring, evicting the oldest entry beyond ackRingSize.
//
// so the window must already be journaled.
//
//kairos:ack — entering the ring makes resends return the original ack,
func (s *Server) recordAck(sess *session, key int64, resp ingestResp) {
	if key == 0 {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if _, ok := sess.acks[key]; !ok {
		sess.ackOrder = append(sess.ackOrder, key)
		if len(sess.ackOrder) > ackRingSize {
			delete(sess.acks, sess.ackOrder[0])
			sess.ackOrder = sess.ackOrder[1:]
		}
	}
	sess.acks[key] = AckWire{StartUnix: key, Window: resp.window, Triggered: resp.triggered}
}

// bumpBackoff records one more consecutive solver failure and extends
// the session's backoff window exponentially (full jitter on the upper
// half, bounded by backoffCap).
func (s *Server) bumpBackoff(sess *session) (int, time.Duration) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.failures++
	shift := min(sess.failures-1, 20)
	d := min(s.backoffCap, s.backoffBase<<shift)
	// Full jitter on the upper half: concurrent fleets failing against a
	// shared cause don't re-solve in lockstep.
	d = d/2 + jitterDuration(d/2)
	sess.backoffUntil = time.Now().Add(d)
	return sess.failures, d
}

// handleWindow is POST /v1/fleets/{id}/windows: decode the window, hand
// it to the fleet's reconcile loop, and acknowledge once it has been
// applied (including whether it triggered a re-solve).
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	var req WindowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeErr(w, "window", err)
		return
	}
	window, err := toWorkloads(req.Workloads, sess.needDisk)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ir := ingestReq{window: window, wire: req.Workloads, reply: make(chan ingestResp, 1)}
	select {
	case sess.ingest <- ir:
	case <-sess.done:
		s.writeStopped(w, sess, "")
		return
	case <-r.Context().Done():
		return
	}
	writeResp := func(resp ingestResp) {
		if resp.journalErr != nil {
			// The window never reached the journal, so it was not applied;
			// the collector retries against this or a restarted server.
			writeUnavailable(w, "journaling window: %v", resp.journalErr)
			return
		}
		if resp.err != nil {
			if errors.Is(resp.err, context.Canceled) {
				// The re-solve was aborted by shutdown or deregistration,
				// not rejected on its merits.
				writeUnavailable(w, "re-consolidation aborted: %v", resp.err)
				return
			}
			// The window was structurally valid JSON but the watch loop
			// rejected it (unknown workload, series shape mismatch, ...).
			writeErr(w, http.StatusUnprocessableEntity, "%v", resp.err)
			return
		}
		out := WindowResponse{Window: resp.window, Triggered: resp.triggered, Duplicate: resp.duplicate}
		if resp.event != nil {
			out.Event = eventWire(resp.event)
		}
		writeJSON(w, http.StatusOK, out)
	}
	select {
	case resp := <-ir.reply:
		writeResp(resp)
	case <-sess.done:
		// The loop may have answered and exited in the same instant; a
		// buffered reply wins over the stop notice.
		select {
		case resp := <-ir.reply:
			writeResp(resp)
		default:
			s.writeStopped(w, sess, " during ingest")
		}
	}
}

// writeStopped answers a window whose reconcile loop has exited: 503 when
// the whole server is shutting down (retryable against a replacement), 410
// when just this fleet was deregistered.
func (s *Server) writeStopped(w http.ResponseWriter, sess *session, phase string) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeUnavailable(w, "server shutting down")
		return
	}
	writeErr(w, http.StatusGone, "fleet %q deregistered%s", sess.id, phase)
}

// status snapshots a session for the wire.
func (s *Server) status(sess *session) FleetStatus {
	st := FleetStatus{
		ID:        sess.id,
		Workloads: len(sess.workloads),
		Machines:  len(sess.machines),
	}
	if p := sess.fleet.Plan(); p != nil {
		st.K, st.Feasible = p.K, p.Feasible
	}
	st.Windows = sess.fleet.Drift().Windows
	// Trigger counters come from the server-owned event log, which (unlike
	// the library's) survives recovery.
	sess.mu.Lock()
	st.Triggers, st.LastTrigger = len(sess.events), -1
	if n := len(sess.events); n > 0 {
		st.LastTrigger = sess.events[n-1].Window
	}
	sess.mu.Unlock()
	return st
}

// handleList is GET /v1/fleets.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.fleets))
	for _, sess := range s.fleets {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]FleetStatus, len(sessions))
	for i, sess := range sessions {
		out[i] = s.status(sess)
	}
	// Deterministic listing order for clients and tests.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/fleets/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, s.status(sess))
	}
}

// handlePlan is GET /v1/fleets/{id}/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	p := sess.fleet.Plan()
	if p == nil {
		writeErr(w, http.StatusNotFound, "fleet %q has no plan yet", sess.id)
		return
	}
	writeJSON(w, http.StatusOK, planWire(p, sess.workloads, sess.machines))
}

// handleEvents is GET /v1/fleets/{id}/events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	// The server-owned wire log, not fleet.Events(): recovery restores it
	// across restarts, which library event objects cannot be.
	sess.mu.Lock()
	out := make([]*EventWire, len(sess.events))
	copy(out, sess.events)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleDelete is DELETE /v1/fleets/{id}: remove the fleet and stop its
// reconcile loop.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.fleets[id]
	if sess == nil {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown fleet %q", id)
		return
	}
	// Journal the deregistration before removing it: recovery must not
	// resurrect a fleet the client saw deleted. A refused append keeps
	// the fleet registered (retryable).
	if err := s.appendRecord(&RecordWire{Deregister: &DeregisterRecord{Fleet: id}}); err != nil {
		s.mu.Unlock()
		writeUnavailable(w, "journaling deregistration: %v", err)
		return
	}
	delete(s.fleets, id)
	n := len(s.fleets)
	s.mu.Unlock()
	s.met.setFleets(n)
	sess.cancel()
	<-sess.done
	s.logf("fleet %q deregistered", id)
	writeNoContent(w)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
	if s.jl != nil {
		writeJournalMetrics(w, s.jl.Stats(), s.recovery)
	}
}
