package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"kairos"
)

// Server is the control plane state: the fleet registry, one reconcile
// loop per registered fleet, and the metrics registry. Create it with
// New, mount Handler on an http.Server, and Close it on shutdown — Close
// cancels every reconcile loop and waits for them to drain.
type Server struct {
	mu     sync.Mutex
	fleets map[string]*session // guarded by mu
	closed bool                // guarded by mu

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	met  *metrics
	mux  *http.ServeMux
	logf func(format string, args ...any)
}

// session is one registered fleet: the library session handle plus the
// channel its reconcile loop serializes ingestion through.
type session struct {
	id        string
	fleet     *kairos.Fleet
	workloads []kairos.Workload
	machines  []kairos.Machine
	needDisk  bool
	ingest    chan ingestReq
	cancel    context.CancelFunc
	done      chan struct{}
}

// ingestReq carries one observation window into the reconcile loop and
// the channel the loop acknowledges it on.
type ingestReq struct {
	window []kairos.Workload
	reply  chan ingestResp
}

// ingestResp is the reconcile loop's acknowledgement of one window.
type ingestResp struct {
	window    int
	triggered bool
	event     *kairos.ReconsolidationEvent
	err       error
}

// New creates a control plane. logf receives one line per lifecycle event
// (register, trigger, deregister); nil discards them.
func New(logf func(format string, args ...any)) *Server {
	//kairoslint:allow ctxflow: control-plane root context; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		fleets: map[string]*session{},
		ctx:    ctx,
		cancel: cancel,
		met:    newMetrics(),
		logf:   logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleets", s.handleRegister)
	mux.HandleFunc("GET /v1/fleets", s.handleList)
	mux.HandleFunc("GET /v1/fleets/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/fleets/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/fleets/{id}/windows", s.handleWindow)
	mux.HandleFunc("GET /v1/fleets/{id}/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/fleets/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// Handler returns the HTTP handler serving the /v1/ API and /metrics.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops every reconcile loop and waits for them to exit. The server
// rejects new work afterwards; in-flight ingest requests are answered
// with a shutdown error.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes an ErrorResponse.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// lookup finds a registered session, or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.fleets[id]
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown fleet %q", id)
		return nil
	}
	return sess
}

// handleRegister is POST /v1/fleets: validate the spec, run the initial
// consolidation synchronously (the response carries the plan summary),
// commit the session to the registry, and start its reconcile loop.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding register request: %v", err)
		return
	}
	if req.ID == "" || strings.ContainsAny(req.ID, "/ ") {
		writeErr(w, http.StatusBadRequest, "fleet id must be non-empty without '/' or spaces, got %q", req.ID)
		return
	}
	s.mu.Lock()
	_, exists := s.fleets[req.ID]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if exists {
		writeErr(w, http.StatusConflict, "fleet %q already registered", req.ID)
		return
	}
	dp, err := toDiskProfile(req.DiskProfile)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "disk_profile: %v", err)
		return
	}
	machines, err := toMachines(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	workloads, err := toWorkloads(req.Workloads, dp != nil)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := uniqueNames(workloads); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	fleet, err := kairos.NewFleet(
		kairos.FleetSpec{Name: req.ID, Workloads: workloads, Machines: machines, Disk: dp},
		toFleetOptions(req.Options)...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid fleet spec: %v", err)
		return
	}
	// The initial solve runs in the request: registration returns the plan
	// it will serve, and a spec the solver rejects never enters the
	// registry. The solve aborts when the server shuts down (s.ctx) or the
	// client goes away (r.Context()).
	solveCtx, solveCancel := context.WithCancel(s.ctx)
	stopAfter := context.AfterFunc(r.Context(), solveCancel)
	plan, err := fleet.Consolidate(solveCtx)
	stopAfter()
	solveCancel()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			writeErr(w, http.StatusServiceUnavailable, "consolidation aborted: %v", err)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "initial consolidation failed: %v", err)
		return
	}

	ctx, cancel := context.WithCancel(s.ctx)
	sess := &session{
		id:        req.ID,
		fleet:     fleet,
		workloads: workloads,
		machines:  machines,
		needDisk:  dp != nil,
		ingest:    make(chan ingestReq),
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if _, raced := s.fleets[req.ID]; raced {
		s.mu.Unlock()
		cancel()
		writeErr(w, http.StatusConflict, "fleet %q already registered", req.ID)
		return
	}
	s.fleets[req.ID] = sess
	n := len(s.fleets)
	s.mu.Unlock()
	s.met.setFleets(n)

	s.wg.Add(1)
	go s.reconcile(ctx, sess)
	s.logf("fleet %q registered: %d workloads -> K=%d (feasible=%v)",
		req.ID, len(workloads), plan.K, plan.Feasible)
	writeJSON(w, http.StatusCreated, s.status(sess))
}

// uniqueNames enforces the name-matching contract windows rely on.
func uniqueNames(wls []kairos.Workload) error {
	seen := make(map[string]bool, len(wls))
	for _, w := range wls {
		if seen[w.Name] {
			return fmt.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
	return nil
}

// reconcile is a fleet's control loop: it owns all Observe calls for the
// session, so windows from any number of collectors apply in a single
// serial order, and re-solves never overlap. It exits when the session is
// deregistered or the server shuts down.
func (s *Server) reconcile(ctx context.Context, sess *session) {
	defer s.wg.Done()
	defer close(sess.done)
	for {
		select {
		case <-ctx.Done():
			return
		case req := <-sess.ingest:
			// The loop's ctx rides into the solver: Server.Close (or a
			// deregister) aborts a drift-triggered re-solve mid-flight.
			ev, err := sess.fleet.Observe(ctx, req.window)
			resp := ingestResp{err: err}
			if err != nil {
				s.met.observeWindow(sess.id, true)
			} else {
				s.met.observeWindow(sess.id, false)
				resp.window = sess.fleet.Window() - 1
				if ev != nil {
					resp.triggered = true
					resp.event = ev
					s.met.observeTrigger(sess.id, ev.Plan.Fevals, ev.Plan.Migrated, ev.Plan.Elapsed)
					s.logf("fleet %q: %v", sess.id, ev)
				}
			}
			req.reply <- resp
		}
	}
}

// handleWindow is POST /v1/fleets/{id}/windows: decode the window, hand
// it to the fleet's reconcile loop, and acknowledge once it has been
// applied (including whether it triggered a re-solve).
func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	var req WindowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding window: %v", err)
		return
	}
	window, err := toWorkloads(req.Workloads, sess.needDisk)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ir := ingestReq{window: window, reply: make(chan ingestResp, 1)}
	select {
	case sess.ingest <- ir:
	case <-sess.done:
		s.writeStopped(w, sess, "")
		return
	case <-r.Context().Done():
		return
	}
	writeResp := func(resp ingestResp) {
		if resp.err != nil {
			if errors.Is(resp.err, context.Canceled) {
				// The re-solve was aborted by shutdown or deregistration,
				// not rejected on its merits.
				writeErr(w, http.StatusServiceUnavailable, "re-consolidation aborted: %v", resp.err)
				return
			}
			// The window was structurally valid JSON but the watch loop
			// rejected it (unknown workload, series shape mismatch, ...).
			writeErr(w, http.StatusUnprocessableEntity, "%v", resp.err)
			return
		}
		out := WindowResponse{Window: resp.window, Triggered: resp.triggered}
		if resp.event != nil {
			out.Event = eventWire(resp.event)
		}
		writeJSON(w, http.StatusOK, out)
	}
	select {
	case resp := <-ir.reply:
		writeResp(resp)
	case <-sess.done:
		// The loop may have answered and exited in the same instant; a
		// buffered reply wins over the stop notice.
		select {
		case resp := <-ir.reply:
			writeResp(resp)
		default:
			s.writeStopped(w, sess, " during ingest")
		}
	}
}

// writeStopped answers a window whose reconcile loop has exited: 503 when
// the whole server is shutting down (retryable against a replacement), 410
// when just this fleet was deregistered.
func (s *Server) writeStopped(w http.ResponseWriter, sess *session, phase string) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeErr(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	writeErr(w, http.StatusGone, "fleet %q deregistered%s", sess.id, phase)
}

// status snapshots a session for the wire.
func (s *Server) status(sess *session) FleetStatus {
	st := FleetStatus{
		ID:        sess.id,
		Workloads: len(sess.workloads),
		Machines:  len(sess.machines),
	}
	if p := sess.fleet.Plan(); p != nil {
		st.K, st.Feasible = p.K, p.Feasible
	}
	d := sess.fleet.Drift()
	st.Windows, st.Triggers, st.LastTrigger = d.Windows, d.Triggers, d.LastTrigger
	return st
}

// handleList is GET /v1/fleets.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.fleets))
	for _, sess := range s.fleets {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]FleetStatus, len(sessions))
	for i, sess := range sessions {
		out[i] = s.status(sess)
	}
	// Deterministic listing order for clients and tests.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/fleets/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, s.status(sess))
	}
}

// handlePlan is GET /v1/fleets/{id}/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	p := sess.fleet.Plan()
	if p == nil {
		writeErr(w, http.StatusNotFound, "fleet %q has no plan yet", sess.id)
		return
	}
	writeJSON(w, http.StatusOK, planWire(p, sess.workloads, sess.machines))
}

// handleEvents is GET /v1/fleets/{id}/events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	events := sess.fleet.Events()
	out := make([]*EventWire, len(events))
	for i, ev := range events {
		out[i] = eventWire(ev)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDelete is DELETE /v1/fleets/{id}: remove the fleet and stop its
// reconcile loop.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.fleets[id]
	if sess != nil {
		delete(s.fleets, id)
	}
	n := len(s.fleets)
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown fleet %q", id)
		return
	}
	s.met.setFleets(n)
	sess.cancel()
	<-sess.done
	s.logf("fleet %q deregistered", id)
	w.WriteHeader(http.StatusNoContent)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
}
