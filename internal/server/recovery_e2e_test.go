package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"kairos/internal/fleet"
	"kairos/internal/journal"
)

// TestRestartUnderConcurrentCollectors197 is the durability acceptance
// scenario end to end, under -race (see the race-server make target):
// the 197-server ALL fleet streams windows from concurrent collectors
// into a journaled control plane, the process is killed mid-operation,
// and a replacement recovers from the state directory while the same
// collectors retry their acked windows (deduplicated) and push fresh
// ones (applied) — concurrently.
func TestRestartUnderConcurrentCollectors197(t *testing.T) {
	if testing.Short() {
		t.Skip("full 197-server restart e2e; run without -short")
	}
	fl := fleet.All()
	baseline := fl.Workloads(0.7)
	if len(baseline) != 197 {
		t.Fatalf("ALL fleet has %d servers, want 197", len(baseline))
	}
	stamped := func(f float64, key int64) []byte {
		wls := wireWorkloads(baseline, f)
		for i := range wls {
			wls[i].StartUnix = key
		}
		return mustJSON(WindowRequest{Workloads: wls})
	}

	dir := t.TempDir()
	s, ts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 4)
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets", mustJSON(RegisterRequest{
		ID:           "all-197",
		Workloads:    wireWorkloads(baseline, 1.0),
		AutoMachines: &AutoMachines{Count: len(baseline)},
	})); status != http.StatusCreated {
		t.Fatalf("register: %d %s", status, body)
	}

	// Phase 1: concurrent collectors stream quiet windows (each with its
	// own start_unix key), then one drifted window fires the re-solve.
	const collectors = 4
	acks := make(map[int64]WindowResponse)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				key := int64(1000*c + i + 1)
				status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/all-197/windows",
					stamped(1.0+0.003*float64(c%2), key))
				if status != http.StatusOK {
					t.Errorf("collector %d window %d: %d %s", c, i, status, body)
					return
				}
				var resp WindowResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				acks[key] = resp
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	status, body := do(t, http.MethodPost, ts.URL+"/v1/fleets/all-197/windows", stamped(1.12, 9001))
	if status != http.StatusOK {
		t.Fatalf("drifted window: %d %s", status, body)
	}
	var drifted WindowResponse
	if err := json.Unmarshal(body, &drifted); err != nil {
		t.Fatal(err)
	}
	if !drifted.Triggered {
		t.Fatalf("drifted window did not trigger: %s", body)
	}
	acks[9001] = drifted
	_, lastPlan := do(t, http.MethodGet, ts.URL+"/v1/fleets/all-197/plan", nil)

	// Crash: no shutdown snapshot, no final flush beyond what SyncAlways
	// already guaranteed per ack.
	ts.Close()
	s.Kill()

	// Restart. Recovery replays the journaled stream (registration,
	// snapshot from window 4, windows, the advance) before serving.
	rs, rts := openDurable(t, dir, journal.Options{Sync: journal.SyncAlways}, 256)
	defer func() { rts.Close(); rs.Close() }()
	status, body = do(t, http.MethodGet, rts.URL+"/v1/fleets/all-197", nil)
	if status != http.StatusOK {
		t.Fatalf("recovered status: %d %s", status, body)
	}
	var st FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Windows != len(acks) || st.Triggers != 1 {
		t.Fatalf("recovered status %+v, want %d windows and 1 trigger", st, len(acks))
	}
	_, gotPlan := do(t, http.MethodGet, rts.URL+"/v1/fleets/all-197/plan", nil)
	samePlacement(t, "recovered 197-fleet plan", gotPlan, lastPlan)

	// Phase 2, concurrent against the recovered server: every collector
	// retries its acked windows (the crash swallowed nothing — each must
	// come back as the original ack, never a re-apply), while another
	// streams fresh windows.
	keys := make([]int64, 0, len(acks))
	for k := range acks {
		keys = append(keys, k)
	}
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, key := range keys {
				if i%collectors != c {
					continue
				}
				f := 1.0 + 0.003*float64((key/1000)%2)
				if key == 9001 {
					f = 1.12
				}
				status, body := do(t, http.MethodPost, rts.URL+"/v1/fleets/all-197/windows", stamped(f, key))
				if status != http.StatusOK {
					t.Errorf("retry of acked window %d: %d %s", key, status, body)
					return
				}
				var resp WindowResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				orig := acks[key]
				mu.Unlock()
				if !resp.Duplicate || resp.Window != orig.Window || resp.Triggered != orig.Triggered {
					t.Errorf("retry of window %d = %+v, want duplicate of %+v", key, resp, orig)
				}
			}
		}(c)
	}
	const fresh = 3
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < fresh; i++ {
			// Fresh windows track the advanced plan's forecast baseline, so
			// they hold (no trigger assertions — the point is liveness).
			status, body := do(t, http.MethodPost, rts.URL+"/v1/fleets/all-197/windows",
				stamped(1.06, int64(20000+i)))
			if status != http.StatusOK {
				t.Errorf("fresh window %d: %d %s", i, status, body)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Retries changed nothing; the fresh windows advanced the counter.
	status, body = do(t, http.MethodGet, rts.URL+"/v1/fleets/all-197", nil)
	if status != http.StatusOK {
		t.Fatalf("final status: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Windows != len(acks)+fresh {
		t.Errorf("final windows = %d, want %d (retries must not re-apply)", st.Windows, len(acks)+fresh)
	}
}
