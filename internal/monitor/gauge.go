package monitor

import (
	"fmt"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/workload"
)

// GaugeConfig tunes buffer-pool gauging (paper Figure 3 and Section 3.1).
type GaugeConfig struct {
	// ProbeTable is the name of the probe database created in the DBMS.
	ProbeTable string
	// InitialGrowPages is the first insertion batch (the pseudocode's
	// INITIAL_SCAN_ROWS, in pages since our probe tuples fill a page each).
	InitialGrowPages int64
	// MaxStealFraction stops probing after stealing this share of the
	// DBMS-accessible memory even if no read increase was seen.
	MaxStealFraction float64
	// Window is the observation period between growth steps over which the
	// physical read rate is averaged (the paper uses ~10 s).
	Window time.Duration
	// ScansPerWindow is how often the probe table is re-scanned per window
	// to keep its pages hot (the pseudocode's SCANS_PER_INSERT /
	// READ_WAIT_SECONDS balance).
	ScansPerWindow int
	// ReadIncreaseThreshold is the rise in physical reads/sec over the
	// baseline that counts as "we are evicting useful pages".
	ReadIncreaseThreshold float64
	// Tick is the simulation step.
	Tick time.Duration
}

// DefaultGaugeConfig returns the parameters used in the paper's experiments.
func DefaultGaugeConfig() GaugeConfig {
	return GaugeConfig{
		ProbeTable:            "kairos_probe",
		InitialGrowPages:      256, // 4 MB of 16 KiB pages
		MaxStealFraction:      0.95,
		Window:                10 * time.Second,
		ScansPerWindow:        5,
		ReadIncreaseThreshold: 20,
		Tick:                  100 * time.Millisecond,
	}
}

// GaugePoint is one step of the gauging curve: the probe size reached and
// the physical read rate observed at that size — the data behind Figure 2.
type GaugePoint struct {
	StolenBytes     int64
	ReadsPerSec     float64
	GrowPagesPerSec float64
}

// GaugeResult is the outcome of a gauging run.
type GaugeResult struct {
	// WorkingSetBytes is the estimated working set: accessible memory minus
	// what was stolen without a read increase.
	WorkingSetBytes int64
	// StolenBytes is the probe size when the increase was detected.
	StolenBytes int64
	// AccessibleBytes is the memory the DBMS could use (pool + OS cache).
	AccessibleBytes int64
	// Detected reports whether a read increase was actually observed; if
	// false the probe hit MaxStealFraction and WorkingSetBytes is an upper
	// bound estimate.
	Detected bool
	// Elapsed is the simulated time the gauging took.
	Elapsed time.Duration
	// Curve is the full probe-size → read-rate trace (Figure 2).
	Curve []GaugePoint
}

// SavingsFactor returns how much smaller the gauged working set is than the
// OS-reported allocation — the paper reports 2.8× for TPC-C and up to 7.2×
// for Wikipedia.
func (r GaugeResult) SavingsFactor(allocatedBytes int64) float64 {
	if r.WorkingSetBytes <= 0 {
		return 0
	}
	return float64(allocatedBytes) / float64(r.WorkingSetBytes)
}

// Gauge measures the working set of the databases on an instance by growing
// a probe table and watching for an increase in physical reads, while the
// real workloads keep running. It implements the paper's adaptive strategy:
// accelerate probe growth while reads are flat, slow down on any increase.
func Gauge(in *dbms.Instance, gens []*workload.Generator, cfg GaugeConfig) (GaugeResult, error) {
	if in == nil {
		return GaugeResult{}, fmt.Errorf("monitor: nil instance")
	}
	if cfg.ProbeTable == "" {
		return GaugeResult{}, fmt.Errorf("monitor: empty probe table name")
	}
	if cfg.Window < cfg.Tick {
		return GaugeResult{}, fmt.Errorf("monitor: window %v shorter than tick %v", cfg.Window, cfg.Tick)
	}
	pageSize := int64(in.Config().PageSize)
	accessible := in.Config().BufferPoolBytes + in.Config().OSCacheBytes
	maxSteal := int64(float64(accessible) * cfg.MaxStealFraction / float64(pageSize))

	// Reuse an existing probe table if gauging ran before.
	probe, ok := in.Database(cfg.ProbeTable)
	if !ok {
		var err error
		probe, err = in.CreateDatabase(cfg.ProbeTable, 0)
		if err != nil {
			return GaugeResult{}, err
		}
	}

	res := GaugeResult{AccessibleBytes: accessible}
	ticksPerWindow := int(cfg.Window / cfg.Tick)
	scanEvery := ticksPerWindow
	if cfg.ScansPerWindow > 0 {
		scanEvery = ticksPerWindow / cfg.ScansPerWindow
		if scanEvery < 1 {
			scanEvery = 1
		}
	}

	// runWindow drives the user workloads (and probe scans) for one window
	// and returns the DBMS-wide physical read rate. The probe's own re-reads
	// count too: the paper's detector watches "the number of pages the DBMS
	// reads back from disk" — once slack is exhausted, evictions surface as
	// re-reads no matter whether a user query or the probe scan triggers
	// them.
	runWindow := func() float64 {
		probe.TakeStats()
		for _, g := range gens {
			g.DB().TakeStats()
		}
		for t := 0; t < ticksPerWindow; t++ {
			reqs := make([]dbms.Request, 0, len(gens))
			for _, g := range gens {
				reqs = append(reqs, g.Next(cfg.Tick))
			}
			in.Tick(cfg.Tick, reqs)
			if t%scanEvery == 0 && probe.DataPages() > 0 {
				in.ScanRange(probe, probe.DataPages())
			}
			res.Elapsed += cfg.Tick
		}
		reads := probe.TakeStats().PhysReads
		for _, g := range gens {
			reads += g.DB().TakeStats().PhysReads
		}
		return float64(reads) / cfg.Window.Seconds()
	}

	// Baseline read rate before stealing anything.
	baseline := runWindow()

	grow := cfg.InitialGrowPages
	if grow < 1 {
		grow = 1
	}
	for probe.DataPages() < maxSteal {
		// Grow the probe and keep it hot for a window.
		step := grow
		if probe.DataPages()+step > maxSteal {
			step = maxSteal - probe.DataPages()
		}
		in.GrowDatabase(probe, step)
		rate := runWindow()

		stolen := probe.DataPages() * pageSize
		res.Curve = append(res.Curve, GaugePoint{
			StolenBytes:     stolen,
			ReadsPerSec:     rate,
			GrowPagesPerSec: float64(step) / cfg.Window.Seconds(),
		})

		if rate-baseline > cfg.ReadIncreaseThreshold {
			// We are evicting useful pages: stop immediately and report.
			res.Detected = true
			res.StolenBytes = stolen
			res.WorkingSetBytes = accessible - (stolen - step*pageSize)
			return res, nil
		}
		if rate-baseline > cfg.ReadIncreaseThreshold/4 {
			// Small increase: slow down (the paper slows to tens of KB/s).
			grow /= 2
			if grow < 16 {
				grow = 16
			}
		} else {
			// Flat: accelerate (the paper reaches several MB/s).
			grow = grow * 3 / 2
		}
	}
	// Never detected an increase: the working set is at most what we left.
	res.StolenBytes = probe.DataPages() * pageSize
	res.WorkingSetBytes = accessible - res.StolenBytes
	return res, nil
}
