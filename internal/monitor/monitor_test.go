package monitor

import (
	"math"
	"testing"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/floats"
	"kairos/internal/workload"
)

func newInstance(t *testing.T, mut func(*dbms.Config)) *dbms.Instance {
	t.Helper()
	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbms.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	in, err := dbms.NewInstance(cfg, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewCollectorValidation(t *testing.T) {
	in := newInstance(t, nil)
	if _, err := NewCollector(nil, nil); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := NewCollector(in, nil); err == nil {
		t.Error("no generators accepted")
	}
	if _, err := NewCollector(in, []*workload.Generator{nil}); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestCollectProducesProfiles(t *testing.T) {
	in := newInstance(t, nil)
	specA := workload.Spec{Name: "a", DataPages: 20000, WorkingSetPages: 2000,
		TPS: 50, ReadsPerTxn: 4, UpdatesPerTxn: 2}
	specB := workload.Spec{Name: "b", DataPages: 20000, WorkingSetPages: 1000,
		TPS: 100, ReadsPerTxn: 2, UpdatesPerTxn: 1}
	ga, err := workload.Provision(in, specA, true)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := workload.Provision(in, specB, true)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(in, []*workload.Generator{ga, gb})
	if err != nil {
		t.Fatal(err)
	}
	perDB, inst, err := c.Collect(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(perDB) != 2 {
		t.Fatalf("expected 2 profiles, got %d", len(perDB))
	}
	pa, pb := perDB["a"], perDB["b"]
	if pa == nil || pb == nil {
		t.Fatal("missing profiles")
	}
	if pa.CPU.Len() != 10 {
		t.Errorf("CPU samples = %d, want 10", pa.CPU.Len())
	}
	// Both workloads update rows, so both should show updates and CPU.
	if pa.RowUpdatesPerSec.Mean() <= 0 || pb.RowUpdatesPerSec.Mean() <= 0 {
		t.Error("update rates should be positive")
	}
	wantA := specA.TPS * specA.UpdatesPerTxn
	if got := pa.RowUpdatesPerSec.Mean(); math.Abs(got-wantA) > wantA*0.1 {
		t.Errorf("workload a update rate = %v, want ≈%v", got, wantA)
	}
	if pa.CPU.Mean() <= 0 {
		t.Error("CPU should be positive")
	}
	// Instance profile aggregates the workloads.
	sumUpd := pa.RowUpdatesPerSec.Mean() + pb.RowUpdatesPerSec.Mean()
	if got := inst.RowUpdatesPerSec.Mean(); math.Abs(got-sumUpd) > 1e-9 {
		t.Errorf("instance update rate = %v, want %v", got, sumUpd)
	}
	// Working sets are reported from the specs.
	if got := pa.WorkingSetBytes.Mean(); !floats.Same(got, float64(specA.WorkingSetBytes())) {
		t.Errorf("working set = %v, want %v", got, specA.WorkingSetBytes())
	}
	// Disk writes include log traffic: must be positive.
	if inst.DiskWriteBps.Mean() <= 0 {
		t.Error("instance disk writes should be positive")
	}
}

func TestCollectValidatesDuration(t *testing.T) {
	in := newInstance(t, nil)
	g, err := workload.Provision(in, workload.TPCC(1, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCollector(in, []*workload.Generator{g})
	if _, _, err := c.Collect(100 * time.Millisecond); err == nil {
		t.Error("sub-interval duration accepted")
	}
	c.Interval = 50 * time.Millisecond // shorter than tick
	if _, _, err := c.Collect(time.Second); err == nil {
		t.Error("interval < tick accepted")
	}
}

// Regression: a duration that is not a multiple of Interval used to
// truncate silently — Collect(2500ms) at a 1s interval returned 2 samples
// and dropped the tail 500ms instead of erroring.
func TestCollectRejectsNonMultipleDuration(t *testing.T) {
	in := newInstance(t, nil)
	g, err := workload.Provision(in, workload.TPCC(1, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCollector(in, []*workload.Generator{g})
	if _, _, err := c.Collect(2500 * time.Millisecond); err == nil {
		t.Error("duration 2.5s with 1s interval accepted (tail window silently dropped)")
	}
	// An exact multiple still collects.
	perDB, _, err := c.Collect(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p := perDB[workload.TPCC(1, 10).Name]; p.CPU.Len() != 2 {
		t.Errorf("got %d samples, want 2", p.CPU.Len())
	}
}

// Regression: an Interval that is not a multiple of Tick used to truncate
// ticksPerSample — at Tick=100ms an Interval of 250ms simulated only 200ms
// of load per sample, so simulated time drifted 20% short of the requested
// duration while the sample timestamps claimed otherwise.
func TestCollectRejectsIntervalNotMultipleOfTick(t *testing.T) {
	in := newInstance(t, nil)
	g, err := workload.Provision(in, workload.TPCC(1, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCollector(in, []*workload.Generator{g})
	c.Interval = 250 * time.Millisecond
	if _, _, err := c.Collect(time.Second); err == nil {
		t.Error("interval 250ms with 100ms tick accepted (simulated time would drift)")
	}
	c.Interval = 300 * time.Millisecond
	if _, _, err := c.Collect(1200 * time.Millisecond); err != nil {
		t.Errorf("valid 300ms interval rejected: %v", err)
	}
}

// Regression: profiles built by hand (e.g. from CSV traces) carry nil
// series; the peak helpers used to panic on them.
func TestPeakHelpersNilSafe(t *testing.T) {
	p := &Profile{Name: "csv-import"}
	if v := p.PeakCPU(); !math.IsNaN(v) {
		t.Errorf("PeakCPU on nil series = %v, want NaN", v)
	}
	if v := p.PeakRAMBytes(); !math.IsNaN(v) {
		t.Errorf("PeakRAMBytes on nil series = %v, want NaN", v)
	}
	var nilProf *Profile
	if v := nilProf.PeakCPU(); !math.IsNaN(v) {
		t.Errorf("PeakCPU on nil profile = %v, want NaN", v)
	}
	if v := nilProf.PeakRAMBytes(); !math.IsNaN(v) {
		t.Errorf("PeakRAMBytes on nil profile = %v, want NaN", v)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		miss, reads float64
		want        ProvisioningCase
	}{
		{0.001, 0, FitsInBufferPool},
		{0.0, 100, FitsInBufferPool}, // miss ratio dominates
		{0.3, 2, FitsInOSCache},
		{0.3, 500, ExceedsMemory},
		{0.9, 1000, ExceedsMemory},
	}
	for i, tc := range cases {
		if got := Classify(tc.miss, tc.reads); got != tc.want {
			t.Errorf("case %d: Classify(%v, %v) = %v, want %v", i, tc.miss, tc.reads, got, tc.want)
		}
	}
	// Stringer coverage.
	for _, p := range []ProvisioningCase{FitsInBufferPool, FitsInOSCache, ExceedsMemory, ProvisioningCase(9)} {
		if p.String() == "" {
			t.Error("empty case name")
		}
	}
}

// gaugeSetup builds an instance with a known working set well below the
// buffer pool, so gauging has slack to discover.
func gaugeSetup(t *testing.T, poolMB, wsPages int64, osCacheMB int64) (*dbms.Instance, []*workload.Generator) {
	t.Helper()
	in := newInstance(t, func(c *dbms.Config) {
		c.BufferPoolBytes = poolMB << 20
		c.OSCacheBytes = osCacheMB << 20
	})
	spec := workload.Spec{Name: "user", DataPages: 1 << 20, WorkingSetPages: wsPages,
		TPS: 100, ReadsPerTxn: 5, UpdatesPerTxn: 0}
	g, err := workload.Provision(in, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	return in, []*workload.Generator{g}
}

func TestGaugeValidation(t *testing.T) {
	in, gens := gaugeSetup(t, 64, 1000, 0)
	if _, err := Gauge(nil, gens, DefaultGaugeConfig()); err == nil {
		t.Error("nil instance accepted")
	}
	cfg := DefaultGaugeConfig()
	cfg.ProbeTable = ""
	if _, err := Gauge(in, gens, cfg); err == nil {
		t.Error("empty probe name accepted")
	}
	cfg = DefaultGaugeConfig()
	cfg.Window = time.Millisecond
	if _, err := Gauge(in, gens, cfg); err == nil {
		t.Error("window < tick accepted")
	}
}

func TestGaugeDetectsWorkingSet(t *testing.T) {
	// Pool of 64 MB (4096 pages); true working set 1000 pages (≈15.6 MB).
	// Gauging should detect a working set within 2x of the truth, far below
	// the full pool.
	in, gens := gaugeSetup(t, 64, 1000, 0)
	cfg := DefaultGaugeConfig()
	cfg.Window = 2 * time.Second
	res, err := Gauge(in, gens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("gauging did not detect the working set; curve: %+v", res.Curve)
	}
	trueWS := int64(1000 * 16 << 10)
	if res.WorkingSetBytes < trueWS {
		t.Errorf("gauged WS %d below true WS %d", res.WorkingSetBytes, trueWS)
	}
	if res.WorkingSetBytes > 3*trueWS {
		t.Errorf("gauged WS %d more than 3x true WS %d", res.WorkingSetBytes, trueWS)
	}
	// The probe stole most of the slack before detection.
	slack := int64(64<<20) - trueWS
	if res.StolenBytes < slack/2 {
		t.Errorf("probe stole only %d of %d slack", res.StolenBytes, slack)
	}
	if res.Elapsed <= 0 || len(res.Curve) == 0 {
		t.Error("missing gauging telemetry")
	}
}

func TestGaugeCurveFlatThenRises(t *testing.T) {
	// The Figure 2 shape: reads stay ≈0 while stealing slack, then rise.
	in, gens := gaugeSetup(t, 64, 1500, 0)
	cfg := DefaultGaugeConfig()
	cfg.Window = 2 * time.Second
	res, err := Gauge(in, gens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 2 {
		t.Fatalf("curve too short: %d points", len(res.Curve))
	}
	first := res.Curve[0]
	last := res.Curve[len(res.Curve)-1]
	if first.ReadsPerSec > 20 {
		t.Errorf("early probe already caused %v reads/sec", first.ReadsPerSec)
	}
	if res.Detected && last.ReadsPerSec <= first.ReadsPerSec {
		t.Errorf("detection without read increase: first=%v last=%v", first.ReadsPerSec, last.ReadsPerSec)
	}
}

func TestGaugeWithOSCache(t *testing.T) {
	// PostgreSQL-style: 32 MB shared buffer + 32 MB OS cache. Accessible
	// memory is the sum; gauging must steal through both levels.
	in, gens := gaugeSetup(t, 32, 1000, 32)
	cfg := DefaultGaugeConfig()
	cfg.Window = 2 * time.Second
	res, err := Gauge(in, gens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessibleBytes != 64<<20 {
		t.Errorf("accessible = %d, want 64 MB", res.AccessibleBytes)
	}
	if !res.Detected {
		t.Fatal("gauging did not detect the working set through the OS cache")
	}
	trueWS := int64(1000 * 16 << 10)
	if res.WorkingSetBytes < trueWS || res.WorkingSetBytes > 3*trueWS {
		t.Errorf("gauged WS %d not within [1x,3x] of true %d", res.WorkingSetBytes, trueWS)
	}
}

func TestGaugeStopsAtMaxStealWhenIdle(t *testing.T) {
	// A database with a tiny working set and zero read traffic gives the
	// prober no signal; it must stop at MaxStealFraction with Detected=false.
	in := newInstance(t, func(c *dbms.Config) {
		c.BufferPoolBytes = 32 << 20
	})
	spec := workload.Spec{Name: "idle", DataPages: 1000, WorkingSetPages: 10, TPS: 0}
	g, err := workload.Provision(in, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGaugeConfig()
	cfg.Window = time.Second
	res, err := Gauge(in, []*workload.Generator{g}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("idle database should not trigger detection")
	}
	poolBytes := int64(32) << 20
	if res.StolenBytes < poolBytes*9/10 {
		t.Errorf("probe should reach max steal, stole %d", res.StolenBytes)
	}
	if res.WorkingSetBytes <= 0 {
		t.Errorf("upper-bound WS estimate should be positive, got %d", res.WorkingSetBytes)
	}
}

func TestGaugeReusesProbeTable(t *testing.T) {
	in, gens := gaugeSetup(t, 64, 500, 0)
	cfg := DefaultGaugeConfig()
	cfg.Window = time.Second
	if _, err := Gauge(in, gens, cfg); err != nil {
		t.Fatal(err)
	}
	// Second run must not fail on CreateDatabase (probe table exists).
	if _, err := Gauge(in, gens, cfg); err != nil {
		t.Fatalf("second gauge run failed: %v", err)
	}
}

func TestGaugeSavingsFactor(t *testing.T) {
	r := GaugeResult{WorkingSetBytes: 100}
	if got := r.SavingsFactor(280); math.Abs(got-2.8) > 1e-9 {
		t.Errorf("SavingsFactor = %v, want 2.8", got)
	}
	r.WorkingSetBytes = 0
	if got := r.SavingsFactor(280); got != 0 {
		t.Errorf("SavingsFactor with zero WS = %v, want 0", got)
	}
}

func TestGaugeOverheadSmall(t *testing.T) {
	// Table 2's claim: gauging keeps throughput within ~5% and latency
	// within a few ms. Run the same workload with and without gauging and
	// compare completed transactions.
	run := func(gauge bool) int64 {
		in, gens := gaugeSetup(t, 64, 1000, 0)
		if gauge {
			cfg := DefaultGaugeConfig()
			cfg.Window = 2 * time.Second
			if _, err := Gauge(in, gens, cfg); err != nil {
				t.Fatal(err)
			}
			return gens[0].DB().Stats().Txns
		}
		// Drive the same simulated duration without the probe: use the
		// duration a gauging run takes on this setup (measured separately);
		// 30 s is comfortably more than the gauge run, so compare rates.
		for i := 0; i < 300; i++ {
			in.Tick(100*time.Millisecond, []dbms.Request{gens[0].Next(100 * time.Millisecond)})
		}
		return gens[0].DB().Stats().Txns
	}
	withGauge := run(true)
	if withGauge == 0 {
		t.Fatal("no transactions completed during gauging")
	}
	// Rate with gauging must stay within 10% of the demanded 100 tps.
	// (The gauge run's elapsed time varies; compare achieved rate.)
	in, gens := gaugeSetup(t, 64, 1000, 0)
	cfg := DefaultGaugeConfig()
	cfg.Window = 2 * time.Second
	res, err := Gauge(in, gens, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(gens[0].DB().Stats().Txns) / res.Elapsed.Seconds()
	if rate < 90 {
		t.Errorf("throughput during gauging = %.1f tps, want ≥90 (≤10%% impact)", rate)
	}
}

func TestCollectorCPUIncludesBaseOverhead(t *testing.T) {
	// The monitor reports OS-level utilization: workload CPU plus a share
	// of the instance's base overhead. An idle workload on a dedicated
	// server must therefore report ≈ BaseCPUFraction, which is exactly
	// what the combined-load estimator's correction later subtracts.
	in := newInstance(t, nil)
	spec := workload.Spec{Name: "idle", DataPages: 1000, WorkingSetPages: 100, TPS: 0}
	g, err := workload.Provision(in, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(in, []*workload.Generator{g})
	if err != nil {
		t.Fatal(err)
	}
	perDB, _, err := c.Collect(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := perDB["idle"].CPU.Mean()
	want := in.Config().BaseCPUFraction
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("idle workload CPU = %v, want base overhead %v", got, want)
	}
}
