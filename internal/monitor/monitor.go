// Package monitor implements Kairos' resource monitor (paper Section 3): it
// samples OS- and DBMS-level statistics from running database instances to
// produce per-workload resource profiles, classifies memory provisioning,
// and implements buffer-pool gauging — the probe-table technique that
// measures the true working-set size of an over-provisioned DBMS.
package monitor

import (
	"fmt"
	"math"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/series"
	"kairos/internal/workload"
)

// Profile is the time series of resource consumption for one workload, the
// unit of input to the combined-load models and the consolidation engine.
type Profile struct {
	// Name identifies the workload.
	Name string
	// CPU is utilization as a fraction of the monitored machine in [0, 1].
	CPU *series.Series
	// RAMBytes is the memory requirement over time. Before gauging this is
	// the OS-reported allocation; after gauging it is the working set.
	RAMBytes *series.Series
	// DiskWriteBps is the measured disk write throughput in bytes/sec.
	DiskWriteBps *series.Series
	// RowUpdatesPerSec is the row modification rate, the disk model's input.
	RowUpdatesPerSec *series.Series
	// WorkingSetBytes is the gauged working set (constant series when known).
	WorkingSetBytes *series.Series
	// PhysReadsPerSec is the physical page read rate.
	PhysReadsPerSec *series.Series
}

// PeakCPU returns the maximum CPU sample, or NaN when the profile (or its
// CPU series) is nil — profiles assembled by hand from CSV traces often
// carry only a subset of the series Collect fills in.
func (p *Profile) PeakCPU() float64 {
	if p == nil || p.CPU == nil {
		return math.NaN()
	}
	return p.CPU.Max()
}

// PeakRAMBytes returns the maximum RAM sample, or NaN when the profile (or
// its RAM series) is nil.
func (p *Profile) PeakRAMBytes() float64 {
	if p == nil || p.RAMBytes == nil {
		return math.NaN()
	}
	return p.RAMBytes.Max()
}

// Collector drives workload generators against a DBMS instance and samples
// resource usage on a fixed interval — the paper's automated statistics
// collection tool (it "captures data from the DBMS and OS ... without
// introducing any overhead").
type Collector struct {
	in   *dbms.Instance
	gens []*workload.Generator
	// Tick is the simulation step (default 100 ms).
	Tick time.Duration
	// Interval is the sampling interval (default 1 s; the paper's
	// real-world data uses 5 minutes).
	Interval time.Duration
}

// NewCollector creates a collector for the given instance and workloads.
func NewCollector(in *dbms.Instance, gens []*workload.Generator) (*Collector, error) {
	if in == nil {
		return nil, fmt.Errorf("monitor: nil instance")
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("monitor: no workload generators")
	}
	for _, g := range gens {
		if g == nil {
			return nil, fmt.Errorf("monitor: nil generator")
		}
	}
	return &Collector{in: in, gens: gens, Tick: 100 * time.Millisecond, Interval: time.Second}, nil
}

// Collect runs the workloads for the given duration and returns one profile
// per workload plus the whole-instance profile. Per-workload CPU is
// attributed from DBMS-level per-database counters; disk write volume is
// attributed proportionally to each database's update volume (log bytes are
// known exactly per database, page write-back is shared).
func (c *Collector) Collect(duration time.Duration) (map[string]*Profile, *Profile, error) {
	if c.Tick <= 0 || c.Interval <= 0 {
		return nil, nil, fmt.Errorf("monitor: tick %v and interval %v must be positive", c.Tick, c.Interval)
	}
	if duration < c.Interval {
		return nil, nil, fmt.Errorf("monitor: duration %v shorter than sample interval %v", duration, c.Interval)
	}
	// Both divisibility constraints must hold exactly: a duration that is
	// not a multiple of Interval would silently drop the tail window
	// (duration/Interval truncates), and an Interval that is not a multiple
	// of Tick would make simulated time (nSamples·ticksPerSample·Tick)
	// drift away from the requested duration.
	if duration%c.Interval != 0 {
		return nil, nil, fmt.Errorf("monitor: duration %v is not a multiple of sample interval %v (the trailing %v would be dropped)",
			duration, c.Interval, duration%c.Interval)
	}
	if c.Interval%c.Tick != 0 {
		return nil, nil, fmt.Errorf("monitor: interval %v is not a multiple of tick %v (simulated time would cover %v per sample)",
			c.Interval, c.Tick, c.Interval/c.Tick*c.Tick)
	}
	// The checks above guarantee Interval >= Tick, so ticksPerSample >= 1.
	nSamples := int(duration / c.Interval)
	ticksPerSample := int(c.Interval / c.Tick)

	start := time.Unix(0, 0).UTC()
	mk := func() *series.Series {
		return series.New(start, c.Interval, make([]float64, nSamples))
	}
	perDB := make(map[string]*Profile, len(c.gens))
	for _, g := range c.gens {
		perDB[g.Spec().Name] = &Profile{
			Name:             g.Spec().Name,
			CPU:              mk(),
			RAMBytes:         mk(),
			DiskWriteBps:     mk(),
			RowUpdatesPerSec: mk(),
			WorkingSetBytes:  mk(),
			PhysReadsPerSec:  mk(),
		}
	}
	inst := &Profile{
		Name:             "instance",
		CPU:              mk(),
		RAMBytes:         mk(),
		DiskWriteBps:     mk(),
		RowUpdatesPerSec: mk(),
		WorkingSetBytes:  mk(),
		PhysReadsPerSec:  mk(),
	}

	// Reset windows.
	c.in.Disk().TakeStats()
	for _, g := range c.gens {
		g.DB().TakeStats()
	}

	// OS-level CPU measurement: per-workload ops over raw machine capacity
	// plus an equal share of the instance's base OS+DBMS overhead — what a
	// dedicated server's utilization graphs actually show, and what the
	// combined-load estimator's per-instance correction subtracts.
	cfg := c.in.Config()
	rawOps := float64(cfg.CPUCores) * cfg.CoreOpsPerSec * c.Interval.Seconds()
	basePerDB := cfg.BaseCPUFraction / float64(len(c.gens))
	for s := 0; s < nSamples; s++ {
		for t := 0; t < ticksPerSample; t++ {
			reqs := make([]dbms.Request, len(c.gens))
			for i, g := range c.gens {
				reqs[i] = g.Next(c.Tick)
			}
			c.in.Tick(c.Tick, reqs)
		}
		dwin := c.in.Disk().TakeStats()
		sec := c.Interval.Seconds()

		var totalUpdates float64
		wins := make(map[string]dbms.DBStats, len(c.gens))
		for _, g := range c.gens {
			w := g.DB().TakeStats()
			wins[g.Spec().Name] = w
			totalUpdates += float64(w.Updates)
		}
		pageWriteBps := float64(dwin.PageWriteBytes) / sec

		for _, g := range c.gens {
			name := g.Spec().Name
			w := wins[name]
			p := perDB[name]
			p.CPU.Values[s] = w.CPUOps/rawOps + basePerDB
			p.RAMBytes.Values[s] = float64(c.in.AllocatedRAMBytes()) / float64(len(c.gens))
			logBps := float64(w.LogBytes) / sec
			share := 0.0
			if totalUpdates > 0 {
				share = float64(w.Updates) / totalUpdates
			}
			p.DiskWriteBps.Values[s] = logBps + share*pageWriteBps
			p.RowUpdatesPerSec.Values[s] = float64(w.Updates) / sec
			p.WorkingSetBytes.Values[s] = float64(g.Spec().WorkingSetBytes())
			p.PhysReadsPerSec.Values[s] = float64(w.PhysReads) / sec

			inst.CPU.Values[s] += p.CPU.Values[s]
			inst.RowUpdatesPerSec.Values[s] += p.RowUpdatesPerSec.Values[s]
			inst.WorkingSetBytes.Values[s] += p.WorkingSetBytes.Values[s]
			inst.PhysReadsPerSec.Values[s] += p.PhysReadsPerSec.Values[s]
		}
		inst.RAMBytes.Values[s] = float64(c.in.AllocatedRAMBytes())
		inst.DiskWriteBps.Values[s] = float64(dwin.WriteBytes()) / sec
	}
	return perDB, inst, nil
}

// ProvisioningCase classifies how a database's working set relates to the
// memory accessible to the DBMS (paper Section 3.1).
type ProvisioningCase int

const (
	// FitsInBufferPool: buffer-pool miss ratio ≈ 0 — case (i).
	FitsInBufferPool ProvisioningCase = iota
	// FitsInOSCache: high miss ratio but few physical reads — case (ii).
	FitsInOSCache
	// ExceedsMemory: high miss ratio and many physical reads — case (iii);
	// the machine is not over-provisioned and gauging is unnecessary.
	ExceedsMemory
)

// String implements fmt.Stringer.
func (p ProvisioningCase) String() string {
	switch p {
	case FitsInBufferPool:
		return "fits-in-buffer-pool"
	case FitsInOSCache:
		return "fits-in-os-cache"
	case ExceedsMemory:
		return "exceeds-memory"
	default:
		return fmt.Sprintf("provisioning(%d)", int(p))
	}
}

// Classify determines the provisioning case from a monitoring window's
// buffer-pool miss ratio and physical read rate.
func Classify(missRatio, physReadsPerSec float64) ProvisioningCase {
	const (
		lowMissRatio = 0.01
		lowReadRate  = 5.0 // pages/sec considered background noise
	)
	switch {
	case missRatio <= lowMissRatio:
		return FitsInBufferPool
	case physReadsPerSec <= lowReadRate:
		return FitsInOSCache
	default:
		return ExceedsMemory
	}
}
