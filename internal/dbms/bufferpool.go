package dbms

import "time"

// pageKey identifies a page globally: database id in the high bits, page
// number in the low bits.
type pageKey uint64

func makeKey(dbID int, page int64) pageKey {
	return pageKey(uint64(dbID)<<40 | uint64(page)&(1<<40-1))
}

func (k pageKey) dbID() int { return int(k >> 40) }

// frame is one buffer-pool slot, linked into an LRU list.
type frame struct {
	key   pageKey
	dirty bool
	// dirtyAt is the simulation clock when the page became dirty, and
	// dirtyLSN the log position — together they drive the flusher's time
	// and checkpoint-age (InnoDB-style) pressure. Both stay fixed while
	// the page remains dirty, even if it absorbs further updates: that is
	// what lets hot pages coalesce many updates into one write.
	dirtyAt    time.Duration
	dirtyLSN   int64
	prev, next *frame
}

// dirtyRec is a flush-list entry. Records are appended in clean→dirty
// transition order, so the list is sorted by both dirtyAt and dirtyLSN.
// Entries can go stale (page cleaned by eviction or re-dirtied later);
// stale entries are skipped lazily.
type dirtyRec struct {
	key pageKey
	lsn int64
}

// lruCache is a strict-LRU page cache with an InnoDB-style flush list. It
// is the core mechanism behind buffer-pool gauging: inserting probe pages
// at the MRU end pushes the coldest real pages out, and re-reads of evicted
// pages show up as misses.
type lruCache struct {
	capPages int
	table    map[pageKey]*frame
	head     *frame // most recently used
	tail     *frame // least recently used
	dirty    int

	// Flush list: FIFO of clean→dirty transitions.
	fifo     []dirtyRec
	fifoHead int

	// touchedMax tracks the high-water mark of resident pages — the
	// "allocated" memory an OS would report for the process.
	touchedMax int
}

func newLRUCache(capPages int) *lruCache {
	return &lruCache{
		capPages: capPages,
		table:    make(map[pageKey]*frame, capPages),
	}
}

// Len returns the number of resident pages.
func (c *lruCache) Len() int { return len(c.table) }

// Dirty returns the number of dirty resident pages.
func (c *lruCache) Dirty() int { return c.dirty }

// TouchedMax returns the high-water mark of resident pages.
func (c *lruCache) TouchedMax() int { return c.touchedMax }

// unlink removes f from the LRU list.
func (c *lruCache) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		c.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		c.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

// pushFront makes f the most recently used frame.
func (c *lruCache) pushFront(f *frame) {
	f.prev = nil
	f.next = c.head
	if c.head != nil {
		c.head.prev = f
	}
	c.head = f
	if c.tail == nil {
		c.tail = f
	}
}

// Get looks up a page and, on a hit, promotes it to MRU.
func (c *lruCache) Get(key pageKey) bool {
	f, ok := c.table[key]
	if !ok {
		return false
	}
	if c.head != f {
		c.unlink(f)
		c.pushFront(f)
	}
	return true
}

// Contains reports residency without promoting.
func (c *lruCache) Contains(key pageKey) bool {
	_, ok := c.table[key]
	return ok
}

// evicted describes a page pushed out by an insertion.
type evicted struct {
	key   pageKey
	dirty bool
}

// Put inserts a page at the MRU end, evicting the LRU page if the cache is
// full. It returns the evicted page, if any. Inserting an already-resident
// page just promotes it.
func (c *lruCache) Put(key pageKey) (evicted, bool) {
	if c.Get(key) {
		return evicted{}, false
	}
	var out evicted
	var have bool
	if c.capPages > 0 && len(c.table) >= c.capPages {
		victim := c.tail
		c.unlink(victim)
		delete(c.table, victim.key)
		if victim.dirty {
			c.dirty--
		}
		out = evicted{key: victim.key, dirty: victim.dirty}
		have = true
	}
	f := &frame{key: key}
	c.table[key] = f
	c.pushFront(f)
	if len(c.table) > c.touchedMax {
		c.touchedMax = len(c.table)
	}
	return out, have
}

// MarkDirty flags a resident page as dirty at the given clock and log
// position; it reports whether the page was clean before (i.e. whether this
// created new write-back work). Re-dirtying keeps the original stamps.
func (c *lruCache) MarkDirty(key pageKey, now time.Duration, lsn int64) bool {
	f, ok := c.table[key]
	if !ok || f.dirty {
		return false
	}
	f.dirty = true
	f.dirtyAt = now
	f.dirtyLSN = lsn
	c.dirty++
	c.fifo = append(c.fifo, dirtyRec{key: key, lsn: lsn})
	return true
}

// Clean clears the dirty flag of a page if it is still resident. Its flush
// list entry, if still present, goes stale and is skipped lazily.
func (c *lruCache) Clean(key pageKey) {
	if f, ok := c.table[key]; ok && f.dirty {
		f.dirty = false
		c.dirty--
	}
}

// Requeue re-appends a still-dirty page to the flush list with its original
// stamps. The flusher uses it when the disk accepted only part of a batch.
func (c *lruCache) Requeue(key pageKey) {
	if f, ok := c.table[key]; ok && f.dirty {
		c.fifo = append(c.fifo, dirtyRec{key: key, lsn: f.dirtyLSN})
	}
}

// Drop removes a page regardless of its state.
func (c *lruCache) Drop(key pageKey) {
	f, ok := c.table[key]
	if !ok {
		return
	}
	c.unlink(f)
	delete(c.table, key)
	if f.dirty {
		c.dirty--
	}
}

// CollectDirtyOlder pops up to n dirty pages whose clean→dirty transition
// happened at or before either cutoff (log position or clock), oldest
// first. Pass maxInt64 cutoffs to collect the oldest dirty pages
// unconditionally. Collected pages are expected to be flushed (Clean) or
// re-queued (Requeue) by the caller.
func (c *lruCache) CollectDirtyOlder(cutoffLSN int64, cutoffAt time.Duration, n int) []pageKey {
	if n <= 0 {
		return nil
	}
	var out []pageKey
	for c.fifoHead < len(c.fifo) && len(out) < n {
		rec := c.fifo[c.fifoHead]
		f, ok := c.table[rec.key]
		if !ok || !f.dirty || f.dirtyLSN != rec.lsn {
			// Stale: cleaned, evicted, or re-dirtied later.
			c.fifoHead++
			continue
		}
		if rec.lsn > cutoffLSN && f.dirtyAt > cutoffAt {
			break
		}
		out = append(out, rec.key)
		c.fifoHead++
	}
	c.compactFIFO()
	return out
}

// CollectDirty pops up to n of the oldest dirty pages regardless of age.
func (c *lruCache) CollectDirty(n int) []pageKey {
	return c.CollectDirtyOlder(int64(1)<<62, time.Duration(1)<<62, n)
}

// OldestDirtyLSN returns the log position of the oldest dirty page and
// whether any dirty page exists — the checkpoint-age measure.
func (c *lruCache) OldestDirtyLSN() (int64, bool) {
	for c.fifoHead < len(c.fifo) {
		rec := c.fifo[c.fifoHead]
		f, ok := c.table[rec.key]
		if !ok || !f.dirty || f.dirtyLSN != rec.lsn {
			c.fifoHead++
			continue
		}
		return rec.lsn, true
	}
	c.compactFIFO()
	return 0, false
}

// compactFIFO reclaims consumed flush-list prefix space.
func (c *lruCache) compactFIFO() {
	if c.fifoHead > 4096 && c.fifoHead*2 > len(c.fifo) {
		c.fifo = append([]dirtyRec(nil), c.fifo[c.fifoHead:]...)
		c.fifoHead = 0
	}
}

// ResidentByDB counts resident pages per database id.
func (c *lruCache) ResidentByDB() map[int]int {
	out := make(map[int]int)
	for key := range c.table {
		out[key.dbID()]++
	}
	return out
}

// DropDB removes every page belonging to the given database.
func (c *lruCache) DropDB(dbID int) {
	for key := range c.table {
		if key.dbID() == dbID {
			c.Drop(key)
		}
	}
}
