// Package dbms simulates a multi-database OLTP DBMS instance in the style of
// MySQL/InnoDB (and, with an OS file cache enabled, PostgreSQL). It is the
// substrate every Kairos experiment runs on: the paper measures real MySQL
// and PostgreSQL servers; this simulator implements the mechanisms those
// measurements depend on, so the same monitoring and modelling techniques
// work against it.
//
// The mechanisms that matter (Sections 3–4 of the paper):
//
//   - a strict-LRU buffer pool shared by all hosted databases, so stealing
//     pool space (the probe table) evicts the coldest pages and evicted hot
//     pages come back as physical reads — the signal buffer-pool gauging
//     detects;
//   - a write-ahead log with group commit: one sequential stream per
//     instance regardless of how many databases it hosts;
//   - a background flusher that uses idle disk bandwidth aggressively
//     (MySQL-style), so measured standalone I/O overstates required I/O;
//   - page write-back that is sub-linear in update rate, because updates
//     spread over a working set re-dirty already-dirty pages;
//   - CPU accounting with a base OS+DBMS overhead per instance, the term
//     Kairos subtracts when predicting combined CPU load.
//
// Time advances in fixed ticks driven by Instance.Tick.
package dbms

import (
	"fmt"
	"time"

	"kairos/internal/disk"
)

// Config holds the tunables of a simulated DBMS instance. Zero values are
// replaced by the corresponding DefaultConfig values in NewInstance only
// where noted; otherwise they are validation errors.
type Config struct {
	// PageSize is the database page size in bytes (InnoDB default 16 KiB).
	PageSize int
	// BufferPoolBytes is the size of the DBMS-managed buffer pool.
	BufferPoolBytes int64
	// OSCacheBytes enables a second-level OS file cache of this size
	// (PostgreSQL-style configuration). Zero means O_DIRECT (MySQL-style).
	OSCacheBytes int64
	// CPUCores and CoreOpsPerSec define CPU capacity: a core executes
	// CoreOpsPerSec abstract operations per second.
	CPUCores      int
	CoreOpsPerSec float64
	// GroupCommitInterval batches log flushes: at most one physical flush
	// per interval regardless of commit rate.
	GroupCommitInterval time.Duration
	// LogRecordBytes is the log volume per updated row.
	LogRecordBytes int
	// MaxDirtyFraction forces synchronous write-back when the dirty share
	// of the pool exceeds it.
	MaxDirtyFraction float64
	// SoftDirtyFraction is the flusher's target dirty share: above it the
	// flusher writes back opportunistically using spare disk time. Keeping
	// pages dirty below the target lets hot pages absorb many updates — the
	// source of the paper's sub-linear write-back (Figure 4).
	SoftDirtyFraction float64
	// MaxDirtyAge bounds how long a page may stay dirty before the flusher
	// writes it back (InnoDB's checkpoint-age pressure).
	MaxDirtyAge time.Duration
	// IdleFlushBatch caps how many dirty pages the idle flusher tries to
	// write per tick using spare disk time.
	IdleFlushBatch int
	// LogFileBytes bounds the redo log. Pages whose clean→dirty transition
	// is older than ~80% of this log window are force-flushed (InnoDB's
	// checkpoint-age pressure), and if flushing falls so far behind that a
	// dirty page would slip out of the log window, a synchronous flush
	// storm fires — the paper's ~150 ms checkpoint latency spikes.
	LogFileBytes int64
	// ProcessRAMBytes is the DBMS process overhead outside the buffer pool
	// (the paper uses ≈190 MB for MySQL).
	ProcessRAMBytes int64
	// OSRAMBytes is the operating system's memory footprint (≈64 MB).
	OSRAMBytes int64
	// BaseCPUFraction is the background OS+DBMS CPU overhead of one
	// instance, as a fraction of total capacity. Kairos' combined-CPU model
	// subtracts this per eliminated instance.
	BaseCPUFraction float64
	// CPUPerRead/CPUPerUpdate/CPUPerTxn are abstract operation costs.
	CPUPerRead   float64
	CPUPerUpdate float64
	CPUPerTxn    float64
	// Seed makes page-access randomness reproducible.
	Seed uint64
}

// DefaultConfig returns a configuration modelled on the paper's Server 1:
// two quad-core 2.66 GHz Xeons, 32 GB RAM, one 7200 RPM SATA disk, running
// MySQL with a large buffer pool.
func DefaultConfig() Config {
	return Config{
		PageSize:            16 << 10,
		BufferPoolBytes:     953 << 20, // the paper's gauging experiments use 953 MB
		OSCacheBytes:        0,
		CPUCores:            8,
		CoreOpsPerSec:       2.0e6,
		GroupCommitInterval: 10 * time.Millisecond,
		LogRecordBytes:      220,
		MaxDirtyFraction:    0.75,
		SoftDirtyFraction:   0.10,
		MaxDirtyAge:         30 * time.Second,
		IdleFlushBatch:      512,
		LogFileBytes:        160 << 20,
		ProcessRAMBytes:     190 << 20,
		OSRAMBytes:          64 << 20,
		BaseCPUFraction:     0.02,
		CPUPerRead:          60,
		CPUPerUpdate:        150,
		CPUPerTxn:           300,
		Seed:                1,
	}
}

// Database is one logical database hosted by an Instance.
type Database struct {
	id   int
	name string
	// dataPages is the on-disk size of the database in pages.
	dataPages int64
	stats     DBStats
	last      DBStats
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// DataPages returns the database size in pages.
func (db *Database) DataPages() int64 { return db.dataPages }

// DBStats counts activity for one database. All counters are cumulative.
type DBStats struct {
	Txns       int64
	Reads      int64 // logical page accesses by reads
	Updates    int64 // row updates
	BPHits     int64
	BPMisses   int64
	OSCacheHit int64 // misses absorbed by the OS file cache
	PhysReads  int64 // misses that reached the disk
	LogBytes   int64
	// CPUOps is the abstract CPU work executed on behalf of the database.
	CPUOps float64
	// DeferredWork counts operations pushed to later ticks by saturation.
	DeferredWork int64
}

// MissRatio returns the buffer-pool miss ratio over all page accesses.
func (s DBStats) MissRatio() float64 {
	total := s.BPHits + s.BPMisses
	if total == 0 {
		return 0
	}
	return float64(s.BPMisses) / float64(total)
}

// Stats returns cumulative statistics for the database.
func (db *Database) Stats() DBStats { return db.stats }

// TakeStats returns statistics accumulated since the last TakeStats call.
func (db *Database) TakeStats() DBStats {
	cur := db.stats
	w := DBStats{
		Txns:         cur.Txns - db.last.Txns,
		Reads:        cur.Reads - db.last.Reads,
		Updates:      cur.Updates - db.last.Updates,
		BPHits:       cur.BPHits - db.last.BPHits,
		BPMisses:     cur.BPMisses - db.last.BPMisses,
		OSCacheHit:   cur.OSCacheHit - db.last.OSCacheHit,
		PhysReads:    cur.PhysReads - db.last.PhysReads,
		LogBytes:     cur.LogBytes - db.last.LogBytes,
		CPUOps:       cur.CPUOps - db.last.CPUOps,
		DeferredWork: cur.DeferredWork - db.last.DeferredWork,
	}
	db.last = cur
	return w
}

// Request is one database's workload demand for a tick.
type Request struct {
	DB *Database
	// Txns is the number of transactions in the batch (affects CPU and
	// group-commit flush counting).
	Txns int
	// Reads is the number of logical page accesses, drawn uniformly from
	// the working set.
	Reads int
	// Updates is the number of row updates, each dirtying a working-set
	// page and appending a log record.
	Updates int
	// WorkingSetPages bounds the page range accesses are drawn from.
	WorkingSetPages int64
	// UpdateLocality is the fraction of updates directed at the hottest 5%
	// of the working set, modelling skewed OLTP write patterns (TPC-C's
	// district/stock rows). Zero means uniform updates — the behaviour of
	// the paper's synthetic sweep workload.
	UpdateLocality float64
	// ExtraCPU is additional CPU work in abstract ops (e.g. the synthetic
	// benchmark's expensive cryptographic selects).
	ExtraCPU float64
}

// TickResult summarises one tick of execution.
type TickResult struct {
	// CPUUtilization is the fraction of CPU capacity used this tick.
	CPUUtilization float64
	// DiskUtilization is the disk busy fraction this tick.
	DiskUtilization float64
	// AvgLatency estimates the mean transaction latency for the tick from
	// service demand and queueing (M/G/1-style 1/(1-ρ) scaling).
	AvgLatency time.Duration
	// Checkpoint reports whether a log-reclamation checkpoint fired.
	Checkpoint bool
	// CompletedTxns counts transactions that actually executed this tick
	// (requested work beyond saturation is deferred).
	CompletedTxns int64
}

// backlogEntry is deferred work for one database.
type backlog struct {
	txns     float64
	reads    float64
	updates  float64
	extra    float64
	wsPages  int64
	locality float64
}

// Instance is one simulated DBMS process hosting many databases.
type Instance struct {
	cfg  Config
	disk *disk.Disk
	id   int // log stream id on the shared disk

	bp      *lruCache
	osCache *lruCache // nil when OSCacheBytes == 0

	dbs    map[string]*Database
	nextID int

	rng xorshift

	backlogs map[int]*backlog

	logSinceCheckpoint int64
	totalLogBytes      int64
	// pendingEvictWrites counts dirty pages pushed out of the pool whose
	// contents still have to reach the disk; they are written as one batch
	// per tick so the elevator/batching discount applies.
	pendingEvictWrites int
	clock              time.Duration

	stats InstanceStats
}

// InstanceStats aggregates instance-wide counters.
type InstanceStats struct {
	CPUBusy     time.Duration
	Elapsed     time.Duration
	Checkpoints int64
	// LatencySum/LatencyTicks support an average-latency estimate.
	LatencySum   time.Duration
	LatencyTicks int64
	MaxLatency   time.Duration
}

// AvgCPUUtilization returns the lifetime CPU utilization of the instance.
func (s InstanceStats) AvgCPUUtilization() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	u := float64(s.CPUBusy) / float64(s.Elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// AvgLatency returns the mean of the per-tick latency estimates.
func (s InstanceStats) AvgLatency() time.Duration {
	if s.LatencyTicks == 0 {
		return 0
	}
	return s.LatencySum / time.Duration(s.LatencyTicks)
}

// NewInstance creates a DBMS instance backed by the given disk. streamID
// distinguishes this instance's log stream from other instances sharing the
// disk (the VM comparison experiments run many instances on one disk).
func NewInstance(cfg Config, d *disk.Disk, streamID int) (*Instance, error) {
	if d == nil {
		return nil, fmt.Errorf("dbms: nil disk")
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("dbms: page size must be positive, got %d", cfg.PageSize)
	}
	if cfg.BufferPoolBytes < int64(cfg.PageSize) {
		return nil, fmt.Errorf("dbms: buffer pool %d smaller than one page", cfg.BufferPoolBytes)
	}
	if cfg.CPUCores <= 0 || cfg.CoreOpsPerSec <= 0 {
		return nil, fmt.Errorf("dbms: CPU capacity must be positive (cores=%d ops=%v)",
			cfg.CPUCores, cfg.CoreOpsPerSec)
	}
	if cfg.GroupCommitInterval <= 0 {
		return nil, fmt.Errorf("dbms: group commit interval must be positive, got %v", cfg.GroupCommitInterval)
	}
	if cfg.MaxDirtyFraction <= 0 || cfg.MaxDirtyFraction > 1 {
		return nil, fmt.Errorf("dbms: max dirty fraction must be in (0,1], got %v", cfg.MaxDirtyFraction)
	}
	in := &Instance{
		cfg:      cfg,
		disk:     d,
		id:       streamID,
		bp:       newLRUCache(int(cfg.BufferPoolBytes / int64(cfg.PageSize))),
		dbs:      make(map[string]*Database),
		backlogs: make(map[int]*backlog),
		rng:      xorshift(cfg.Seed | 1),
	}
	if cfg.OSCacheBytes > 0 {
		in.osCache = newLRUCache(int(cfg.OSCacheBytes / int64(cfg.PageSize)))
	}
	return in, nil
}

// Config returns the instance configuration.
func (in *Instance) Config() Config { return in.cfg }

// Disk returns the disk the instance runs on.
func (in *Instance) Disk() *disk.Disk { return in.disk }

// Clock returns the simulated time elapsed so far.
func (in *Instance) Clock() time.Duration { return in.clock }

// CreateDatabase registers a database of the given on-disk size.
func (in *Instance) CreateDatabase(name string, dataPages int64) (*Database, error) {
	if _, ok := in.dbs[name]; ok {
		return nil, fmt.Errorf("dbms: database %q already exists", name)
	}
	if dataPages < 0 {
		return nil, fmt.Errorf("dbms: negative size %d for database %q", dataPages, name)
	}
	db := &Database{id: in.nextID, name: name, dataPages: dataPages}
	in.nextID++
	in.dbs[name] = db
	return db, nil
}

// Database looks up a database by name.
func (in *Instance) Database(name string) (*Database, bool) {
	db, ok := in.dbs[name]
	return db, ok
}

// Databases returns all hosted databases.
func (in *Instance) Databases() []*Database {
	out := make([]*Database, 0, len(in.dbs))
	for _, db := range in.dbs {
		out = append(out, db)
	}
	return out
}

// DropDatabase removes a database and evicts its pages.
func (in *Instance) DropDatabase(name string) error {
	db, ok := in.dbs[name]
	if !ok {
		return fmt.Errorf("dbms: database %q does not exist", name)
	}
	in.bp.DropDB(db.id)
	if in.osCache != nil {
		in.osCache.DropDB(db.id)
	}
	delete(in.backlogs, db.id)
	delete(in.dbs, name)
	return nil
}

// GrowDatabase appends pages to a database (used by the gauging probe
// table). The new pages enter the buffer pool dirty, exactly as freshly
// inserted rows would.
func (in *Instance) GrowDatabase(db *Database, pages int64) {
	start := db.dataPages
	for p := start; p < start+pages; p++ {
		in.admit(db, p)
		in.bp.MarkDirty(makeKey(db.id, p), in.clock, in.totalLogBytes)
		db.stats.LogBytes += int64(in.cfg.LogRecordBytes)
		in.totalLogBytes += int64(in.cfg.LogRecordBytes)
	}
	db.dataPages += pages
	in.logSinceCheckpoint += pages * int64(in.cfg.LogRecordBytes)
}

// DropBacklog discards all deferred work, as if the load generators were
// restarted. Profilers use it between the settle and measure windows so
// deferred settle-phase work cannot inflate measured throughput.
func (in *Instance) DropBacklog() {
	for id := range in.backlogs {
		delete(in.backlogs, id)
	}
}

// Preload admits pages [0, pages) of a database into the buffer pool without
// any I/O or statistics, modelling a server whose working set is already warm
// — the steady state the paper's profiling experiments start from.
func (in *Instance) Preload(db *Database, pages int64) {
	for p := int64(0); p < pages; p++ {
		in.admit(db, p)
	}
}

// ScanRange touches pages [0, pages) of a database sequentially through the
// buffer pool, as a COUNT(*) table scan would. It returns the number of
// physical reads it caused. The scan consumes no tick budget — the probe
// queries are deliberately cheap (the paper keeps probe overhead under 5%).
func (in *Instance) ScanRange(db *Database, pages int64) int64 {
	var phys int64
	for p := int64(0); p < pages; p++ {
		if in.access(db, p, false) {
			phys++
		}
	}
	return phys
}

// AllocatedRAMBytes returns what an OS would report for this instance: the
// process overhead plus every buffer-pool (and OS cache) page ever touched.
// This is the over-estimate the paper's Section 3 calls out.
func (in *Instance) AllocatedRAMBytes() int64 {
	alloc := in.cfg.ProcessRAMBytes + int64(in.bp.TouchedMax())*int64(in.cfg.PageSize)
	if in.osCache != nil {
		alloc += int64(in.osCache.TouchedMax()) * int64(in.cfg.PageSize)
	}
	return alloc
}

// ResidentPagesByDB reports how many buffer-pool pages each database holds.
func (in *Instance) ResidentPagesByDB() map[string]int {
	byID := in.bp.ResidentByDB()
	out := make(map[string]int, len(in.dbs))
	for name, db := range in.dbs {
		out[name] = byID[db.id]
	}
	return out
}

// BufferPoolPages returns the buffer pool capacity in pages.
func (in *Instance) BufferPoolPages() int { return in.bp.capPages }

// DirtyPages returns the current number of dirty pages in the pool.
func (in *Instance) DirtyPages() int { return in.bp.Dirty() }

// Stats returns cumulative instance statistics.
func (in *Instance) Stats() InstanceStats { return in.stats }

// admit brings a page into the buffer pool (no read accounting) and handles
// the eviction cascade into the OS cache.
func (in *Instance) admit(db *Database, page int64) {
	key := makeKey(db.id, page)
	ev, had := in.bp.Put(key)
	if !had {
		return
	}
	if ev.dirty {
		// Dirty eviction: the page contents must reach the disk. Writes are
		// batched per tick so the elevator/batching discount applies.
		in.pendingEvictWrites++
	}
	if in.osCache != nil {
		// Clean copy descends into the OS file cache.
		in.osCache.Put(ev.key)
	}
}

// access runs one logical page access. It returns true if the access caused
// a physical disk read. markDirty also dirties the page (row update).
func (in *Instance) access(db *Database, page int64, markDirty bool) (physical bool) {
	key := makeKey(db.id, page)
	if in.bp.Get(key) {
		db.stats.BPHits++
	} else {
		db.stats.BPMisses++
		if in.osCache != nil && in.osCache.Contains(key) {
			// Served from the OS file cache: no physical I/O.
			in.osCache.Drop(key)
			db.stats.OSCacheHit++
		} else {
			db.stats.PhysReads++
			in.disk.SubmitRead(1, in.cfg.PageSize, in.spanFor(db))
			physical = true
		}
		in.admit(db, page)
	}
	if markDirty {
		in.bp.MarkDirty(key, in.clock, in.totalLogBytes)
	}
	return physical
}

// spanFor returns the seek span of a database's hot extent. The working set
// is clustered, so the span tracks the working set rather than the full
// table — the property behind the paper's Figure 12a (database size does
// not influence disk throughput).
func (in *Instance) spanFor(db *Database) float64 {
	ws := db.dataPages
	if bl, ok := in.backlogs[db.id]; ok && bl.wsPages > 0 && bl.wsPages < ws {
		ws = bl.wsPages
	}
	return in.disk.SpanFraction(ws * int64(in.cfg.PageSize))
}

// CPUCapacityOps returns the usable CPU ops available in a window of the
// given length after the instance's base overhead — the denominator monitors
// use to convert per-database CPU ops into utilization fractions.
func (in *Instance) CPUCapacityOps(d time.Duration) float64 {
	return in.cpuCapacityOps(d)
}

// cpuCapacityOps returns usable CPU ops for a tick after the base overhead.
func (in *Instance) cpuCapacityOps(dt time.Duration) float64 {
	total := float64(in.cfg.CPUCores) * in.cfg.CoreOpsPerSec * dt.Seconds()
	return total * (1 - in.cfg.BaseCPUFraction)
}

// Tick runs one full simulation step on an instance that owns its disk:
// enqueue demands, execute with the instance's full CPU capacity, advance
// the disk, then run the flusher and produce the tick summary. Hosts that
// share a disk between instances call Enqueue/RunWork/PostTick directly and
// drive disk.Tick themselves.
func (in *Instance) Tick(dt time.Duration, reqs []Request) TickResult {
	in.Enqueue(reqs)
	st := in.RunWork(dt, in.cpuCapacityOps(dt))
	busyBefore := in.disk.Stats().BusyTime
	in.disk.Tick(dt)
	res := in.PostTick(dt, st)
	busy := in.disk.Stats().BusyTime - busyBefore
	util := float64(busy) / float64(dt)
	if util > 1 {
		util = 1
	}
	res.DiskUtilization = util
	// Latency queues behind synchronous disk work only: background
	// write-back yields to reads and commits, so it does not delay them.
	res.AvgLatency = in.finishLatency(dt, st, res.Checkpoint, in.disk.LastTickSyncLoad(dt))
	return res
}

// Enqueue adds workload demands behind any deferred work.
func (in *Instance) Enqueue(reqs []Request) {
	for _, r := range reqs {
		if r.DB == nil {
			continue
		}
		bl := in.backlogs[r.DB.id]
		if bl == nil {
			bl = &backlog{}
			in.backlogs[r.DB.id] = bl
		}
		bl.txns += float64(r.Txns)
		bl.reads += float64(r.Reads)
		bl.updates += float64(r.Updates)
		bl.extra += r.ExtraCPU
		if r.WorkingSetPages > 0 {
			bl.wsPages = r.WorkingSetPages
		}
		if r.UpdateLocality > 0 {
			bl.locality = r.UpdateLocality
		}
	}
}

// DemandCPUOps estimates the CPU work (in abstract ops) needed to clear the
// current backlog. Hosts use it to divide a shared CPU among instances with
// max-min fairness.
func (in *Instance) DemandCPUOps() float64 {
	var ops float64
	for _, bl := range in.backlogs {
		ops += bl.reads*in.cfg.CPUPerRead + bl.updates*in.cfg.CPUPerUpdate +
			bl.txns*in.cfg.CPUPerTxn + bl.extra
	}
	return ops
}

// SubmitState carries per-tick accounting from RunWork to PostTick.
type SubmitState struct {
	// CPUUsed and CPUBudget are in abstract ops.
	CPUUsed, CPUBudget float64
	// Txns and Updates are the operations completed this tick.
	Txns, Updates float64
	// Active is the number of databases that had work this tick.
	Active int
}

// CPUUtilization returns the fraction of the granted budget that was used.
func (st SubmitState) CPUUtilization() float64 {
	if st.CPUBudget <= 0 {
		return 0
	}
	u := st.CPUUsed / st.CPUBudget
	if u > 1 {
		u = 1
	}
	return u
}

// RunWork executes backlogged work within the given CPU budget, issuing
// buffer-pool accesses and submitting log writes. It advances the instance
// clock by dt but does not advance the disk.
func (in *Instance) RunWork(dt time.Duration, cpuBudget float64) SubmitState {
	in.clock += dt
	in.stats.Elapsed += dt

	st := SubmitState{CPUBudget: cpuBudget}
	var totalTxns, totalUpdates float64

	// Round-robin execution in small proportional slices so saturation hits
	// all databases — and all operation classes within a database — evenly
	// (the paper observes MySQL divides resources fairly across databases).
	const sliceOps = 64
	// Disk backpressure: stop issuing page misses once the read queue is
	// about two ticks deep, and stop committing once the shared log queue
	// backs up (commits must wait for their flush).
	maxQueuedReads := in.maxReadsPerTick(dt) * 2
	const maxOwnLogBatches = 1
	blockedReads, blockedLog := false, false
	// Writer throttling (InnoDB sync-flush avoidance): once the oldest
	// dirty page's redo age nears the log capacity, commits must wait for
	// the flusher. Without this a fast writer drowns the disk in forced
	// flushes and the whole instance stalls.
	ageCritical := func() bool {
		if in.cfg.LogFileBytes <= 0 {
			return false
		}
		oldest, ok := in.bp.OldestDirtyLSN()
		return ok && in.totalLogBytes-oldest > in.cfg.LogFileBytes*95/100
	}

	active := make([]*Database, 0, len(in.dbs))
	for _, db := range in.dbs {
		if bl, ok := in.backlogs[db.id]; ok && bl.reads+bl.updates+bl.txns >= 1 {
			active = append(active, db)
		}
	}
	// Deterministic order regardless of map iteration.
	sortDatabases(active)
	st.Active = len(active)

	progress := true
	for progress && !(blockedReads && blockedLog) && cpuBudget > 0 {
		progress = false
		for _, db := range active {
			if cpuBudget <= 0 {
				break
			}
			bl := in.backlogs[db.id]
			total := bl.reads + bl.updates + bl.txns
			if total < 1 {
				continue
			}
			ws := bl.wsPages
			if ws <= 0 {
				ws = 1
			}
			// Split this slice across the classes in proportion to their
			// remaining work, so reads cannot starve updates or commits.
			n := float64(sliceOps)
			if n > total {
				n = total
			}
			nr := int(n * bl.reads / total)
			nu := int(n * bl.updates / total)
			nt := int(n) - nr - nu
			// Guarantee every class with pending work at least one slot per
			// slice: integer truncation must not let a huge backlog in one
			// class starve the others.
			if nr == 0 && bl.reads >= 1 {
				nr = 1
			}
			if nu == 0 && bl.updates >= 1 {
				nu = 1
			}
			if nt <= 0 && bl.txns >= 1 {
				nt = 1
			}
			if float64(nt) > bl.txns {
				nt = int(bl.txns)
			}
			perExtra := 0.0
			if bl.txns >= 1 {
				perExtra = bl.extra / bl.txns
			}
			for i := 0; i < nr && cpuBudget > 0 && !blockedReads; i++ {
				if in.disk.QueuedReads() > maxQueuedReads {
					blockedReads = true
					break
				}
				bl.reads--
				in.access(db, int64(in.rng.Intn(ws)), false)
				db.stats.Reads++
				db.stats.CPUOps += in.cfg.CPUPerRead
				cpuBudget -= in.cfg.CPUPerRead
				st.CPUUsed += in.cfg.CPUPerRead
				progress = true
			}
			// Updates may miss (a read) and must commit (a log write), so
			// they are gated on both queues.
			for i := 0; i < nu && cpuBudget > 0 && !blockedReads && !blockedLog; i++ {
				if in.disk.QueuedReads() > maxQueuedReads {
					blockedReads = true
					break
				}
				if in.disk.QueuedLogBatchesFor(in.id) > maxOwnLogBatches || ageCritical() {
					blockedLog = true
					break
				}
				bl.updates--
				page := int64(in.rng.Intn(ws))
				if bl.locality > 0 && in.rng.Float() < bl.locality {
					hot := ws / 20
					if hot < 1 {
						hot = 1
					}
					page = int64(in.rng.Intn(hot))
				}
				in.access(db, page, true)
				db.stats.Updates++
				db.stats.LogBytes += int64(in.cfg.LogRecordBytes)
				in.totalLogBytes += int64(in.cfg.LogRecordBytes)
				totalUpdates++
				db.stats.CPUOps += in.cfg.CPUPerUpdate
				cpuBudget -= in.cfg.CPUPerUpdate
				st.CPUUsed += in.cfg.CPUPerUpdate
				progress = true
			}
			// Transactions wait on their reads and their commit flush, so
			// both blocks stall them.
			for i := 0; i < nt && cpuBudget > 0 && !blockedLog && !blockedReads; i++ {
				if in.disk.QueuedLogBatchesFor(in.id) > maxOwnLogBatches {
					blockedLog = true
					break
				}
				bl.txns--
				bl.extra -= perExtra
				if bl.extra < 0 {
					bl.extra = 0
				}
				db.stats.Txns++
				totalTxns++
				db.stats.CPUOps += in.cfg.CPUPerTxn + perExtra
				cpuBudget -= in.cfg.CPUPerTxn + perExtra
				st.CPUUsed += in.cfg.CPUPerTxn + perExtra
				progress = true
			}
		}
	}

	// Count deferred work for saturation diagnostics.
	for _, db := range active {
		bl := in.backlogs[db.id]
		if rem := int64(bl.reads + bl.updates + bl.txns); rem > 0 {
			db.stats.DeferredWork += rem
		}
	}

	// Log writes: one stream per instance; group commit caps flushes.
	logBytes := int64(totalUpdates) * int64(in.cfg.LogRecordBytes)
	if logBytes > 0 {
		maxFlushes := int64(dt / in.cfg.GroupCommitInterval)
		if maxFlushes < 1 {
			maxFlushes = 1
		}
		flushes := int64(totalTxns)
		if flushes > maxFlushes {
			flushes = maxFlushes
		}
		if flushes < 1 {
			flushes = 1
		}
		in.disk.SubmitLog(in.id, logBytes, flushes)
		in.logSinceCheckpoint += logBytes
	}

	st.Txns = totalTxns
	st.Updates = totalUpdates
	return st
}

// PostTick runs the flusher after the disk served the tick's synchronous
// work, and fills in the CPU side of the tick summary. Callers that own the
// disk (see Tick) additionally fill in disk utilization and latency;
// multi-instance hosts do that at host level.
func (in *Instance) PostTick(dt time.Duration, st SubmitState) TickResult {
	res := TickResult{
		CPUUtilization: st.CPUUtilization(),
		CompletedTxns:  int64(st.Txns),
	}
	// Evicted dirty pages must be written out ahead of other write-back:
	// their frames were reused, so the data exists only in the write
	// buffer. The disk bounds forced overrun, so a large burst (a bulk
	// load, a probe-table growth step) drains over several ticks instead
	// of starving reads.
	if in.pendingEvictWrites > 0 {
		wrote := in.disk.WriteBack(in.pendingEvictWrites, in.cfg.PageSize, in.hotSpan(), true)
		in.pendingEvictWrites -= wrote
	}
	// Flusher. Pressure sources, strongest first:
	//
	// 1. Checkpoint emergency: a dirty page is about to fall out of the
	//    redo-log window — synchronous flush storm (the paper's ~150 ms
	//    checkpoint latency spikes on MySQL).
	// 2. Checkpoint age: pages older than ~80% of the log window are
	//    force-flushed so the storm (1) stays rare.
	// 3. Time age: pages dirty longer than MaxDirtyAge go out using spare
	//    bandwidth (recovery-time hygiene).
	// 4. Soft dirty target: opportunistic write-back above the target;
	//    forced once the dirty share reaches MaxDirtyFraction.
	// 5. Idle flushing: with no user work this tick, flush aggressively —
	//    the MySQL behaviour that makes standalone measured I/O overstate
	//    the true requirement (paper Section 4.1).
	if in.cfg.LogFileBytes > 0 {
		if oldest, ok := in.bp.OldestDirtyLSN(); ok && in.totalLogBytes-oldest >= in.cfg.LogFileBytes {
			in.flushKeys(in.bp.CollectDirtyOlder(in.totalLogBytes-in.cfg.LogFileBytes*3/4,
				time.Duration(1)<<62, in.bp.Dirty()), true)
			in.stats.Checkpoints++
			res.Checkpoint = true
		} else {
			cutoff := in.totalLogBytes - in.cfg.LogFileBytes*4/5
			if cutoff > 0 {
				in.flushKeys(in.bp.CollectDirtyOlder(cutoff, -1, 2*in.cfg.IdleFlushBatch), true)
			}
		}
	}
	if !res.Checkpoint {
		if in.cfg.MaxDirtyAge > 0 && in.clock > in.cfg.MaxDirtyAge {
			in.flushKeys(in.bp.CollectDirtyOlder(-1, in.clock-in.cfg.MaxDirtyAge, in.cfg.IdleFlushBatch), false)
		}
		if frac := in.dirtyFraction(); frac > in.cfg.MaxDirtyFraction {
			excess := int((frac - in.cfg.SoftDirtyFraction) * float64(in.bp.capPages))
			in.flushKeys(in.bp.CollectDirty(excess), true)
		} else if target := int(in.cfg.SoftDirtyFraction * float64(in.bp.capPages)); in.bp.Dirty() > target {
			in.flushKeys(in.bp.CollectDirty(in.bp.Dirty()-target), false)
		}
		if st.Active == 0 {
			in.flushKeys(in.bp.CollectDirty(in.cfg.IdleFlushBatch), false)
		}
	}
	in.stats.CPUBusy += time.Duration(res.CPUUtilization * float64(dt))
	return res
}

// finishLatency estimates the tick's mean transaction latency: service
// demand scaled by M/G/1-style queueing at the busier resource, plus half
// the group-commit window for writes.
func (in *Instance) finishLatency(dt time.Duration, st SubmitState, checkpoint bool, diskUtil float64) time.Duration {
	rho := st.CPUUtilization()
	if diskUtil > rho {
		rho = diskUtil
	}
	queue := 1000.0
	if rho < 0.999 {
		queue = 1 / (1 - rho)
	}
	if queue > 1000 {
		queue = 1000
	}
	base := 2 * time.Millisecond
	if st.Txns > 0 && st.CPUUsed > 0 {
		perTxnOps := st.CPUUsed / st.Txns
		base = time.Duration(perTxnOps / in.cfg.CoreOpsPerSec * float64(time.Second))
		if base < 500*time.Microsecond {
			base = 500 * time.Microsecond
		}
	}
	lat := time.Duration(float64(base)*queue) + in.cfg.GroupCommitInterval/2
	if checkpoint {
		lat += 150 * time.Millisecond
	}
	if lat > 10*time.Second {
		lat = 10 * time.Second
	}
	in.stats.LatencySum += lat
	in.stats.LatencyTicks++
	if lat > in.stats.MaxLatency {
		in.stats.MaxLatency = lat
	}
	return lat
}

// maxReadsPerTick estimates how many random reads fit in one tick.
func (in *Instance) maxReadsPerTick(dt time.Duration) int {
	p := in.disk.Params()
	per := p.FullSeekMs/3 + 60.0/p.RPM/2*1000
	n := int(float64(dt.Milliseconds()) / per)
	if n < 4 {
		n = 4
	}
	return n
}

// dirtyFraction returns the dirty share of the buffer pool.
func (in *Instance) dirtyFraction() float64 {
	if in.bp.capPages == 0 {
		return 0
	}
	return float64(in.bp.Dirty()) / float64(in.bp.capPages)
}

// flushKeys writes back the given dirty pages, optionally forcing the
// writes past the tick's spare capacity. The batch is submitted sorted, so
// the disk's elevator pricing applies.
func (in *Instance) flushKeys(keys []pageKey, force bool) {
	if len(keys) == 0 {
		return
	}
	span := in.hotSpan()
	wrote := in.disk.WriteBack(len(keys), in.cfg.PageSize, span, force)
	for _, k := range keys[:wrote] {
		in.bp.Clean(k)
	}
	for _, k := range keys[wrote:] {
		in.bp.Requeue(k)
	}
}

// hotSpan returns the combined seek span of all hosted working sets.
func (in *Instance) hotSpan() float64 {
	var pages int64
	for _, db := range in.dbs {
		if bl, ok := in.backlogs[db.id]; ok && bl.wsPages > 0 {
			pages += bl.wsPages
		} else {
			pages += db.dataPages
		}
	}
	return in.disk.SpanFraction(pages * int64(in.cfg.PageSize))
}

// sortDatabases orders databases by id for deterministic iteration.
func sortDatabases(dbs []*Database) {
	for i := 1; i < len(dbs); i++ {
		for j := i; j > 0 && dbs[j-1].id > dbs[j].id; j-- {
			dbs[j-1], dbs[j] = dbs[j], dbs[j-1]
		}
	}
}

// xorshift is a tiny deterministic RNG (xorshift64*), cheaper than math/rand
// for the per-access page draws.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v * 0x2545F4914F6CDD1D
}

// Float returns a deterministic pseudo-random float64 in [0, 1).
func (x *xorshift) Float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// Intn returns a deterministic pseudo-random int in [0, n).
func (x *xorshift) Intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(x.next() % uint64(n))
}
