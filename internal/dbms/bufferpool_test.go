package dbms

import (
	"testing"
	"testing/quick"
)

func TestLRUBasicHitMiss(t *testing.T) {
	c := newLRUCache(3)
	k1, k2, k3, k4 := makeKey(0, 1), makeKey(0, 2), makeKey(0, 3), makeKey(0, 4)
	for _, k := range []pageKey{k1, k2, k3} {
		if c.Get(k) {
			t.Fatalf("cold cache hit for %v", k)
		}
		c.Put(k)
	}
	if !c.Get(k1) || !c.Get(k2) || !c.Get(k3) {
		t.Fatal("warm pages should hit")
	}
	// Insert a 4th page: k1 was promoted above, so eviction order is
	// k1 (MRU-promoted), k2, k3 — the LRU victim is k1? No: Get promotes,
	// so after Get(k1),Get(k2),Get(k3) the LRU is k1.
	ev, had := c.Put(k4)
	if !had {
		t.Fatal("expected an eviction")
	}
	if ev.key != k1 {
		t.Errorf("evicted %v, want k1=%v", ev.key, k1)
	}
	if c.Get(k1) {
		t.Error("evicted page should miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(2)
	a, b, d := makeKey(1, 10), makeKey(1, 11), makeKey(1, 12)
	c.Put(a)
	c.Put(b)
	c.Get(a) // a is now MRU, b is LRU
	ev, had := c.Put(d)
	if !had || ev.key != b {
		t.Errorf("expected b evicted, got %+v had=%v", ev, had)
	}
}

func TestLRUDirtyAccounting(t *testing.T) {
	c := newLRUCache(4)
	k := makeKey(0, 7)
	c.Put(k)
	if !c.MarkDirty(k, 0, 0) {
		t.Fatal("first MarkDirty should report newly dirty")
	}
	if c.MarkDirty(k, 0, 0) {
		t.Fatal("second MarkDirty should be a no-op")
	}
	if c.Dirty() != 1 {
		t.Fatalf("Dirty = %d, want 1", c.Dirty())
	}
	c.Clean(k)
	if c.Dirty() != 0 {
		t.Fatalf("after Clean, Dirty = %d, want 0", c.Dirty())
	}
	if c.MarkDirty(makeKey(0, 99), 0, 0) {
		t.Error("marking a non-resident page should fail")
	}
}

func TestLRUDirtyEviction(t *testing.T) {
	c := newLRUCache(1)
	k1, k2 := makeKey(0, 1), makeKey(0, 2)
	c.Put(k1)
	c.MarkDirty(k1, 0, 0)
	ev, had := c.Put(k2)
	if !had || !ev.dirty {
		t.Errorf("dirty eviction not reported: %+v had=%v", ev, had)
	}
	if c.Dirty() != 0 {
		t.Errorf("dirty count = %d after dirty eviction, want 0", c.Dirty())
	}
}

func TestLRUCollectDirtyColdFirst(t *testing.T) {
	c := newLRUCache(10)
	for p := int64(0); p < 5; p++ {
		k := makeKey(0, p)
		c.Put(k)
		c.MarkDirty(k, 0, 0)
	}
	got := c.CollectDirty(3)
	if len(got) != 3 {
		t.Fatalf("CollectDirty(3) returned %d keys", len(got))
	}
	// Coldest first: pages 0, 1, 2 were inserted first.
	for i, want := range []int64{0, 1, 2} {
		if got[i] != makeKey(0, want) {
			t.Errorf("CollectDirty[%d] = %v, want page %d", i, got[i], want)
		}
	}
	if got := c.CollectDirty(0); got != nil {
		t.Errorf("CollectDirty(0) = %v, want nil", got)
	}
}

func TestLRUResidentByDBAndDropDB(t *testing.T) {
	c := newLRUCache(10)
	c.Put(makeKey(1, 0))
	c.Put(makeKey(1, 1))
	c.Put(makeKey(2, 0))
	byDB := c.ResidentByDB()
	if byDB[1] != 2 || byDB[2] != 1 {
		t.Errorf("ResidentByDB = %v", byDB)
	}
	c.DropDB(1)
	if c.Len() != 1 || c.Contains(makeKey(1, 0)) {
		t.Errorf("DropDB left pages behind: len=%d", c.Len())
	}
}

func TestLRUTouchedMax(t *testing.T) {
	c := newLRUCache(3)
	for p := int64(0); p < 10; p++ {
		c.Put(makeKey(0, p))
	}
	if c.TouchedMax() != 3 {
		t.Errorf("TouchedMax = %d, want cap 3", c.TouchedMax())
	}
}

func TestMakeKeyRoundTrip(t *testing.T) {
	f := func(dbID uint16, page uint32) bool {
		k := makeKey(int(dbID), int64(page))
		return k.dbID() == int(dbID)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cache size never exceeds capacity and dirty ≤ len.
func TestPropertyLRUInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newLRUCache(16)
		for _, op := range ops {
			page := int64(op % 64)
			switch op % 3 {
			case 0:
				c.Put(makeKey(0, page))
			case 1:
				c.Get(makeKey(0, page))
			case 2:
				c.Put(makeKey(0, page))
				c.MarkDirty(makeKey(0, page), 0, 0)
			}
			if c.Len() > 16 || c.Dirty() > c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: LRU list and table stay consistent (walking the list finds
// exactly the table's keys).
func TestPropertyLRUListTableConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newLRUCache(8)
		for _, op := range ops {
			page := int64(op % 32)
			if op%4 == 3 {
				c.Drop(makeKey(0, page))
			} else {
				c.Put(makeKey(0, page))
			}
		}
		n := 0
		for f := c.head; f != nil; f = f.next {
			if _, ok := c.table[f.key]; !ok {
				return false
			}
			n++
		}
		return n == len(c.table)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
