package dbms

import (
	"testing"
	"time"

	"kairos/internal/disk"
)

// newTestInstance builds an instance on a fresh 7200 RPM disk.
func newTestInstance(t *testing.T, mut func(*Config)) *Instance {
	t.Helper()
	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	in, err := NewInstance(cfg, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// drive runs `ticks` ticks of dt with a steady per-tick request.
func drive(in *Instance, db *Database, ticks int, dt time.Duration, req Request) TickResult {
	var last TickResult
	req.DB = db
	for i := 0; i < ticks; i++ {
		last = in.Tick(dt, []Request{req})
	}
	return last
}

func TestNewInstanceValidation(t *testing.T) {
	d, _ := disk.New(disk.Server7200SATA())
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero page size", func(c *Config) { c.PageSize = 0 }},
		{"tiny buffer pool", func(c *Config) { c.BufferPoolBytes = 1 }},
		{"zero cores", func(c *Config) { c.CPUCores = 0 }},
		{"zero group commit", func(c *Config) { c.GroupCommitInterval = 0 }},
		{"bad dirty fraction", func(c *Config) { c.MaxDirtyFraction = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if _, err := NewInstance(cfg, d, 0); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := NewInstance(DefaultConfig(), nil, 0); err == nil {
		t.Error("nil disk accepted")
	}
}

func TestCreateDropDatabase(t *testing.T) {
	in := newTestInstance(t, nil)
	db, err := in.CreateDatabase("tpcc", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if db.Name() != "tpcc" || db.DataPages() != 1000 {
		t.Errorf("unexpected db %q size %d", db.Name(), db.DataPages())
	}
	if _, err := in.CreateDatabase("tpcc", 10); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := in.CreateDatabase("neg", -1); err == nil {
		t.Error("negative size accepted")
	}
	if got, ok := in.Database("tpcc"); !ok || got != db {
		t.Error("Database lookup failed")
	}
	if len(in.Databases()) != 1 {
		t.Errorf("Databases() len = %d", len(in.Databases()))
	}
	if err := in.DropDatabase("tpcc"); err != nil {
		t.Fatal(err)
	}
	if err := in.DropDatabase("tpcc"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestWorkloadExecutesAndCounts(t *testing.T) {
	in := newTestInstance(t, nil)
	db, _ := in.CreateDatabase("w", 10000)
	in.Preload(db, 2000)
	drive(in, db, 50, 100*time.Millisecond, Request{
		Txns: 10, Reads: 100, Updates: 20, WorkingSetPages: 2000,
	})
	st := db.Stats()
	if st.Txns != 500 {
		t.Errorf("Txns = %d, want 500", st.Txns)
	}
	if st.Reads != 5000 {
		t.Errorf("Reads = %d, want 5000", st.Reads)
	}
	if st.Updates != 1000 {
		t.Errorf("Updates = %d, want 1000", st.Updates)
	}
	wantLog := int64(1000) * int64(in.cfg.LogRecordBytes)
	if st.LogBytes != wantLog {
		t.Errorf("LogBytes = %d, want %d", st.LogBytes, wantLog)
	}
}

func TestWarmupMissesThenHits(t *testing.T) {
	in := newTestInstance(t, nil)
	db, _ := in.CreateDatabase("w", 10000)
	// Working set of 500 pages fits easily in the pool.
	drive(in, db, 200, 100*time.Millisecond, Request{Reads: 200, WorkingSetPages: 500})
	st := db.TakeStats()
	// After warmup the working set is resident: misses bounded by WS size.
	if st.BPMisses > 600 {
		t.Errorf("BPMisses = %d, want ≈500 (one per working-set page)", st.BPMisses)
	}
	if st.BPHits < 30000 {
		t.Errorf("BPHits = %d, want ≫ misses", st.BPHits)
	}
	// Steady state: further access is all hits.
	drive(in, db, 50, 100*time.Millisecond, Request{Reads: 200, WorkingSetPages: 500})
	st2 := db.TakeStats()
	if st2.BPMisses != 0 {
		t.Errorf("steady-state misses = %d, want 0", st2.BPMisses)
	}
}

func TestWorkingSetExceedsPoolCausesPhysicalReads(t *testing.T) {
	in := newTestInstance(t, func(c *Config) {
		c.BufferPoolBytes = 16 << 20 // 1024 pages
	})
	db, _ := in.CreateDatabase("big", 1<<20)
	// Working set of 10x the pool: most accesses miss and hit the disk.
	drive(in, db, 100, 100*time.Millisecond, Request{Reads: 50, WorkingSetPages: 10240})
	st := db.Stats()
	if st.PhysReads == 0 {
		t.Fatal("expected physical reads when working set exceeds pool")
	}
	if st.MissRatio() < 0.5 {
		t.Errorf("miss ratio = %v, want > 0.5", st.MissRatio())
	}
}

func TestDiskSaturationDefersWork(t *testing.T) {
	in := newTestInstance(t, func(c *Config) {
		c.BufferPoolBytes = 16 << 20
	})
	db, _ := in.CreateDatabase("thrash", 1<<20)
	// Demand far beyond what a 7200 RPM disk can serve as random reads.
	drive(in, db, 100, 100*time.Millisecond, Request{Reads: 2000, WorkingSetPages: 100000})
	st := db.Stats()
	if st.DeferredWork == 0 {
		t.Error("expected deferred work under disk saturation")
	}
	// Completed reads must be far fewer than demanded.
	if st.Reads > 100*2000/2 {
		t.Errorf("completed %d reads, expected heavy throttling", st.Reads)
	}
}

func TestCPUSaturationDefersWork(t *testing.T) {
	in := newTestInstance(t, func(c *Config) {
		c.CPUCores = 1
		c.CoreOpsPerSec = 1e5
	})
	db, _ := in.CreateDatabase("hot", 1000)
	res := drive(in, db, 20, 100*time.Millisecond, Request{
		Txns: 1000, WorkingSetPages: 100, ExtraCPU: 1e6,
	})
	if res.CPUUtilization < 0.95 {
		t.Errorf("CPU utilization = %v, want ≈1 under overload", res.CPUUtilization)
	}
	if db.Stats().DeferredWork == 0 {
		t.Error("expected deferred work under CPU overload")
	}
}

func TestLogBytesLinearInUpdates(t *testing.T) {
	run := func(updates int) int64 {
		in := newTestInstance(t, nil)
		db, _ := in.CreateDatabase("w", 100000)
		in.Preload(db, 5000)
		drive(in, db, 100, 100*time.Millisecond, Request{Txns: 5, Updates: updates, WorkingSetPages: 5000})
		return in.Disk().Stats().LogBytes
	}
	l1 := run(20)
	l2 := run(40)
	ratio := float64(l2) / float64(l1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("log bytes should be linear in update rate: ratio = %v", ratio)
	}
}

func TestPageWriteBackSubLinear(t *testing.T) {
	// Doubling the update rate over a fixed working set must less-than-
	// double the page write-back bytes (updates coalesce on dirty pages).
	run := func(updates int) int64 {
		in := newTestInstance(t, nil)
		db, _ := in.CreateDatabase("w", 100000)
		in.Preload(db, 4000)
		drive(in, db, 600, 100*time.Millisecond, Request{Txns: 5, Updates: updates, WorkingSetPages: 4000})
		return in.Disk().Stats().PageWriteBytes
	}
	w1 := run(100)
	w2 := run(200)
	if w1 == 0 {
		t.Fatal("no write-back observed")
	}
	ratio := float64(w2) / float64(w1)
	if ratio >= 1.9 {
		t.Errorf("page write-back should be sub-linear: 2x rate gave %vx writes", ratio)
	}
}

func TestLargerWorkingSetMoreWriteBack(t *testing.T) {
	// Same update rate over a larger working set touches more distinct
	// pages, producing more write-back (paper Figure 4's second effect).
	run := func(ws int64) int64 {
		in := newTestInstance(t, nil)
		db, _ := in.CreateDatabase("w", 400000)
		in.Preload(db, ws)
		drive(in, db, 600, 100*time.Millisecond, Request{Txns: 5, Updates: 150, WorkingSetPages: ws})
		return in.Disk().Stats().PageWriteBytes
	}
	small := run(2000)
	large := run(50000)
	if large <= small {
		t.Errorf("larger working set should cause more write-back: %d (large) <= %d (small)", large, small)
	}
}

func TestGroupCommitCapsFlushes(t *testing.T) {
	in := newTestInstance(t, nil)
	db, _ := in.CreateDatabase("w", 10000)
	in.Preload(db, 5000)
	// 1000 txns per 100 ms tick, but group commit at 10 ms allows at most
	// 10 flushes per tick.
	drive(in, db, 10, 100*time.Millisecond, Request{Txns: 1000, Updates: 1000, WorkingSetPages: 5000})
	flushes := in.Disk().Stats().LogFlushes
	if flushes > 10*10 {
		t.Errorf("LogFlushes = %d, want ≤ 100 (group commit)", flushes)
	}
	if flushes == 0 {
		t.Error("expected some flushes")
	}
}

func TestIdleFlusherCleansDirtyPages(t *testing.T) {
	in := newTestInstance(t, nil)
	db, _ := in.CreateDatabase("w", 10000)
	in.Preload(db, 2000)
	// Dirty a batch of pages, then go idle.
	drive(in, db, 10, 100*time.Millisecond, Request{Updates: 200, WorkingSetPages: 2000})
	if in.DirtyPages() == 0 {
		t.Fatal("expected dirty pages after updates")
	}
	// Idle ticks: flusher should clean everything using spare bandwidth.
	for i := 0; i < 100; i++ {
		in.Tick(100*time.Millisecond, nil)
	}
	if in.DirtyPages() != 0 {
		t.Errorf("flusher left %d dirty pages after idling", in.DirtyPages())
	}
}

func TestLogPressureBoundsDirtyAgeWithoutDeadlock(t *testing.T) {
	// A tiny redo log forces constant checkpoint-age pressure. The writer
	// throttle plus LSN-forced flushing must keep the oldest dirty page
	// within the log window while still letting updates through (no
	// deadlock, no unbounded stall).
	in := newTestInstance(t, func(c *Config) {
		c.LogFileBytes = 1 << 20 // tiny log: ~4700 row updates fill it
	})
	db, _ := in.CreateDatabase("w", 10000)
	in.Preload(db, 2000)
	for i := 0; i < 300; i++ {
		in.Tick(100*time.Millisecond, []Request{{DB: db, Txns: 10, Updates: 200, WorkingSetPages: 2000}})
	}
	st := db.Stats()
	if st.Updates < 10000 {
		t.Errorf("updates = %d of 60000 demanded; log pressure deadlocked the writer", st.Updates)
	}
	// The oldest dirty page must stay within the log window.
	if oldest, ok := in.bp.OldestDirtyLSN(); ok {
		if age := in.totalLogBytes - oldest; age > in.cfg.LogFileBytes {
			t.Errorf("oldest dirty age %d exceeds log capacity %d", age, in.cfg.LogFileBytes)
		}
	}
}

func TestAllocatedRAMGrowsToPoolSize(t *testing.T) {
	in := newTestInstance(t, func(c *Config) {
		c.BufferPoolBytes = 64 << 20 // 4096 pages
	})
	db, _ := in.CreateDatabase("w", 1<<20)
	before := in.AllocatedRAMBytes()
	if before != in.cfg.ProcessRAMBytes {
		t.Errorf("cold allocated RAM = %d, want process base %d", before, in.cfg.ProcessRAMBytes)
	}
	// Touch far more pages than the pool holds: allocation saturates at
	// process + pool (the OS "sees" the whole pool as active).
	in.Preload(db, 100000)
	drive(in, db, 20, 100*time.Millisecond, Request{Reads: 500, WorkingSetPages: 100000})
	after := in.AllocatedRAMBytes()
	want := in.cfg.ProcessRAMBytes + in.cfg.BufferPoolBytes
	if after != want {
		t.Errorf("warm allocated RAM = %d, want %d", after, want)
	}
}

func TestOSCacheAbsorbsMisses(t *testing.T) {
	// PostgreSQL-style config: small shared buffer + OS file cache. A
	// working set that overflows the buffer pool but fits in BP+cache
	// should be served without physical reads once warm.
	in := newTestInstance(t, func(c *Config) {
		c.BufferPoolBytes = 16 << 20 // 1024 pages
		c.OSCacheBytes = 64 << 20    // 4096 pages
	})
	db, _ := in.CreateDatabase("pg", 1<<20)
	drive(in, db, 400, 100*time.Millisecond, Request{Reads: 300, WorkingSetPages: 3000})
	db.TakeStats()
	drive(in, db, 100, 100*time.Millisecond, Request{Reads: 300, WorkingSetPages: 3000})
	st := db.TakeStats()
	if st.BPMisses == 0 {
		t.Fatal("expected buffer-pool misses with overflowing working set")
	}
	if st.OSCacheHit == 0 {
		t.Fatal("expected OS cache hits")
	}
	missServedByCache := float64(st.OSCacheHit) / float64(st.BPMisses)
	if missServedByCache < 0.9 {
		t.Errorf("OS cache absorbed only %.0f%% of misses, want ≥90%%", missServedByCache*100)
	}
}

func TestGrowDatabaseAndScanRange(t *testing.T) {
	in := newTestInstance(t, func(c *Config) {
		c.BufferPoolBytes = 16 << 20 // 1024 pages
	})
	probe, _ := in.CreateDatabase("probe", 0)
	in.GrowDatabase(probe, 100)
	if probe.DataPages() != 100 {
		t.Fatalf("DataPages = %d, want 100", probe.DataPages())
	}
	// Fresh probe pages are resident: scanning them causes no reads.
	if phys := in.ScanRange(probe, 100); phys != 0 {
		t.Errorf("scan of freshly grown probe caused %d physical reads", phys)
	}
	// Grow beyond the pool: the oldest probe pages get evicted and a full
	// scan must re-read them.
	in.GrowDatabase(probe, 2000)
	if phys := in.ScanRange(probe, probe.DataPages()); phys == 0 {
		t.Error("scan after overflow should cause physical reads")
	}
}

func TestProbeStealsFromVictimDB(t *testing.T) {
	// The gauging mechanism: growing a probe table evicts the victim's
	// cold pages; if the victim's working set was smaller than the pool,
	// its physical reads stay ~0 until the probe exceeds the slack.
	in := newTestInstance(t, func(c *Config) {
		c.BufferPoolBytes = 64 << 20 // 4096 pages
	})
	victim, _ := in.CreateDatabase("victim", 1<<20)
	probe, _ := in.CreateDatabase("probe", 0)
	// Victim working set: 1000 pages — 3096 pages of slack.
	in.Preload(victim, 1000)
	drive(in, victim, 20, 100*time.Millisecond, Request{Reads: 400, WorkingSetPages: 1000})
	victim.TakeStats()

	// Steal 2000 pages (less than slack): victim unaffected.
	in.GrowDatabase(probe, 2000)
	for i := 0; i < 50; i++ {
		in.Tick(100*time.Millisecond, []Request{{DB: victim, Reads: 400, WorkingSetPages: 1000}})
		in.ScanRange(probe, probe.DataPages())
	}
	st := victim.TakeStats()
	if st.PhysReads > 50 {
		t.Errorf("victim suffered %d physical reads before slack exhausted", st.PhysReads)
	}

	// Steal past the slack: victim pages start getting evicted.
	in.GrowDatabase(probe, 1500)
	for i := 0; i < 50; i++ {
		in.Tick(100*time.Millisecond, []Request{{DB: victim, Reads: 400, WorkingSetPages: 1000}})
		in.ScanRange(probe, probe.DataPages())
	}
	st = victim.TakeStats()
	if st.PhysReads < 100 {
		t.Errorf("victim physical reads = %d, want sharp increase after slack exhausted", st.PhysReads)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	run := func(txns int) time.Duration {
		in := newTestInstance(t, func(c *Config) {
			c.CPUCores = 2
			c.CoreOpsPerSec = 1e6
		})
		db, _ := in.CreateDatabase("w", 10000)
		in.Preload(db, 1000)
		res := drive(in, db, 50, 100*time.Millisecond, Request{
			Txns: txns, Reads: txns, Updates: txns / 4, WorkingSetPages: 1000,
		})
		return res.AvgLatency
	}
	light := run(50)
	heavy := run(4000)
	if heavy <= light {
		t.Errorf("latency should rise with load: light=%v heavy=%v", light, heavy)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() DBStats {
		in := newTestInstance(t, nil)
		db, _ := in.CreateDatabase("w", 100000)
		drive(in, db, 100, 100*time.Millisecond, Request{
			Txns: 20, Reads: 300, Updates: 50, WorkingSetPages: 8000,
		})
		return db.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", a, b)
	}
}

func TestTakeStatsWindows(t *testing.T) {
	in := newTestInstance(t, nil)
	db, _ := in.CreateDatabase("w", 10000)
	drive(in, db, 10, 100*time.Millisecond, Request{Txns: 5, WorkingSetPages: 100})
	w1 := db.TakeStats()
	if w1.Txns != 50 {
		t.Fatalf("window 1 Txns = %d, want 50", w1.Txns)
	}
	drive(in, db, 10, 100*time.Millisecond, Request{Txns: 3, WorkingSetPages: 100})
	w2 := db.TakeStats()
	if w2.Txns != 30 {
		t.Errorf("window 2 Txns = %d, want 30", w2.Txns)
	}
}

func TestMissRatio(t *testing.T) {
	var s DBStats
	if s.MissRatio() != 0 {
		t.Error("empty stats should have zero miss ratio")
	}
	s.BPHits, s.BPMisses = 75, 25
	if got := s.MissRatio(); got != 0.25 {
		t.Errorf("MissRatio = %v, want 0.25", got)
	}
}

func TestXorshiftDeterministicAndBounded(t *testing.T) {
	a, b := xorshift(42), xorshift(42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Intn(1000), b.Intn(1000)
		if va != vb {
			t.Fatal("same-seed xorshift diverged")
		}
		if va < 0 || va >= 1000 {
			t.Fatalf("Intn out of range: %d", va)
		}
	}
	var z xorshift = 1
	if z.Intn(0) != 0 || z.Intn(-5) != 0 {
		t.Error("Intn of non-positive bound should be 0")
	}
}

func TestUpdateLocalityReducesUniquePages(t *testing.T) {
	// Skewed updates coalesce on hot pages: at equal rates, high locality
	// must produce markedly less page write-back than uniform updates.
	run := func(locality float64) int64 {
		in := newTestInstance(t, func(c *Config) { c.BufferPoolBytes = 2 << 30 })
		db, _ := in.CreateDatabase("w", 200000)
		in.Preload(db, 100000)
		for i := 0; i < 900; i++ {
			in.Tick(100*time.Millisecond, []Request{{
				DB: db, Updates: 300, WorkingSetPages: 100000, UpdateLocality: locality,
			}})
		}
		return in.Disk().Stats().PageWriteBytes
	}
	uniform := run(0)
	skewed := run(0.9)
	if uniform == 0 {
		t.Fatal("no write-back observed")
	}
	if float64(skewed) > float64(uniform)*0.7 {
		t.Errorf("locality should cut write-back: uniform=%d skewed=%d", uniform, skewed)
	}
}

func TestDropBacklog(t *testing.T) {
	in := newTestInstance(t, nil)
	db, _ := in.CreateDatabase("w", 10000)
	// Queue far more work than one tick can run.
	in.Enqueue([]Request{{DB: db, Txns: 1000000, WorkingSetPages: 100}})
	if in.DemandCPUOps() == 0 {
		t.Fatal("backlog empty after enqueue")
	}
	in.DropBacklog()
	if in.DemandCPUOps() != 0 {
		t.Error("DropBacklog left work behind")
	}
}

func TestXorshiftFloatRange(t *testing.T) {
	x := xorshift(7)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := x.Float()
		if v < 0 || v >= 1 {
			t.Fatalf("Float out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float mean = %v, want ≈0.5", mean)
	}
}
