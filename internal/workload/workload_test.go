package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
)

func TestPatternsStayNonNegativeAndAverageOne(t *testing.T) {
	patterns := map[string]Pattern{
		"flat":     Flat(),
		"sinusoid": Sinusoid(time.Hour, 0.9),
		"sawtooth": Sawtooth(2*time.Hour, 0.7),
		"square":   Square(time.Hour, 0.5),
		"diurnal":  Diurnal(14, 4),
	}
	for name, p := range patterns {
		var sum float64
		n := 24 * 60
		for i := 0; i < n; i++ {
			v := p(time.Duration(i) * time.Minute)
			if v < 0 {
				t.Errorf("%s: negative multiplier %v at minute %d", name, v, i)
			}
			sum += v
		}
		mean := sum / float64(n)
		if mean < 0.8 || mean > 1.2 {
			t.Errorf("%s: mean multiplier %v, want ≈1", name, mean)
		}
	}
}

func TestBurstyPattern(t *testing.T) {
	p := Bursty(10*time.Hour, time.Hour, 5)
	if got := p(30 * time.Minute); got != 5 {
		t.Errorf("in-burst multiplier = %v, want 5", got)
	}
	if got := p(5 * time.Hour); got != 0.25 {
		t.Errorf("quiet multiplier = %v, want 0.25", got)
	}
	// Next period bursts again.
	if got := p(10*time.Hour + 30*time.Minute); got != 5 {
		t.Errorf("second-period burst = %v, want 5", got)
	}
}

func TestDiurnalPeaksAtPeakHour(t *testing.T) {
	p := Diurnal(14, 3)
	peak := p(14 * time.Hour)
	trough := p(2 * time.Hour)
	if peak <= trough {
		t.Errorf("peak %v not above trough %v", peak, trough)
	}
	ratio := peak / trough
	if math.Abs(ratio-3) > 0.01 {
		t.Errorf("peak/trough ratio = %v, want 3", ratio)
	}
}

func TestSpecValidate(t *testing.T) {
	good := TPCC(10, 100)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []Spec{
		{},                         // empty name
		{Name: "x", DataPages: -1}, // negative size
		{Name: "x", DataPages: 10, WorkingSetPages: 20},         // ws > data
		{Name: "x", DataPages: 10, WorkingSetPages: 5, TPS: -1}, // negative rate
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}

func TestTPCCScaling(t *testing.T) {
	s5 := TPCC(5, 50)
	s10 := TPCC(10, 50)
	if s10.WorkingSetPages != 2*s5.WorkingSetPages {
		t.Errorf("working set should scale with warehouses: %d vs %d", s5.WorkingSetPages, s10.WorkingSetPages)
	}
	// 140 MB per warehouse: 5 warehouses = 700 MB.
	wantWS := int64(5) * 140 << 20 / PageSize
	if s5.WorkingSetPages != wantWS {
		t.Errorf("WS pages = %d, want %d", s5.WorkingSetPages, wantWS)
	}
	if err := s5.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWikipediaScaling(t *testing.T) {
	s := Wikipedia(100_000, 100)
	// 100K pages → 2.2 GB working set.
	wantWS := (int64(2200) << 20) / PageSize
	if s.WorkingSetPages != wantWS {
		t.Errorf("WS pages = %d, want %d", s.WorkingSetPages, wantWS)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	// Read-mostly: reads dominate updates strongly.
	if s.UpdatesPerTxn >= s.ReadsPerTxn/4 {
		t.Errorf("wikipedia should be read-mostly: reads=%v updates=%v", s.ReadsPerTxn, s.UpdatesPerTxn)
	}
}

func TestMicroWorkloadsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		s := Micro(i)
		if err := s.Validate(); err != nil {
			t.Errorf("micro %d invalid: %v", i, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate micro name %q", s.Name)
		}
		seen[s.Name] = true
		// Working sets in the paper's 512 MB – 2.5 GB range.
		ws := s.WorkingSetBytes()
		if ws < 512<<20 || ws > 2560<<20 {
			t.Errorf("micro %d working set %d outside 512MB–2.5GB", i, ws)
		}
	}
	// Index wraps.
	if Micro(5).Name != Micro(0).Name || Micro(-1).Name != Micro(4).Name {
		t.Error("Micro index should wrap modulo 5")
	}
}

func TestGeneratorRateExact(t *testing.T) {
	d, _ := disk.New(disk.Server7200SATA())
	in, _ := dbms.NewInstance(dbms.DefaultConfig(), d, 0)
	db, _ := in.CreateDatabase("w", 1000)
	spec := Spec{Name: "w", DataPages: 1000, WorkingSetPages: 100, TPS: 33.3,
		ReadsPerTxn: 2.5, UpdatesPerTxn: 0.7}
	g, err := NewGenerator(spec, db)
	if err != nil {
		t.Fatal(err)
	}
	var txns, reads, updates int
	ticks := 1000
	dt := 100 * time.Millisecond
	for i := 0; i < ticks; i++ {
		r := g.Next(dt)
		txns += r.Txns
		reads += r.Reads
		updates += r.Updates
	}
	elapsed := float64(ticks) * dt.Seconds()
	wantTxns := spec.TPS * elapsed
	if math.Abs(float64(txns)-wantTxns) > 1 {
		t.Errorf("txns = %d, want %v (exact carry)", txns, wantTxns)
	}
	wantReads := wantTxns * spec.ReadsPerTxn
	if math.Abs(float64(reads)-wantReads) > 1 {
		t.Errorf("reads = %d, want %v", reads, wantReads)
	}
	wantUpdates := wantTxns * spec.UpdatesPerTxn
	if math.Abs(float64(updates)-wantUpdates) > 1 {
		t.Errorf("updates = %d, want %v", updates, wantUpdates)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{}, nil); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := NewGenerator(TPCC(1, 10), nil); err == nil {
		t.Error("nil database accepted")
	}
}

func TestProvisionCreatesAndWarms(t *testing.T) {
	d, _ := disk.New(disk.Server7200SATA())
	cfg := dbms.DefaultConfig()
	in, _ := dbms.NewInstance(cfg, d, 0)
	spec := TPCC(2, 20)
	g, err := Provision(in, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.DB().DataPages() != spec.DataPages {
		t.Errorf("db size = %d, want %d", g.DB().DataPages(), spec.DataPages)
	}
	// Warmed: the working set is resident, so a tick of reads causes no
	// physical reads.
	in.Tick(100*time.Millisecond, []dbms.Request{g.Next(100 * time.Millisecond)})
	if phys := g.DB().Stats().PhysReads; phys != 0 {
		t.Errorf("warm workload caused %d physical reads", phys)
	}
	// Duplicate provisioning fails (db exists).
	if _, err := Provision(in, spec, false); err == nil {
		t.Error("duplicate provision accepted")
	}
}

func TestGeneratorPatternModulatesLoad(t *testing.T) {
	d, _ := disk.New(disk.Server7200SATA())
	in, _ := dbms.NewInstance(dbms.DefaultConfig(), d, 0)
	db, _ := in.CreateDatabase("sq", 1000)
	spec := Spec{Name: "sq", DataPages: 1000, WorkingSetPages: 10, TPS: 100,
		Pattern: Square(2*time.Second, 1)} // full swing: 2x then 0
	g, _ := NewGenerator(spec, db)
	var first, second int
	for i := 0; i < 10; i++ { // first half-period: multiplier 2
		first += g.Next(100 * time.Millisecond).Txns
	}
	for i := 0; i < 10; i++ { // second half-period: multiplier 0
		second += g.Next(100 * time.Millisecond).Txns
	}
	if first <= second || second != 0 {
		t.Errorf("square pattern not applied: first=%d second=%d", first, second)
	}
}

// Property: generator never emits negative work and long-run totals track
// TPS for arbitrary (sane) spec parameters.
func TestPropertyGeneratorConservation(t *testing.T) {
	d, _ := disk.New(disk.Server7200SATA())
	in, _ := dbms.NewInstance(dbms.DefaultConfig(), d, 0)
	db, _ := in.CreateDatabase("p", 1<<20)
	f := func(tpsRaw uint8, readsRaw, updatesRaw uint8) bool {
		tps := float64(tpsRaw) / 3
		spec := Spec{Name: "p", DataPages: 1 << 20, WorkingSetPages: 100,
			TPS: tps, ReadsPerTxn: float64(readsRaw) / 16, UpdatesPerTxn: float64(updatesRaw) / 16}
		g, err := NewGenerator(spec, db)
		if err != nil {
			return false
		}
		var txns int
		for i := 0; i < 200; i++ {
			r := g.Next(50 * time.Millisecond)
			if r.Txns < 0 || r.Reads < 0 || r.Updates < 0 || r.ExtraCPU < 0 {
				return false
			}
			txns += r.Txns
		}
		want := tps * 10 // 200 ticks of 50 ms
		return math.Abs(float64(txns)-want) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
