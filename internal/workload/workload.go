// Package workload generates the database workloads the paper evaluates
// with: a TPC-C-like OLTP mix, a Wikipedia-like read-mostly mix, and the
// five synthetic micro-benchmarks of Section 7.2 whose CPU/RAM/disk demands
// are individually controllable and vary over time (sinusoid, sawtooth,
// flat, square, bursty).
//
// A Spec describes a workload declaratively; a Generator turns it into
// per-tick dbms.Request batches with exact fractional carry, so a 0.3 tps
// workload still issues precisely 0.3·t transactions over time.
package workload

import (
	"fmt"
	"math"
	"time"

	"kairos/internal/dbms"
)

// PageSize is the page size assumed when converting byte sizes to pages.
const PageSize = 16 << 10

// Pattern is a time-varying rate multiplier: the instantaneous load is
// Spec.TPS · Pattern(t). Patterns return non-negative values with a mean
// around 1 so TPS keeps its meaning as the average rate.
type Pattern func(t time.Duration) float64

// Flat returns a constant multiplier of 1.
func Flat() Pattern {
	return func(time.Duration) float64 { return 1 }
}

// Sinusoid oscillates as 1 + amplitude·sin(2πt/period). Amplitude must be
// in [0, 1] to keep the rate non-negative.
func Sinusoid(period time.Duration, amplitude float64) Pattern {
	return func(t time.Duration) float64 {
		return 1 + amplitude*math.Sin(2*math.Pi*float64(t)/float64(period))
	}
}

// Sawtooth ramps linearly from 1−amplitude to 1+amplitude over each period.
func Sawtooth(period time.Duration, amplitude float64) Pattern {
	return func(t time.Duration) float64 {
		frac := math.Mod(float64(t), float64(period)) / float64(period)
		return 1 - amplitude + 2*amplitude*frac
	}
}

// Square alternates between 1−amplitude and 1+amplitude every half period.
func Square(period time.Duration, amplitude float64) Pattern {
	return func(t time.Duration) float64 {
		frac := math.Mod(float64(t), float64(period)) / float64(period)
		if frac < 0.5 {
			return 1 + amplitude
		}
		return 1 - amplitude
	}
}

// Bursty is mostly quiet (low fraction of the base rate) with short periodic
// bursts at burstFactor times the base rate — the paper's "occasional
// unexpected events" and Second Life's scheduled snapshot jobs.
func Bursty(period time.Duration, burstLen time.Duration, burstFactor float64) Pattern {
	return func(t time.Duration) float64 {
		frac := math.Mod(float64(t), float64(period))
		if frac < float64(burstLen) {
			return burstFactor
		}
		return 0.25
	}
}

// Diurnal models a day/night cycle peaking at the given hour-of-day with
// the given peak-to-trough ratio; period is 24h.
func Diurnal(peakHour float64, ratio float64) Pattern {
	if ratio < 1 {
		ratio = 1
	}
	mean := (ratio + 1) / 2
	amp := (ratio - 1) / 2
	return func(t time.Duration) float64 {
		hours := t.Hours()
		phase := 2 * math.Pi * (hours - peakHour) / 24
		return (mean + amp*math.Cos(phase)) / mean
	}
}

// Spec describes a database workload.
type Spec struct {
	// Name identifies the workload (and its database).
	Name string
	// DataPages is the total on-disk size of the database.
	DataPages int64
	// WorkingSetPages is the hot set all accesses are drawn from.
	WorkingSetPages int64
	// TPS is the average transaction rate.
	TPS float64
	// Pattern modulates TPS over time; nil means Flat.
	Pattern Pattern
	// ReadsPerTxn is the average number of page reads per transaction.
	ReadsPerTxn float64
	// UpdatesPerTxn is the average number of row updates per transaction.
	UpdatesPerTxn float64
	// ExtraCPUPerTxn is additional CPU work per transaction in abstract ops
	// (the synthetic benchmark's expensive cryptographic selects).
	ExtraCPUPerTxn float64
	// UpdateLocality is the fraction of updates hitting the hottest 5% of
	// the working set. Real OLTP writes are skewed (TPC-C's district and
	// stock rows absorb most updates); the paper's Figure 12b finds that
	// at equal update rates and working sets, transaction type does not
	// change disk pressure — consistent with similar locality across
	// realistic workloads.
	UpdateLocality float64
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.DataPages < 0 || s.WorkingSetPages < 0 {
		return fmt.Errorf("workload %s: negative sizes (data=%d ws=%d)", s.Name, s.DataPages, s.WorkingSetPages)
	}
	if s.WorkingSetPages > s.DataPages {
		return fmt.Errorf("workload %s: working set %d exceeds data size %d", s.Name, s.WorkingSetPages, s.DataPages)
	}
	if s.TPS < 0 || s.ReadsPerTxn < 0 || s.UpdatesPerTxn < 0 || s.ExtraCPUPerTxn < 0 {
		return fmt.Errorf("workload %s: negative rates", s.Name)
	}
	if s.UpdateLocality < 0 || s.UpdateLocality > 1 {
		return fmt.Errorf("workload %s: update locality %v outside [0,1]", s.Name, s.UpdateLocality)
	}
	return nil
}

// WorkingSetBytes returns the working set size in bytes.
func (s Spec) WorkingSetBytes() int64 { return s.WorkingSetPages * PageSize }

// RowUpdateRate returns the average row update rate in rows/sec.
func (s Spec) RowUpdateRate() float64 { return s.TPS * s.UpdatesPerTxn }

// TPCC returns a TPC-C-like workload scaled to the given number of
// warehouses. The paper's measured working set is 120–150 MB per warehouse;
// we use 140 MB. The transaction mix approximates the weighted TPC-C
// profile: ~20 page reads and ~10 row updates per transaction.
func TPCC(warehouses int, tps float64) Spec {
	const (
		wsBytesPerWarehouse   = 140 << 20
		dataBytesPerWarehouse = 160 << 20
	)
	return Spec{
		Name:            fmt.Sprintf("tpcc-%dw", warehouses),
		DataPages:       int64(warehouses) * dataBytesPerWarehouse / PageSize,
		WorkingSetPages: int64(warehouses) * wsBytesPerWarehouse / PageSize,
		TPS:             tps,
		Pattern:         Flat(),
		ReadsPerTxn:     20,
		UpdatesPerTxn:   10,
		ExtraCPUPerTxn:  0,
		UpdateLocality:  0.7,
	}
}

// Wikipedia returns a workload modelled on the paper's Wikipedia benchmark:
// 92% reads / 8% writes, four transaction types, tuple sizes from 70 B to
// 3.6 MB. Scaled to wikiPages wiki articles: 100K pages correspond to 67 GB
// of data with a 2.2 GB working set.
func Wikipedia(wikiPages int64, tps float64) Spec {
	const (
		dataBytesPer100K = int64(67) << 30
		wsBytesPer100K   = int64(2200) << 20
	)
	return Spec{
		Name:            fmt.Sprintf("wikipedia-%dp", wikiPages),
		DataPages:       wikiPages * (dataBytesPer100K / PageSize) / 100_000,
		WorkingSetPages: wikiPages * (wsBytesPer100K / PageSize) / 100_000,
		TPS:             tps,
		Pattern:         Flat(),
		ReadsPerTxn:     4,
		// 8% of queries are writes; a write touches ~3 rows on average
		// (article text, revision, watchlist/link maintenance).
		UpdatesPerTxn:  0.25,
		ExtraCPUPerTxn: 0,
		UpdateLocality: 0.7,
	}
}

// Micro returns the i-th (0–4) synthetic micro-benchmark of Section 7.2:
// five single-table workloads mixing updates and CPU-intensive selects with
// individually controlled working sets (512 MB – 2.5 GB) and different
// time-varying patterns, designed so their combination barely fits one
// server and stresses all three resources at once.
func Micro(i int) Spec {
	mb := func(n int64) int64 { return n << 20 / PageSize }
	specs := [5]Spec{
		{
			Name:            "micro-sin",
			DataPages:       mb(4096),
			WorkingSetPages: mb(512),
			TPS:             300,
			Pattern:         Sinusoid(4*time.Hour, 0.6),
			ReadsPerTxn:     4,
			UpdatesPerTxn:   2,
			ExtraCPUPerTxn:  2000,
		},
		{
			Name:            "micro-saw",
			DataPages:       mb(6144),
			WorkingSetPages: mb(1024),
			TPS:             200,
			Pattern:         Sawtooth(6*time.Hour, 0.8),
			ReadsPerTxn:     6,
			UpdatesPerTxn:   4,
			ExtraCPUPerTxn:  1000,
		},
		{
			Name:            "micro-flat",
			DataPages:       mb(8192),
			WorkingSetPages: mb(2560),
			TPS:             150,
			Pattern:         Flat(),
			ReadsPerTxn:     8,
			UpdatesPerTxn:   3,
			ExtraCPUPerTxn:  500,
		},
		{
			Name:            "micro-square",
			DataPages:       mb(4096),
			WorkingSetPages: mb(768),
			TPS:             250,
			Pattern:         Square(3*time.Hour, 0.5),
			ReadsPerTxn:     3,
			UpdatesPerTxn:   5,
			ExtraCPUPerTxn:  1500,
		},
		{
			Name:            "micro-burst",
			DataPages:       mb(5120),
			WorkingSetPages: mb(1536),
			TPS:             180,
			Pattern:         Bursty(8*time.Hour, time.Hour, 3),
			ReadsPerTxn:     5,
			UpdatesPerTxn:   2,
			ExtraCPUPerTxn:  3000,
		},
	}
	return specs[((i%5)+5)%5]
}

// Generator drives a workload against a database tick by tick.
type Generator struct {
	spec  Spec
	db    *dbms.Database
	clock time.Duration
	// Fractional carries keep long-run rates exact.
	carryTxns, carryReads, carryUpdates, carryCPU float64
}

// NewGenerator binds a validated spec to a database.
func NewGenerator(spec Spec, db *dbms.Database) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, fmt.Errorf("workload %s: nil database", spec.Name)
	}
	return &Generator{spec: spec, db: db}, nil
}

// Spec returns the generator's workload description.
func (g *Generator) Spec() Spec { return g.spec }

// DB returns the database the generator drives.
func (g *Generator) DB() *dbms.Database { return g.db }

// Clock returns the generator's elapsed simulated time.
func (g *Generator) Clock() time.Duration { return g.clock }

// Next produces the request batch for the next tick of length dt.
func (g *Generator) Next(dt time.Duration) dbms.Request {
	mult := 1.0
	if g.spec.Pattern != nil {
		mult = g.spec.Pattern(g.clock)
	}
	if mult < 0 {
		mult = 0
	}
	g.clock += dt

	txns := g.spec.TPS * mult * dt.Seconds()
	g.carryTxns += txns
	g.carryReads += txns * g.spec.ReadsPerTxn
	g.carryUpdates += txns * g.spec.UpdatesPerTxn
	g.carryCPU += txns * g.spec.ExtraCPUPerTxn

	nt := int(g.carryTxns)
	nr := int(g.carryReads)
	nu := int(g.carryUpdates)
	cpu := g.carryCPU
	g.carryTxns -= float64(nt)
	g.carryReads -= float64(nr)
	g.carryUpdates -= float64(nu)
	g.carryCPU = 0

	return dbms.Request{
		DB:              g.db,
		Txns:            nt,
		Reads:           nr,
		Updates:         nu,
		WorkingSetPages: g.spec.WorkingSetPages,
		UpdateLocality:  g.spec.UpdateLocality,
		ExtraCPU:        cpu,
	}
}

// Provision creates (and optionally pre-warms) the spec's database on the
// given instance, returning a ready generator. Pre-warming loads the working
// set into the buffer pool, modelling a server in steady state.
func Provision(in *dbms.Instance, spec Spec, warm bool) (*Generator, error) {
	db, err := in.CreateDatabase(spec.Name, spec.DataPages)
	if err != nil {
		return nil, err
	}
	if warm {
		in.Preload(db, spec.WorkingSetPages)
	}
	return NewGenerator(spec, db)
}
