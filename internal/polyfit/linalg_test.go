package polyfit

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(-1, 2) should panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("MulVec dimension mismatch should error")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Solve a square, well-conditioned system exactly.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 with noise-free redundant observations.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2*x + 1
	}
	sol, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-1) > 1e-9 || math.Abs(sol[1]-2) > 1e-9 {
		t.Errorf("fit = %v, want [1 2]", sol)
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("underdetermined system should error")
	}
	a = NewMatrix(2, 2)
	if _, err := SolveLeastSquares(a, []float64{1}); err == nil {
		t.Error("b length mismatch should error")
	}
	// Singular: second column is zero.
	s := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		s.Set(i, 0, 1)
	}
	if _, err := SolveLeastSquares(s, []float64{1, 2, 3}); err != ErrSingular {
		t.Errorf("singular err = %v, want ErrSingular", err)
	}
	// Rank-deficient: duplicate columns.
	d := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		d.Set(i, 0, float64(i+1))
		d.Set(i, 1, float64(i+1))
	}
	if _, err := SolveLeastSquares(d, []float64{1, 2, 3}); err != ErrSingular {
		t.Errorf("rank-deficient err = %v, want ErrSingular", err)
	}
}

func TestSolveLeastSquaresRandomRecovery(t *testing.T) {
	// Random well-conditioned systems: solving A·x = A·x0 must recover x0.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 12, 4
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		x0 := make([]float64, cols)
		for i := range x0 {
			x0[i] = rng.NormFloat64() * 10
		}
		b, err := a.MulVec(x0)
		if err != nil {
			t.Fatal(err)
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x0 {
			if math.Abs(x[i]-x0[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], x0[i])
			}
		}
	}
}

func TestSolveWeightedLeastSquares(t *testing.T) {
	// Two contradictory observations of a constant; the heavier weight wins.
	a := NewMatrix(2, 1)
	a.Set(0, 0, 1)
	a.Set(1, 0, 1)
	x, err := SolveWeightedLeastSquares(a, []float64{0, 10}, []float64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-9) > 1e-9 {
		t.Errorf("weighted solution = %v, want 9", x[0])
	}
	if _, err := SolveWeightedLeastSquares(a, []float64{0, 10}, []float64{1}); err == nil {
		t.Error("weight length mismatch should error")
	}
	if _, err := SolveWeightedLeastSquares(a, []float64{0, 10}, []float64{1, -1}); err == nil {
		t.Error("negative weight should error")
	}
}
