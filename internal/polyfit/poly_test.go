package polyfit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoly1DEval(t *testing.T) {
	p := Poly1D{Coeffs: []float64{1, 2, 3}} // 1 + 2x + 3x²
	if got := p.Eval(0); got != 1 {
		t.Errorf("Eval(0) = %v, want 1", got)
	}
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %v, want 17", got)
	}
	var empty Poly1D
	if empty.Eval(5) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
}

func TestFit1DRecoversPolynomial(t *testing.T) {
	want := []float64{3, -2, 0.5} // 3 − 2x + 0.5x²
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		x := float64(i) / 2
		xs[i] = x
		ys[i] = want[0] + want[1]*x + want[2]*x*x
	}
	p, err := Fit1D(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(p.Coeffs[i]-want[i]) > 1e-8 {
			t.Errorf("coeff[%d] = %v, want %v", i, p.Coeffs[i], want[i])
		}
	}
}

func TestFit1DErrors(t *testing.T) {
	if _, err := Fit1D([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit1D([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := Fit1D([]float64{1}, []float64{1}, 2); err == nil {
		t.Error("too few points should error")
	}
}

func TestNumTerms2D(t *testing.T) {
	cases := map[int]int{0: 1, 1: 3, 2: 6, 3: 10}
	for d, want := range cases {
		if got := NumTerms2D(d); got != want {
			t.Errorf("NumTerms2D(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestPoly2DEvalKnown(t *testing.T) {
	// Terms ordered 1, x, y, x², xy, y².
	p := Poly2D{Degree: 2, Coeffs: []float64{1, 0, 0, 2, 0, 3}}
	// f(x,y) = 1 + 2x² + 3y²; f(1,2) = 1 + 2 + 12 = 15
	if got := p.Eval(1, 2); math.Abs(got-15) > 1e-12 {
		t.Errorf("Eval(1,2) = %v, want 15", got)
	}
}

func TestFit2DRecoversPolynomial(t *testing.T) {
	want := []float64{1, 2, -1, 0.5, 0.25, -0.75}
	truth := Poly2D{Degree: 2, Coeffs: want}
	rng := rand.New(rand.NewSource(5))
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 4
		ys[i] = rng.Float64() * 4
		zs[i] = truth.Eval(xs[i], ys[i])
	}
	p, err := Fit2D(xs, ys, zs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(p.Coeffs[i]-want[i]) > 1e-6 {
			t.Errorf("coeff[%d] = %v, want %v", i, p.Coeffs[i], want[i])
		}
	}
}

func TestFit2DErrors(t *testing.T) {
	if _, err := Fit2D([]float64{1}, []float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit2D([]float64{1, 2}, []float64{1, 2}, []float64{1, 2}, -2); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := Fit2D([]float64{1, 2}, []float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("too few points should error")
	}
}

func TestFitLAR2DRobustToOutliers(t *testing.T) {
	// LAR must track the bulk of the data despite gross outliers, unlike L2.
	truth := Poly2D{Degree: 2, Coeffs: []float64{2, 1, 0.5, 0, 0, 0}}
	rng := rand.New(rand.NewSource(17))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 10
		ys[i] = rng.Float64() * 10
		zs[i] = truth.Eval(xs[i], ys[i])
		if i%20 == 0 { // 5% gross outliers
			zs[i] += 500
		}
	}
	lar, err := FitLAR2D(xs, ys, zs, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Fit2D(xs, ys, zs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Compare prediction error against the truth at clean points.
	var larErr, l2Err float64
	for i := 0; i < 50; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		want := truth.Eval(x, y)
		larErr += math.Abs(lar.Eval(x, y) - want)
		l2Err += math.Abs(l2.Eval(x, y) - want)
	}
	if larErr > l2Err/4 {
		t.Errorf("LAR error %v not ≪ L2 error %v under outliers", larErr, l2Err)
	}
	if larErr/50 > 0.5 {
		t.Errorf("LAR mean error %v too large", larErr/50)
	}
}

func TestFitLAR2DDefaultsAndErrors(t *testing.T) {
	// maxIter <= 0 takes the default and still works.
	truth := Poly2D{Degree: 1, Coeffs: []float64{1, 2, 3}}
	var xs, ys, zs []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		x, y := rng.Float64(), rng.Float64()
		xs = append(xs, x)
		ys = append(ys, y)
		zs = append(zs, truth.Eval(x, y))
	}
	p, err := FitLAR2D(xs, ys, zs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Eval(0.5, 0.5)-truth.Eval(0.5, 0.5)) > 1e-6 {
		t.Error("LAR with default iterations failed to fit clean data")
	}
	if _, err := FitLAR2D([]float64{1}, []float64{1}, []float64{1}, 2, 5); err == nil {
		t.Error("too few points should error")
	}
}

func TestFitEnvelope1D(t *testing.T) {
	// Scatter below the parabola y = −(x−5)² + 30, with the max at each x on
	// the parabola. The envelope fit must recover the parabola.
	var xs, ys []float64
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 10
		top := -(x-5)*(x-5) + 30
		xs = append(xs, x, x)
		ys = append(ys, top-rng.Float64()*10, top)
	}
	p, err := FitEnvelope1D(xs, ys, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1.0; x <= 9; x += 2 {
		want := -(x-5)*(x-5) + 30
		if math.Abs(p.Eval(x)-want) > 1.5 {
			t.Errorf("envelope(%v) = %v, want ≈%v", x, p.Eval(x), want)
		}
	}
}

func TestFitEnvelope1DErrors(t *testing.T) {
	if _, err := FitEnvelope1D([]float64{1}, []float64{1, 2}, 2, 5); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitEnvelope1D(nil, nil, 2, 5); err == nil {
		t.Error("empty data should error")
	}
	if _, err := FitEnvelope1D([]float64{1, 2}, []float64{1, 2}, 2, 2); err == nil {
		t.Error("too few buckets should error")
	}
	if _, err := FitEnvelope1D([]float64{3, 3, 3}, []float64{1, 2, 3}, 1, 3); err == nil {
		t.Error("no x spread should error")
	}
}

// Property: Fit1D on exact polynomial data reproduces the inputs at the
// sample points.
func TestFit1DInterpolatesProperty(t *testing.T) {
	f := func(c0, c1, c2 int8) bool {
		coeffs := []float64{float64(c0), float64(c1), float64(c2)}
		truth := Poly1D{Coeffs: coeffs}
		xs := []float64{-2, -1, 0, 1, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = truth.Eval(x)
		}
		p, err := Fit1D(xs, ys, 2)
		if err != nil {
			return false
		}
		for i, x := range xs {
			if math.Abs(p.Eval(x)-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
