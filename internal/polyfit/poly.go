package polyfit

import (
	"fmt"
	"math"

	"kairos/internal/floats"
)

// Poly1D is a univariate polynomial c[0] + c[1]·x + c[2]·x² + …
type Poly1D struct {
	Coeffs []float64
}

// Eval evaluates the polynomial at x using Horner's rule.
func (p Poly1D) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Fit1D fits a degree-d polynomial to (xs, ys) by ordinary least squares.
func Fit1D(xs, ys []float64, degree int) (Poly1D, error) {
	if len(xs) != len(ys) {
		return Poly1D{}, fmt.Errorf("polyfit: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if degree < 0 {
		return Poly1D{}, fmt.Errorf("polyfit: negative degree %d", degree)
	}
	if len(xs) < degree+1 {
		return Poly1D{}, fmt.Errorf("polyfit: need at least %d points for degree %d, have %d",
			degree+1, degree, len(xs))
	}
	a := NewMatrix(len(xs), degree+1)
	for r, x := range xs {
		pow := 1.0
		for c := 0; c <= degree; c++ {
			a.Set(r, c, pow)
			pow *= x
		}
	}
	coeffs, err := SolveLeastSquares(a, ys)
	if err != nil {
		return Poly1D{}, err
	}
	return Poly1D{Coeffs: coeffs}, nil
}

// Poly2D is a bivariate polynomial of total degree ≤ Degree with terms
// ordered (1, x, y, x², xy, y², x³, …). The paper's disk model is the
// Degree=2 case: f(ws, rate) with six coefficients.
type Poly2D struct {
	Degree int
	Coeffs []float64
}

// NumTerms2D returns the number of monomials of total degree ≤ d in two
// variables: (d+1)(d+2)/2.
func NumTerms2D(d int) int { return (d + 1) * (d + 2) / 2 }

// basis2D writes the monomial values for (x, y) into out, ordered by total
// degree then by descending power of x: 1, x, y, x², xy, y², …
func basis2D(x, y float64, degree int, out []float64) {
	i := 0
	for total := 0; total <= degree; total++ {
		for px := total; px >= 0; px-- {
			py := total - px
			out[i] = math.Pow(x, float64(px)) * math.Pow(y, float64(py))
			i++
		}
	}
}

// Eval evaluates the polynomial at (x, y). It walks the monomials in basis
// order without materializing them and builds each power by repeated
// multiplication, so evaluation allocates nothing and avoids math.Pow —
// it sits in the consolidation evaluator's per-time-step disk pricing
// loop. For the degree ≤ 2 fits the disk profiles use, the terms are
// bit-identical to the math.Pow basis the fit was computed with.
func (p Poly2D) Eval(x, y float64) float64 {
	var v float64
	i := 0
	for total := 0; total <= p.Degree && i < len(p.Coeffs); total++ {
		for px := total; px >= 0 && i < len(p.Coeffs); px-- {
			term := 1.0
			for k := 0; k < px; k++ {
				term *= x
			}
			for k := 0; k < total-px; k++ {
				term *= y
			}
			v += p.Coeffs[i] * term
			i++
		}
	}
	return v
}

// Fit2D fits a total-degree-d bivariate polynomial to (xs, ys) → zs by
// ordinary least squares.
func Fit2D(xs, ys, zs []float64, degree int) (Poly2D, error) {
	a, err := design2D(xs, ys, zs, degree)
	if err != nil {
		return Poly2D{}, err
	}
	coeffs, err := SolveLeastSquares(a, zs)
	if err != nil {
		return Poly2D{}, err
	}
	return Poly2D{Degree: degree, Coeffs: coeffs}, nil
}

// design2D constructs the Vandermonde-style design matrix for a 2-D fit.
func design2D(xs, ys, zs []float64, degree int) (*Matrix, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) {
		return nil, fmt.Errorf("polyfit: 2D fit length mismatch %d/%d/%d", len(xs), len(ys), len(zs))
	}
	if degree < 0 {
		return nil, fmt.Errorf("polyfit: negative degree %d", degree)
	}
	terms := NumTerms2D(degree)
	if len(xs) < terms {
		return nil, fmt.Errorf("polyfit: need at least %d points for 2D degree %d, have %d",
			terms, degree, len(xs))
	}
	a := NewMatrix(len(xs), terms)
	row := make([]float64, terms)
	for r := range xs {
		basis2D(xs[r], ys[r], degree, row)
		for c, v := range row {
			a.Set(r, c, v)
		}
	}
	return a, nil
}

// FitLAR2D fits a total-degree-d bivariate polynomial minimizing the sum of
// absolute residuals (LAR / L1), the robust criterion the paper uses for the
// disk model. It uses iteratively-reweighted least squares with weights
// 1/max(|residual|, δ); maxIter bounds the iteration count (20 is plenty).
func FitLAR2D(xs, ys, zs []float64, degree, maxIter int) (Poly2D, error) {
	a, err := design2D(xs, ys, zs, degree)
	if err != nil {
		return Poly2D{}, err
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	// Start from the L2 solution.
	coeffs, err := SolveLeastSquares(a, zs)
	if err != nil {
		return Poly2D{}, err
	}
	const delta = 1e-6
	w := make([]float64, len(zs))
	for iter := 0; iter < maxIter; iter++ {
		pred, err := a.MulVec(coeffs)
		if err != nil {
			return Poly2D{}, err
		}
		for i := range w {
			res := math.Abs(pred[i] - zs[i])
			if res < delta {
				res = delta
			}
			w[i] = 1 / res
		}
		next, err := SolveWeightedLeastSquares(a, zs, w)
		if err != nil {
			return Poly2D{}, err
		}
		var change float64
		for i := range next {
			change += math.Abs(next[i] - coeffs[i])
		}
		coeffs = next
		if change < 1e-10 {
			break
		}
	}
	return Poly2D{Degree: degree, Coeffs: coeffs}, nil
}

// FitEnvelope1D fits a degree-d polynomial through the per-bucket maxima of
// (xs, ys): it buckets xs into nBuckets equal-width bins, takes the max y in
// each, and fits through those points. The paper uses this (quadratic case)
// for the disk-saturation envelope in Figure 4.
func FitEnvelope1D(xs, ys []float64, degree, nBuckets int) (Poly1D, error) {
	if len(xs) != len(ys) {
		return Poly1D{}, fmt.Errorf("polyfit: envelope length mismatch")
	}
	if len(xs) == 0 {
		return Poly1D{}, fmt.Errorf("polyfit: envelope of empty data")
	}
	if nBuckets < degree+1 {
		return Poly1D{}, fmt.Errorf("polyfit: %d buckets < degree+1 = %d", nBuckets, degree+1)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if floats.Same(hi, lo) {
		return Poly1D{}, fmt.Errorf("polyfit: envelope needs spread in x")
	}
	maxY := make([]float64, nBuckets)
	maxX := make([]float64, nBuckets)
	seen := make([]bool, nBuckets)
	for i, x := range xs {
		b := int(float64(nBuckets) * (x - lo) / (hi - lo))
		if b == nBuckets {
			b--
		}
		if !seen[b] || ys[i] > maxY[b] {
			seen[b] = true
			maxY[b] = ys[i]
			maxX[b] = x
		}
	}
	var ex, ey []float64
	for b := 0; b < nBuckets; b++ {
		if seen[b] {
			ex = append(ex, maxX[b])
			ey = append(ey, maxY[b])
		}
	}
	return Fit1D(ex, ey, degree)
}
