// Package polyfit provides the numerical fitting machinery behind the Kairos
// disk model: dense least squares via Householder QR, 1-D and 2-D polynomial
// bases, and iteratively-reweighted least squares (IRLS) for the
// Least-Absolute-Residuals (LAR) fits the paper uses for its disk profile
// (Section 4.1, Figure 4).
package polyfit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular indicates a rank-deficient design matrix.
var ErrSingular = errors.New("polyfit: singular or rank-deficient system")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("polyfit: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// MulVec returns m·x for a vector x of length Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("polyfit: MulVec dimension %d != cols %d", len(x), m.Cols)
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum float64
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		out[r] = sum
	}
	return out, nil
}

// SolveLeastSquares solves min_x ‖A·x − b‖₂ by Householder QR with column
// norm checks. A must have Rows ≥ Cols; it returns ErrSingular when the
// effective rank is below Cols.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("polyfit: rows %d != len(b) %d", a.Rows, len(b))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("polyfit: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	qtb := append([]float64(nil), b...)

	// Householder QR: for each column k, reflect so that below-diagonal
	// entries vanish, applying the same reflection to qtb.
	for k := 0; k < n; k++ {
		// Compute the norm of the column below (and including) the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			return nil, ErrSingular
		}
		// Give norm the sign of the pivot so that u₁ = x₁/norm + 1 ≥ 1,
		// avoiding cancellation; the resulting R diagonal is −norm.
		if r.At(k, k) < 0 {
			norm = -norm
		}
		// u = x/norm with u₁ += 1, stored in place of the column.
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)
		// Apply the reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		// Apply the reflector to qtb.
		var s float64
		for i := k; i < m; i++ {
			s += r.At(i, k) * qtb[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			qtb[i] += s * r.At(i, k)
		}
		r.Set(k, k, -norm)
	}

	// Back substitution on the upper triangle.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := qtb[i]
		for j := i + 1; j < n; j++ {
			sum -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		x[i] = sum / d
	}
	return x, nil
}

// SolveWeightedLeastSquares solves min_x ‖W^{1/2}(A·x − b)‖₂ for non-negative
// weights w (len Rows). Rows with zero weight are effectively dropped.
func SolveWeightedLeastSquares(a *Matrix, b, w []float64) ([]float64, error) {
	if len(w) != a.Rows || len(b) != a.Rows {
		return nil, fmt.Errorf("polyfit: weighted solve shape mismatch")
	}
	wa := NewMatrix(a.Rows, a.Cols)
	wb := make([]float64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		if w[r] < 0 {
			return nil, fmt.Errorf("polyfit: negative weight at row %d", r)
		}
		sw := math.Sqrt(w[r])
		for c := 0; c < a.Cols; c++ {
			wa.Set(r, c, sw*a.At(r, c))
		}
		wb[r] = sw * b[r]
	}
	return SolveLeastSquares(wa, wb)
}
