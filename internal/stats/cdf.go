package stats

import "sort"

// CDF is an empirical cumulative distribution function built from a sample.
// The paper reports model accuracy as CDFs of resource utilization
// (Figure 6); this type renders the same curves.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns F(x): the fraction of samples ≤ x. An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want strictly "≤ x" so search for the first index > x.
	n := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the value below which fraction q (0 ≤ q ≤ 1) of the
// samples fall, with linear interpolation. An empty CDF returns 0.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	return percentileSorted(c.sorted, q*100)
}

// Points renders the CDF as n evenly spaced (x, F(x)) pairs spanning the
// sample range, suitable for plotting or for table output in benchmarks.
func (c *CDF) Points(n int) (xs, fs []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		fs[i] = c.At(x)
	}
	return xs, fs
}
