package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kairos/internal/floats"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !floats.Same(got, cse.want) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 {
		t.Error("empty CDF should report 0 everywhere")
	}
	xs, fs := c.Points(5)
	if xs != nil || fs != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %v, want 30", got)
	}
	if got := c.Quantile(-0.5); got != 10 {
		t.Errorf("Quantile(-0.5) = %v, want clamp to 10", got)
	}
	if got := c.Quantile(2); got != 50 {
		t.Errorf("Quantile(2) = %v, want clamp to 50", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	xs, fs := c.Points(3)
	if len(xs) != 3 || len(fs) != 3 {
		t.Fatalf("Points lengths = %d, %d; want 3, 3", len(xs), len(fs))
	}
	if xs[0] != 0 || xs[1] != 5 || xs[2] != 10 {
		t.Errorf("xs = %v, want [0 5 10]", xs)
	}
	if fs[2] != 1 {
		t.Errorf("F(max) = %v, want 1", fs[2])
	}
	if _, fs1 := c.Points(1); len(fs1) != 1 {
		t.Error("Points(1) should return a single point")
	}
}

// Property: CDF is monotone non-decreasing and bounded by [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		c := NewCDF(xs)
		prev := 0.0
		for x := -400.0; x <= 400; x += 25 {
			cur := c.At(x)
			if cur < prev || cur < 0 || cur > 1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is an approximate inverse of At.
func TestCDFQuantileInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	c := NewCDF(xs)
	for q := 0.05; q < 1; q += 0.05 {
		v := c.Quantile(q)
		got := c.At(v)
		if got < q-0.02 || got > q+0.02 {
			t.Errorf("At(Quantile(%v)) = %v, want ≈%v", q, got, q)
		}
	}
}

// TestCDFQuantileBoundaryTable pins the q=0 and q=1 boundary contract
// across sample shapes: the extremes return the min/max sample exactly —
// no out-of-range index, no interpolation artifact — including on
// single-sample, duplicate-heavy and unsorted inputs.
func TestCDFQuantileBoundaryTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"single q0", []float64{7}, 0, 7},
		{"single q1", []float64{7}, 1, 7},
		{"single mid", []float64{7}, 0.5, 7},
		{"pair q0", []float64{3, 1}, 0, 1},
		{"pair q1", []float64{3, 1}, 1, 3},
		{"pair mid interpolates", []float64{3, 1}, 0.5, 2},
		{"unsorted q0", []float64{5, -2, 9, 0}, 0, -2},
		{"unsorted q1", []float64{5, -2, 9, 0}, 1, 9},
		{"duplicates q0", []float64{4, 4, 4}, 0, 4},
		{"duplicates q1", []float64{4, 4, 4}, 1, 4},
		{"negative q clamps to min", []float64{2, 8}, -3, 2},
		{"q above one clamps to max", []float64{2, 8}, 3, 8},
		{"near-zero q stays at min", []float64{10, 20, 30}, 1e-12, 10},
		{"near-one q stays within max", []float64{10, 20, 30}, 1 - 1e-12, 30},
	}
	for _, c := range cases {
		cdf := NewCDF(c.xs)
		got := cdf.Quantile(c.q)
		// Near-boundary quantiles interpolate but must never leave the
		// sample range; exact boundaries must hit min/max exactly.
		if c.q > 0 && c.q < 1 {
			if got < cdf.Quantile(0) || got > cdf.Quantile(1) {
				t.Errorf("%s: Quantile(%v) = %v escapes sample range", c.name, c.q, got)
			}
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

// TestCDFQuantileMatchesMinMax cross-checks the boundary contract against
// random samples: for any sample, Quantile(0) == min and Quantile(1) == max
// bit for bit.
func TestCDFQuantileMatchesMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		mn, mx := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1e3
			if xs[i] < mn {
				mn = xs[i]
			}
			if xs[i] > mx {
				mx = xs[i]
			}
		}
		c := NewCDF(xs)
		if got := c.Quantile(0); !floats.Same(got, mn) {
			t.Fatalf("trial %d: Quantile(0) = %v, want min %v", trial, got, mn)
		}
		if got := c.Quantile(1); !floats.Same(got, mx) {
			t.Fatalf("trial %d: Quantile(1) = %v, want max %v", trial, got, mx)
		}
	}
}
