package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kairos/internal/floats"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"uniform", []float64{2, 2, 2, 2}, 2},
		{"mixed", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	mn, mx, err := MinMax([]float64{3, -2, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if mn != -2 || mx != 9 {
		t.Errorf("MinMax = (%v, %v), want (-2, 9)", mn, mx)
	}
	if Min([]float64{5, 1}) != 1 || Max([]float64{5, 1}) != 5 {
		t.Error("Min/Max convenience wrappers disagree with MinMax")
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{25, 20},
		{50, 35},
		{75, 40},
		{100, 50},
		{40, 29}, // rank 1.6 → 20 + 0.6*(35-20)
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(empty) err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
}

func TestPercentilesBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	ps := []float64{0, 5, 25, 50, 75, 95, 100}
	batch, err := Percentiles(xs, ps...)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		single, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(batch[i], single, 1e-12) {
			t.Errorf("Percentiles[%v] = %v, Percentile = %v", p, batch[i], single)
		}
	}
	if _, err := Percentiles(nil, 50); err != ErrEmpty {
		t.Error("Percentiles(empty) should return ErrEmpty")
	}
	if _, err := Percentiles(xs, 200); err == nil {
		t.Error("Percentiles with out-of-range p should error")
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v; want 5, nil", got, err)
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{1, 2, 3}
	if got, _ := RMSE(pred, act); got != 0 {
		t.Errorf("RMSE of identical = %v, want 0", got)
	}
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("RMSE length mismatch should error")
	}
	if _, err := RMSE(nil, nil); err != ErrEmpty {
		t.Error("RMSE(empty) should return ErrEmpty")
	}
}

func TestMAEAndMaxAbsError(t *testing.T) {
	pred := []float64{1, 5, 2}
	act := []float64{2, 2, 2}
	mae, err := MAE(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, 4.0/3, 1e-12) {
		t.Errorf("MAE = %v, want 4/3", mae)
	}
	mx, err := MaxAbsError(pred, act)
	if err != nil {
		t.Fatal(err)
	}
	if mx != 3 {
		t.Errorf("MaxAbsError = %v, want 3", mx)
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("MAE mismatch should error")
	}
	if _, err := MaxAbsError([]float64{1}, nil); err == nil {
		t.Error("MaxAbsError mismatch should error")
	}
	if _, err := MAE(nil, nil); err != ErrEmpty {
		t.Error("MAE(empty) should return ErrEmpty")
	}
	if _, err := MaxAbsError(nil, nil); err != ErrEmpty {
		t.Error("MaxAbsError(empty) should return ErrEmpty")
	}
}

// Property: for any sample, Percentile(0) == min and Percentile(100) == max,
// and percentiles are monotone in p.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		mn, mx, _ := MinMax(xs)
		if !floats.Same(p0, mn) || !floats.Same(p100, mx) {
			return false
		}
		prev := p0
		for p := 10.0; p <= 100; p += 10 {
			cur, _ := Percentile(xs, p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		mn, mx, _ := MinMax(xs)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
