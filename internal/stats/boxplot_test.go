package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxPlotEmpty(t *testing.T) {
	if _, err := NewBoxPlot(nil); err != ErrEmpty {
		t.Errorf("NewBoxPlot(nil) err = %v, want ErrEmpty", err)
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	bp, err := NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Median != 5 {
		t.Errorf("Median = %v, want 5", bp.Median)
	}
	if bp.Q1 != 3 || bp.Q3 != 7 {
		t.Errorf("Q1,Q3 = %v,%v; want 3,7", bp.Q1, bp.Q3)
	}
	if bp.Min != 1 || bp.Max != 9 {
		t.Errorf("whiskers = %v,%v; want 1,9", bp.Min, bp.Max)
	}
	if len(bp.Outliers) != 0 {
		t.Errorf("Outliers = %v, want none", bp.Outliers)
	}
	if bp.IQR() != 4 {
		t.Errorf("IQR = %v, want 4", bp.IQR())
	}
}

func TestBoxPlotDetectsOutliers(t *testing.T) {
	// 100 is far outside q3 + 1.5*IQR for this sample.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	bp, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", bp.Outliers)
	}
	if bp.Max == 100 {
		t.Error("upper whisker should exclude the outlier")
	}
}

func TestBoxPlotConstantSample(t *testing.T) {
	bp, err := NewBoxPlot([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Min != 5 || bp.Q1 != 5 || bp.Median != 5 || bp.Q3 != 5 || bp.Max != 5 {
		t.Errorf("constant sample summary = %+v, want all 5", bp)
	}
	if len(bp.Outliers) != 0 {
		t.Errorf("constant sample should have no outliers, got %v", bp.Outliers)
	}
}

// Property: Min ≤ Q1 ≤ Median ≤ Q3 ≤ Max and whiskers within fences.
func TestBoxPlotOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		bp, err := NewBoxPlot(xs)
		if err != nil {
			return false
		}
		if !(bp.Min <= bp.Q1 && bp.Q1 <= bp.Median && bp.Median <= bp.Q3 && bp.Q3 <= bp.Max) {
			return false
		}
		iqr := bp.IQR()
		for _, o := range bp.Outliers {
			if o >= bp.Q1-1.5*iqr && o <= bp.Q3+1.5*iqr {
				return false // an "outlier" inside the fences
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
