package stats

import "sort"

// BoxPlot is the five-number summary plus outliers used by the paper's
// Figure 9 to display per-server CPU load. Outliers are points outside
// [q1 − 1.5·IQR, q3 + 1.5·IQR] (the paper states the equivalent
// [q1 − 3/2(q3−q1), q3 + 3/2(q3−q1)] interval).
type BoxPlot struct {
	Min      float64   // smallest non-outlier value (lower whisker)
	Q1       float64   // 25th percentile
	Median   float64   // 50th percentile
	Q3       float64   // 75th percentile
	Max      float64   // largest non-outlier value (upper whisker)
	Outliers []float64 // points beyond the whiskers, ascending
}

// NewBoxPlot summarizes the sample xs. It returns ErrEmpty for an empty
// sample.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	bp := BoxPlot{
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
	}
	iqr := bp.Q3 - bp.Q1
	loFence := bp.Q1 - 1.5*iqr
	hiFence := bp.Q3 + 1.5*iqr

	bp.Min = bp.Q1
	bp.Max = bp.Q3
	first := true
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			bp.Outliers = append(bp.Outliers, x)
			continue
		}
		if first {
			bp.Min = x
			first = false
		}
		bp.Max = x
	}
	if first {
		// Every point was an outlier (possible only for degenerate data);
		// fall back to the quartiles as whiskers.
		bp.Min, bp.Max = bp.Q1, bp.Q3
	}
	// Whiskers never sit inside the box: if all points on one side of the
	// box are outliers, the whisker is drawn at the box edge.
	if bp.Min > bp.Q1 {
		bp.Min = bp.Q1
	}
	if bp.Max < bp.Q3 {
		bp.Max = bp.Q3
	}
	return bp, nil
}

// IQR returns the interquartile range of the summary.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }
