// Package stats provides the descriptive statistics used throughout Kairos:
// percentiles, empirical CDFs, error metrics, and the box-plot summaries the
// paper uses to report per-server load balance (Figure 9).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the smallest element of xs. It panics on an empty slice; use
// MinMax for an error-returning variant.
func Min(xs []float64) float64 {
	mn, _, err := MinMax(xs)
	if err != nil {
		panic(err)
	}
	return mn
}

// Max returns the largest element of xs. It panics on an empty slice; use
// MinMax for an error-returning variant.
func Max(xs []float64) float64 {
	_, mx, err := MinMax(xs)
	if err != nil {
		panic(err)
	}
	return mx
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks, the same convention as numpy's
// default. It returns an error for an empty sample or p outside [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// percentileSorted computes a percentile over an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns several percentiles of xs in one pass over a single
// sorted copy. The result is parallel to ps.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of range [0,100]")
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// RMSE returns the root-mean-squared error between predicted and actual.
// The two slices must have equal, non-zero length.
func RMSE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, errors.New("stats: RMSE length mismatch")
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(predicted))), nil
}

// MAE returns the mean absolute error between predicted and actual.
func MAE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, errors.New("stats: MAE length mismatch")
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range predicted {
		sum += math.Abs(predicted[i] - actual[i])
	}
	return sum / float64(len(predicted)), nil
}

// MaxAbsError returns the largest absolute difference between predicted and
// actual.
func MaxAbsError(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, errors.New("stats: MaxAbsError length mismatch")
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	var mx float64
	for i := range predicted {
		if d := math.Abs(predicted[i] - actual[i]); d > mx {
			mx = d
		}
	}
	return mx, nil
}
