// Package core implements Kairos' consolidation engine (paper Sections 5
// and 6): the mixed-integer non-linear program that assigns database
// workloads to physical machines so that the number of machines is
// minimized and load is balanced, while no resource is over-committed at
// any point in time.
//
// The objective follows the paper: each used server contributes
// exp(normalized load), so any solution with k−1 servers beats any with k,
// and for a fixed k the most balanced solution wins. Constraints (CPU and
// RAM peaks, the non-linear disk model, replication anti-affinity, and
// pinning) enter as penalty terms, which is how the Tomlab DIRECT setup in
// the paper handles them (the "constraint violation penalty" spike of
// Figure 5).
//
// The solver pipeline is the paper's Section 6 optimization: a fractional
// single-resource lower bound and a greedy upper bound delimit a binary
// search on the server count K; each K is checked with a budgeted DIRECT
// run over a compact encoding plus deterministic hill-climb polish; the
// final K gets a longer polishing run.
package core

import (
	"fmt"
	"math"
	"time"

	"kairos/internal/floats"
	"kairos/internal/model"
	"kairos/internal/series"
)

// Workload is one database's resource profile, the engine's unit of
// placement. All series must share the same length and step.
type Workload struct {
	// Name identifies the workload.
	Name string
	// CPU is the utilization over time as a fraction of the target
	// machine's CPU capacity (the paper normalizes heterogeneous
	// measurements to a 12-core "standard" machine before solving).
	CPU *series.Series
	// RAMBytes is the gauged working-set memory requirement over time.
	RAMBytes *series.Series
	// WSBytes is the working set driving the disk model (usually equal to
	// RAMBytes minus process overhead).
	WSBytes *series.Series
	// UpdateRate is the row-modification rate over time (rows/sec).
	UpdateRate *series.Series
	// DiskWriteBps is the measured standalone disk write rate; only the
	// naive baseline estimator uses it.
	DiskWriteBps *series.Series
	// Replicas is the number of copies to place on distinct machines
	// (0 is treated as 1). Each replica consumes the full profile — the
	// paper's conservative assumption.
	Replicas int
	// PinTo pins the workload's first replica to a machine index; -1
	// leaves it free.
	PinTo int
	// ReplicaLoadScale optionally scales each replica's resource demand:
	// entry r applies to replica r. Missing entries default to 1 — the
	// paper's conservative assumption that a replica consumes as much as
	// the primary; measured replica loads go here when available.
	ReplicaLoadScale []float64
	// SLA optionally bounds the latency slowdown the workload tolerates
	// after consolidation (the paper's suggested future extension); it
	// caps the utilization of whichever machine hosts the workload.
	SLA *LatencySLA
}

// Machine is one consolidation target.
type Machine struct {
	// Name identifies the machine.
	Name string
	// CPUCapacity is in target-machine units: 1.0 means exactly one
	// standard target machine.
	//kairos:unit TargetCPU
	CPUCapacity float64
	// RAMBytes is the physical memory available to the DBMS.
	//kairos:unit Bytes
	RAMBytes float64
	// DiskWriteBps is the disk write budget (bytes/sec) the machine can
	// sustain, measured in the same terms the disk profile predicts.
	//kairos:unit Bps
	DiskWriteBps float64
	// Headroom is the fraction of every resource kept free as a safety
	// margin (the paper uses 5–10%).
	//kairos:unit Frac
	Headroom float64
}

// capacity returns the usable capacity of a resource after headroom.
func (m Machine) capacity(raw float64) float64 { return raw * (1 - m.Headroom) }

// Weights balances the per-resource terms inside the objective ("we can use
// any linear combination of the resources, to favor balancing one resource
// over the other").
type Weights struct {
	CPU, RAM, Disk float64
}

// DefaultWeights weighs all three resources equally.
func DefaultWeights() Weights { return Weights{CPU: 1, RAM: 1, Disk: 1} }

// Problem is a complete consolidation instance.
type Problem struct {
	// Workloads to place.
	Workloads []Workload
	// Machines available, in preference order: a K-server solution uses
	// Machines[0:K].
	Machines []Machine
	// Disk is the target hardware's empirical profile; nil disables the
	// non-linear disk constraint (CPU/RAM only).
	Disk *model.DiskProfile
	// Weights for the balance objective; zero value means DefaultWeights.
	Weights Weights
	// AntiAffinity lists workload-index pairs that must not share a
	// machine (beyond the automatic replica anti-affinity).
	AntiAffinity [][2]int
}

// unit is one placeable entity: a (workload, replica) pair.
type unit struct {
	w       int
	replica int
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	if len(p.Workloads) == 0 {
		return fmt.Errorf("core: no workloads")
	}
	if len(p.Machines) == 0 {
		return fmt.Errorf("core: no machines")
	}
	var step time.Duration
	var n int
	for i, w := range p.Workloads {
		if w.CPU == nil || w.RAMBytes == nil {
			return fmt.Errorf("core: workload %d (%s) missing CPU or RAM series", i, w.Name)
		}
		if i == 0 {
			step, n = w.CPU.Step, w.CPU.Len()
			if n == 0 {
				return fmt.Errorf("core: workload %d (%s) has empty series", i, w.Name)
			}
		}
		for _, s := range []*series.Series{w.CPU, w.RAMBytes, w.WSBytes, w.UpdateRate} {
			if s == nil {
				continue
			}
			if s.Len() != n || s.Step != step {
				return fmt.Errorf("core: workload %d (%s) series shape mismatch", i, w.Name)
			}
		}
		if p.Disk != nil && (w.WSBytes == nil || w.UpdateRate == nil) {
			return fmt.Errorf("core: workload %d (%s) needs WSBytes and UpdateRate for the disk model", i, w.Name)
		}
		if w.Replicas > len(p.Machines) {
			return fmt.Errorf("core: workload %d (%s) wants %d replicas but only %d machines exist",
				i, w.Name, w.Replicas, len(p.Machines))
		}
		if w.PinTo >= len(p.Machines) {
			return fmt.Errorf("core: workload %d (%s) pinned to machine %d of %d",
				i, w.Name, w.PinTo, len(p.Machines))
		}
		for r, scale := range w.ReplicaLoadScale {
			if scale <= 0 {
				return fmt.Errorf("core: workload %d (%s) replica %d has non-positive load scale %v",
					i, w.Name, r, scale)
			}
		}
		if w.SLA != nil && w.SLA.MaxSlowdown <= 1 {
			return fmt.Errorf("core: workload %d (%s) SLA slowdown must exceed 1, got %v",
				i, w.Name, w.SLA.MaxSlowdown)
		}
	}
	// Machine capacities divide the objective's load terms: a zero,
	// negative, NaN or infinite capacity would turn contributions into
	// +Inf/NaN and poison every solver comparison, so reject them here
	// with a clear error. Note `v <= 0` alone would let NaN through —
	// the checks are phrased so NaN fails too.
	for j, m := range p.Machines {
		if !(m.CPUCapacity > 0) || math.IsInf(m.CPUCapacity, 0) {
			return fmt.Errorf("core: machine %d (%s) CPU capacity %v must be positive and finite", j, m.Name, m.CPUCapacity)
		}
		if !(m.RAMBytes > 0) || math.IsInf(m.RAMBytes, 0) {
			return fmt.Errorf("core: machine %d (%s) RAM capacity %v must be positive and finite", j, m.Name, m.RAMBytes)
		}
		if !(m.Headroom >= 0) || m.Headroom >= 1 {
			return fmt.Errorf("core: machine %d (%s) headroom %v outside [0,1)", j, m.Name, m.Headroom)
		}
		if p.Disk != nil && (!(m.DiskWriteBps > 0) || math.IsInf(m.DiskWriteBps, 0)) {
			return fmt.Errorf("core: machine %d (%s) disk write budget %v must be positive and finite when a disk model is set", j, m.Name, m.DiskWriteBps)
		}
	}
	// The balance weights are averaged into the normalized load: negative,
	// NaN or infinite components (or a non-positive sum) would make the
	// objective NaN. All-zero weights are fine — they select the defaults.
	for _, wc := range []struct {
		name string
		v    float64
	}{{"CPU", p.Weights.CPU}, {"RAM", p.Weights.RAM}, {"Disk", p.Weights.Disk}} {
		if !(wc.v >= 0) || math.IsInf(wc.v, 0) {
			return fmt.Errorf("core: %s weight %v must be non-negative and finite", wc.name, wc.v)
		}
	}
	for _, pair := range p.AntiAffinity {
		for _, w := range pair {
			if w < 0 || w >= len(p.Workloads) {
				return fmt.Errorf("core: anti-affinity references workload %d of %d", w, len(p.Workloads))
			}
		}
	}
	return nil
}

// HomogeneousMachines reports whether every machine has identical
// capacities and headroom, which makes machine labels interchangeable —
// the property the sharded solver needs to relabel concurrent shard plans
// onto disjoint machine ranges.
func (p *Problem) HomogeneousMachines() bool {
	for _, m := range p.Machines[1:] {
		if !floats.Same(m.CPUCapacity, p.Machines[0].CPUCapacity) ||
			!floats.Same(m.RAMBytes, p.Machines[0].RAMBytes) ||
			!floats.Same(m.DiskWriteBps, p.Machines[0].DiskWriteBps) ||
			!floats.Same(m.Headroom, p.Machines[0].Headroom) {
			return false
		}
	}
	return true
}

// units expands workloads into placement units (one per replica).
func (p *Problem) units() []unit {
	var out []unit
	for w := range p.Workloads {
		r := p.Workloads[w].Replicas
		if r < 1 {
			r = 1
		}
		for k := 0; k < r; k++ {
			out = append(out, unit{w: w, replica: k})
		}
	}
	return out
}

// Solution is a consolidation plan.
type Solution struct {
	// Assign maps each unit to a machine index in [0, K).
	Assign []int
	// Units describes what each Assign slot places: Units[i] is
	// (workload index, replica number).
	Units []UnitRef
	// K is the number of machines used.
	K int
	// Feasible reports whether every constraint holds.
	Feasible bool
	// Objective is the final objective value (lower is better).
	Objective float64
	// Fevals counts objective evaluations across the whole solve.
	Fevals int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
	// Migrated counts units placed away from their incumbent machine. Only
	// Resolve sets it; cold solves have no incumbent and leave it 0.
	Migrated int
	// MigrationCost is the total migration penalty charged by the warm
	// re-solve's objective (0 when MigrationWeight is 0 or for cold solves).
	MigrationCost float64
}

// UnitRef names a placement unit.
type UnitRef struct {
	Workload int
	Replica  int
}

// ConsolidationRatio returns how many original servers each consolidated
// server replaces, assuming one workload per original server.
func (s *Solution) ConsolidationRatio(originalServers int) float64 {
	if s.K == 0 {
		return 0
	}
	return float64(originalServers) / float64(s.K)
}

// MachineWorkloads groups workload indices by assigned machine.
func (s *Solution) MachineWorkloads() [][]int {
	out := make([][]int, s.K)
	for u, j := range s.Assign {
		if j >= 0 && j < s.K {
			out[j] = append(out[j], s.Units[u].Workload)
		}
	}
	return out
}
