package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"kairos/internal/floats"
	"kairos/internal/series"
)

// driftProblem returns a copy of p with every workload's series scaled by a
// deterministic per-workload factor in [1-frac, 1+frac] — the week-over-week
// drift a rolling re-consolidation faces.
func driftProblem(p *Problem, frac float64, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	out := *p
	out.Workloads = make([]Workload, len(p.Workloads))
	for i, w := range p.Workloads {
		f := 1 + (rng.Float64()*2-1)*frac
		out.Workloads[i] = w
		out.Workloads[i].CPU = w.CPU.Scale(f).Clamp(0, 1)
		out.Workloads[i].RAMBytes = w.RAMBytes.Scale(f)
		if w.WSBytes != nil {
			out.Workloads[i].WSBytes = w.WSBytes.Scale(f)
		}
		if w.UpdateRate != nil {
			out.Workloads[i].UpdateRate = w.UpdateRate.Scale(f)
		}
	}
	return &out
}

// TestResolveWarmVsColdDrift is the headline acceptance test: on a mildly
// (≤5%) drifted fleet the warm-started re-solve must reach a plan at least
// as good as the cold local-search solve's — by construction, since the
// cold seeds enter as candidates — with measurably fewer objective
// evaluations than a full cold solve, while the default sticky
// configuration migrates only a bounded fraction of the units.
func TestResolveWarmVsColdDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	p := randomLoadStateProblem(rng, 24, 24, false)
	opt := DefaultSolveOptions()
	prev, err := Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !prev.Feasible {
		t.Fatal("baseline solve infeasible")
	}
	inc := IncumbentFromSolution(p, prev)

	drifted := driftProblem(p, 0.05, 42)
	cold, err := Solve(context.Background(), drifted, opt) // full cold solve: DIRECT + local search
	if err != nil {
		t.Fatal(err)
	}
	sdOpt := opt
	sdOpt.SkipDirect = true
	coldLocal, err := Solve(context.Background(), drifted, sdOpt) // like-for-like cold local search
	if err != nil {
		t.Fatal(err)
	}

	// Free warm re-solve (no migration pricing): must dominate the cold
	// local-search plan outright.
	freeOpt := DefaultResolveOptions()
	freeOpt.MigrationWeight = 0
	free, err := Resolve(context.Background(), drifted, inc, freeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !free.Feasible {
		t.Fatal("warm re-solve infeasible")
	}
	if free.K > coldLocal.K {
		t.Fatalf("warm K = %d, cold local K = %d — warm start lost machines", free.K, coldLocal.K)
	}
	if free.K == coldLocal.K && free.Objective > coldLocal.Objective+1e-9 {
		t.Errorf("warm objective %v worse than cold local search %v at equal K", free.Objective, coldLocal.Objective)
	}
	if free.Fevals*2 >= cold.Fevals {
		t.Errorf("warm re-solve used %d fevals, full cold solve %d — want less than half", free.Fevals, cold.Fevals)
	}
	if free.Fevals*4 >= coldLocal.Fevals*3 {
		t.Errorf("warm re-solve used %d fevals, cold local search %d — want measurably fewer", free.Fevals, coldLocal.Fevals)
	}

	// Sticky warm re-solve (default migration weight): near-cold quality at
	// a bounded migration fraction.
	sticky, err := Resolve(context.Background(), drifted, inc, DefaultResolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sticky.Feasible {
		t.Fatal("sticky warm re-solve infeasible")
	}
	nU := len(sticky.Assign)
	if sticky.Migrated*4 > nU {
		t.Errorf("sticky re-solve migrated %d of %d units — want at most a quarter under 5%% drift", sticky.Migrated, nU)
	}
	if sticky.K == coldLocal.K && sticky.Objective > coldLocal.Objective*1.005 {
		t.Errorf("sticky objective %v more than 0.5%% over cold local search %v", sticky.Objective, coldLocal.Objective)
	}
	t.Logf("cold: K=%d obj=%.6f fevals=%d; cold local: K=%d obj=%.6f fevals=%d",
		cold.K, cold.Objective, cold.Fevals, coldLocal.K, coldLocal.Objective, coldLocal.Fevals)
	t.Logf("warm free:   K=%d obj=%.6f fevals=%d migrated=%d/%d",
		free.K, free.Objective, free.Fevals, free.Migrated, nU)
	t.Logf("warm sticky: K=%d obj=%.6f fevals=%d migrated=%d/%d (cost %.4f)",
		sticky.K, sticky.Objective, sticky.Fevals, sticky.Migrated, nU, sticky.MigrationCost)
}

// TestIncumbentSaveLoadRoundTrip checks the plan file round-trips exactly
// and that a reloaded incumbent warm-seeds Resolve with the identical seed
// state the in-memory incumbent produces.
func TestIncumbentSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomLoadStateProblem(rng, 10, 12, false)
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)

	var buf bytes.Buffer
	if err := inc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIncumbent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc, loaded) {
		t.Fatalf("round trip mismatch:\n saved  %+v\n loaded %+v", inc, loaded)
	}

	ev1, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	seed1, home1 := ev1.warmSeed(p, inc, inc.K)
	seed2, home2 := ev2.warmSeed(p, loaded, loaded.K)
	if !reflect.DeepEqual(seed1, seed2) || !reflect.DeepEqual(home1, home2) {
		t.Fatal("reloaded incumbent produces a different warm seed")
	}
	// Zero drift: the incumbent is already a move+swap-stable plan, so the
	// re-solve must keep every unit at home.
	warm, err := Resolve(context.Background(), p, loaded, DefaultResolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Migrated != 0 {
		t.Errorf("no-drift re-solve migrated %d units, want 0", warm.Migrated)
	}
	if warm.K != sol.K {
		t.Errorf("no-drift re-solve K = %d, want incumbent %d", warm.K, sol.K)
	}
	if warm.Objective > sol.Objective+1e-9 {
		t.Errorf("no-drift re-solve objective %v worse than incumbent %v", warm.Objective, sol.Objective)
	}

	// Corrupt / empty plans are rejected.
	if _, err := LoadIncumbent(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := LoadIncumbent(bytes.NewBufferString(`{"k":0,"units":[]}`)); err == nil {
		t.Error("empty plan accepted")
	}
}

// TestResolveMatchesByName reorders the workload list between runs: the
// incumbent must still map every unit to its old machine by workload name,
// so nothing migrates under zero drift.
func TestResolveMatchesByName(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := randomLoadStateProblem(rng, 12, 12, false)
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)

	perm := *p
	perm.Workloads = make([]Workload, len(p.Workloads))
	order := rng.Perm(len(p.Workloads))
	for i, j := range order {
		perm.Workloads[i] = p.Workloads[j]
	}
	warm, err := Resolve(context.Background(), &perm, inc, DefaultResolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Migrated != 0 {
		t.Fatalf("reordered fleet migrated %d units, want 0 (name matching failed)", warm.Migrated)
	}
	// Every unit sits on the machine the incumbent recorded for its name.
	byName := map[string]map[int]int{}
	for _, iu := range inc.Units {
		if byName[iu.Workload] == nil {
			byName[iu.Workload] = map[int]int{}
		}
		byName[iu.Workload][iu.Replica] = iu.Machine
	}
	for i, j := range warm.Assign {
		ref := warm.Units[i]
		name := perm.Workloads[ref.Workload].Name
		if want, ok := byName[name][ref.Replica]; ok && want != j {
			t.Errorf("unit %s/r%d on machine %d, incumbent had %d", name, ref.Replica, j, want)
		}
	}
}

// TestResolveHonorsMigrationCap forces heavy drift and checks the climb
// never exceeds SolveOptions.MaxMigrations.
func TestResolveHonorsMigrationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randomLoadStateProblem(rng, 16, 16, false)
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)
	drifted := driftProblem(p, 0.25, 9)

	opt := DefaultResolveOptions()
	opt.MaxMigrations = 3
	warm, err := Resolve(context.Background(), drifted, inc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Migrated > 3 {
		t.Errorf("migrated %d units with MaxMigrations=3", warm.Migrated)
	}
}

// TestResolveHandlesFleetChanges removes one workload and adds two new ones
// between runs: matched units keep their incumbent homes, the new units are
// placed, and the plan stays feasible.
func TestResolveHandlesFleetChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := randomLoadStateProblem(rng, 14, 12, false)
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)

	next := *p
	next.Workloads = append([]Workload(nil), p.Workloads[1:]...) // drop w0
	start := time.Unix(0, 0)
	for _, name := range []string{"new0", "new1"} {
		next.Workloads = append(next.Workloads, Workload{
			Name:     name,
			CPU:      series.Constant(start, 5*time.Minute, 12, 0.15),
			RAMBytes: series.Constant(start, 5*time.Minute, 12, 2e9),
			PinTo:    -1,
		})
	}
	warm, err := Resolve(context.Background(), &next, inc, DefaultResolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Feasible {
		t.Fatal("re-solve with fleet changes infeasible")
	}
	for i, j := range warm.Assign {
		if j < 0 || j >= warm.K {
			t.Fatalf("unit %d assigned out of range: %d", i, j)
		}
	}
}

// TestResolveDeterministicAcrossWorkers pins the reproducibility contract:
// the warm path is sequential by construction, so any Workers value yields
// the bit-identical plan.
func TestResolveDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomLoadStateProblem(rng, 12, 12, false)
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)
	drifted := driftProblem(p, 0.08, 4)

	opt1 := DefaultResolveOptions()
	opt1.Workers = 1
	opt8 := DefaultResolveOptions()
	opt8.Workers = 8
	w1, err := Resolve(context.Background(), drifted, inc, opt1)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := Resolve(context.Background(), drifted, inc, opt8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1.Assign, w8.Assign) || w1.K != w8.K || !floats.Same(w1.Objective, w8.Objective) {
		t.Fatalf("plans differ across worker counts: K %d vs %d, obj %v vs %v",
			w1.K, w8.K, w1.Objective, w8.Objective)
	}
}

// TestResolveRejectsEmptyIncumbent covers the error path.
func TestResolveRejectsEmptyIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomLoadStateProblem(rng, 6, 8, false)
	if _, err := Resolve(context.Background(), p, nil, DefaultResolveOptions()); err == nil {
		t.Error("nil incumbent accepted")
	}
	if _, err := Resolve(context.Background(), p, &Incumbent{}, DefaultResolveOptions()); err == nil {
		t.Error("empty incumbent accepted")
	}
}

// TestHillClimbSwapEscapesLocalOptimum constructs the canonical trap for
// single-unit moves: two 0.55-CPU units share a machine while two 0.45-CPU
// units share the other. No single move helps (the receiving machine would
// exceed capacity by more), but swapping a 0.55 for a 0.45 balances both at
// exactly 1.0 — which the at-capacity boundary rule prices as feasible.
func TestHillClimbSwapEscapesLocalOptimum(t *testing.T) {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	T := 4
	mkw := func(name string, cpu float64) Workload {
		return Workload{
			Name:     name,
			CPU:      series.Constant(start, step, T, cpu),
			RAMBytes: series.Constant(start, step, T, 1e9),
			PinTo:    -1,
		}
	}
	p := &Problem{
		Workloads: []Workload{mkw("a", 0.55), mkw("b", 0.55), mkw("c", 0.45), mkw("d", 0.45)},
		Machines: []Machine{
			{Name: "m0", CPUCapacity: 1, RAMBytes: 64e9},
			{Name: "m1", CPUCapacity: 1, RAMBytes: 64e9},
		},
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	assign := []int{0, 0, 1, 1} // 1.10 vs 0.90: stuck for single moves
	got, _, feas := ev.hillClimbRounds(context.Background(), assign, 2, 100)
	if !feas {
		t.Fatalf("swap sweep failed to escape the local optimum: assignment %v", got)
	}
	if got[0] == got[1] {
		t.Errorf("heavy units still share machine %d in %v", got[0], got)
	}
}

// TestResolveMatchesMachinesByName reorders a *heterogeneous* machine list
// between runs: the incumbent records machine names, so every unit must be
// re-homed onto the same hardware (by name), not the same positional index
// — and nothing migrates under zero drift.
func TestResolveMatchesMachinesByName(t *testing.T) {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	T := 8
	mkw := func(name string, cpu float64) Workload {
		return Workload{
			Name:     name,
			CPU:      series.Constant(start, step, T, cpu),
			RAMBytes: series.Constant(start, step, T, 2e9),
			PinTo:    -1,
		}
	}
	big := Machine{Name: "big", CPUCapacity: 2, RAMBytes: 64e9}
	small := Machine{Name: "small", CPUCapacity: 1, RAMBytes: 32e9}
	p := &Problem{
		Workloads: []Workload{mkw("a", 0.9), mkw("b", 0.8), mkw("c", 0.4), mkw("d", 0.3)},
		Machines:  []Machine{big, small},
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Fatalf("baseline: K=%d feasible=%v, want 2 machines", sol.K, sol.Feasible)
	}
	inc := IncumbentFromSolution(p, sol)
	nameOf := func(prob *Problem, j int) string { return prob.Machines[j].Name }
	wantMachine := map[string]string{}
	for _, iu := range inc.Units {
		wantMachine[iu.Workload] = iu.MachineName
	}

	// Same fleet, machines listed in the opposite order.
	perm := *p
	perm.Machines = []Machine{small, big}
	warm, err := Resolve(context.Background(), &perm, inc, DefaultResolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Migrated != 0 {
		t.Errorf("reordered machine list migrated %d units, want 0 (machine-name matching failed)", warm.Migrated)
	}
	for i, j := range warm.Assign {
		name := perm.Workloads[warm.Units[i].Workload].Name
		if got, want := nameOf(&perm, j), wantMachine[name]; got != want {
			t.Errorf("unit %s on machine %q, incumbent had %q", name, got, want)
		}
	}
}

// TestResolvePinChangeNotCountedAsMigration pins a workload to a different
// machine than its incumbent: the forced move is not a churn decision, so
// it must neither count toward Solution.Migrated nor consume the
// MaxMigrations budget.
func TestResolvePinChangeNotCountedAsMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := randomLoadStateProblem(rng, 10, 12, false)
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)

	// Pin workload 0 (replica 0) to a machine other than its incumbent.
	var incMachine int
	for _, iu := range inc.Units {
		if iu.Workload == "w0" && iu.Replica == 0 {
			incMachine = iu.Machine
		}
	}
	next := *p
	next.Workloads = append([]Workload(nil), p.Workloads...)
	next.Workloads[0].PinTo = (incMachine + 1) % sol.K

	opt := DefaultResolveOptions()
	opt.MaxMigrations = 1
	warm, err := Resolve(context.Background(), &next, inc, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range warm.Assign {
		if warm.Units[i].Workload == 0 && warm.Units[i].Replica == 0 && j != next.Workloads[0].PinTo {
			t.Errorf("pinned unit on machine %d, want pin %d", j, next.Workloads[0].PinTo)
		}
	}
	if warm.Migrated > 1 {
		t.Errorf("Migrated = %d with MaxMigrations=1 and one forced pin change", warm.Migrated)
	}
	if warm.MigrationCost > 0 && warm.Migrated == 0 {
		t.Errorf("migration cost %v charged with no counted migrations", warm.MigrationCost)
	}
}

// TestPriceIncumbent: pricing the incumbent on the problem it was solved
// against reproduces the solution's objective exactly, pricing it on a
// drifted problem reports the (usually worse) stale-plan objective that a
// triggered re-solve must beat, and invalid incumbents error.
func TestPriceIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := randomLoadStateProblem(rng, 16, 24, false)
	opt := DefaultSolveOptions()
	opt.SkipDirect = true
	sol, err := Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	inc := IncumbentFromSolution(p, sol)

	obj, feas, K, err := PriceIncumbent(p, inc)
	if err != nil {
		t.Fatal(err)
	}
	if K != sol.K {
		t.Errorf("K = %d, want %d", K, sol.K)
	}
	if feas != sol.Feasible || !floats.Same(obj, sol.Objective) {
		t.Errorf("priced (%v, %v), want the solution's own (%v, %v)",
			obj, feas, sol.Objective, sol.Feasible)
	}

	// On a drifted fleet the stale plan prices worse than (or equal to) a
	// warm re-solve's combined outcome at the same K.
	drifted := driftProblem(p, 0.05, 7)
	staleObj, _, staleK, err := PriceIncumbent(drifted, inc)
	if err != nil {
		t.Fatal(err)
	}
	ropt := DefaultResolveOptions()
	ropt.MigrationWeight = 0
	warm, err := Resolve(context.Background(), drifted, inc, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.K == staleK && warm.Objective > staleObj+1e-9 {
		t.Errorf("re-solve objective %v worse than the stale plan's %v at K=%d",
			warm.Objective, staleObj, warm.K)
	}

	if _, _, _, err := PriceIncumbent(p, nil); err == nil {
		t.Error("nil incumbent accepted")
	}
	if _, _, _, err := PriceIncumbent(p, &Incumbent{K: 0}); err == nil {
		t.Error("empty incumbent accepted")
	}
	if _, _, _, err := PriceIncumbent(&Problem{}, inc); err == nil {
		t.Error("invalid problem accepted")
	}
}
