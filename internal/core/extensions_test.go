package core

import (
	"context"
	"math"
	"testing"
	"time"

	"kairos/internal/floats"
	"kairos/internal/series"
)

func TestLatencySLAMaxUtilization(t *testing.T) {
	cases := []struct {
		slowdown float64
		want     float64
	}{
		{2, 0.5},  // 2x slowdown tolerated → stay below 50%
		{4, 0.75}, // 4x → 75%
		{10, 0.9}, // 10x → 90%
		{1, 0},    // no slowdown tolerated → unusable cap
		{0.5, 0},  // nonsense input → 0
	}
	for _, tc := range cases {
		got := LatencySLA{MaxSlowdown: tc.slowdown}.MaxUtilization()
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MaxUtilization(%v) = %v, want %v", tc.slowdown, got, tc.want)
		}
	}
}

func TestSLAValidation(t *testing.T) {
	n := 12
	w := flatWL("a", 0.2, 1, n)
	w.SLA = &LatencySLA{MaxSlowdown: 1}
	p := &Problem{Workloads: []Workload{w}, Machines: machines(2, 1, 16)}
	if err := p.Validate(); err == nil {
		t.Error("SLA slowdown ≤ 1 accepted")
	}
}

func TestSLATightensPacking(t *testing.T) {
	// Without SLAs, two 0.45-CPU workloads share one machine (0.90 < 1).
	// With a 2x-slowdown SLA (≤50% utilization), they must split.
	n := 12
	mk := func(withSLA bool) *Problem {
		a, b := flatWL("a", 0.45, 1, n), flatWL("b", 0.45, 1, n)
		if withSLA {
			a.SLA = &LatencySLA{MaxSlowdown: 2}
		}
		return &Problem{Workloads: []Workload{a, b}, Machines: machines(3, 1, 64)}
	}
	sol, err := Solve(context.Background(), mk(false), DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.K != 1 {
		t.Errorf("without SLA: K = %d, want 1", sol.K)
	}
	sol, err = Solve(context.Background(), mk(true), DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Errorf("with 2x SLA: K = %d feasible=%v, want 2", sol.K, sol.Feasible)
	}
}

func TestSLAOnlyConstrainsItsMachine(t *testing.T) {
	// The SLA applies to the machine hosting the SLA'd workload; other
	// machines may still run hot.
	n := 12
	strict := flatWL("strict", 0.1, 1, n)
	strict.SLA = &LatencySLA{MaxSlowdown: 1.25} // ≤20% utilization
	hot := flatWL("hot", 0.8, 1, n)
	p := &Problem{Workloads: []Workload{strict, hot}, Machines: machines(3, 1, 64)}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Fatalf("K = %d feasible=%v, want 2 separate machines", sol.K, sol.Feasible)
	}
	if sol.Assign[0] == sol.Assign[1] {
		t.Error("SLA'd workload co-located with the hot one")
	}
}

func TestReplicaLoadScaleValidation(t *testing.T) {
	n := 12
	w := flatWL("a", 0.2, 1, n)
	w.Replicas = 2
	w.ReplicaLoadScale = []float64{1, 0}
	p := &Problem{Workloads: []Workload{w}, Machines: machines(2, 1, 16)}
	if err := p.Validate(); err == nil {
		t.Error("zero replica scale accepted")
	}
}

func TestReplicaLoadScaleApplied(t *testing.T) {
	// A replica at 10% load barely adds anything: primary 0.6 + another
	// workload 0.35 exceed one machine, but the scaled replica (0.06) plus
	// 0.35 fit together.
	n := 12
	db := flatWL("db", 0.6, 1, n)
	db.Replicas = 2
	db.ReplicaLoadScale = []float64{1, 0.1}
	other := flatWL("other", 0.35, 1, n)
	p := &Problem{Workloads: []Workload{db, other}, Machines: machines(3, 1, 64)}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Fatalf("K = %d feasible=%v, want 2 (scaled replica co-locates)", sol.K, sol.Feasible)
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	report := ev.Report(sol.Assign, sol.K)
	// One machine holds the primary (0.6); the other holds replica+other
	// (0.06 + 0.35 = 0.41).
	peaks := []float64{report[0].CPUPeak, report[1].CPUPeak}
	hi, lo := math.Max(peaks[0], peaks[1]), math.Min(peaks[0], peaks[1])
	if math.Abs(hi-0.6) > 1e-9 || math.Abs(lo-0.41) > 1e-9 {
		t.Errorf("peaks = %v, want {0.6, 0.41}", peaks)
	}
}

func TestSolvePartitionedMatchesWholeOnSeparableInput(t *testing.T) {
	// Groups of independent heavy workloads: partitioned solving finds the
	// same total K as whole-problem solving.
	n := 12
	var wls []Workload
	for i := 0; i < 12; i++ {
		wls = append(wls, flatWL(string(rune('a'+i)), 0.45, 1, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(12, 1, 64)}
	whole, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	part, err := SolvePartitioned(context.Background(), p, Grouping{GroupSize: 4, Options: DefaultSolveOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !part.Feasible {
		t.Fatal("partitioned solve infeasible")
	}
	if part.K != whole.K {
		t.Errorf("partitioned K = %d, whole K = %d (should match on separable input)", part.K, whole.K)
	}
	if len(part.Groups) != 3 {
		t.Errorf("groups = %d, want 3", len(part.Groups))
	}
	// Group bookkeeping covers every workload exactly once.
	seen := map[int]bool{}
	for _, idx := range part.GroupWorkloads {
		for _, w := range idx {
			if seen[w] {
				t.Fatalf("workload %d in two groups", w)
			}
			seen[w] = true
		}
	}
	if len(seen) != 12 {
		t.Errorf("covered %d workloads, want 12", len(seen))
	}
	if !floats.Same(part.ConsolidationRatio(12), 12/float64(part.K)) {
		t.Error("ratio helper wrong")
	}
}

func TestSolvePartitionedCanLoseOpportunities(t *testing.T) {
	// Anti-phase pairs split across groups cannot be co-located, so the
	// partitioned solution may use more machines — the documented tradeoff.
	n := 48
	var wls []Workload
	for i := 0; i < 4; i++ {
		phase := float64(i%2) * math.Pi
		wls = append(wls, sineWL(string(rune('a'+i)), 0.5, 0.3, phase, 1, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(6, 1.05, 64)}
	whole, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if whole.K != 2 {
		t.Fatalf("whole solve K = %d, want 2 (anti-phase pairs)", whole.K)
	}
	// Group size 2 with order (a,b),(c,d) keeps pairs together — still 2.
	// Deliberately group (a,c),(b,d) by reordering: same-phase pairs.
	reordered := []Workload{wls[0], wls[2], wls[1], wls[3]}
	p2 := &Problem{Workloads: reordered, Machines: machines(6, 1.05, 64)}
	part, err := SolvePartitioned(context.Background(), p2, Grouping{GroupSize: 2, Options: DefaultSolveOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if part.K <= whole.K {
		t.Errorf("partitioned K = %d, expected > %d (lost cross-group opportunity)", part.K, whole.K)
	}
}

func TestSolvePartitionedValidation(t *testing.T) {
	n := 12
	p := &Problem{Workloads: []Workload{flatWL("a", 0.2, 1, n)}, Machines: machines(2, 1, 16)}
	if _, err := SolvePartitioned(context.Background(), p, Grouping{GroupSize: 0}); err == nil {
		t.Error("zero group size accepted")
	}
	pinned := flatWL("p", 0.2, 1, n)
	pinned.PinTo = 1
	p2 := &Problem{Workloads: []Workload{pinned}, Machines: machines(2, 1, 16)}
	if _, err := SolvePartitioned(context.Background(), p2, Grouping{GroupSize: 1}); err == nil {
		t.Error("pinned workload accepted")
	}
	p3 := &Problem{
		Workloads:    []Workload{flatWL("a", 0.2, 1, n), flatWL("b", 0.2, 1, n)},
		Machines:     machines(2, 1, 16),
		AntiAffinity: [][2]int{{0, 1}},
	}
	if _, err := SolvePartitioned(context.Background(), p3, Grouping{GroupSize: 1}); err == nil {
		t.Error("anti-affinity accepted")
	}
}

func TestSolvePartitionedRunsOutOfMachines(t *testing.T) {
	n := 12
	var wls []Workload
	for i := 0; i < 4; i++ {
		wls = append(wls, flatWL(string(rune('a'+i)), 0.9, 1, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(2, 1, 16)}
	if _, err := SolvePartitioned(context.Background(), p, Grouping{GroupSize: 1, Options: DefaultSolveOptions()}); err == nil {
		t.Error("expected machine exhaustion error")
	}
}

func TestSolvePartitionedScalesLinearly(t *testing.T) {
	// Time per group is roughly constant, so doubling workloads roughly
	// doubles (not squares) the work. Just verify it completes fast on an
	// input size where whole-problem DIRECT would be slow.
	n := 24
	var wls []Workload
	for i := 0; i < 60; i++ {
		wls = append(wls, sineWL(string(rune('a'+i%26))+string(rune('0'+i/26)), 0.15, 0.1, float64(i), 1.5, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(60, 1, 64)}
	opts := DefaultSolveOptions()
	opts.DirectFevals = 200
	start := time.Now()
	part, err := SolvePartitioned(context.Background(), p, Grouping{GroupSize: 10, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !part.Feasible {
		t.Error("large partitioned solve infeasible")
	}
	if time.Since(start) > 30*time.Second {
		t.Errorf("partitioned solve too slow: %v", time.Since(start))
	}
	_ = series.Series{}
}
