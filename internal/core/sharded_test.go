package core_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"kairos/internal/core"
	"kairos/internal/fleet"
	"kairos/internal/floats"
	"kairos/internal/series"
)

// shortBudget shrinks a solve's DIRECT budget under -short so the
// race-enabled CI job stays fast; full runs keep the default budgets.
func shortBudget(opt core.SolveOptions) core.SolveOptions {
	if testing.Short() {
		opt.DirectFevals = 400
		opt.PolishFevals = 800
	}
	return opt
}

// fleetCase builds the consolidation problem for a generated dataset.
func fleetCase(d fleet.Dataset) *core.Problem {
	f := fleet.Generate(d)
	wls := f.Workloads(0.7)
	machines := make([]core.Machine, len(f.Servers))
	for i := range machines {
		machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), 50e6, 0.05)
	}
	return &core.Problem{Workloads: wls, Machines: machines}
}

func samePlan(t *testing.T, a, b *core.Solution, label string) {
	t.Helper()
	if a.K != b.K || a.Feasible != b.Feasible || !floats.Same(a.Objective, b.Objective) || a.Fevals != b.Fevals {
		t.Errorf("%s: (K=%d feas=%v obj=%v fevals=%d) vs (K=%d feas=%v obj=%v fevals=%d)",
			label, a.K, a.Feasible, a.Objective, a.Fevals, b.K, b.Feasible, b.Objective, b.Fevals)
	}
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Errorf("%s: Assign[%d] = %d vs %d", label, u, a.Assign[u], b.Assign[u])
			break
		}
	}
}

// The parallel solver (batched DIRECT evaluation + speculative K probing)
// must produce the exact plan of the sequential solver: parallelism only
// changes wall-clock time.
func TestParallelSolveMatchesSequential(t *testing.T) {
	p := fleetCase(fleet.Internal)
	seq, err := core.Solve(context.Background(), p, shortBudget(core.DefaultSolveOptions()))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		opt := shortBudget(core.DefaultSolveOptions())
		opt.Workers = workers
		par, err := core.Solve(context.Background(), p, opt)
		if err != nil {
			t.Fatal(err)
		}
		samePlan(t, seq, par, fmt.Sprintf("workers=%d", workers))
	}
}

// Same seed + same worker count ⇒ bit-identical plan, run to run.
func TestParallelSolveDeterministic(t *testing.T) {
	p := fleetCase(fleet.Wikia)
	opt := shortBudget(core.ParallelSolveOptions())
	r1, err := core.Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePlan(t, r1, r2, "repeat parallel solve")
}

// The sharded solver must stay feasible and land close to the single global
// solve on a real-sized fleet; the cross-shard merge pass is what claws
// back the machines independent shard solves waste.
func TestSolveShardedQuality(t *testing.T) {
	p := fleetCase(fleet.SecondLife)
	whole, err := core.Solve(context.Background(), p, shortBudget(core.DefaultSolveOptions()))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.ShardOptions{Shards: 4, Options: shortBudget(core.ParallelSolveOptions())}
	sharded, err := core.SolveSharded(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Feasible {
		t.Fatal("sharded plan infeasible")
	}
	if len(sharded.Assign) != len(whole.Assign) {
		t.Fatalf("sharded plan has %d units, want %d", len(sharded.Assign), len(whole.Assign))
	}
	// Allow modest quality loss from sharding, never more than 50% + 1.
	if limit := whole.K + whole.K/2 + 1; sharded.K > limit {
		t.Errorf("sharded K = %d, unsharded %d (limit %d)", sharded.K, whole.K, limit)
	}
	for u, j := range sharded.Assign {
		if j < 0 || j >= sharded.K {
			t.Fatalf("unit %d assigned to machine %d outside [0,%d)", u, j, sharded.K)
		}
	}
}

func TestSolveShardedDeterministic(t *testing.T) {
	p := fleetCase(fleet.Wikipedia)
	opt := core.ShardOptions{Shards: 3, Options: shortBudget(core.ParallelSolveOptions())}
	r1, err := core.SolveSharded(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.SolveSharded(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePlan(t, r1, r2, "repeat sharded solve")
}

// A single shard (or tiny input) degenerates to the plain solver.
func TestSolveShardedSingleShard(t *testing.T) {
	p := fleetCase(fleet.Internal)
	whole, err := core.Solve(context.Background(), p, shortBudget(core.DefaultSolveOptions()))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.SolveSharded(context.Background(), p, core.ShardOptions{Shards: 1, Options: shortBudget(core.SolveOptions{})})
	if err != nil {
		t.Fatal(err)
	}
	samePlan(t, whole, sharded, "single shard")
}

// Heterogeneous machine lists cannot be relabelled, so shards solve
// sequentially against the remaining machines — the result must still be
// feasible and cover every unit.
func TestSolveShardedHeterogeneousMachines(t *testing.T) {
	p := fleetCase(fleet.Wikia)
	for i := range p.Machines {
		if i%2 == 1 {
			p.Machines[i].CPUCapacity = 2
			p.Machines[i].RAMBytes *= 2
		}
	}
	sol, err := core.SolveSharded(context.Background(), p, core.ShardOptions{Shards: 3, Options: shortBudget(core.DefaultSolveOptions())})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Error("heterogeneous sharded plan infeasible")
	}
	if len(sol.Assign) != len(p.Workloads) {
		t.Errorf("plan covers %d units, want %d", len(sol.Assign), len(p.Workloads))
	}
}

func TestSolveShardedRejectsGlobalConstraints(t *testing.T) {
	p := fleetCase(fleet.Internal)
	p.AntiAffinity = [][2]int{{0, 1}}
	if _, err := core.SolveSharded(context.Background(), p, core.ShardOptions{Shards: 2}); err == nil {
		t.Error("explicit anti-affinity accepted")
	}
	p = fleetCase(fleet.Internal)
	p.Workloads[0].PinTo = 0
	if _, err := core.SolveSharded(context.Background(), p, core.ShardOptions{Shards: 2}); err == nil {
		t.Error("pinned workload accepted")
	}
}

// When per-shard solves collectively want more machines than the fleet has
// (each shard fragments its last machine), the merge's reduction pass must
// reclaim the slack instead of erroring: 9 workloads at 0.35 CPU fit two
// per machine (5 machines), but three independent 3-workload shards want
// two machines each (6 total).
func TestSolveShardedReclaimsOvershoot(t *testing.T) {
	start := time.Unix(0, 0)
	n := 12
	var wls []core.Workload
	for i := 0; i < 9; i++ {
		wls = append(wls, core.Workload{
			Name:     fmt.Sprintf("w%d", i),
			CPU:      series.Constant(start, 5*time.Minute, n, 0.35),
			RAMBytes: series.Constant(start, 5*time.Minute, n, 2e9),
			PinTo:    -1,
		})
	}
	machines := make([]core.Machine, 5)
	for i := range machines {
		machines[i] = core.Machine{Name: fmt.Sprintf("m%d", i), CPUCapacity: 1, RAMBytes: 32e9}
	}
	p := &core.Problem{Workloads: wls, Machines: machines}
	sol, err := core.SolveSharded(context.Background(), p, core.ShardOptions{Shards: 3, Options: core.ParallelSolveOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 5 {
		t.Errorf("overshoot merge: K=%d feasible=%v, want 5 feasible", sol.K, sol.Feasible)
	}
}

// Replicas of one workload must never share a machine, even across the
// sharded path's merge and reduction passes.
func TestSolveShardedKeepsReplicaAntiAffinity(t *testing.T) {
	start := time.Unix(0, 0)
	n := 12
	var wls []core.Workload
	for i := 0; i < 12; i++ {
		w := core.Workload{
			Name:     fmt.Sprintf("w%d", i),
			CPU:      series.Constant(start, 5*time.Minute, n, 0.05),
			RAMBytes: series.Constant(start, 5*time.Minute, n, 2e9),
			PinTo:    -1,
		}
		if i < 4 {
			w.Replicas = 2
		}
		wls = append(wls, w)
	}
	machines := make([]core.Machine, 8)
	for i := range machines {
		machines[i] = core.Machine{Name: fmt.Sprintf("m%d", i), CPUCapacity: 1, RAMBytes: 32e9}
	}
	p := &core.Problem{Workloads: wls, Machines: machines}
	sol, err := core.SolveSharded(context.Background(), p, core.ShardOptions{Shards: 3, Options: core.ParallelSolveOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("replicated sharded plan infeasible")
	}
	host := map[[2]int]int{}
	for u, j := range sol.Assign {
		ref := sol.Units[u]
		if ref.Replica == 0 {
			continue
		}
		host[[2]int{ref.Workload, ref.Replica}] = j
	}
	for u, j := range sol.Assign {
		ref := sol.Units[u]
		if ref.Replica != 0 {
			continue
		}
		for r := 1; ; r++ {
			other, ok := host[[2]int{ref.Workload, r}]
			if !ok {
				break
			}
			if other == j {
				t.Errorf("workload %d replicas share machine %d", ref.Workload, j)
			}
		}
	}
}
