package core

import (
	"math"
)

// This file implements the coarse-to-fine pricing subsystem: bucketed
// time-axis aggregates that give provably sound lower/upper bounds on a
// machine's peak loads — and therefore on its objective contribution — in
// O(T/B) instead of O(T). Local search screens every candidate move or
// swap against the coarse lower bound and only falls through to exact O(T)
// pricing when the bound cannot rule the candidate out, so accepted plans
// are bit-identical to the unscreened search (a pruned candidate is one
// whose priced delta provably could not have beaten the best so far).
//
// The same screen-cheap-then-pay-full-resolution discipline shows up in
// workload-compression work (Deep et al., "Comprehensive and Efficient
// Workload Compression") and in WiSeDB's cost-bound screening: the bucket
// tables are a lossy compression of the demand series that preserves
// exactly the signal the placement objective needs — where peaks can land.
//
// Soundness discipline (bit-level, not just mathematical):
//
//   - Per-unit tables store max/min over each bucket of fl(scale·demand[t])
//     — the very products the exact pricers form — so each table entry
//     dominates (or is dominated by) every per-step term it summarizes.
//   - Per-machine bucket aggregates are accumulated in member-list order,
//     exactly like the canonical sums. Floating-point addition is monotone,
//     so summing termwise-dominating values in the same order yields a
//     bound that dominates the exact aggregate at every step of the bucket,
//     bit for bit. They are re-materialized alongside the canonical sums,
//     never updated subtractively.
//   - Candidate bounds mirror the exact scratch fills' expression shapes
//     (fill, fillExchange), again op-by-op monotone.
//   - The only non-monotone ingredients — the fitted disk polynomial and
//     the saturation envelope — enter the lower bound only when their
//     monotonicity over the observed operating range is verified at
//     evaluator construction (their derivatives are affine for the
//     degree-2 fits the profiler produces, so corner checks suffice), and
//     are then guarded by small slack terms covering polynomial-evaluation
//     rounding. Otherwise they contribute a trivially sound zero to the
//     lower bound (violations are non-negative) and +Inf to the upper.
//   - Variable-length violation accumulations regroup terms relative to
//     the exact pricer, so the summed lower bound is deflated (and the
//     upper inflated) by coarseViolSlack, far above any regrouping error.

// defaultBucketDiv sets the default bucket width to ⌈T/16⌉ time steps, so
// a series is summarized by at most 16 (max, min) pairs per resource.
const defaultBucketDiv = 16

// coarseViolSlack covers floating-point regrouping between the exact
// pricer's single interleaved violation accumulation and the bound's
// component-wise one (relative error ≲ T·ε ≈ 1e-13 for day-length series).
const coarseViolSlack = 1e-12

// coarse holds the immutable bucketed demand tables of an evaluator. All
// per-unit arrays are flat with stride nb: unit u's bucket b lives at
// u·nb + b. hi entries are per-bucket maxima of fl(scale·demand), lo
// entries per-bucket minima.
type coarse struct {
	nb    int // number of buckets
	width int // bucket width in time steps (last bucket may be shorter)

	hiCPU, loCPU   []float64
	hiRAM, loRAM   []float64
	hiWS, loWS     []float64
	hiRate, loRate []float64

	// diskMono reports that PredictWriteMBps is verified non-decreasing in
	// both arguments over the observed operating box, enabling finite disk
	// bounds; envMono that the envelope is verified non-increasing in the
	// working set, enabling a non-zero envelope-violation lower bound.
	diskMono bool
	envMono  bool
	// diskSlack and envSlack are absolute rounding guards for evaluating
	// the respective polynomials anywhere in the operating box.
	diskSlack float64
	envSlack  float64
}

// bucketLen returns how many time steps bucket b covers.
func (co *coarse) bucketLen(b, T int) int {
	n := T - b*co.width
	if n > co.width {
		n = co.width
	}
	return n
}

// SetBucketWidth configures the coarse-pricing bucket width in time steps:
// 0 restores the default (⌈T/16⌉), a positive width is used as given
// (clamped to T), and a negative width disables coarse screening entirely,
// so local search prices every candidate exactly. Rebuilding the tables
// costs O(units·T). Call it before creating LoadStates or Clones from this
// evaluator; it is not safe to call concurrently with pricing.
func (ev *Evaluator) SetBucketWidth(width int) {
	if width < 0 {
		ev.coarse = nil
		return
	}
	w := width
	if w == 0 {
		w = (ev.T + defaultBucketDiv - 1) / defaultBucketDiv
	}
	if w < 1 {
		w = 1
	}
	if w > ev.T {
		w = ev.T
	}
	ev.coarse = buildCoarse(ev, w)
}

// BucketWidth returns the active coarse bucket width in time steps, or 0
// when screening is disabled.
func (ev *Evaluator) BucketWidth() int {
	if ev.coarse == nil {
		return 0
	}
	return ev.coarse.width
}

// buildCoarse computes the per-unit bucket tables and verifies disk-model
// monotonicity over the observed operating range.
func buildCoarse(ev *Evaluator, width int) *coarse {
	T := ev.T
	nU := len(ev.units)
	nb := (T + width - 1) / width
	co := &coarse{
		nb:     nb,
		width:  width,
		hiCPU:  make([]float64, nU*nb),
		loCPU:  make([]float64, nU*nb),
		hiRAM:  make([]float64, nU*nb),
		loRAM:  make([]float64, nU*nb),
		hiWS:   make([]float64, nU*nb),
		loWS:   make([]float64, nU*nb),
		hiRate: make([]float64, nU*nb),
		loRate: make([]float64, nU*nb),
	}
	fillOne := func(hi, lo []float64, vals []float64, k float64, uo int) {
		for b := 0; b < nb; b++ {
			start := b * width
			end := start + co.bucketLen(b, T)
			mx, mn := k*vals[start], k*vals[start]
			for t := start + 1; t < end; t++ {
				v := k * vals[t]
				if v > mx {
					mx = v
				}
				if v < mn {
					mn = v
				}
			}
			hi[uo+b], lo[uo+b] = mx, mn
		}
	}
	for u := 0; u < nU; u++ {
		k := ev.scale[u]
		uo := u * nb
		fillOne(co.hiCPU, co.loCPU, ev.cpu[u], k, uo)
		fillOne(co.hiRAM, co.loRAM, ev.ram[u], k, uo)
		fillOne(co.hiWS, co.loWS, ev.ws[u], k, uo)
		fillOne(co.hiRate, co.loRate, ev.rate[u], k, uo)
	}
	co.verifyDiskMonotone(ev)
	return co
}

// verifyDiskMonotone checks, over the operating box the fleet can actually
// reach, that the fitted disk polynomial is non-decreasing in both working
// set and rate, and that the envelope is non-increasing in working set.
// Both fits are degree ≤ 2, so their partial derivatives are affine and
// corner evaluation is exact verification; anything of higher degree is
// conservatively treated as non-monotone. The absolute slack terms bound
// the rounding of any polynomial evaluation inside the box.
func (co *coarse) verifyDiskMonotone(ev *Evaluator) {
	d := ev.p.Disk
	if d == nil {
		return
	}
	// Aggregate operating ranges: a machine's working set / rate can never
	// exceed the sum of every unit's bucket maxima, padded for accumulation
	// rounding. Any negative demand disables the disk bounds outright: the
	// bound paths clamp their bucket aggregates into [0, Σmax] before
	// evaluating the polynomials (the subtractive remove/exchange
	// aggregates dip below zero whenever a demand varies inside a bucket,
	// and the fits are only verified over this box — evaluated far outside
	// it a quadratic term can explode and break the bound), and that clamp
	// is only sound when every unit's scaled demand is non-negative.
	var wsHiA, rateHiA float64
	for u := range ev.units {
		uo := u * co.nb
		uMaxWS, uMinWS := co.hiWS[uo], co.loWS[uo]
		uMaxR, uMinR := co.hiRate[uo], co.loRate[uo]
		for b := 1; b < co.nb; b++ {
			uMaxWS = math.Max(uMaxWS, co.hiWS[uo+b])
			uMinWS = math.Min(uMinWS, co.loWS[uo+b])
			uMaxR = math.Max(uMaxR, co.hiRate[uo+b])
			uMinR = math.Min(uMinR, co.loRate[uo+b])
		}
		if uMinWS < 0 || uMinR < 0 {
			return // negative demand: zero-lower/Inf-upper fallback only
		}
		wsHiA += uMaxWS
		rateHiA += uMaxR
	}
	pad := func(v float64) float64 { return v + 0.001*math.Abs(v) + 1 }
	wsHiA, rateHiA = pad(wsHiA), pad(rateHiA)
	// The box floor sits just below zero, so the clamped-at-0 bound
	// aggregates — and the sub-ulp-negative exact aggregates the slack
	// terms absorb — are interior to the verified range.
	wsLoA, rateLoA := -1.0, -1.0

	// The polynomial sees working sets in MB, clamped into the fitted range
	// (clamping is monotone, so it preserves — never creates — monotonicity).
	xLo, xHi := wsLoA/1e6, wsHiA/1e6
	if d.WSMaxMB > d.WSMinMB {
		xLo, xHi = d.WSMinMB, d.WSMaxMB
	}
	yLo, yHi := rateLoA, rateHiA

	c := fitCoeffs(d.Fit.Coeffs, d.Fit.Degree)
	if c != nil {
		// ∂f/∂x = c1 + 2·c3·x + c4·y and ∂f/∂y = c2 + c4·x + 2·c5·y are
		// affine, so non-negativity at the four corners proves it on the box.
		dx := func(x, y float64) float64 { return c[1] + 2*c[3]*x + c[4]*y }
		dy := func(x, y float64) float64 { return c[2] + c[4]*x + 2*c[5]*y }
		co.diskMono = true
		for _, x := range [2]float64{xLo, xHi} {
			for _, y := range [2]float64{yLo, yHi} {
				if !(dx(x, y) >= 0) || !(dy(x, y) >= 0) {
					co.diskMono = false
				}
			}
		}
		if co.diskMono {
			co.diskSlack = polyAbsSlack2D(c, xLo, xHi, yLo, yHi)
		}
	}
	if d.HasEnvelope {
		e := d.Envelope.Coeffs
		if len(e) <= 3 {
			var e3 [3]float64
			copy(e3[:], e)
			// env' = e1 + 2·e2·x is affine: non-positive at both ends proves
			// the envelope non-increasing over the clamped range.
			if e3[1]+2*e3[2]*xLo <= 0 && e3[1]+2*e3[2]*xHi <= 0 {
				co.envMono = true
				xa := math.Max(math.Abs(xLo), math.Abs(xHi))
				co.envSlack = 1e-12 * (math.Abs(e3[0]) + math.Abs(e3[1])*xa + math.Abs(e3[2])*xa*xa)
			}
		}
	}
}

// fitCoeffs returns the six degree-2 coefficients (1, x, y, x², xy, y²) of
// a Poly2D, or nil when the fit's degree exceeds 2 (monotonicity is then
// not verifiable by corner checks).
func fitCoeffs(coeffs []float64, degree int) *[6]float64 {
	if degree > 2 || len(coeffs) > 6 {
		return nil
	}
	var c [6]float64
	copy(c[:], coeffs)
	return &c
}

// polyAbsSlack2D bounds the absolute rounding error of evaluating the
// degree-2 polynomial anywhere in the box, with two orders of magnitude of
// margin: 1e-12 · Σ|cᵢ|·|termᵢ|max versus the ≈ 10·ε ≈ 2e-15 a six-term
// Horner-free evaluation can actually accumulate.
func polyAbsSlack2D(c *[6]float64, xLo, xHi, yLo, yHi float64) float64 {
	xa := math.Max(math.Abs(xLo), math.Abs(xHi))
	ya := math.Max(math.Abs(yLo), math.Abs(yHi))
	m := math.Abs(c[0]) + math.Abs(c[1])*xa + math.Abs(c[2])*ya +
		math.Abs(c[3])*xa*xa + math.Abs(c[4])*xa*ya + math.Abs(c[5])*ya*ya
	return 1e-12 * m
}

// boundSums is the coarse counterpart of evalSums: it prices one side
// (lower or upper) of machine j's contribution from bucketed aggregate
// vectors. cpuPeak and ramPeak are the bucket-maximized peak bounds; wsB
// and rateB hold the per-bucket aggregate bounds for the disk terms (nil
// when the problem has no disk model). The violation accumulation mirrors
// evalSums' term order, then deflates (lower) or inflates (upper) by
// coarseViolSlack so regrouping rounding can never flip the domination.
// Zero allocations.
//
//kairos:hotpath
func (ev *Evaluator) boundSums(j int, cpuPeak, ramPeak float64, wsB, rateB []float64, slaCap float64, upper bool) (viol, norm float64) {
	co := ev.coarse
	cpuCap := ev.capCPU[j]
	ramCap := ev.capRAM[j]
	if cpuPeak > cpuCap {
		viol += (cpuPeak - cpuCap) / cpuCap
	}
	if ramPeak > ramCap {
		viol += (ramPeak - ramCap) / ramCap
	}

	var diskNorm float64
	if ev.p.Disk != nil {
		diskCap := ev.capDisk[j]
		var diskPeak float64
		T := float64(ev.T)
		switch {
		case upper && !co.diskMono:
			diskPeak = math.Inf(1)
		case upper:
			for b, ws := range wsB {
				if pred := ev.p.Disk.PredictWriteMBps(ws, rateB[b]); pred > diskPeak {
					diskPeak = pred
				}
			}
			diskPeak = (diskPeak + co.diskSlack) * 1e6
		case co.diskMono:
			for b, ws := range wsB {
				if pred := ev.p.Disk.PredictWriteMBps(ws, rateB[b]); pred > diskPeak {
					diskPeak = pred
				}
			}
			diskPeak = (diskPeak - co.diskSlack) * 1e6
			if diskPeak < 0 {
				diskPeak = 0
			}
		}
		if ev.p.Disk.HasEnvelope {
			// Envelope violations accumulate per bucket. Lower side: only
			// when the envelope is verified non-increasing can "every step
			// of the bucket violates" be certified, using the inflated
			// envelope at the bucket's working-set lower bound. Upper side:
			// the envelope at the bucket's working-set upper bound (deflated)
			// under-states every step's sustainable rate when monotone;
			// otherwise a zero envelope (its hard floor) does.
			for b, ws := range wsB {
				rate := rateB[b]
				var env float64
				switch {
				case !upper && co.envMono:
					env = ev.p.Disk.MaxRowsPerSec(ws) + co.envSlack
				case !upper:
					continue // zero lower bound for the envelope term
				case co.envMono:
					env = ev.p.Disk.MaxRowsPerSec(ws) - co.envSlack
					if env < 0 {
						env = 0
					}
				default:
					env = 0
				}
				if rate > env {
					den := env
					if den < envRateFloor {
						den = envRateFloor
					}
					viol += float64(co.bucketLen(b, ev.T)) * (rate - env) / den / T
				}
			}
		}
		if diskPeak > diskCap {
			viol += (diskPeak - diskCap) / diskCap
		}
		diskNorm = diskPeak / diskCap
	}

	if slaCap < 1 {
		util := cpuPeak / cpuCap
		if r := ramPeak / ramCap; r > util {
			util = r
		}
		if diskNorm > util {
			util = diskNorm
		}
		if util > slaCap {
			viol += (util - slaCap) / slaCap
		}
	}

	if upper {
		viol *= 1 + coarseViolSlack
	} else {
		viol *= 1 - coarseViolSlack
	}

	w := ev.weights
	denom := w.CPU + w.RAM + w.Disk
	dterm := w.Disk * diskNorm
	if math.IsNaN(dterm) {
		// 0 · Inf from the unbounded upper disk peak under a zero disk
		// weight; the exact term is exactly 0 there.
		dterm = 0
	}
	norm = (w.CPU*cpuPeak/cpuCap + w.RAM*ramPeak/ramCap + dterm) / denom
	if norm > 1 {
		norm = 1
	}
	if norm < 0 {
		norm = 0
	}
	return viol, norm
}

// rematBuckets rebuilds machine j's bucketed aggregate bounds from its
// member list, accumulating in member-list order exactly like the
// canonical sums — the property that keeps every bucket aggregate a
// bit-level bound on the canonical aggregate at every step it covers.
// Called from rematerialize, so the bounds stay in lockstep with the sums.
//
//kairos:hotpath
func (ls *LoadState) rematBuckets(j int) {
	co := ls.co
	nb := co.nb
	jo := j * nb
	for b := 0; b < nb; b++ {
		ls.bHiCPU[jo+b], ls.bLoCPU[jo+b] = 0, 0
		ls.bHiRAM[jo+b], ls.bLoRAM[jo+b] = 0, 0
		ls.bHiWS[jo+b], ls.bLoWS[jo+b] = 0, 0
		ls.bHiRate[jo+b], ls.bLoRate[jo+b] = 0, 0
	}
	for _, u := range ls.members[j] {
		uo := u * nb
		for b := 0; b < nb; b++ {
			ls.bHiCPU[jo+b] += co.hiCPU[uo+b]
			ls.bLoCPU[jo+b] += co.loCPU[uo+b]
			ls.bHiRAM[jo+b] += co.hiRAM[uo+b]
			ls.bLoRAM[jo+b] += co.loRAM[uo+b]
			ls.bHiWS[jo+b] += co.hiWS[uo+b]
			ls.bLoWS[jo+b] += co.loWS[uo+b]
			ls.bHiRate[jo+b] += co.hiRate[uo+b]
			ls.bLoRate[jo+b] += co.loRate[uo+b]
		}
	}
}

// Screened reports whether the coarse screen is active for this state
// (the evaluator had coarse tables when the state was built).
func (ls *LoadState) Screened() bool { return ls.co != nil }

// boundAddSide computes one side of the coarse bound on machine j's
// violation and normalized load as if unit u were appended, mirroring
// fill's expression shape bucket-wise. Zero allocations.
//
//kairos:hotpath
func (ls *LoadState) boundAddSide(u, j int, upper bool) (viol, norm float64) {
	co, ev := ls.co, ls.ev
	nb := co.nb
	uo, jo := u*nb, j*nb
	var cpuPeak, ramPeak float64
	var wsB, rateB []float64
	if upper {
		for b := 0; b < nb; b++ {
			if v := ls.bHiCPU[jo+b] + co.hiCPU[uo+b]; v > cpuPeak {
				cpuPeak = v
			}
			if v := ls.bHiRAM[jo+b] + co.hiRAM[uo+b]; v > ramPeak {
				ramPeak = v
			}
		}
	} else {
		for b := 0; b < nb; b++ {
			if v := ls.bLoCPU[jo+b] + co.loCPU[uo+b]; v > cpuPeak {
				cpuPeak = v
			}
			if v := ls.bLoRAM[jo+b] + co.loRAM[uo+b]; v > ramPeak {
				ramPeak = v
			}
		}
		// Point refinement: the candidate aggregate evaluated exactly at
		// the machine's current peak steps — the same expression fill
		// computes there — is a value the true maximum can only exceed.
		// On spiky traces it is far tighter than the bucket minima.
		k := ev.scale[u]
		cj, rj := ls.cpu[j], ls.ram[j]
		cu, ru := ev.cpu[u], ev.ram[u]
		if t := ls.argCPU[j]; cj[t]+k*cu[t] > cpuPeak {
			cpuPeak = cj[t] + k*cu[t]
		}
		if t := ls.argRAM[j]; rj[t]+k*ru[t] > ramPeak {
			ramPeak = rj[t] + k*ru[t]
		}
	}
	if ev.p.Disk != nil {
		wsB, rateB = ls.sbWS, ls.sbRate
		if upper {
			for b := 0; b < nb; b++ {
				wsB[b] = ls.bHiWS[jo+b] + co.hiWS[uo+b]
				rateB[b] = ls.bHiRate[jo+b] + co.hiRate[uo+b]
			}
		} else {
			for b := 0; b < nb; b++ {
				wsB[b] = ls.bLoWS[jo+b] + co.loWS[uo+b]
				rateB[b] = ls.bLoRate[jo+b] + co.loRate[uo+b]
			}
		}
	}
	cap := ls.slaCap[j]
	if c := ev.slaCapU[u]; c < cap {
		cap = c
	}
	return ev.boundSums(j, cpuPeak, ramPeak, wsB, rateB, cap, upper)
}

// boundRemoveSide mirrors PriceRemove's subtractive fill: one side of the
// coarse bound on unit u's machine as if u left it.
//
//kairos:hotpath
func (ls *LoadState) boundRemoveSide(u int, upper bool) (viol, norm float64) {
	co, ev := ls.co, ls.ev
	from := ls.assign[u]
	nb := co.nb
	uo, jo := u*nb, from*nb
	var cpuPeak, ramPeak float64
	var wsB, rateB []float64
	if upper {
		for b := 0; b < nb; b++ {
			if v := ls.bHiCPU[jo+b] - co.loCPU[uo+b]; v > cpuPeak {
				cpuPeak = v
			}
			if v := ls.bHiRAM[jo+b] - co.loRAM[uo+b]; v > ramPeak {
				ramPeak = v
			}
		}
	} else {
		for b := 0; b < nb; b++ {
			if v := ls.bLoCPU[jo+b] - co.hiCPU[uo+b]; v > cpuPeak {
				cpuPeak = v
			}
			if v := ls.bLoRAM[jo+b] - co.hiRAM[uo+b]; v > ramPeak {
				ramPeak = v
			}
		}
		// Point refinement at the current peak steps, mirroring
		// PriceRemove's subtractive fill expression there.
		k := ev.scale[u]
		cj, rj := ls.cpu[from], ls.ram[from]
		cu, ru := ev.cpu[u], ev.ram[u]
		if t := ls.argCPU[from]; cj[t]-k*cu[t] > cpuPeak {
			cpuPeak = cj[t] - k*cu[t]
		}
		if t := ls.argRAM[from]; rj[t]-k*ru[t] > ramPeak {
			ramPeak = rj[t] - k*ru[t]
		}
	}
	if ev.p.Disk != nil {
		wsB, rateB = ls.sbWS, ls.sbRate
		if upper {
			for b := 0; b < nb; b++ {
				wsB[b] = ls.bHiWS[jo+b] - co.loWS[uo+b]
				rateB[b] = ls.bHiRate[jo+b] - co.loRate[uo+b]
			}
		} else {
			// Subtractive lower aggregates dip below zero when a demand
			// varies inside a bucket; clamp into the verified operating
			// box (sound: the exact aggregates are non-negative whenever
			// the disk bounds are enabled, see verifyDiskMonotone).
			for b := 0; b < nb; b++ {
				if wsB[b] = ls.bLoWS[jo+b] - co.hiWS[uo+b]; wsB[b] < 0 {
					wsB[b] = 0
				}
				if rateB[b] = ls.bLoRate[jo+b] - co.hiRate[uo+b]; rateB[b] < 0 {
					rateB[b] = 0
				}
			}
		}
	}
	cap := 1.0
	for _, m := range ls.members[from] {
		if m == u {
			continue
		}
		if c := ev.slaCapU[m]; c < cap {
			cap = c
		}
	}
	return ev.boundSums(from, cpuPeak, ramPeak, wsB, rateB, cap, upper)
}

// boundExchangeSide mirrors fillExchange's expression shape: one side of
// the coarse bound on machine j's state after its member `out` leaves and
// unit `in` arrives.
//
//kairos:hotpath
func (ls *LoadState) boundExchangeSide(j, out, in int, upper bool) (viol, norm float64) {
	co, ev := ls.co, ls.ev
	nb := co.nb
	oo, io, jo := out*nb, in*nb, j*nb
	var cpuPeak, ramPeak float64
	var wsB, rateB []float64
	if upper {
		for b := 0; b < nb; b++ {
			if v := ls.bHiCPU[jo+b] - co.loCPU[oo+b] + co.hiCPU[io+b]; v > cpuPeak {
				cpuPeak = v
			}
			if v := ls.bHiRAM[jo+b] - co.loRAM[oo+b] + co.hiRAM[io+b]; v > ramPeak {
				ramPeak = v
			}
		}
	} else {
		for b := 0; b < nb; b++ {
			if v := ls.bLoCPU[jo+b] - co.hiCPU[oo+b] + co.loCPU[io+b]; v > cpuPeak {
				cpuPeak = v
			}
			if v := ls.bLoRAM[jo+b] - co.hiRAM[oo+b] + co.loRAM[io+b]; v > ramPeak {
				ramPeak = v
			}
		}
		// Point refinement at the current peak steps, mirroring
		// fillExchange's expression there.
		ko, ki := ev.scale[out], ev.scale[in]
		cj, rj := ls.cpu[j], ls.ram[j]
		cuo, ruo := ev.cpu[out], ev.ram[out]
		cui, rui := ev.cpu[in], ev.ram[in]
		if t := ls.argCPU[j]; cj[t]-ko*cuo[t]+ki*cui[t] > cpuPeak {
			cpuPeak = cj[t] - ko*cuo[t] + ki*cui[t]
		}
		if t := ls.argRAM[j]; rj[t]-ko*ruo[t]+ki*rui[t] > ramPeak {
			ramPeak = rj[t] - ko*ruo[t] + ki*rui[t]
		}
	}
	if ev.p.Disk != nil {
		wsB, rateB = ls.sbWS, ls.sbRate
		if upper {
			for b := 0; b < nb; b++ {
				wsB[b] = ls.bHiWS[jo+b] - co.loWS[oo+b] + co.hiWS[io+b]
				rateB[b] = ls.bHiRate[jo+b] - co.loRate[oo+b] + co.hiRate[io+b]
			}
		} else {
			// Clamped like boundRemoveSide: the subtractive aggregates
			// must stay inside the polynomials' verified operating box.
			for b := 0; b < nb; b++ {
				if wsB[b] = ls.bLoWS[jo+b] - co.hiWS[oo+b] + co.loWS[io+b]; wsB[b] < 0 {
					wsB[b] = 0
				}
				if rateB[b] = ls.bLoRate[jo+b] - co.hiRate[oo+b] + co.loRate[io+b]; rateB[b] < 0 {
					rateB[b] = 0
				}
			}
		}
	}
	cap := 1.0
	for _, m := range ls.members[j] {
		if m == out {
			continue
		}
		if c := ev.slaCapU[m]; c < cap {
			cap = c
		}
	}
	if c := ev.slaCapU[in]; c < cap {
		cap = c
	}
	return ev.boundSums(j, cpuPeak, ramPeak, wsB, rateB, cap, upper)
}

// ScreenAdd returns the coarse lower bound on PriceAdd(u, j) — the move
// screen of the coarse-to-fine sweep, O(T/B) and zero allocations. When
// screening is disabled it returns -Inf (never prunes). Bit-level sound:
// ScreenAdd(u, j) ≤ PriceAdd(u, j) always.
//
//kairos:hotpath
func (ls *LoadState) ScreenAdd(u, j int) float64 {
	if ls.co == nil {
		return math.Inf(-1)
	}
	if ls.assign[u] == j {
		return ls.contrib[j]
	}
	viol, norm := ls.boundAddSide(u, j, false)
	return contribWith(norm, viol, ls.confPairs[j]+ls.conflictsOn(u, j))
}

// ScreenSwap returns the coarse lower bounds on both sides of
// PriceSwap(u, v): what u's and v's machines would at least contribute
// after the 2-exchange. O(T/B), zero allocations, -Inf when screening is
// disabled.
//
//kairos:hotpath
func (ls *LoadState) ScreenSwap(u, v int) (loU, loV float64) {
	if ls.co == nil {
		return math.Inf(-1), math.Inf(-1)
	}
	a, b := ls.assign[u], ls.assign[v]
	if a == b {
		panic("core: LoadState.ScreenSwap units share a machine")
	}
	loU = ls.screenExchange(a, u, v)
	loV = ls.screenExchange(b, v, u)
	return loU, loV
}

// screenExchange is the lower-bound half of boundExchangeSide with the
// exact pair bookkeeping priceExchange applies.
//
//kairos:hotpath
func (ls *LoadState) screenExchange(j, out, in int) float64 {
	viol, norm := ls.boundExchangeSide(j, out, in, false)
	pairs := ls.confPairs[j] - ls.conflictsOn(out, j) + ls.conflictsOnExcluding(in, j, out)
	return contribWith(norm, viol, pairs)
}

// screenAddViol returns the coarse lower bound on the violation machine j
// would carry after accepting unit u (0 when screening is off): a positive
// value proves the placement infeasible without exact pricing.
//
//kairos:hotpath
func (ls *LoadState) screenAddViol(u, j int) float64 {
	if ls.co == nil {
		return 0
	}
	viol, _ := ls.boundAddSide(u, j, false)
	return viol
}

// BoundAdd returns coarse lower and upper bounds on PriceAdd(u, j) in
// O(T/B) with zero allocations: BoundAdd.lo ≤ PriceAdd ≤ BoundAdd.hi,
// bit for bit on the exact side. With screening disabled it returns
// (-Inf, +Inf); when u already lives on j both bounds equal the current
// contribution, matching PriceAdd.
//
//kairos:hotpath
func (ls *LoadState) BoundAdd(u, j int) (lo, hi float64) {
	if ls.co == nil {
		return math.Inf(-1), math.Inf(1)
	}
	if ls.assign[u] == j {
		return ls.contrib[j], ls.contrib[j]
	}
	pairs := ls.confPairs[j] + ls.conflictsOn(u, j)
	loViol, loNorm := ls.boundAddSide(u, j, false)
	hiViol, hiNorm := ls.boundAddSide(u, j, true)
	return contribWith(loNorm, loViol, pairs), contribWith(hiNorm, hiViol, pairs)
}

// BoundRemove returns coarse lower and upper bounds on PriceRemove(u),
// O(T/B), zero allocations. Like PriceRemove it reports (0, 0) when u is
// its machine's last member.
//
//kairos:hotpath
func (ls *LoadState) BoundRemove(u int) (lo, hi float64) {
	if ls.co == nil {
		return math.Inf(-1), math.Inf(1)
	}
	from := ls.assign[u]
	if len(ls.members[from]) == 1 {
		return 0, 0
	}
	pairs := ls.confPairs[from] - ls.conflictsOn(u, from)
	loViol, loNorm := ls.boundRemoveSide(u, false)
	hiViol, hiNorm := ls.boundRemoveSide(u, true)
	return contribWith(loNorm, loViol, pairs), contribWith(hiNorm, hiViol, pairs)
}

// BoundSwap returns coarse lower and upper bounds on both results of
// PriceSwap(u, v). Like PriceSwap it panics when the units share a
// machine. O(T/B), zero allocations.
//
//kairos:hotpath
func (ls *LoadState) BoundSwap(u, v int) (loU, hiU, loV, hiV float64) {
	if ls.co == nil {
		return math.Inf(-1), math.Inf(1), math.Inf(-1), math.Inf(1)
	}
	a, b := ls.assign[u], ls.assign[v]
	if a == b {
		panic("core: LoadState.BoundSwap units share a machine")
	}
	pairsU := ls.confPairs[a] - ls.conflictsOn(u, a) + ls.conflictsOnExcluding(v, a, u)
	loViolU, loNormU := ls.boundExchangeSide(a, u, v, false)
	hiViolU, hiNormU := ls.boundExchangeSide(a, u, v, true)
	pairsV := ls.confPairs[b] - ls.conflictsOn(v, b) + ls.conflictsOnExcluding(u, b, v)
	loViolV, loNormV := ls.boundExchangeSide(b, v, u, false)
	hiViolV, hiNormV := ls.boundExchangeSide(b, v, u, true)
	return contribWith(loNormU, loViolU, pairsU), contribWith(hiNormU, hiViolU, pairsU),
		contribWith(loNormV, loViolV, pairsV), contribWith(hiNormV, hiViolV, pairsV)
}
