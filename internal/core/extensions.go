package core

import (
	"context"
	"fmt"
	"time"
)

// This file implements the extensions the paper sketches but does not
// evaluate:
//
//   - latency-oriented SLAs ("Extending the system to support latency-based
//     SLAs would make an interesting future extension of our work",
//     Section 1): a per-workload cap on the utilization of whichever
//     machine hosts it, derived from an M/G/1-style queueing bound;
//   - per-replica load scaling ("if the input workloads are already
//     replicated, we can use the actual load of the replicas", Section 5);
//   - pre-grouped solving for very large inventories ("a possible way to
//     scale our solutions to handle tens of thousands of databases consists
//     in pre-grouping the input workloads, and solve the multiple
//     consolidation problems independently", Section 7.5).

// LatencySLA caps the queueing-induced latency inflation a workload will
// tolerate after consolidation.
type LatencySLA struct {
	// MaxSlowdown is the acceptable service-time multiplication factor
	// (≥ 1). Under M/G/1-style queueing the response time scales with
	// 1/(1−ρ), so a slowdown bound S implies the hosting machine must stay
	// below utilization ρ ≤ 1 − 1/S.
	MaxSlowdown float64
}

// MaxUtilization converts the SLA into the highest machine utilization that
// still honours it.
func (s LatencySLA) MaxUtilization() float64 {
	if s.MaxSlowdown <= 1 {
		return 0
	}
	return 1 - 1/s.MaxSlowdown
}

// slaCap returns the utilization cap a member set imposes on its machine:
// the strictest SLA of any member (1 if none declare SLAs). The per-unit
// caps are precomputed in NewEvaluator so this stays a flat scan.
func (ev *Evaluator) slaCap(members []int) float64 {
	cap := 1.0
	for _, u := range members {
		if c := ev.slaCapU[u]; c < cap {
			cap = c
		}
	}
	return cap
}

// Grouping controls SolvePartitioned.
type Grouping struct {
	// GroupSize is the number of workloads per independently-solved group.
	GroupSize int
	// Options are the per-group solver options.
	Options SolveOptions
}

// PartitionedSolution aggregates the per-group plans of SolvePartitioned.
type PartitionedSolution struct {
	// Groups holds each group's solution, in group order.
	Groups []*Solution
	// GroupWorkloads maps each group to the original workload indices it
	// contains.
	GroupWorkloads [][]int
	// K is the total machine count across groups.
	K int
	// Feasible reports whether every group solved feasibly.
	Feasible bool
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
}

// ConsolidationRatio mirrors Solution.ConsolidationRatio.
func (ps *PartitionedSolution) ConsolidationRatio(originalServers int) float64 {
	if ps.K == 0 {
		return 0
	}
	return float64(originalServers) / float64(ps.K)
}

// SolvePartitioned splits the workloads into fixed-size groups, solves each
// group against its own slice of machines, and concatenates the plans. It
// trades a little consolidation quality (co-location opportunities across
// groups are never considered) for indefinite scalability — per Section
// 7.5, total work grows linearly in the number of groups.
//
// Pinning and explicit anti-affinity refer to global indices and are not
// supported here; replicas within one workload are. Cancelling ctx aborts
// the solve after the current group and returns ctx.Err().
func SolvePartitioned(ctx context.Context, p *Problem, g Grouping) (*PartitionedSolution, error) {
	start := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.GroupSize <= 0 {
		return nil, fmt.Errorf("core: group size must be positive, got %d", g.GroupSize)
	}
	if len(p.AntiAffinity) > 0 {
		return nil, fmt.Errorf("core: explicit anti-affinity is not supported with partitioned solving")
	}
	for i, w := range p.Workloads {
		if w.PinTo >= 0 {
			return nil, fmt.Errorf("core: workload %d (%s) is pinned; pinning is not supported with partitioned solving", i, w.Name)
		}
	}

	out := &PartitionedSolution{Feasible: true}
	nextMachine := 0
	for lo := 0; lo < len(p.Workloads); lo += g.GroupSize {
		hi := lo + g.GroupSize
		if hi > len(p.Workloads) {
			hi = len(p.Workloads)
		}
		group := p.Workloads[lo:hi]
		// Give the group the remaining machines; its solution uses a prefix.
		if nextMachine >= len(p.Machines) {
			return nil, fmt.Errorf("core: ran out of machines after %d groups", len(out.Groups))
		}
		sub := &Problem{
			Workloads: group,
			Machines:  p.Machines[nextMachine:],
			Disk:      p.Disk,
			Weights:   p.Weights,
		}
		sol, err := Solve(ctx, sub, g.Options)
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", len(out.Groups), err)
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		out.Groups = append(out.Groups, sol)
		out.GroupWorkloads = append(out.GroupWorkloads, idx)
		out.K += sol.K
		out.Feasible = out.Feasible && sol.Feasible
		nextMachine += sol.K
	}
	out.Elapsed = time.Since(start)
	return out, nil
}
