package core

import (
	"fmt"
	"math"
)

// LoadState is the incremental load-state engine of the consolidation
// evaluator (the Section 6 solver's cheap-evaluation discipline): it
// maintains, for every machine of a K-machine assignment, the running
// aggregate demand vectors (CPU, RAM, working set and update rate, each
// length T) together with the machine's canonical objective contribution,
// so that pricing a candidate move "unit u from machine a to machine b"
// costs O(T) — one add/remove delta into reusable scratch buffers —
// instead of re-summing every member's full time series from scratch.
//
// Correctness discipline:
//
//   - PriceAdd is bit-identical to the canonical scratch pricer
//     (Evaluator.ServerContrib on the member list plus the candidate),
//     because the maintained sums are accumulated in member-list order and
//     the candidate's demand is added on top exactly as accumulateInto
//     would.
//   - PriceRemove subtracts the unit's demand from the maintained sums,
//     which can differ from a canonical re-sum by rounding in the last
//     ulp. That estimate is only ever used to compare candidate moves
//     inside one local-search step; it never enters the state.
//   - Move re-materializes the two touched machines' sums canonically
//     from their member lists, so rounding drift never accumulates and
//     Contrib always equals ServerContrib on the same member list, bit
//     for bit. Final solutions are still priced through Evaluator.Eval.
//
// The pricing methods (PriceAdd, PriceRemove, CanPlace) allocate nothing;
// loadstate_test.go asserts this with testing.AllocsPerRun. A LoadState is
// not safe for concurrent use; parallel solvers give each goroutine its
// own (the same rule as Evaluator.Clone).
type LoadState struct {
	ev *Evaluator
	k  int

	// assign[u] is unit u's current machine; members[j] lists machine j's
	// units in insertion order (significant: sums are accumulated in this
	// order).
	assign  []int
	members [][]int

	// Canonical per-machine running sums, each buffer length T.
	cpu  [][]float64
	ram  [][]float64
	ws   [][]float64
	rate [][]float64

	// Cached per-machine derived state, kept in lockstep with the sums.
	contrib   []float64 // canonical objective contribution
	norm      []float64 // normalized balance load in [0,1]
	confPairs []int     // anti-affinity pairs currently sharing the machine
	slaCap    []float64 // strictest member SLA utilization cap (1 = none)
	// argCPU/argRAM are the time steps where each machine's canonical CPU
	// and RAM aggregates peak — the coarse screen's point refinement
	// evaluates candidate aggregates exactly there, a tight O(1) lower
	// bound on the new peak (see coarse.go).
	argCPU []int
	argRAM []int

	// Scratch buffers for candidate pricing, reused across calls.
	sCPU, sRAM, sWS, sRate []float64

	// Coarse screening state (see coarse.go; unset when the evaluator
	// disables screening): per-machine bucketed aggregate bounds — flat,
	// stride co.nb — kept in lockstep with the canonical sums, plus bucket
	// scratch for the disk terms of candidate bounds.
	co                             *coarse
	bHiCPU, bLoCPU, bHiRAM, bLoRAM []float64
	bHiWS, bLoWS, bHiRate, bLoRate []float64
	sbWS, sbRate                   []float64
}

// NewLoadState builds the incremental state for an assignment over the
// first K machines. Every assignment must lie in [0,K) — local search
// operates strictly on in-range plans (Eval penalizes out-of-range ones).
// The input slice is copied, never mutated.
func NewLoadState(ev *Evaluator, assign []int, K int) *LoadState {
	if len(assign) != len(ev.units) {
		panic(fmt.Sprintf("core: LoadState assignment has %d units, want %d", len(assign), len(ev.units)))
	}
	T := ev.T
	ls := &LoadState{
		ev:        ev,
		k:         K,
		assign:    append([]int(nil), assign...),
		members:   make([][]int, K),
		cpu:       make([][]float64, K),
		ram:       make([][]float64, K),
		ws:        make([][]float64, K),
		rate:      make([][]float64, K),
		contrib:   make([]float64, K),
		norm:      make([]float64, K),
		confPairs: make([]int, K),
		slaCap:    make([]float64, K),
		argCPU:    make([]int, K),
		argRAM:    make([]int, K),
		sCPU:      make([]float64, T),
		sRAM:      make([]float64, T),
		sWS:       make([]float64, T),
		sRate:     make([]float64, T),
	}
	if co := ev.coarse; co != nil {
		ls.co = co
		ls.bHiCPU = make([]float64, K*co.nb)
		ls.bLoCPU = make([]float64, K*co.nb)
		ls.bHiRAM = make([]float64, K*co.nb)
		ls.bLoRAM = make([]float64, K*co.nb)
		ls.bHiWS = make([]float64, K*co.nb)
		ls.bLoWS = make([]float64, K*co.nb)
		ls.bHiRate = make([]float64, K*co.nb)
		ls.bLoRate = make([]float64, K*co.nb)
		ls.sbWS = make([]float64, co.nb)
		ls.sbRate = make([]float64, co.nb)
	}
	for u, j := range ls.assign {
		if j < 0 || j >= K {
			panic(fmt.Sprintf("core: LoadState unit %d assigned to machine %d outside [0,%d)", u, j, K))
		}
		ls.members[j] = append(ls.members[j], u)
	}
	for j := 0; j < K; j++ {
		ls.cpu[j] = make([]float64, T)
		ls.ram[j] = make([]float64, T)
		ls.ws[j] = make([]float64, T)
		ls.rate[j] = make([]float64, T)
		ls.rematerialize(j)
	}
	return ls
}

// K returns the current machine count (Fold shrinks it).
func (ls *LoadState) K() int { return ls.k }

// NumUnits returns the number of placement units.
func (ls *LoadState) NumUnits() int { return len(ls.assign) }

// Assign returns unit u's current machine.
func (ls *LoadState) Assign(u int) int { return ls.assign[u] }

// Assignment returns a copy of the full current assignment.
func (ls *LoadState) Assignment() []int { return append([]int(nil), ls.assign...) }

// Members returns machine j's unit list in insertion order. The slice is
// the live internal state — callers must not mutate or retain it across
// Move/Fold calls.
func (ls *LoadState) Members(j int) []int { return ls.members[j] }

// MemberCount returns how many units machine j hosts.
func (ls *LoadState) MemberCount(j int) int { return len(ls.members[j]) }

// Contrib returns machine j's canonical objective contribution (balance
// term plus violation and anti-affinity penalties), identical to
// Evaluator.ServerContrib on the same member list.
func (ls *LoadState) Contrib(j int) float64 { return ls.contrib[j] }

// NormLoad returns machine j's normalized balance load in [0,1].
func (ls *LoadState) NormLoad(j int) float64 { return ls.norm[j] }

// rematerialize recomputes machine j's canonical sums and cached state
// from its member list. Called on the (at most two) machines an accepted
// move touches, so drift from subtractive pricing never enters the state.
func (ls *LoadState) rematerialize(j int) {
	ev := ls.ev
	members := ls.members[j]
	ev.accumulateInto(members, ls.cpu[j], ls.ram[j], ls.ws[j], ls.rate[j])
	if ls.co != nil {
		ls.rematBuckets(j)
		// Track where the canonical aggregates peak, for the screen's
		// point refinement.
		cj, rj := ls.cpu[j], ls.ram[j]
		argC, argR := 0, 0
		for t := 1; t < ev.T; t++ {
			if cj[t] > cj[argC] {
				argC = t
			}
			if rj[t] > rj[argR] {
				argR = t
			}
		}
		ls.argCPU[j], ls.argRAM[j] = argC, argR
	}

	pairs := 0
	for ai, a := range members {
		for _, b := range members[ai+1:] {
			if ev.conflicted(a, b) {
				pairs++
			}
		}
	}
	ls.confPairs[j] = pairs

	cap := ev.slaCap(members)
	ls.slaCap[j] = cap

	if len(members) == 0 {
		ls.contrib[j] = 0
		ls.norm[j] = 0
		return
	}
	_, _, _, viol, norm := ev.evalSums(j, ls.cpu[j], ls.ram[j], ls.ws[j], ls.rate[j], cap)
	ls.norm[j] = norm
	ls.contrib[j] = contribWith(norm, viol, pairs)
}

// contribWith assembles a machine contribution from its pieces using the
// exact addition sequence of the canonical pricer (ServerContrib adds one
// penaltyWeight per conflicting pair), so incremental and scratch pricing
// agree bit for bit.
//
//kairos:hotpath
func contribWith(norm, viol float64, pairs int) float64 {
	c := math.Exp(norm) + penaltyWeight*viol
	for i := 0; i < pairs; i++ {
		c += penaltyWeight
	}
	return c
}

// conflictsOn counts unit u's anti-affinity conflicts currently assigned
// to machine j.
//
//kairos:hotpath
func (ls *LoadState) conflictsOn(u, j int) int {
	n := 0
	for _, c := range ls.ev.conflicts[u] {
		if ls.assign[c] == j {
			n++
		}
	}
	return n
}

// conflictsOnExcluding counts unit u's anti-affinity conflicts currently on
// machine j, ignoring unit excl (used by swap pricing, where excl is about
// to leave j).
//
//kairos:hotpath
func (ls *LoadState) conflictsOnExcluding(u, j, excl int) int {
	n := 0
	for _, c := range ls.ev.conflicts[u] {
		if c != excl && ls.assign[c] == j {
			n++
		}
	}
	return n
}

// fill writes machine j's sums plus unit u's scaled demand into the
// scratch buffers (sign +1) or minus it (sign -1).
//
//kairos:hotpath
func (ls *LoadState) fill(u, j int, sign float64) {
	ev := ls.ev
	cu, ru, wu, qu := ev.cpu[u], ev.ram[u], ev.ws[u], ev.rate[u]
	cj, rj, wj, qj := ls.cpu[j], ls.ram[j], ls.ws[j], ls.rate[j]
	k := sign * ev.scale[u]
	for t := 0; t < ev.T; t++ {
		ls.sCPU[t] = cj[t] + k*cu[t]
		ls.sRAM[t] = rj[t] + k*ru[t]
		ls.sWS[t] = wj[t] + k*wu[t]
		ls.sRate[t] = qj[t] + k*qu[t]
	}
}

// PriceAdd prices machine j as if unit u were appended to its members:
// the contribution j would have after accepting the move. When u already
// lives on j the current contribution is returned unchanged (u is not
// double-counted). O(T), zero allocations, bit-identical to the canonical
// scratch pricer.
//
//kairos:hotpath
func (ls *LoadState) PriceAdd(u, j int) float64 {
	ev := ls.ev
	if ls.assign[u] == j {
		return ls.contrib[j]
	}
	ls.fill(u, j, +1)
	cap := ls.slaCap[j]
	if c := ev.slaCapU[u]; c < cap {
		cap = c
	}
	_, _, _, viol, norm := ev.evalSums(j, ls.sCPU, ls.sRAM, ls.sWS, ls.sRate, cap)
	return contribWith(norm, viol, ls.confPairs[j]+ls.conflictsOn(u, j))
}

// PriceRemove prices unit u's current machine as if u left it. O(T), zero
// allocations. The subtractive sums can differ from a canonical re-sum in
// the last ulp; accepted moves re-materialize canonically, so the estimate
// never persists.
//
//kairos:hotpath
func (ls *LoadState) PriceRemove(u int) float64 {
	ev := ls.ev
	from := ls.assign[u]
	if len(ls.members[from]) == 1 {
		return 0 // machine becomes unused
	}
	ls.fill(u, from, -1)
	cap := 1.0
	for _, m := range ls.members[from] {
		if m == u {
			continue
		}
		if c := ev.slaCapU[m]; c < cap {
			cap = c
		}
	}
	_, _, _, viol, norm := ev.evalSums(from, ls.sCPU, ls.sRAM, ls.sWS, ls.sRate, cap)
	return contribWith(norm, viol, ls.confPairs[from]-ls.conflictsOn(u, from))
}

// CanPlace reports whether unit u fits on machine j within every resource
// constraint and without anti-affinity conflicts — the incremental
// equivalent of Evaluator.FitsOneMachine on members[j]+u (or on the
// current members when u already lives on j). O(T), zero allocations.
// Like FitsOneMachine it refuses machines whose existing members already
// conflict or violate, and it does not check pins.
//
//kairos:hotpath
func (ls *LoadState) CanPlace(u, j int) bool {
	ev := ls.ev
	if ls.assign[u] == j {
		if ls.confPairs[j] > 0 {
			return false
		}
		_, _, _, viol, _ := ev.evalSums(j, ls.cpu[j], ls.ram[j], ls.ws[j], ls.rate[j], ls.slaCap[j])
		return viol == 0
	}
	if ls.confPairs[j] > 0 || ls.conflictsOn(u, j) > 0 {
		return false
	}
	// Coarse screen: a positive violation lower bound proves the placement
	// infeasible in O(T/B), so the exact O(T) pricing only runs for
	// machines the bound cannot rule out. The boolean is unchanged —
	// viol ≥ screenAddViol always.
	if ls.screenAddViol(u, j) > 0 {
		return false
	}
	ls.fill(u, j, +1)
	cap := ls.slaCap[j]
	if c := ev.slaCapU[u]; c < cap {
		cap = c
	}
	_, _, _, viol, _ := ev.evalSums(j, ls.sCPU, ls.sRAM, ls.sWS, ls.sRate, cap)
	return viol == 0
}

// fillExchange writes machine j's sums minus member `out`'s scaled demand
// plus unit `in`'s into the scratch buffers — the aggregate j would carry
// after a 2-exchange.
//
//kairos:hotpath
func (ls *LoadState) fillExchange(j, out, in int) {
	ev := ls.ev
	co, ro, wo, qo := ev.cpu[out], ev.ram[out], ev.ws[out], ev.rate[out]
	ci, ri, wi, qi := ev.cpu[in], ev.ram[in], ev.ws[in], ev.rate[in]
	cj, rj, wj, qj := ls.cpu[j], ls.ram[j], ls.ws[j], ls.rate[j]
	ko, ki := ev.scale[out], ev.scale[in]
	for t := 0; t < ev.T; t++ {
		ls.sCPU[t] = cj[t] - ko*co[t] + ki*ci[t]
		ls.sRAM[t] = rj[t] - ko*ro[t] + ki*ri[t]
		ls.sWS[t] = wj[t] - ko*wo[t] + ki*wi[t]
		ls.sRate[t] = qj[t] - ko*qo[t] + ki*qi[t]
	}
}

// priceExchange prices machine j as if its member `out` left and unit `in`
// (currently hosted elsewhere) took its place: the contribution j would have
// after the exchange. O(T), zero allocations. Like PriceRemove the
// subtractive half can differ from a canonical re-sum in the last ulp;
// Swap re-materializes canonically, so the estimate never enters the state.
//
//kairos:hotpath
func (ls *LoadState) priceExchange(j, out, in int) float64 {
	ev := ls.ev
	ls.fillExchange(j, out, in)
	cap := 1.0
	for _, m := range ls.members[j] {
		if m == out {
			continue
		}
		if c := ev.slaCapU[m]; c < cap {
			cap = c
		}
	}
	if c := ev.slaCapU[in]; c < cap {
		cap = c
	}
	pairs := ls.confPairs[j] - ls.conflictsOn(out, j) + ls.conflictsOnExcluding(in, j, out)
	_, _, _, viol, norm := ev.evalSums(j, ls.sCPU, ls.sRAM, ls.sWS, ls.sRate, cap)
	return contribWith(norm, viol, pairs)
}

// PriceSwap prices the 2-exchange of units u and v, which must live on
// different machines: the contributions u's machine would have after
// swapping u out for v, and v's machine after swapping v out for u. Each
// side is one O(T) delta pass over the maintained sums, so a swap costs two
// move pricings instead of a re-aggregation of both machines — the property
// that makes 2-exchange sweeps affordable inside the hill climb.
//
//kairos:hotpath
func (ls *LoadState) PriceSwap(u, v int) (newU, newV float64) {
	a, b := ls.assign[u], ls.assign[v]
	if a == b {
		panic(fmt.Sprintf("core: LoadState.PriceSwap units %d and %d share machine %d", u, v, a))
	}
	newU = ls.priceExchange(a, u, v)
	newV = ls.priceExchange(b, v, u)
	return newU, newV
}

// Swap exchanges units u and v between their (distinct) machines and
// re-materializes both canonically. Each side keeps member order: the
// departing unit is excised in place and the arriving unit appended —
// exactly the member lists PriceSwap priced, so post-swap Contrib matches
// the canonical pricer bit for bit.
func (ls *LoadState) Swap(u, v int) {
	a, b := ls.assign[u], ls.assign[v]
	if a == b {
		panic(fmt.Sprintf("core: LoadState.Swap units %d and %d share machine %d", u, v, a))
	}
	ls.move(u, b, false, false)
	ls.move(v, a, false, false)
	ls.rematerialize(a)
	ls.rematerialize(b)
}

// Move reassigns unit u to machine `to` and re-materializes the two
// touched machines' canonical sums and contributions. Member order is
// preserved on the source (u is excised in place) and u is appended on
// the destination, matching the canonical pricers' ordering.
func (ls *LoadState) Move(u, to int) {
	ls.move(u, to, true, true)
}

// move is Move with per-side re-materialization control: reduceK's trial
// loop empties one machine in a burst and never prices the shrinking
// source mid-trial, so it defers the source rebuild (and, on rollback,
// the destination's) instead of paying O(members·T) per step. A deferred
// side MUST be re-materialized (or retired via Fold) before it is priced
// again.
func (ls *LoadState) move(u, to int, rematSource, rematDest bool) {
	from := ls.assign[u]
	if from == to {
		return
	}
	mf := ls.members[from]
	for i, x := range mf {
		if x == u {
			copy(mf[i:], mf[i+1:])
			ls.members[from] = mf[:len(mf)-1]
			break
		}
	}
	ls.assign[u] = to
	ls.members[to] = append(ls.members[to], u)
	if rematSource {
		ls.rematerialize(from)
	}
	if rematDest {
		ls.rematerialize(to)
	}
}

// Fold removes the empty machine label `to` by relabelling the current
// last machine (K-1) onto it and shrinking K — the machine-count
// reduction step for interchangeable machines. Panics if `to` still
// hosts units. Only `to`'s member list must be current: its cached sums
// may be stale from deferred moves, since Fold overwrites them with
// machine K-1's state and retires the dead slot.
func (ls *LoadState) Fold(to int) {
	from := ls.k - 1
	if to != from {
		if len(ls.members[to]) != 0 {
			panic(fmt.Sprintf("core: LoadState.Fold target machine %d is not empty", to))
		}
		for _, u := range ls.members[from] {
			ls.assign[u] = to
		}
		ls.members[to], ls.members[from] = ls.members[from], ls.members[to]
		ls.cpu[to], ls.cpu[from] = ls.cpu[from], ls.cpu[to]
		ls.ram[to], ls.ram[from] = ls.ram[from], ls.ram[to]
		ls.ws[to], ls.ws[from] = ls.ws[from], ls.ws[to]
		ls.rate[to], ls.rate[from] = ls.rate[from], ls.rate[to]
		if co := ls.co; co != nil {
			// Relabel the bucketed bound rows with the machine: `to` was
			// empty, so the retiring row is zeroed like its other state.
			nb := co.nb
			for _, arr := range [...][]float64{
				ls.bHiCPU, ls.bLoCPU, ls.bHiRAM, ls.bLoRAM,
				ls.bHiWS, ls.bLoWS, ls.bHiRate, ls.bLoRate,
			} {
				fromRow := arr[from*nb : (from+1)*nb]
				copy(arr[to*nb:(to+1)*nb], fromRow)
				for i := range fromRow {
					fromRow[i] = 0
				}
			}
		}
		ls.contrib[to], ls.contrib[from] = ls.contrib[from], 0
		ls.norm[to], ls.norm[from] = ls.norm[from], 0
		ls.confPairs[to], ls.confPairs[from] = ls.confPairs[from], 0
		ls.slaCap[to], ls.slaCap[from] = ls.slaCap[from], 1
		ls.argCPU[to], ls.argCPU[from] = ls.argCPU[from], 0
		ls.argRAM[to], ls.argRAM[from] = ls.argRAM[from], 0
	}
	ls.k--
}
