package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"kairos/internal/floats"
	"kairos/internal/model"
	"kairos/internal/polyfit"
	"kairos/internal/series"
)

// syntheticDiskProfile builds a hand-written disk model so the LoadState
// tests can exercise the non-linear disk pricing (including the envelope
// constraint) without running the simulated profiler sweep.
func syntheticDiskProfile() *model.DiskProfile {
	return &model.DiskProfile{
		// write MB/s ≈ 0.5 + 0.002·wsMB + 0.003·rate (basis order: 1, x, y,
		// x², xy, y² with x = wsMB, y = rows/sec).
		Fit: polyfit.Poly2D{Degree: 2, Coeffs: []float64{0.5, 0.002, 0.003, 0, 0, 0}},
		// Saturation envelope: max sustainable rate falls with working set.
		Envelope:    polyfit.Poly1D{Coeffs: []float64{9000, -1.5}},
		HasEnvelope: true,
		WSMinMB:     100,
		WSMaxMB:     100000,
	}
}

// randomLoadStateProblem builds a seeded problem exercising every pricing
// feature: time-varying CPU, replicas (automatic anti-affinity), latency
// SLAs, replica load scaling and optionally the disk model.
func randomLoadStateProblem(rng *rand.Rand, nW, T int, withDisk bool) *Problem {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	var wls []Workload
	for i := 0; i < nW; i++ {
		base := 0.05 + rng.Float64()*0.3
		amp := rng.Float64() * 0.1
		phase := rng.Float64() * 2 * math.Pi
		cpu := series.FromFunc(start, step, T, func(_ time.Time, t int) float64 {
			return base + amp*math.Sin(2*math.Pi*float64(t)/float64(T)+phase)
		})
		w := Workload{
			Name:     fmt.Sprintf("w%d", i),
			CPU:      cpu,
			RAMBytes: series.Constant(start, step, T, (0.5+rng.Float64()*4)*1e9),
			PinTo:    -1,
		}
		if withDisk {
			w.WSBytes = series.Constant(start, step, T, (0.2+rng.Float64())*1e9)
			w.UpdateRate = series.Constant(start, step, T, 500+rng.Float64()*2500)
		}
		if rng.Float64() < 0.3 {
			w.Replicas = 2
			if rng.Float64() < 0.5 {
				w.ReplicaLoadScale = []float64{1, 0.4 + rng.Float64()*0.5}
			}
		}
		if rng.Float64() < 0.2 {
			w.SLA = &LatencySLA{MaxSlowdown: 1.5 + rng.Float64()*2}
		}
		wls = append(wls, w)
	}
	ms := make([]Machine, nW+2)
	for j := range ms {
		ms[j] = Machine{
			Name:         fmt.Sprintf("m%d", j),
			CPUCapacity:  1,
			RAMBytes:     24e9,
			DiskWriteBps: 40e6,
			Headroom:     0.05,
		}
	}
	p := &Problem{Workloads: wls, Machines: ms}
	if withDisk {
		p.Disk = syntheticDiskProfile()
	}
	return p
}

// membersCopyWith returns a copy of machine j's member list with u appended
// (the canonical shape PriceAdd prices).
func membersCopyWith(ls *LoadState, j, u int) []int {
	return append(append([]int(nil), ls.Members(j)...), u)
}

// checkCanonical asserts every machine's cached contribution equals the
// canonical scratch pricer on the same member list, bit for bit — the
// re-materialization invariant that keeps rounding drift out of the state.
func checkCanonical(t *testing.T, ev *Evaluator, ls *LoadState) {
	t.Helper()
	for j := 0; j < ls.K(); j++ {
		members := append([]int(nil), ls.Members(j)...)
		want := ev.ServerContrib(j, members)
		if got := ls.Contrib(j); !floats.Same(got, want) {
			t.Fatalf("machine %d contrib = %v, canonical %v", j, got, want)
		}
	}
}

// relClose reports approximate equality with a relative tolerance — used
// only for PriceRemove, whose subtractive sums may differ from a canonical
// re-sum in the last ulp.
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestLoadStateMatchesCanonicalPricing drives randomized add/remove/move
// sequences and cross-checks every incremental price against the canonical
// scratch evaluator: PriceAdd and CanPlace must match bit-for-bit, and
// PriceRemove within rounding. Runs under -race in CI.
func TestLoadStateMatchesCanonicalPricing(t *testing.T) {
	for _, withDisk := range []bool{false, true} {
		name := "cpu+ram"
		if withDisk {
			name = "with-disk-model"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			trials := 4
			ops := 200
			if testing.Short() {
				trials, ops = 2, 60
			}
			for trial := 0; trial < trials; trial++ {
				p := randomLoadStateProblem(rng, 8+rng.Intn(6), 24, withDisk)
				ev, err := NewEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				nU := ev.NumUnits()
				K := 4 + rng.Intn(3)
				assign := make([]int, nU)
				for u := range assign {
					assign[u] = rng.Intn(K)
				}
				ls := NewLoadState(ev, assign, K)
				checkCanonical(t, ev, ls)
				for op := 0; op < ops; op++ {
					u := rng.Intn(nU)
					j := rng.Intn(K)
					from := ls.Assign(u)

					if j != from {
						withU := membersCopyWith(ls, j, u)
						if got, want := ls.PriceAdd(u, j), ev.ServerContrib(j, withU); !floats.Same(got, want) {
							t.Fatalf("trial %d op %d: PriceAdd(%d,%d) = %v, canonical %v", trial, op, u, j, got, want)
						}
						if got, want := ls.CanPlace(u, j), ev.FitsOneMachine(j, withU); got != want {
							t.Fatalf("trial %d op %d: CanPlace(%d,%d) = %v, FitsOneMachine %v", trial, op, u, j, got, want)
						}
					} else {
						// Pricing a unit onto its own machine must not
						// double-count it.
						if got, want := ls.PriceAdd(u, j), ls.Contrib(j); !floats.Same(got, want) {
							t.Fatalf("trial %d op %d: self PriceAdd(%d,%d) = %v, contrib %v", trial, op, u, j, got, want)
						}
						members := append([]int(nil), ls.Members(j)...)
						if got, want := ls.CanPlace(u, j), ev.FitsOneMachine(j, members); got != want {
							t.Fatalf("trial %d op %d: self CanPlace(%d,%d) = %v, FitsOneMachine %v", trial, op, u, j, got, want)
						}
					}

					var without []int
					for _, x := range ls.Members(from) {
						if x != u {
							without = append(without, x)
						}
					}
					if got, want := ls.PriceRemove(u), ev.ServerContrib(from, without); !relClose(got, want, 1e-9) {
						t.Fatalf("trial %d op %d: PriceRemove(%d) = %v, canonical %v", trial, op, u, got, want)
					}

					if op%2 == 0 && j != from {
						ls.Move(u, j)
						if op%10 == 0 {
							checkCanonical(t, ev, ls)
						}
					}
				}
				checkCanonical(t, ev, ls)
				// The final state's assignment round-trips through the
				// canonical Eval without penalty surprises: every unit is
				// in range, so feasibility only reflects real violations.
				got := ls.Assignment()
				for u, j := range got {
					if j < 0 || j >= K {
						t.Fatalf("unit %d left out of range: %d", u, j)
					}
				}
			}
		})
	}
}

// TestLoadStateFold checks the machine-count reduction primitive: folding
// the last label onto an emptied one preserves canonical contributions and
// produces an assignment a fresh LoadState prices identically (modulo
// member-order rounding).
func TestLoadStateFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomLoadStateProblem(rng, 9, 24, false)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	nU := ev.NumUnits()
	K := 5
	empty := 2
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
		if assign[u] == empty {
			assign[u] = (u + 1) % K
		}
	}
	ls := NewLoadState(ev, assign, K)
	if ls.MemberCount(empty) != 0 {
		t.Fatalf("machine %d should start empty", empty)
	}
	ls.Fold(empty)
	if ls.K() != K-1 {
		t.Fatalf("K = %d after fold, want %d", ls.K(), K-1)
	}
	checkCanonical(t, ev, ls)
	fresh := NewLoadState(ev, ls.Assignment(), ls.K())
	for j := 0; j < ls.K(); j++ {
		if got, want := ls.Contrib(j), fresh.Contrib(j); !relClose(got, want, 1e-9) {
			t.Errorf("machine %d contrib %v differs from fresh build %v", j, got, want)
		}
	}
}

// TestLoadStatePricingAllocationFree asserts the acceptance criterion that
// candidate-move pricing allocates nothing — the property that lets a
// hill-climb sweep price U·K moves without garbage. The disk model is on,
// covering the polynomial evaluation path too.
func TestLoadStatePricingAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(11))
	p := randomLoadStateProblem(rng, 10, 36, true)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	nU := ev.NumUnits()
	K := 5
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := NewLoadState(ev, assign, K)
	u := 0
	j := (ls.Assign(u) + 1) % K
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		sink += ls.PriceAdd(u, j)
		sink += ls.PriceRemove(u)
		if ls.CanPlace(u, j) {
			sink++
		}
	})
	if allocs != 0 {
		t.Errorf("candidate-move pricing allocates %v objects per run, want 0", allocs)
	}
	_ = sink
}

// TestLoadStateMoveKeepsAssignInvariant checks assign/members stay in
// lockstep through moves and that moving a unit onto its own machine is a
// no-op.
func TestLoadStateMoveKeepsAssignInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomLoadStateProblem(rng, 8, 12, false)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	nU := ev.NumUnits()
	K := 4
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := NewLoadState(ev, assign, K)
	before := ls.Contrib(0)
	ls.Move(0, ls.Assign(0))
	if !floats.Same(ls.Contrib(0), before) {
		t.Error("self-move changed state")
	}
	for op := 0; op < 50; op++ {
		u, j := rng.Intn(nU), rng.Intn(K)
		ls.Move(u, j)
		if ls.Assign(u) != j {
			t.Fatalf("assign[%d] = %d after Move to %d", u, ls.Assign(u), j)
		}
	}
	counts := 0
	for j := 0; j < K; j++ {
		for _, u := range ls.Members(j) {
			if ls.Assign(u) != j {
				t.Fatalf("unit %d listed on machine %d but assigned to %d", u, j, ls.Assign(u))
			}
			counts++
		}
	}
	if counts != nU {
		t.Fatalf("member lists cover %d units, want %d", counts, nU)
	}
}

// membersExchanged returns a copy of machine j's member list with `out`
// excised in place and `in` appended — the canonical member list PriceSwap
// prices and Swap produces.
func membersExchanged(ls *LoadState, j, out, in int) []int {
	var cp []int
	for _, m := range ls.Members(j) {
		if m != out {
			cp = append(cp, m)
		}
	}
	return append(cp, in)
}

// TestLoadStateSwapMatchesCanonicalPricing drives randomized 2-exchange
// pricing against the canonical scratch evaluator: PriceSwap must agree
// with ServerContrib on the exchanged member lists (within rounding — both
// sides are subtractive, the same discipline as PriceRemove), and applying
// the swap must leave the state bit-identical to the canonical pricer. A
// full Eval on the swapped assignment must agree with the pre-priced
// machine contributions too. Runs under -race in CI.
func TestLoadStateSwapMatchesCanonicalPricing(t *testing.T) {
	for _, withDisk := range []bool{false, true} {
		name := "cpu+ram"
		if withDisk {
			name = "with-disk-model"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			trials := 4
			ops := 150
			if testing.Short() {
				trials, ops = 2, 50
			}
			for trial := 0; trial < trials; trial++ {
				p := randomLoadStateProblem(rng, 8+rng.Intn(6), 24, withDisk)
				ev, err := NewEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				nU := ev.NumUnits()
				K := 4 + rng.Intn(3)
				assign := make([]int, nU)
				for u := range assign {
					assign[u] = rng.Intn(K)
				}
				ls := NewLoadState(ev, assign, K)
				for op := 0; op < ops; op++ {
					u := rng.Intn(nU)
					v := rng.Intn(nU)
					if u == v || ls.Assign(u) == ls.Assign(v) {
						continue
					}
					a, b := ls.Assign(u), ls.Assign(v)
					gotU, gotV := ls.PriceSwap(u, v)
					wantU := ev.ServerContrib(a, membersExchanged(ls, a, u, v))
					wantV := ev.ServerContrib(b, membersExchanged(ls, b, v, u))
					if !relClose(gotU, wantU, 1e-9) || !relClose(gotV, wantV, 1e-9) {
						t.Fatalf("trial %d op %d: PriceSwap(%d,%d) = (%v,%v), canonical (%v,%v)",
							trial, op, u, v, gotU, gotV, wantU, wantV)
					}
					if op%3 == 0 {
						ls.Swap(u, v)
						if ls.Assign(u) != b || ls.Assign(v) != a {
							t.Fatalf("trial %d op %d: swap left units on (%d,%d), want (%d,%d)",
								trial, op, ls.Assign(u), ls.Assign(v), b, a)
						}
						// Post-swap state is canonical bit for bit.
						if got, want := ls.Contrib(a), ev.ServerContrib(a, append([]int(nil), ls.Members(a)...)); !floats.Same(got, want) {
							t.Fatalf("trial %d op %d: post-swap contrib(a) = %v, canonical %v", trial, op, got, want)
						}
						if got, want := ls.Contrib(b), ev.ServerContrib(b, append([]int(nil), ls.Members(b)...)); !floats.Same(got, want) {
							t.Fatalf("trial %d op %d: post-swap contrib(b) = %v, canonical %v", trial, op, got, want)
						}
					}
				}
				checkCanonical(t, ev, ls)
				// The priced-and-applied assignment round-trips through the
				// canonical Eval: feasibility and objective come from the
				// same sums the swaps maintained.
				if obj, _ := ev.Eval(ls.Assignment(), K); math.IsNaN(obj) {
					t.Fatal("swapped assignment prices to NaN")
				}
			}
		})
	}
}

// TestLoadStateSwapPricingAllocationFree extends the zero-allocation
// guarantee to 2-exchange pricing — a swap sweep prices O(U²) candidates
// and must generate no garbage.
func TestLoadStateSwapPricingAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(17))
	p := randomLoadStateProblem(rng, 10, 36, true)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	nU := ev.NumUnits()
	K := 5
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := NewLoadState(ev, assign, K)
	u, v := 0, 1
	for ls.Assign(u) == ls.Assign(v) {
		v++
	}
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		a, b := ls.PriceSwap(u, v)
		sink += a + b
	})
	if allocs != 0 {
		t.Errorf("swap pricing allocates %v objects per run, want 0", allocs)
	}
	_ = sink
}

// TestEnvMaxMemoBitIdentical verifies the envelope memo returns exactly
// what the polynomial would, on both the miss and the hit path, so
// memoization can never perturb pricing.
func TestEnvMaxMemoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomLoadStateProblem(rng, 6, 12, true)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.envKeys == nil {
		t.Fatal("envelope memo not built for a profile with an envelope")
	}
	for i := 0; i < 5000; i++ {
		ws := rng.Float64() * 2e10
		want := p.Disk.MaxRowsPerSec(ws)
		if got := ev.envMax(ws); !floats.Same(got, want) {
			t.Fatalf("envMax(%v) miss = %v, want %v", ws, got, want)
		}
		if got := ev.envMax(ws); !floats.Same(got, want) {
			t.Fatalf("envMax(%v) hit = %v, want %v", ws, got, want)
		}
	}
	// Clones own their memo: mutating the clone's must not touch ours.
	c := ev.Clone()
	if &c.envKeys[0] == &ev.envKeys[0] {
		t.Fatal("Clone shares the envelope memo — parallel solvers would race")
	}
}

// TestEnvelopeViolationBoundary pins the aligned boundary semantics inside
// the objective: with the envelope clamped to 0 at a huge working set, an
// idle machine (rate 0) is feasible, and any positive rate is a violation —
// the old `maxRate > 0` guard silently skipped that check.
func TestEnvelopeViolationBoundary(t *testing.T) {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	T := 4
	mk := func(rate float64) *Problem {
		w := Workload{
			Name:       "w0",
			CPU:        series.Constant(start, step, T, 0.1),
			RAMBytes:   series.Constant(start, step, T, 1e9),
			WSBytes:    series.Constant(start, step, T, 50000e6), // envelope clamps to 0
			UpdateRate: series.Constant(start, step, T, rate),
			PinTo:      -1,
		}
		return &Problem{
			Workloads: []Workload{w},
			Machines: []Machine{{
				Name: "m0", CPUCapacity: 1, RAMBytes: 64e9, DiskWriteBps: 1e12,
			}},
			Disk: &model.DiskProfile{
				// Zero write fit isolates the envelope term.
				Fit:         polyfit.Poly2D{Degree: 2, Coeffs: []float64{0, 0, 0, 0, 0, 0}},
				Envelope:    polyfit.Poly1D{Coeffs: []float64{9000, -1.5}},
				HasEnvelope: true,
				WSMinMB:     100,
				WSMaxMB:     100000,
			},
		}
	}
	evIdle, err := NewEvaluator(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if sl := evIdle.serverEval(0, []int{0}); sl.Violation != 0 {
		t.Errorf("idle rate over zero envelope: violation = %v, want 0", sl.Violation)
	}
	evBusy, err := NewEvaluator(mk(10))
	if err != nil {
		t.Fatal(err)
	}
	if sl := evBusy.serverEval(0, []int{0}); sl.Violation <= 0 {
		t.Errorf("positive rate over zero envelope: violation = %v, want > 0", sl.Violation)
	}
}
