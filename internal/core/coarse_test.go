package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"kairos/internal/floats"
	"kairos/internal/model"
	"kairos/internal/polyfit"
)

// varyDiskSeries replaces the problem's constant working-set and update
// rate series with time-varying (sinusoidal, unit-distinct) ones so the
// subtractive coarse bounds see intra-bucket spread — the regime where a
// bucket's aggregate lower bound (loSum − hiOut + loIn) dips below zero
// and the disk polynomial would be evaluated outside its verified
// operating box if the bound paths did not clamp.
func varyDiskSeries(rng *rand.Rand, p *Problem) {
	for i := range p.Workloads {
		w := &p.Workloads[i]
		if w.WSBytes == nil || w.UpdateRate == nil {
			continue
		}
		T := w.CPU.Len()
		wsBase := (0.3 + rng.Float64()) * 1e9
		wsAmp := wsBase * (0.3 + 0.6*rng.Float64())
		ratePhase := rng.Float64() * 2 * math.Pi
		rateBase := 500 + rng.Float64()*2500
		rateAmp := rateBase * (0.5 + 0.5*rng.Float64())
		for t := 0; t < T; t++ {
			// High-frequency components guarantee spread inside every
			// bucket, not just across buckets.
			w.WSBytes.Values[t] = wsBase + wsAmp*math.Sin(11*2*math.Pi*float64(t)/float64(T)+ratePhase)
			w.UpdateRate.Values[t] = rateBase + rateAmp*math.Sin(13*2*math.Pi*float64(t)/float64(T)-ratePhase)
			if w.WSBytes.Values[t] < 0 {
				w.WSBytes.Values[t] = 0
			}
			if w.UpdateRate.Values[t] < 0 {
				w.UpdateRate.Values[t] = 0
			}
		}
	}
}

// quadraticDiskProfile is syntheticDiskProfile with genuine curvature: a
// positive rate² term (typical of saturation curves) and a quadratic
// envelope. Monotone over the operating box, but quadratic terms explode
// at arguments far outside it — exactly what the subtractive bound
// aggregates produce if they are not clamped into the verified range.
func quadraticDiskProfile() *model.DiskProfile {
	dp := syntheticDiskProfile()
	dp.Fit = polyfit.Poly2D{Degree: 2, Coeffs: []float64{0.5, 0.002, 0.003, 1e-9, 1e-9, 1e-5}}
	dp.Envelope = polyfit.Poly1D{Coeffs: []float64{9000, -1.5, -1e-4}}
	return dp
}

// randomAssign returns a random in-range assignment for ev over K machines.
func randomAssign(rng *rand.Rand, ev *Evaluator, K int) []int {
	assign := make([]int, ev.NumUnits())
	for u := range assign {
		assign[u] = rng.Intn(K)
	}
	return assign
}

// TestCoarseBoundSoundness is the randomized-fleet property test of the
// bucketed bounds: for random assignments, random candidate moves and
// random accepted mutations, every coarse bound must bracket the exact
// pricer bit-for-bit on the exact side — BoundAdd.lo ≤ PriceAdd ≤
// BoundAdd.hi, and likewise for BoundRemove/PriceRemove and
// BoundSwap/PriceSwap. Runs under -race in CI.
func TestCoarseBoundSoundness(t *testing.T) {
	profiles := []struct {
		name string
		dp   *model.DiskProfile
	}{
		{"cpu+ram", nil},
		{"linear-disk-model", syntheticDiskProfile()},
		{"quadratic-disk-model", quadraticDiskProfile()},
	}
	for _, prof := range profiles {
		withDisk := prof.dp != nil
		t.Run(prof.name, func(t *testing.T) {
			for _, T := range []int{50, 64, 96} {
				rng := rand.New(rand.NewSource(int64(1000 + T)))
				p := randomLoadStateProblem(rng, 12, T, withDisk)
				p.Disk = prof.dp
				varyDiskSeries(rng, p)
				ev, err := NewEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				if ev.coarse == nil {
					t.Fatal("NewEvaluator did not build coarse tables")
				}
				K := 6
				ls := NewLoadState(ev, randomAssign(rng, ev, K), K)
				nU := ls.NumUnits()
				for iter := 0; iter < 400; iter++ {
					u := rng.Intn(nU)
					j := rng.Intn(K)

					lo, hi := ls.BoundAdd(u, j)
					exact := ls.PriceAdd(u, j)
					if !(lo <= exact && exact <= hi) {
						t.Fatalf("T=%d iter %d: BoundAdd(%d,%d) = [%v, %v] does not bracket PriceAdd %v",
							T, iter, u, j, lo, hi, exact)
					}
					if ls.Assign(u) != j {
						if got := ls.ScreenAdd(u, j); !floats.Same(got, lo) {
							t.Fatalf("ScreenAdd(%d,%d) = %v, want BoundAdd lower %v", u, j, got, lo)
						}
					}

					rlo, rhi := ls.BoundRemove(u)
					rexact := ls.PriceRemove(u)
					if !(rlo <= rexact && rexact <= rhi) {
						t.Fatalf("T=%d iter %d: BoundRemove(%d) = [%v, %v] does not bracket PriceRemove %v",
							T, iter, u, rlo, rhi, rexact)
					}

					v := rng.Intn(nU)
					if ls.Assign(u) != ls.Assign(v) {
						loU, hiU, loV, hiV := ls.BoundSwap(u, v)
						nu, nv := ls.PriceSwap(u, v)
						if !(loU <= nu && nu <= hiU) || !(loV <= nv && nv <= hiV) {
							t.Fatalf("T=%d iter %d: BoundSwap(%d,%d) = [%v,%v]/[%v,%v] does not bracket PriceSwap %v/%v",
								T, iter, u, v, loU, hiU, loV, hiV, nu, nv)
						}
						sU, sV := ls.ScreenSwap(u, v)
						if !floats.Same(sU, loU) || !floats.Same(sV, loV) {
							t.Fatalf("ScreenSwap(%d,%d) = %v/%v, want BoundSwap lowers %v/%v", u, v, sU, sV, loU, loV)
						}
					}

					// Mutate the state so rematerialized bucket aggregates
					// (and occasionally Swap's path) are exercised too.
					switch iter % 3 {
					case 0:
						ls.Move(rng.Intn(nU), rng.Intn(K))
					case 1:
						a, b := rng.Intn(nU), rng.Intn(nU)
						if ls.Assign(a) != ls.Assign(b) {
							ls.Swap(a, b)
						}
					}
				}
			}
		})
	}
}

// TestScreenedSweepEquivalence is the pruned-vs-unpruned equivalence
// property: the screened hill climb must produce the bit-identical final
// assignment and objective as the unscreened one on randomized fleets,
// while pricing no more candidates exactly. Runs under -race in CI.
func TestScreenedSweepEquivalence(t *testing.T) {
	profiles := []struct {
		name string
		dp   *model.DiskProfile
	}{
		{"cpu+ram", nil},
		{"linear-disk-model", syntheticDiskProfile()},
		{"quadratic-disk-model", quadraticDiskProfile()},
	}
	for _, prof := range profiles {
		withDisk := prof.dp != nil
		t.Run(prof.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(200 + seed))
				p := randomLoadStateProblem(rng, 14, 96, withDisk)
				p.Disk = prof.dp
				varyDiskSeries(rng, p)
				evS, err := NewEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				evU, err := NewEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				evU.SetBucketWidth(-1) // screening off
				if evU.coarse != nil {
					t.Fatal("SetBucketWidth(-1) left coarse tables active")
				}
				K := 7
				seedAssign := randomAssign(rng, evS, K)
				ctx := context.Background()
				aS, oS, fS := evS.hillClimbRounds(ctx, append([]int(nil), seedAssign...), K, 100)
				aU, oU, fU := evU.hillClimbRounds(ctx, append([]int(nil), seedAssign...), K, 100)
				if !floats.Same(oS, oU) || fS != fU {
					t.Fatalf("seed %d: screened climb (obj=%v feas=%v) != unscreened (obj=%v feas=%v)",
						seed, oS, fS, oU, fU)
				}
				for u := range aS {
					if aS[u] != aU[u] {
						t.Fatalf("seed %d: screened assignment differs at unit %d: %d vs %d", seed, u, aS[u], aU[u])
					}
				}
				if evS.Fevals > evU.Fevals {
					t.Fatalf("seed %d: screened climb priced more candidates (%d) than unscreened (%d)",
						seed, evS.Fevals, evU.Fevals)
				}
			}
		})
	}
}

// TestScreenedSolveEquivalence checks the equivalence end to end through
// the public solver entry points: Solve and Resolve with the default
// coarse screen must return bit-identical plans to runs with screening
// disabled via SolveOptions.BucketWidth.
func TestScreenedSolveEquivalence(t *testing.T) {
	if testing.Short() && raceEnabled {
		t.Skip("full solves are slow under the race detector")
	}
	rng := rand.New(rand.NewSource(77))
	p := randomLoadStateProblem(rng, 10, 48, true)
	varyDiskSeries(rng, p)
	opt := DefaultSolveOptions()
	opt.DirectFevals = 300
	optOff := opt
	optOff.BucketWidth = -1

	solS, err := Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	solU, err := Solve(context.Background(), p, optOff)
	if err != nil {
		t.Fatal(err)
	}
	if solS.K != solU.K || !floats.Same(solS.Objective, solU.Objective) || solS.Feasible != solU.Feasible {
		t.Fatalf("screened Solve (K=%d obj=%v) != unscreened (K=%d obj=%v)",
			solS.K, solS.Objective, solU.K, solU.Objective)
	}
	for u := range solS.Assign {
		if solS.Assign[u] != solU.Assign[u] {
			t.Fatalf("screened Solve assignment differs at unit %d", u)
		}
	}

	inc := IncumbentFromSolution(p, solS)
	ropt := DefaultResolveOptions()
	ropt.DirectFevals = 300
	roptOff := ropt
	roptOff.BucketWidth = -1
	resS, err := Resolve(context.Background(), p, inc, ropt)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := Resolve(context.Background(), p, inc, roptOff)
	if err != nil {
		t.Fatal(err)
	}
	if resS.K != resU.K || !floats.Same(resS.Objective, resU.Objective) || resS.Migrated != resU.Migrated {
		t.Fatalf("screened Resolve (K=%d obj=%v mig=%d) != unscreened (K=%d obj=%v mig=%d)",
			resS.K, resS.Objective, resS.Migrated, resU.K, resU.Objective, resU.Migrated)
	}
	for u := range resS.Assign {
		if resS.Assign[u] != resU.Assign[u] {
			t.Fatalf("screened Resolve assignment differs at unit %d", u)
		}
	}
}

// TestCoarseBoundAllocs asserts the bound pricers allocate nothing — they
// run inside every candidate of a screened sweep. Skipped under the race
// detector, which instruments allocations.
func TestCoarseBoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	for _, withDisk := range []bool{false, true} {
		rng := rand.New(rand.NewSource(31))
		p := randomLoadStateProblem(rng, 10, 64, withDisk)
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		K := 5
		ls := NewLoadState(ev, randomAssign(rng, ev, K), K)
		var u, v int
		for v = 1; v < ls.NumUnits(); v++ {
			if ls.Assign(v) != ls.Assign(0) {
				break
			}
		}
		j := (ls.Assign(u) + 1) % K
		var sink float64
		if n := testing.AllocsPerRun(200, func() {
			sink += ls.ScreenAdd(u, j)
			lo, hi := ls.BoundAdd(u, j)
			sink += lo + hi
			lo, hi = ls.BoundRemove(u)
			sink += lo + hi
			loU, hiU, loV, hiV := ls.BoundSwap(u, v)
			sink += loU + hiU + loV + hiV
			sU, sV := ls.ScreenSwap(u, v)
			sink += sU + sV
		}); n != 0 {
			t.Fatalf("withDisk=%v: bound pricers allocated %v times per run, want 0", withDisk, n)
		}
		_ = sink
	}
}

// TestEvalScratchAllocs asserts Eval reuses its member and aggregate
// scratch: after a warm-up call, evaluations allocate nothing (DIRECT
// calls Eval thousands of times per solve). Skipped under the race
// detector, which instruments allocations.
func TestEvalScratchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(13))
	p := randomLoadStateProblem(rng, 12, 64, true)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	K := 6
	assign := randomAssign(rng, ev, K)
	ev.Eval(assign, K) // warm-up grows the scratch once
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		obj, _ := ev.Eval(assign, K)
		sink += obj
	}); n != 0 {
		t.Fatalf("Eval allocated %v times per run after warm-up, want 0", n)
	}
	_ = sink
}

// TestEvalScratchClone checks clones do not share Eval scratch with their
// parent: interleaved evaluations must match fresh-evaluator results.
func TestEvalScratchClone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := randomLoadStateProblem(rng, 10, 48, false)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	K := 5
	a1 := randomAssign(rng, ev, K)
	a2 := randomAssign(rng, ev, K)
	ev.Eval(a1, K) // populate parent scratch
	c := ev.Clone()
	o2, _ := c.Eval(a2, K)
	o1, _ := ev.Eval(a1, K)
	fresh, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := fresh.Eval(a1, K)
	w2, _ := fresh.Eval(a2, K)
	if !floats.Same(o1, w1) || !floats.Same(o2, w2) {
		t.Fatalf("clone-interleaved Eval drifted: got %v/%v, want %v/%v", o1, o2, w1, w2)
	}
}

// TestDiskMonotonicityDetection pins the constructor's verification: the
// synthetic profile (increasing fit, decreasing envelope) must enable the
// disk bounds, and profiles violating either property must fall back to
// the trivially sound zero lower bound.
func TestDiskMonotonicityDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func(dp *model.DiskProfile) *Evaluator {
		t.Helper()
		p := randomLoadStateProblem(rng, 6, 48, true)
		p.Disk = dp
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}

	ev := build(syntheticDiskProfile())
	if !ev.coarse.diskMono || !ev.coarse.envMono {
		t.Fatalf("synthetic profile: diskMono=%v envMono=%v, want both true",
			ev.coarse.diskMono, ev.coarse.envMono)
	}

	nonMono := syntheticDiskProfile()
	// A large negative cross term makes ∂f/∂x negative at high rates.
	nonMono.Fit = polyfit.Poly2D{Degree: 2, Coeffs: []float64{0.5, 0.002, 0.003, 0, -1, 0}}
	ev = build(nonMono)
	if ev.coarse.diskMono {
		t.Fatal("non-monotone fit was verified monotone")
	}

	risingEnv := syntheticDiskProfile()
	risingEnv.Envelope = polyfit.Poly1D{Coeffs: []float64{100, 2}}
	ev = build(risingEnv)
	if ev.coarse.envMono {
		t.Fatal("increasing envelope was verified non-increasing")
	}
}

// TestSetBucketWidth pins the width semantics: default ⌈T/16⌉, explicit
// widths clamped to the series length, negative disables.
func TestSetBucketWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomLoadStateProblem(rng, 4, 50, false)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.BucketWidth(); got != 4 { // ⌈50/16⌉
		t.Fatalf("default bucket width = %d, want 4", got)
	}
	if ev.coarse.nb != 13 { // ⌈50/4⌉
		t.Fatalf("default bucket count = %d, want 13", ev.coarse.nb)
	}
	ev.SetBucketWidth(7)
	if got := ev.BucketWidth(); got != 7 {
		t.Fatalf("explicit bucket width = %d, want 7", got)
	}
	ev.SetBucketWidth(1000)
	if got := ev.BucketWidth(); got != 50 {
		t.Fatalf("oversized bucket width = %d, want clamp to T=50", got)
	}
	if ev.coarse.nb != 1 {
		t.Fatalf("oversized width bucket count = %d, want 1", ev.coarse.nb)
	}
	ev.SetBucketWidth(-1)
	if ev.coarse != nil || ev.BucketWidth() != 0 {
		t.Fatal("negative width did not disable screening")
	}
	ev.SetBucketWidth(0)
	if got := ev.BucketWidth(); got != 4 {
		t.Fatalf("re-enabled bucket width = %d, want 4", got)
	}
}

// TestConflictedBinarySearch cross-checks the sorted-list binary search
// against a naive scan over a problem with replicas and explicit
// anti-affinity.
func TestConflictedBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randomLoadStateProblem(rng, 10, 48, false)
	p.AntiAffinity = [][2]int{{0, 1}, {2, 3}, {0, 4}}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	nU := ev.NumUnits()
	naive := func(a, b int) bool {
		for _, c := range ev.conflicts[a] {
			if c == b {
				return true
			}
		}
		return false
	}
	anyConflict := false
	for a := 0; a < nU; a++ {
		for i := 1; i < len(ev.conflicts[a]); i++ {
			if ev.conflicts[a][i-1] > ev.conflicts[a][i] {
				t.Fatalf("conflicts[%d] not sorted: %v", a, ev.conflicts[a])
			}
		}
		for b := 0; b < nU; b++ {
			want := naive(a, b)
			anyConflict = anyConflict || want
			if got := ev.conflicted(a, b); got != want {
				t.Fatalf("conflicted(%d,%d) = %v, want %v (list %v)", a, b, got, want, ev.conflicts[a])
			}
		}
	}
	if !anyConflict {
		t.Fatal("test problem produced no conflicts; anti-affinity not exercised")
	}
}
