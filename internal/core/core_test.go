package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"kairos/internal/floats"
	"kairos/internal/series"
)

// flatWL builds a workload with constant demands.
func flatWL(name string, cpu, ramGB float64, n int) Workload {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	return Workload{
		Name:     name,
		CPU:      series.Constant(start, step, n, cpu),
		RAMBytes: series.Constant(start, step, n, ramGB*1e9),
		PinTo:    -1,
	}
}

// sineWL builds a workload whose CPU oscillates with the given phase.
func sineWL(name string, base, amp, phase float64, ramGB float64, n int) Workload {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	cpu := series.FromFunc(start, step, n, func(_ time.Time, i int) float64 {
		return base + amp*math.Sin(2*math.Pi*float64(i)/float64(n)+phase)
	})
	return Workload{
		Name:     name,
		CPU:      cpu,
		RAMBytes: series.Constant(start, step, n, ramGB*1e9),
		PinTo:    -1,
	}
}

// machines builds k identical machines.
func machines(k int, cpuCap, ramGB float64) []Machine {
	out := make([]Machine, k)
	for i := range out {
		out[i] = Machine{
			Name:        "m" + string(rune('0'+i%10)),
			CPUCapacity: cpuCap,
			RAMBytes:    ramGB * 1e9,
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	n := 12
	good := &Problem{
		Workloads: []Workload{flatWL("a", 0.2, 1, n)},
		Machines:  machines(2, 1, 8),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Problem)
	}{
		{"no workloads", func(p *Problem) { p.Workloads = nil }},
		{"no machines", func(p *Problem) { p.Machines = nil }},
		{"missing series", func(p *Problem) { p.Workloads[0].CPU = nil }},
		{"shape mismatch", func(p *Problem) {
			p.Workloads[0].RAMBytes = series.Constant(time.Unix(0, 0), 5*time.Minute, n+1, 1)
		}},
		{"too many replicas", func(p *Problem) { p.Workloads[0].Replicas = 3 }},
		{"pin out of range", func(p *Problem) { p.Workloads[0].PinTo = 5 }},
		{"bad machine", func(p *Problem) { p.Machines[0].CPUCapacity = 0 }},
		{"bad headroom", func(p *Problem) { p.Machines[0].Headroom = 1 }},
		{"bad anti-affinity", func(p *Problem) { p.AntiAffinity = [][2]int{{0, 9}} }},
		// Zero, negative or non-finite capacities would divide into the
		// objective and poison every comparison with +Inf/NaN.
		{"negative cpu capacity", func(p *Problem) { p.Machines[0].CPUCapacity = -0.5 }},
		{"NaN cpu capacity", func(p *Problem) { p.Machines[0].CPUCapacity = math.NaN() }},
		{"infinite cpu capacity", func(p *Problem) { p.Machines[0].CPUCapacity = math.Inf(1) }},
		{"zero ram", func(p *Problem) { p.Machines[0].RAMBytes = 0 }},
		{"negative ram", func(p *Problem) { p.Machines[0].RAMBytes = -1e9 }},
		{"NaN ram", func(p *Problem) { p.Machines[0].RAMBytes = math.NaN() }},
		{"NaN headroom", func(p *Problem) { p.Machines[0].Headroom = math.NaN() }},
		{"negative weight", func(p *Problem) { p.Weights = Weights{CPU: 1, RAM: -1, Disk: 1} }},
		{"NaN weight", func(p *Problem) { p.Weights = Weights{CPU: math.NaN(), RAM: 1, Disk: 1} }},
		{"infinite weight", func(p *Problem) { p.Weights = Weights{CPU: math.Inf(1), RAM: 1, Disk: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Problem{
				Workloads: []Workload{flatWL("a", 0.2, 1, n)},
				Machines:  machines(2, 1, 8),
			}
			tc.mut(p)
			if err := p.Validate(); err == nil {
				t.Error("invalid problem accepted")
			}
		})
	}
}

// TestValidateRejectsBadDiskBudget: with a disk model attached, a machine
// without a positive finite disk write budget must be rejected — serverEval
// would otherwise divide by it.
func TestValidateRejectsBadDiskBudget(t *testing.T) {
	n := 12
	mk := func(budget float64) *Problem {
		w := flatWL("a", 0.2, 1, n)
		w.WSBytes = series.Constant(time.Unix(0, 0), 5*time.Minute, n, 1e9)
		w.UpdateRate = series.Constant(time.Unix(0, 0), 5*time.Minute, n, 100)
		ms := machines(2, 1, 8)
		for i := range ms {
			ms[i].DiskWriteBps = budget
		}
		return &Problem{
			Workloads: []Workload{w},
			Machines:  ms,
			Disk:      syntheticDiskProfile(),
		}
	}
	if err := mk(50e6).Validate(); err != nil {
		t.Fatalf("valid disk budget rejected: %v", err)
	}
	for _, budget := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := mk(budget).Validate(); err == nil {
			t.Errorf("disk budget %v accepted", budget)
		}
	}
}

// TestEvalReportOutOfRangeAgreement pins the shared policy for assignments
// outside [0,K): Eval prices them as pin-style violations (penalty,
// infeasible) while contributing no load, which is exactly the unit Report
// drops — a plan can never price feasible yet display a missing workload.
func TestEvalReportOutOfRangeAgreement(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{flatWL("a", 0.2, 1, n), flatWL("b", 0.3, 1, n)},
		Machines:  machines(2, 1, 8),
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, assign := range [][]int{{0, 5}, {0, -1}} {
		obj, feas := ev.Eval(assign, 2)
		if feas {
			t.Errorf("assignment %v priced feasible", assign)
		}
		if obj < penaltyWeight {
			t.Errorf("assignment %v objective %v below the violation penalty", assign, obj)
		}
		report := ev.Report(assign, 2)
		var totalCPU float64
		for _, sl := range report {
			totalCPU += sl.CPUPeak
		}
		if math.Abs(totalCPU-0.2) > 1e-9 {
			t.Errorf("assignment %v: Report places CPU %v, want 0.2 (unit b dropped, like Eval)", assign, totalCPU)
		}
	}
	// In-range assignments stay feasible and unpenalized.
	if obj, feas := ev.Eval([]int{0, 1}, 2); !feas || obj >= penaltyWeight {
		t.Errorf("in-range assignment: obj=%v feasible=%v", obj, feas)
	}
}

func TestSolveTrivialConsolidation(t *testing.T) {
	// Four light workloads fit one machine.
	n := 24
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.1, 1, n), flatWL("b", 0.15, 1, n),
			flatWL("c", 0.2, 1, n), flatWL("d", 0.1, 2, n),
		},
		Machines: machines(4, 1, 16),
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("expected feasible solution")
	}
	if sol.K != 1 {
		t.Errorf("K = %d, want 1 (total CPU 0.55, RAM 5 GB)", sol.K)
	}
	if got := sol.ConsolidationRatio(4); got != 4 {
		t.Errorf("ratio = %v, want 4", got)
	}
}

func TestSolveRespectsCPUCapacity(t *testing.T) {
	// Three workloads of 0.6 CPU each: no two fit together.
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.6, 1, n), flatWL("b", 0.6, 1, n), flatWL("c", 0.6, 1, n),
		},
		Machines: machines(5, 1, 64),
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 3 {
		t.Errorf("K = %d feasible=%v, want 3 machines", sol.K, sol.Feasible)
	}
}

func TestSolveRespectsRAM(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.05, 20, n), flatWL("b", 0.05, 20, n),
			flatWL("c", 0.05, 20, n), flatWL("d", 0.05, 20, n),
		},
		Machines: machines(4, 1, 48), // two 20 GB sets per 48 GB machine
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Errorf("K = %d feasible=%v, want 2 (RAM-bound)", sol.K, sol.Feasible)
	}
}

func TestSolveExploitsTimeVaryingLoad(t *testing.T) {
	// Two anti-phase workloads each peaking at 0.8 CPU but summing to a
	// flat 1.0: only time-aware packing sees they fit one machine.
	n := 48
	p := &Problem{
		Workloads: []Workload{
			sineWL("day", 0.5, 0.3, 0, 1, n),
			sineWL("night", 0.5, 0.3, math.Pi, 1, n),
		},
		Machines: machines(2, 1.05, 16),
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 1 {
		t.Errorf("K = %d feasible=%v, want 1 (anti-phase peaks)", sol.K, sol.Feasible)
	}
	// In-phase versions must not fit: peak 1.6 > 1.05.
	p2 := &Problem{
		Workloads: []Workload{
			sineWL("day1", 0.5, 0.3, 0, 1, n),
			sineWL("day2", 0.5, 0.3, 0, 1, n),
		},
		Machines: machines(2, 1.05, 16),
	}
	sol2, err := Solve(context.Background(), p2, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol2.Feasible || sol2.K != 2 {
		t.Errorf("in-phase: K = %d feasible=%v, want 2", sol2.K, sol2.Feasible)
	}
}

func TestSolveBalancesLoad(t *testing.T) {
	// Six workloads on two machines: the balanced split is 3+3 with equal
	// load, not 4+2.
	n := 12
	var wls []Workload
	for i := 0; i < 6; i++ {
		wls = append(wls, flatWL(string(rune('a'+i)), 0.3, 1, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(2, 1, 32)}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Fatalf("K = %d feasible=%v, want 2", sol.K, sol.Feasible)
	}
	ev, _ := NewEvaluator(p)
	report := ev.Report(sol.Assign, sol.K)
	if math.Abs(report[0].CPUPeak-report[1].CPUPeak) > 1e-9 {
		t.Errorf("unbalanced: %.2f vs %.2f CPU", report[0].CPUPeak, report[1].CPUPeak)
	}
}

func TestReplicationAntiAffinity(t *testing.T) {
	n := 12
	w := flatWL("db", 0.2, 1, n)
	w.Replicas = 3
	p := &Problem{
		Workloads: []Workload{w},
		Machines:  machines(4, 1, 16),
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("replicated workload should be placeable")
	}
	if sol.K != 3 {
		t.Errorf("K = %d, want 3 (three replicas on distinct machines)", sol.K)
	}
	seen := map[int]bool{}
	for _, j := range sol.Assign {
		if seen[j] {
			t.Error("two replicas share a machine")
		}
		seen[j] = true
	}
}

func TestExplicitAntiAffinity(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.1, 1, n), flatWL("b", 0.1, 1, n),
		},
		Machines:     machines(3, 1, 16),
		AntiAffinity: [][2]int{{0, 1}},
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 2 {
		t.Fatalf("K = %d feasible=%v, want 2 (anti-affine pair)", sol.K, sol.Feasible)
	}
	if sol.Assign[0] == sol.Assign[1] {
		t.Error("anti-affine workloads co-located")
	}
}

func TestPinning(t *testing.T) {
	n := 12
	a := flatWL("a", 0.1, 1, n)
	a.PinTo = 2
	p := &Problem{
		Workloads: []Workload{a, flatWL("b", 0.1, 1, n)},
		Machines:  machines(4, 1, 16),
	}
	sol, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("pinned problem should be feasible")
	}
	for u, ref := range sol.Units {
		if ref.Workload == 0 && ref.Replica == 0 && sol.Assign[u] != 2 {
			t.Errorf("pinned workload placed on machine %d, want 2", sol.Assign[u])
		}
	}
}

func TestFixedK(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.2, 1, n), flatWL("b", 0.2, 1, n),
			flatWL("c", 0.2, 1, n), flatWL("d", 0.2, 1, n),
		},
		Machines: machines(4, 1, 16),
	}
	opt := DefaultSolveOptions()
	opt.FixedK = 2
	sol, err := Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sol.K != 2 || !sol.Feasible {
		t.Errorf("FixedK: K = %d feasible=%v", sol.K, sol.Feasible)
	}
	opt.FixedK = 9
	if _, err := Solve(context.Background(), p, opt); err == nil {
		t.Error("FixedK beyond machine count accepted")
	}
}

// TestFixedKRejectsOutOfRangePin: a pin at or beyond FixedK can never be
// honoured; Solve must return an error instead of seeding an out-of-range
// assignment (which used to crash the local search).
func TestFixedKRejectsOutOfRangePin(t *testing.T) {
	n := 12
	a := flatWL("a", 0.1, 1, n)
	b := flatWL("b", 0.1, 1, n)
	b.PinTo = 4
	p := &Problem{Workloads: []Workload{a, b}, Machines: machines(5, 1, 16)}
	opt := DefaultSolveOptions()
	opt.FixedK = 2
	if _, err := Solve(context.Background(), p, opt); err == nil {
		t.Error("FixedK below a pinned machine index accepted")
	}
	// The pin fits when FixedK covers it.
	opt.FixedK = 5
	sol, err := Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Error("pinned FixedK=5 plan infeasible")
	}
}

func TestInfeasibleBoundError(t *testing.T) {
	// Aggregate CPU exceeds everything available.
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.9, 1, n), flatWL("b", 0.9, 1, n), flatWL("c", 0.9, 1, n),
		},
		Machines: machines(2, 1, 16),
	}
	if _, err := Solve(context.Background(), p, DefaultSolveOptions()); err == nil {
		t.Error("over-committed problem should fail the lower-bound check")
	}
}

func TestFractionalLowerBound(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.8, 1, n), flatWL("b", 0.8, 1, n), flatWL("c", 0.8, 1, n),
		},
		Machines: machines(5, 1, 64),
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Total CPU 2.4 → at least 3 machines.
	if got := ev.FractionalLowerBound(); got != 3 {
		t.Errorf("lower bound = %d, want 3", got)
	}
}

func TestHeadroomTightensCapacity(t *testing.T) {
	n := 12
	mk := func(headroom float64) *Problem {
		ms := machines(2, 1, 16)
		for i := range ms {
			ms[i].Headroom = headroom
		}
		return &Problem{
			Workloads: []Workload{flatWL("a", 0.5, 1, n), flatWL("b", 0.48, 1, n)},
			Machines:  ms,
		}
	}
	sol, err := Solve(context.Background(), mk(0), DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.K != 1 {
		t.Errorf("no headroom: K = %d, want 1 (0.98 total)", sol.K)
	}
	sol, err = Solve(context.Background(), mk(0.05), DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.K != 2 {
		t.Errorf("5%% headroom: K = %d, want 2 (0.98 > 0.95)", sol.K)
	}
}

func TestSkipDirectStillSolves(t *testing.T) {
	n := 12
	var wls []Workload
	for i := 0; i < 10; i++ {
		wls = append(wls, flatWL(string(rune('a'+i)), 0.25, 2, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(6, 1, 16)}
	opt := DefaultSolveOptions()
	opt.SkipDirect = true
	sol, err := Solve(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.K != 3 {
		t.Errorf("greedy+hill-climb: K = %d feasible=%v, want 3 (2.5 CPU total)", sol.K, sol.Feasible)
	}
}

func TestObjectivePrefersFewerServers(t *testing.T) {
	// The paper's guarantee: any k−1-server solution scores below any
	// k-server solution (absent violations).
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.2, 1, n), flatWL("b", 0.2, 1, n),
			flatWL("c", 0.2, 1, n), flatWL("d", 0.2, 1, n),
		},
		Machines: machines(4, 1, 32),
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	onOne, _ := ev.Eval([]int{0, 0, 0, 0}, 4)
	balanced2, _ := ev.Eval([]int{0, 0, 1, 1}, 4)
	spread4, _ := ev.Eval([]int{0, 1, 2, 3}, 4)
	if !(onOne < balanced2 && balanced2 < spread4) {
		t.Errorf("objective ordering violated: 1-server=%v 2-server=%v 4-server=%v",
			onOne, balanced2, spread4)
	}
}

func TestObjectivePrefersBalanceAtEqualK(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{
			flatWL("a", 0.3, 1, n), flatWL("b", 0.3, 1, n),
			flatWL("c", 0.3, 1, n), flatWL("d", 0.3, 1, n),
		},
		Machines: machines(2, 2, 32),
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	balanced, _ := ev.Eval([]int{0, 0, 1, 1}, 2)
	skewed, _ := ev.Eval([]int{0, 0, 0, 1}, 2)
	if balanced >= skewed {
		t.Errorf("balance not rewarded: balanced=%v skewed=%v", balanced, skewed)
	}
}

func TestObjectivePenalizesViolation(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{flatWL("a", 0.8, 1, n), flatWL("b", 0.8, 1, n)},
		Machines:  machines(2, 1, 32),
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	together, feas := ev.Eval([]int{0, 0}, 2)
	if feas {
		t.Error("1.6 CPU on one machine reported feasible")
	}
	apart, feas2 := ev.Eval([]int{0, 1}, 2)
	if !feas2 {
		t.Error("split assignment reported infeasible")
	}
	if together < apart+penaltyWeight/2 {
		t.Errorf("violation under-penalized: together=%v apart=%v", together, apart)
	}
}

func TestReportAndMachineWorkloads(t *testing.T) {
	n := 12
	p := &Problem{
		Workloads: []Workload{flatWL("a", 0.3, 1, n), flatWL("b", 0.4, 2, n)},
		Machines:  machines(2, 1, 16),
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	report := ev.Report([]int{0, 0}, 2)
	if !report[0].Used || report[1].Used {
		t.Error("usage flags wrong")
	}
	if math.Abs(report[0].CPUPeak-0.7) > 1e-9 {
		t.Errorf("CPU peak = %v, want 0.7", report[0].CPUPeak)
	}
	if math.Abs(report[0].RAMPeak-3e9) > 1 {
		t.Errorf("RAM peak = %v, want 3e9", report[0].RAMPeak)
	}
	sol := &Solution{Assign: []int{0, 0}, Units: ev.Units(), K: 2}
	mw := sol.MachineWorkloads()
	if len(mw[0]) != 2 || len(mw[1]) != 0 {
		t.Errorf("MachineWorkloads = %v", mw)
	}
}

func TestSolveDeterministic(t *testing.T) {
	n := 24
	var wls []Workload
	for i := 0; i < 8; i++ {
		wls = append(wls, sineWL(string(rune('a'+i)), 0.2, 0.1, float64(i), 1.5, n))
	}
	p := &Problem{Workloads: wls, Machines: machines(5, 1, 16)}
	s1, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(context.Background(), p, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s1.K != s2.K || !floats.Same(s1.Objective, s2.Objective) {
		t.Error("solver should be deterministic")
	}
	for i := range s1.Assign {
		if s1.Assign[i] != s2.Assign[i] {
			t.Fatal("assignments differ between runs")
		}
	}
}

// TestPropertySolutionsVerifiable cross-checks the solver against an
// independent constraint verifier on randomized (but seeded) problems: any
// solution reported feasible must satisfy CPU and RAM peak constraints
// recomputed from scratch, and replicas must land on distinct machines.
func TestPropertySolutionsVerifiable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(8)
		T := 12
		var wls []Workload
		for i := 0; i < n; i++ {
			cpu := 0.05 + rng.Float64()*0.5
			ram := 0.5 + rng.Float64()*8
			w := flatWL(fmt.Sprintf("w%d", i), cpu, ram, T)
			if rng.Float64() < 0.25 {
				w.Replicas = 2
			}
			wls = append(wls, w)
		}
		p := &Problem{Workloads: wls, Machines: machines(2*n, 1, 32)}
		sol, err := Solve(context.Background(), p, DefaultSolveOptions())
		if err != nil {
			// Over-committed random instances are allowed to fail the
			// lower-bound check; nothing to verify.
			continue
		}
		if !sol.Feasible {
			continue
		}
		// Independent verification.
		cpuSum := make(map[int]float64)
		ramSum := make(map[int]float64)
		replicaSpots := make(map[int]map[int]bool)
		for u, j := range sol.Assign {
			ref := sol.Units[u]
			w := wls[ref.Workload]
			cpuSum[j] += w.CPU.Values[0]
			ramSum[j] += w.RAMBytes.Values[0]
			if replicaSpots[ref.Workload] == nil {
				replicaSpots[ref.Workload] = map[int]bool{}
			}
			if replicaSpots[ref.Workload][j] {
				t.Fatalf("trial %d: two replicas of workload %d on machine %d", trial, ref.Workload, j)
			}
			replicaSpots[ref.Workload][j] = true
		}
		for j, c := range cpuSum {
			if c > 1.0+1e-9 {
				t.Fatalf("trial %d: machine %d CPU %v > 1", trial, j, c)
			}
			if ramSum[j] > 32e9+1 {
				t.Fatalf("trial %d: machine %d RAM %v > 32GB", trial, j, ramSum[j])
			}
		}
	}
}
