package core

import (
	"math"
	"sort"
)

// penaltyWeight scales constraint violations so that any violating solution
// scores worse than any feasible one (a feasible K-server solution is at
// most K·e ≈ 2.72·K; violations add penaltyWeight per unit of relative
// excess) — the "constraint violation penalty" wall in Figure 5.
const penaltyWeight = 1e6

// Evaluator computes the consolidation objective for assignments of a fixed
// problem. It precomputes flat per-unit demand arrays so evaluation is tight
// loops over []float64.
type Evaluator struct {
	p       *Problem
	units   []unit
	T       int
	weights Weights

	// Per-unit demand arrays (length T each). Every slice is a window into
	// one contiguous per-resource backing block (SoA layout), so the
	// pricing loops walk sequential memory instead of chasing the original
	// workloads' scattered series buffers.
	cpu  [][]float64
	ram  [][]float64
	ws   [][]float64
	rate [][]float64

	// scale[u] multiplies unit u's demands (per-replica load scaling).
	scale []float64
	// pin[u] is the required machine for unit u, or -1.
	pin []int
	// conflicts[u] lists units that must not share a machine with u,
	// sorted ascending so conflicted can binary-search (it runs inside
	// every PriceAdd/priceExchange call).
	conflicts [][]int
	// slaCapU[u] is the utilization cap unit u's latency SLA imposes on its
	// host machine (1 when the workload declares no SLA).
	slaCapU []float64

	// envKeys/envVals memoize Disk.MaxRowsPerSec keyed by the raw bits of
	// the aggregate working set (direct-mapped, envMemoSize slots). Local
	// search re-prices the same aggregate sums over and over — the remove
	// side of every candidate move, and both sides again on the next sweep —
	// so the envelope polynomial is mostly evaluated on working sets it has
	// already seen. A hit returns exactly the value the polynomial would,
	// so memoization cannot perturb pricing at the bit level. nil when the
	// problem has no saturation envelope. Not safe for concurrent use;
	// Clone gives each worker its own copy.
	envKeys []uint64
	envVals []float64

	// predWS/predRate/predVals memoize Disk.PredictWriteMBps keyed on the
	// raw bit pair of the aggregate (working set, update rate) — the same
	// direct-mapped discipline as the envelope memo. The exact pricing loop
	// evaluates the fitted Poly2D once per time step per candidate, and
	// local search re-prices the same aggregates over and over, so most
	// evaluations hit working points already seen. A hit is bit-identical
	// to the polynomial, so the memo cannot perturb pricing. nil when the
	// problem has no disk model. Not safe for concurrent use; Clone gives
	// each worker its own copy.
	predWS   []uint64
	predRate []uint64
	predVals []float64

	// coarse holds the bucketed per-unit demand extrema backing the
	// coarse-to-fine move screen (see coarse.go); nil disables screening.
	coarse *coarse

	// Per-machine usable capacities after headroom, precomputed so the
	// per-candidate pricers avoid re-deriving them (and copying Machine
	// structs) on every call. Identical bit-for-bit to
	// Machine.capacity(raw).
	capCPU  []float64
	capRAM  []float64
	capDisk []float64

	// Reusable scratch for Eval: per-machine member lists plus one set of
	// aggregate demand buffers, grown once and reused across calls so the
	// thousands of evaluations a DIRECT run performs allocate nothing.
	// Clone resets them — scratch is mutable state and must not be shared
	// across goroutines.
	emMembers                  [][]int
	esCPU, esRAM, esWS, esRate []float64

	// Fevals counts full-assignment evaluations.
	Fevals int
}

// envMemoBits sizes the envelope memo (2^13 slots × 16 bytes = 128 KiB per
// evaluator — small enough to clone per worker, large enough that a sweep's
// working-set values rarely collide).
const envMemoBits = 13

// predMemoBits sizes the disk-prediction memo (2^15 slots × 24 bytes =
// 768 KiB per evaluator). The working points are (ws, rate) pairs — one per
// machine per time step plus the candidate perturbations a sweep prices —
// so the memo is bigger than the envelope's single-key table.
const predMemoBits = 15

// envRateFloor (rows/sec) bounds the denominator of the envelope violation
// term. The clamped envelope can reach exactly 0 for large working sets; a
// positive rate there is a real violation (the disk cannot sustain any
// updates), and the floor keeps its penalty finite instead of dividing by
// zero — or, as the old `maxRate > 0` guard did, skipping the check
// entirely and calling the placement feasible.
const envRateFloor = 1.0

// NewEvaluator validates the problem and prepares the evaluation arrays.
func NewEvaluator(p *Problem) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := p.Weights
	if w.CPU == 0 && w.RAM == 0 && w.Disk == 0 {
		w = DefaultWeights()
	}
	units := p.units()
	ev := &Evaluator{
		p:       p,
		units:   units,
		T:       p.Workloads[0].CPU.Len(),
		weights: w,
		cpu:     make([][]float64, len(units)),
		ram:     make([][]float64, len(units)),
		ws:      make([][]float64, len(units)),
		rate:    make([][]float64, len(units)),
		scale:   make([]float64, len(units)),
		pin:     make([]int, len(units)),
		slaCapU: make([]float64, len(units)),
	}
	// Contiguous per-resource backing blocks (SoA): unit u's series live at
	// [u·T, (u+1)·T), so sweeps that touch many units stream through memory
	// instead of dereferencing each workload's own buffer. Values are copied
	// verbatim — pricing is bit-identical to reading the source series.
	T := ev.T
	cpuBuf := make([]float64, len(units)*T)
	ramBuf := make([]float64, len(units)*T)
	wsBuf := make([]float64, len(units)*T)
	rateBuf := make([]float64, len(units)*T)
	for u, un := range units {
		wl := &p.Workloads[un.w]
		ev.cpu[u] = cpuBuf[u*T : (u+1)*T : (u+1)*T]
		ev.ram[u] = ramBuf[u*T : (u+1)*T : (u+1)*T]
		ev.ws[u] = wsBuf[u*T : (u+1)*T : (u+1)*T]
		ev.rate[u] = rateBuf[u*T : (u+1)*T : (u+1)*T]
		copy(ev.cpu[u], wl.CPU.Values)
		copy(ev.ram[u], wl.RAMBytes.Values)
		if wl.WSBytes != nil {
			copy(ev.ws[u], wl.WSBytes.Values)
		}
		if wl.UpdateRate != nil {
			copy(ev.rate[u], wl.UpdateRate.Values)
		}
		ev.scale[u] = 1
		if un.replica < len(wl.ReplicaLoadScale) {
			ev.scale[u] = wl.ReplicaLoadScale[un.replica]
		}
		ev.pin[u] = -1
		if un.replica == 0 && wl.PinTo >= 0 {
			ev.pin[u] = wl.PinTo
		}
		ev.slaCapU[u] = 1
		if wl.SLA != nil {
			ev.slaCapU[u] = wl.SLA.MaxUtilization()
		}
	}

	// Conflicts: replicas of the same workload, plus explicit pairs.
	byWorkload := map[int][]int{}
	for u, un := range units {
		byWorkload[un.w] = append(byWorkload[un.w], u)
	}
	ev.conflicts = make([][]int, len(units))
	addConflict := func(a, b int) {
		ev.conflicts[a] = append(ev.conflicts[a], b)
		ev.conflicts[b] = append(ev.conflicts[b], a)
	}
	for _, us := range byWorkload {
		for i := 0; i < len(us); i++ {
			for j := i + 1; j < len(us); j++ {
				addConflict(us[i], us[j])
			}
		}
	}
	for _, pair := range p.AntiAffinity {
		for _, a := range byWorkload[pair[0]] {
			for _, b := range byWorkload[pair[1]] {
				addConflict(a, b)
			}
		}
	}
	// Sort each conflict list so conflicted can binary-search. Construction
	// order above is deterministic, and sorting makes the final lists a
	// pure function of the problem regardless of it.
	for _, c := range ev.conflicts {
		sort.Ints(c)
	}
	if p.Disk != nil && p.Disk.HasEnvelope {
		ev.envKeys = make([]uint64, 1<<envMemoBits)
		ev.envVals = make([]float64, 1<<envMemoBits)
		// Seed every slot coherently: key 0 is the bits of ws=+0, so the
		// matching value must be the envelope at 0 for hits to be exact.
		v0 := p.Disk.MaxRowsPerSec(0)
		for i := range ev.envVals {
			ev.envVals[i] = v0
		}
	}
	ev.capCPU = make([]float64, len(p.Machines))
	ev.capRAM = make([]float64, len(p.Machines))
	ev.capDisk = make([]float64, len(p.Machines))
	for j, m := range p.Machines {
		ev.capCPU[j] = m.capacity(m.CPUCapacity)
		ev.capRAM[j] = m.capacity(m.RAMBytes)
		ev.capDisk[j] = m.capacity(m.DiskWriteBps)
	}
	if p.Disk != nil {
		ev.predWS = make([]uint64, 1<<predMemoBits)
		ev.predRate = make([]uint64, 1<<predMemoBits)
		ev.predVals = make([]float64, 1<<predMemoBits)
		// Same coherent seeding as the envelope memo: the zeroed key arrays
		// describe the pair (ws=+0, rate=+0), so every slot must hold the
		// polynomial's value there for hits to be exact.
		v00 := p.Disk.PredictWriteMBps(0, 0)
		for i := range ev.predVals {
			ev.predVals[i] = v00
		}
	}
	ev.SetBucketWidth(0)
	return ev, nil
}

// envMax returns Disk.MaxRowsPerSec(wsBytes) through the per-evaluator memo.
// The memo is keyed on the exact float bits, so a hit is bit-identical to
// evaluating the polynomial; misses fill the slot (direct-mapped, newest
// wins). Zero allocations.
//
//kairos:hotpath
func (ev *Evaluator) envMax(wsBytes float64) float64 {
	if ev.envKeys == nil {
		return ev.p.Disk.MaxRowsPerSec(wsBytes)
	}
	bits := math.Float64bits(wsBytes)
	slot := (bits * 0x9E3779B97F4A7C15) >> (64 - envMemoBits)
	if ev.envKeys[slot] == bits {
		return ev.envVals[slot]
	}
	v := ev.p.Disk.MaxRowsPerSec(wsBytes)
	ev.envKeys[slot] = bits
	ev.envVals[slot] = v
	return v
}

// predict returns Disk.PredictWriteMBps(wsBytes, rowsPerSec) through the
// per-evaluator memo, keyed on the exact bit pair of both arguments — a hit
// is bit-identical to evaluating the fitted polynomial, so memoization
// cannot perturb pricing. Direct-mapped, newest wins, zero allocations.
//
//kairos:hotpath
func (ev *Evaluator) predict(wsBytes, rowsPerSec float64) float64 {
	if ev.predVals == nil {
		return ev.p.Disk.PredictWriteMBps(wsBytes, rowsPerSec)
	}
	wb := math.Float64bits(wsBytes)
	rb := math.Float64bits(rowsPerSec)
	slot := ((wb*0x9E3779B97F4A7C15 ^ rb) * 0xBF58476D1CE4E5B9) >> (64 - predMemoBits)
	if ev.predWS[slot] == wb && ev.predRate[slot] == rb {
		return ev.predVals[slot]
	}
	v := ev.p.Disk.PredictWriteMBps(wsBytes, rowsPerSec)
	ev.predWS[slot] = wb
	ev.predRate[slot] = rb
	ev.predVals[slot] = v
	return v
}

// Clone returns an evaluator that shares ev's immutable problem data (the
// demand arrays, pins, conflict lists and coarse bucket tables are never
// written after NewEvaluator) but counts its own Fevals, so each worker
// goroutine of a parallel solve can evaluate assignments without locking.
// The envelope and disk-prediction memos are mutable state and are
// deep-copied — sharing them across goroutines would race — and the Eval
// scratch buffers are dropped so each clone lazily grows its own. Callers
// that care about totals add the clone's Fevals back deterministically.
func (ev *Evaluator) Clone() *Evaluator {
	c := *ev
	c.Fevals = 0
	if ev.envKeys != nil {
		c.envKeys = append([]uint64(nil), ev.envKeys...)
		c.envVals = append([]float64(nil), ev.envVals...)
	}
	if ev.predVals != nil {
		c.predWS = append([]uint64(nil), ev.predWS...)
		c.predRate = append([]uint64(nil), ev.predRate...)
		c.predVals = append([]float64(nil), ev.predVals...)
	}
	c.emMembers = nil
	c.esCPU, c.esRAM, c.esWS, c.esRate = nil, nil, nil, nil
	return &c
}

// NumUnits returns the number of placement units (workloads × replicas).
func (ev *Evaluator) NumUnits() int { return len(ev.units) }

// Units returns the unit descriptors in assignment order.
func (ev *Evaluator) Units() []UnitRef {
	out := make([]UnitRef, len(ev.units))
	for i, u := range ev.units {
		out[i] = UnitRef{Workload: u.w, Replica: u.replica}
	}
	return out
}

// ServerLoad holds one machine's aggregate demands under an assignment.
type ServerLoad struct {
	Machine  int
	Used     bool
	CPU      []float64 // aggregate CPU over time
	RAMPeak  float64
	CPUPeak  float64
	DiskPeak float64 // predicted write bytes/sec at the worst time step
	// Violation is the summed relative excess over capacity (0 = feasible).
	Violation float64
	// NormLoad is the weighted normalized load in [0,1] used by the
	// balance objective.
	NormLoad float64
}

// accumulateInto zeroes the four sum buffers (each length T) and adds every
// member's scaled demand series. Member order is significant at the bit
// level: LoadState re-materializes sums with the same loop so its canonical
// state matches serverEval exactly.
//
//kairos:hotpath
func (ev *Evaluator) accumulateInto(members []int, cpuSum, ramSum, wsSum, rateSum []float64) {
	T := ev.T
	for t := 0; t < T; t++ {
		cpuSum[t], ramSum[t], wsSum[t], rateSum[t] = 0, 0, 0, 0
	}
	for _, u := range members {
		cu, ru, wu, qu := ev.cpu[u], ev.ram[u], ev.ws[u], ev.rate[u]
		k := ev.scale[u]
		for t := 0; t < T; t++ {
			cpuSum[t] += k * cu[t]
			ramSum[t] += k * ru[t]
			wsSum[t] += k * wu[t]
			rateSum[t] += k * qu[t]
		}
	}
}

// evalSums prices one machine's aggregated demand vectors: resource peaks,
// the summed relative violation and the normalized balance load. slaCap is
// the utilization cap the member set imposes (1 when no member declares an
// SLA). It allocates nothing, so it can run on reusable scratch buffers —
// the LoadState move-pricing hot path.
//
//kairos:hotpath
func (ev *Evaluator) evalSums(j int, cpuSum, ramSum, wsSum, rateSum []float64, slaCap float64) (cpuPeak, ramPeak, diskPeak, viol, norm float64) {
	T := ev.T
	for t := 0; t < T; t++ {
		if cpuSum[t] > cpuPeak {
			cpuPeak = cpuSum[t]
		}
		if ramSum[t] > ramPeak {
			ramPeak = ramSum[t]
		}
	}

	cpuCap := ev.capCPU[j]
	ramCap := ev.capRAM[j]
	if cpuPeak > cpuCap {
		viol += (cpuPeak - cpuCap) / cpuCap
	}
	if ramPeak > ramCap {
		viol += (ramPeak - ramCap) / ramCap
	}

	var diskNorm float64
	if ev.p.Disk != nil {
		diskCap := ev.capDisk[j]
		for t := 0; t < T; t++ {
			pred := ev.predict(wsSum[t], rateSum[t]) * 1e6
			if pred > diskPeak {
				diskPeak = pred
			}
			// Boundary rule (model.EnvelopeFeasible): exactly at the
			// envelope is feasible, and a clamped-to-zero envelope admits
			// only a zero rate — strict excess is always a violation, with
			// the denominator floored so the penalty stays finite.
			if ev.p.Disk.HasEnvelope {
				if maxRate := ev.envMax(wsSum[t]); rateSum[t] > maxRate {
					den := maxRate
					if den < envRateFloor {
						den = envRateFloor
					}
					viol += (rateSum[t] - maxRate) / den / float64(T)
				}
			}
		}
		if diskPeak > diskCap {
			viol += (diskPeak - diskCap) / diskCap
		}
		diskNorm = diskPeak / diskCap
	}

	// Latency SLAs: the strictest member SLA caps this machine's
	// utilization; exceeding it is a violation even when raw capacity
	// would allow more packing.
	if slaCap < 1 {
		util := cpuPeak / cpuCap
		if r := ramPeak / ramCap; r > util {
			util = r
		}
		if diskNorm > util {
			util = diskNorm
		}
		if util > slaCap {
			viol += (util - slaCap) / slaCap
		}
	}

	// Balance term: weighted normalized load, clamped to [0,1] so exp stays
	// within sane numeric range (the paper normalizes the exponent too).
	w := ev.weights
	denom := w.CPU + w.RAM + w.Disk
	norm = (w.CPU*cpuPeak/cpuCap + w.RAM*ramPeak/ramCap + w.Disk*diskNorm) / denom
	if norm > 1 {
		norm = 1
	}
	if norm < 0 {
		norm = 0
	}
	return cpuPeak, ramPeak, diskPeak, viol, norm
}

// serverEval computes one machine's load, violation and objective
// contribution given the member unit set, re-aggregating every member's
// full time series. This is the canonical scratch pricer; LoadState
// maintains the same sums incrementally for the local-search hot path.
func (ev *Evaluator) serverEval(j int, members []int) ServerLoad {
	sl := ServerLoad{Machine: j, Used: len(members) > 0}
	if !sl.Used {
		return sl
	}
	T := ev.T
	cpuSum := make([]float64, T)
	ramSum := make([]float64, T)
	wsSum := make([]float64, T)
	rateSum := make([]float64, T)
	ev.accumulateInto(members, cpuSum, ramSum, wsSum, rateSum)
	cpuPeak, ramPeak, diskPeak, viol, norm := ev.evalSums(j, cpuSum, ramSum, wsSum, rateSum, ev.slaCap(members))
	sl.CPU = cpuSum
	sl.CPUPeak = cpuPeak
	sl.RAMPeak = ramPeak
	sl.DiskPeak = diskPeak
	sl.Violation = viol
	sl.NormLoad = norm
	return sl
}

// contribution converts a server load into its objective term.
func contribution(sl ServerLoad) float64 {
	if !sl.Used {
		return 0
	}
	return math.Exp(sl.NormLoad) + penaltyWeight*sl.Violation
}

// evalScratch returns the per-machine member scratch sized for K machines
// and ensures the aggregate demand buffers exist, growing both once and
// reusing them across calls: DIRECT calls Eval thousands of times per
// solve, and allocating a fresh [][]int plus four sum buffers per machine
// per evaluation dominated its profile. Each slot keeps its backing array
// between calls, so steady-state evaluations allocate nothing.
func (ev *Evaluator) evalScratch(K int) [][]int {
	if cap(ev.emMembers) < K {
		ev.emMembers = make([][]int, K)
	}
	members := ev.emMembers[:K]
	for j := range members {
		members[j] = members[j][:0]
	}
	if len(ev.esCPU) < ev.T {
		ev.esCPU = make([]float64, ev.T)
		ev.esRAM = make([]float64, ev.T)
		ev.esWS = make([]float64, ev.T)
		ev.esRate = make([]float64, ev.T)
	}
	return members
}

// Eval computes the full objective of an assignment over the first K
// machines. An assignment outside [0,K) is a pin-style violation: the unit
// is priced as unplaced (one penaltyWeight, infeasible) and contributes no
// load — exactly the units Report and Plan.String drop — so a plan can
// never price feasible while displaying a missing workload.
//
//kairos:hotpath
func (ev *Evaluator) Eval(assign []int, K int) (obj float64, feasible bool) {
	ev.Fevals++
	members := ev.evalScratch(K) //kairoslint:allow hotcall: allocates only on first growth; steady state is alloc-free and AllocsPerRun-asserted
	feasible = true
	for u, j := range assign {
		if j < 0 || j >= K {
			obj += penaltyWeight
			feasible = false
			continue
		}
		members[j] = append(members[j], u) //kairoslint:allow hotalloc: amortized — scratch keeps capacity across Evals
		if ev.pin[u] >= 0 && ev.pin[u] != j {
			obj += penaltyWeight
			feasible = false
		}
	}
	for j := 0; j < K; j++ {
		// Anti-affinity: count conflicting pairs sharing this machine.
		for ai, a := range members[j] {
			for _, b := range members[j][ai+1:] {
				if ev.conflicted(a, b) {
					obj += penaltyWeight
					feasible = false
				}
			}
		}
		if len(members[j]) == 0 {
			continue
		}
		// Price the machine on the shared scratch buffers — the same
		// accumulation order and pricing as serverEval, minus its per-call
		// allocations (Eval never needs the aggregate CPU series back).
		ev.accumulateInto(members[j], ev.esCPU, ev.esRAM, ev.esWS, ev.esRate)
		_, _, _, viol, norm := ev.evalSums(j, ev.esCPU, ev.esRAM, ev.esWS, ev.esRate, ev.slaCap(members[j]))
		if viol > 0 {
			feasible = false
		}
		obj += math.Exp(norm) + penaltyWeight*viol
	}
	return obj, feasible
}

// conflicted reports whether units a and b must not share a machine.
// conflicts[a] is sorted, so this is a binary search — it runs inside
// every PriceAdd/priceExchange call, where the old linear scan showed up
// on fleets with wide anti-affinity sets.
//
//kairos:hotpath
func (ev *Evaluator) conflicted(a, b int) bool {
	s := ev.conflicts[a]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == b
}

// FitsOneMachine reports whether the given units can share machine j within
// every resource constraint and without anti-affinity conflicts. Baselines
// (the greedy packer) and what-if tools use it directly.
func (ev *Evaluator) FitsOneMachine(j int, units []int) bool {
	for ai, a := range units {
		for _, b := range units[ai+1:] {
			if ev.conflicted(a, b) {
				return false
			}
		}
	}
	return ev.serverEval(j, units).Violation == 0
}

// ServerContrib prices one machine from scratch: the balance and violation
// contribution of the member set plus anti-affinity penalties, re-summing
// every member over all T steps. It is the canonical reference pricer —
// LoadState computes the identical quantity incrementally — and the
// baseline the load-state benchmarks compare against.
func (ev *Evaluator) ServerContrib(j int, members []int) float64 {
	c := contribution(ev.serverEval(j, members))
	for ai, a := range members {
		for _, b := range members[ai+1:] {
			if ev.conflicted(a, b) {
				c += penaltyWeight
			}
		}
	}
	return c
}

// Report computes per-machine loads for a final assignment. Units assigned
// outside [0,K) are dropped, matching Eval's pricing of them as unplaced
// violations.
func (ev *Evaluator) Report(assign []int, K int) []ServerLoad {
	members := make([][]int, K)
	for u, j := range assign {
		if j >= 0 && j < K {
			members[j] = append(members[j], u)
		}
	}
	out := make([]ServerLoad, K)
	for j := 0; j < K; j++ {
		out[j] = ev.serverEval(j, members[j])
	}
	return out
}
