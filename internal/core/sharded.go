package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kairos/internal/floats"
)

// ShardOptions tunes SolveSharded.
type ShardOptions struct {
	// Shards is the number of correlation-aware partitions to solve
	// concurrently (0 derives it from MaxShardWorkloads, or defaults to one
	// shard per DefaultShardWorkloads workloads). A value of 1 degenerates
	// to plain Solve.
	Shards int
	// MaxShardWorkloads caps the workloads per shard when Shards is 0.
	MaxShardWorkloads int
	// Options tunes each shard's solver. Options.Workers is the total
	// worker budget: shards that solve concurrently split it evenly (each
	// shard gets at least one worker).
	Options SolveOptions
	// RebalanceRounds bounds the cross-shard hill-climb sweeps of the merge
	// pass (0 = DefaultRebalanceRounds; negative disables rebalancing and
	// machine-count reduction entirely).
	RebalanceRounds int
}

// DefaultShardWorkloads is the shard size used when ShardOptions leaves
// both Shards and MaxShardWorkloads unset. Solve cost grows superlinearly
// with instance size, so fairly small shards win at fleet scale.
const DefaultShardWorkloads = 32

// DefaultRebalanceRounds is the default cross-shard rebalance sweep budget.
const DefaultRebalanceRounds = 2

// shardCount resolves how many shards to use for n workloads.
func (o ShardOptions) shardCount(n int) int {
	s := o.Shards
	if s <= 0 {
		per := o.MaxShardWorkloads
		if per <= 0 {
			per = DefaultShardWorkloads
		}
		s = (n + per - 1) / per
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// SolveSharded consolidates fleet-scale inventories: it partitions the
// workloads into correlation-aware shards, solves every shard concurrently,
// and merges the per-shard plans with a cross-shard rebalancing pass plus a
// machine-count reduction sweep. It trades a little per-shard optimality
// for near-linear scaling in the fleet size, then claws most of the quality
// back in the merge — unlike SolvePartitioned, the shards are chosen by
// load correlation rather than input order, and the final plan is polished
// globally.
//
// Sharding keys each workload by the correlation of its CPU profile to the
// fleet aggregate and deals the sorted workloads round-robin across shards,
// so every shard receives a representative mix of peak-aligned (hard to
// pack) and off-peak (complementary) workloads.
//
// Pinning and explicit anti-affinity refer to global machine/workload
// indices and are rejected, as in SolvePartitioned; per-workload replicas
// are fine because a workload's replicas always land in the same shard.
// When all machines are identical the shards solve fully concurrently and
// their plans are relabelled onto disjoint machine ranges; a heterogeneous
// machine list falls back to solving shards in sequence, each against the
// machines the previous shards left unused. Cancelling ctx aborts every
// in-flight shard solve and the merge pass, returning ctx.Err().
func SolveSharded(ctx context.Context, p *Problem, opt ShardOptions) (*Solution, error) {
	start := time.Now()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.AntiAffinity) > 0 {
		return nil, fmt.Errorf("core: explicit anti-affinity is not supported with sharded solving")
	}
	for i, w := range p.Workloads {
		if w.PinTo >= 0 {
			return nil, fmt.Errorf("core: workload %d (%s) is pinned; pinning is not supported with sharded solving", i, w.Name)
		}
	}
	nShards := opt.shardCount(len(p.Workloads))
	if nShards <= 1 {
		return Solve(ctx, p, opt.Options)
	}

	shards := correlationShards(p, nShards)
	homogeneous := p.HomogeneousMachines()
	shardOpt := opt.Options
	if w := shardOpt.workers() / nShards; homogeneous {
		// Concurrent shards split the worker budget.
		if w < 1 {
			w = 1
		}
		shardOpt.Workers = w
	}

	type shardPlan struct {
		sol *Solution
		err error
	}
	plans := make([]shardPlan, nShards)
	solveShard := func(i int, machines []Machine) {
		sub := &Problem{
			Workloads: make([]Workload, len(shards[i])),
			Machines:  machines,
			Disk:      p.Disk,
			Weights:   p.Weights,
		}
		for k, w := range shards[i] {
			sub.Workloads[k] = p.Workloads[w]
		}
		sol, err := Solve(ctx, sub, shardOpt)
		if err != nil {
			err = fmt.Errorf("core: shard %d: %w", i, err)
		}
		plans[i] = shardPlan{sol, err}
	}

	if homogeneous {
		// Identical machines are interchangeable: every shard can solve
		// against the full list at once and be relabelled onto its own
		// machine range afterwards.
		var wg sync.WaitGroup
		for i := 0; i < nShards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				solveShard(i, p.Machines)
			}(i)
		}
		wg.Wait()
	} else {
		next := 0
		for i := 0; i < nShards; i++ {
			if next >= len(p.Machines) {
				return nil, fmt.Errorf("core: ran out of machines after %d shards", i)
			}
			solveShard(i, p.Machines[next:])
			if plans[i].err != nil {
				break
			}
			next += plans[i].sol.K
		}
	}
	for i := range plans {
		if plans[i].err != nil {
			return nil, plans[i].err
		}
	}

	// Merge: relabel each shard's machines onto consecutive global ranges
	// and scatter its unit assignments into global unit order.
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	if opt.Options.BucketWidth != 0 {
		// The merge's rebalance/reduction passes screen with the same
		// coarse-pricing configuration as the per-shard solves.
		ev.SetBucketWidth(opt.Options.BucketWidth)
	}
	unitIndex := make(map[UnitRef]int, len(ev.units))
	for gi, u := range ev.units {
		unitIndex[UnitRef{Workload: u.w, Replica: u.replica}] = gi
	}
	assign := make([]int, len(ev.units))
	K := 0
	fevals := 0
	for i, plan := range plans {
		off := K
		for su, j := range plan.sol.Assign {
			ref := plan.sol.Units[su]
			gi, ok := unitIndex[UnitRef{Workload: shards[i][ref.Workload], Replica: ref.Replica}]
			if !ok {
				return nil, fmt.Errorf("core: shard %d produced unknown unit %+v", i, ref)
			}
			assign[gi] = off + j
		}
		K += plan.sol.K
		fevals += plan.sol.Fevals
	}

	// Concurrent homogeneous shards each solve against the full machine
	// list, so their combined K can overshoot the fleet even when a global
	// plan fits — exactly the slack the reduction pass below reclaims. Pad
	// the (identical) machine list so the oversized merge stays evaluable
	// and give reduction its chance before giving up.
	mergeEv := ev
	if K > len(p.Machines) {
		if !homogeneous || opt.RebalanceRounds < 0 {
			return nil, fmt.Errorf("core: shards used %d machines but only %d exist", K, len(p.Machines))
		}
		padded := *p
		padded.Machines = make([]Machine, K)
		for i := range padded.Machines {
			padded.Machines[i] = p.Machines[0]
		}
		mergeEv, err = NewEvaluator(&padded)
		if err != nil {
			return nil, err
		}
		if opt.Options.BucketWidth != 0 {
			mergeEv.SetBucketWidth(opt.Options.BucketWidth)
		}
	}

	// Cross-shard merge: a bounded global hill climb moves units between
	// shards' machines — falling back to 2-exchange swap sweeps when
	// single-unit moves stall, which trades units across shard boundaries
	// even when neither fits alongside the other — then (for
	// interchangeable machines) a reduction sweep tries to empty the
	// lightest machines entirely: the co-location opportunities independent
	// shard solves cannot see.
	if opt.RebalanceRounds >= 0 && K > 0 {
		rounds := opt.RebalanceRounds
		if rounds == 0 {
			rounds = DefaultRebalanceRounds
		}
		assign, _, _ = mergeEv.hillClimbRounds(ctx, assign, K, rounds)
		if homogeneous {
			if reduced, rk := mergeEv.reduceK(assign, K); rk < K {
				// Reduction packs greedily; re-balance the tighter plan.
				assign, K = reduced, rk
				assign, _, _ = mergeEv.hillClimbRounds(ctx, assign, K, rounds)
			}
		}
	}
	if K > len(p.Machines) {
		return nil, fmt.Errorf("core: sharded plan needs %d machines after merging but only %d exist", K, len(p.Machines))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obj, feas := ev.Eval(assign, K)
	if mergeEv != ev {
		fevals += mergeEv.Fevals
	}
	return &Solution{
		Assign:    assign,
		Units:     ev.Units(),
		K:         K,
		Feasible:  feas,
		Objective: obj,
		Fevals:    fevals + ev.Fevals,
		Elapsed:   time.Since(start),
	}, nil
}

// correlationShards partitions workload indices into nShards groups.
// Workloads are ranked by the Pearson correlation of their CPU series to
// the fleet-wide aggregate (peak-aligned load first) and dealt round-robin,
// which spreads the mutually-correlated workloads — the ones that must not
// pile onto one machine — evenly across shards and gives each shard a
// comparable mix of complementary time profiles. Deterministic: ties break
// on the workload index.
func correlationShards(p *Problem, nShards int) [][]int {
	n := len(p.Workloads)
	T := p.Workloads[0].CPU.Len()
	agg := make([]float64, T)
	for i := range p.Workloads {
		for t, v := range p.Workloads[i].CPU.Values {
			agg[t] += v
		}
	}
	type ranked struct {
		w    int
		corr float64
	}
	rank := make([]ranked, n)
	for i := range p.Workloads {
		rank[i] = ranked{w: i, corr: pearson(p.Workloads[i].CPU.Values, agg)}
	}
	sort.SliceStable(rank, func(a, b int) bool {
		if !floats.Same(rank[a].corr, rank[b].corr) {
			return rank[a].corr > rank[b].corr
		}
		return rank[a].w < rank[b].w
	})
	shards := make([][]int, nShards)
	for i, r := range rank {
		s := i % nShards
		shards[s] = append(shards[s], r.w)
	}
	// Within a shard, keep the original workload order so sub-problem
	// construction (and therefore the solve) is independent of the ranking
	// details.
	for _, s := range shards {
		sort.Ints(s)
	}
	return shards
}

// pearson computes the correlation coefficient of two equal-length series
// (0 when either side is constant).
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

// reduceK tries to shrink the machine count of a merged plan: machines are
// visited lightest-first and each one's units are greedily relocated onto
// other machines; when a machine empties completely, the last machine's
// label is folded onto it and K drops. Relocation feasibility is priced in
// O(T) against the incremental LoadState (LoadState.CanPlace) instead of
// re-aggregating every member per candidate (the old FitsOneMachine
// pattern). Only valid for interchangeable (homogeneous) machines.
// Deterministic: visit order and placement order are fixed.
func (ev *Evaluator) reduceK(assign []int, K int) ([]int, int) {
	ls := NewLoadState(ev, assign, K)
	type mload struct {
		j    int
		load float64
	}
	for ls.K() > 1 {
		k := ls.K()
		// Rank machines lightest-first by normalized load (ties: higher
		// index first, so relabelling disturbs less).
		order := make([]mload, k)
		for j := 0; j < k; j++ {
			order[j] = mload{j, ls.NormLoad(j)}
		}
		sort.SliceStable(order, func(a, b int) bool {
			if !floats.Same(order[a].load, order[b].load) {
				return order[a].load < order[b].load
			}
			return order[a].j > order[b].j
		})
		reduced := false
		for _, cand := range order {
			j := cand.j
			if ls.MemberCount(j) == 0 {
				// Already empty: fold the last machine onto it.
				ls.Fold(j)
				reduced = true
				break
			}
			// Tentatively relocate every unit of machine j elsewhere; the
			// moves apply to the live state and are rolled back if any unit
			// fails to place. The shrinking source j is never priced
			// mid-trial, so its re-materialization is deferred: Fold retires
			// its state on success, the restore below rebuilds it on
			// failure. Destinations re-materialize per move — later
			// CanPlace checks price against them.
			units := append([]int(nil), ls.Members(j)...)
			moved := make([]int, 0, len(units))
			placedAll := true
			for _, u := range units {
				placed := false
				for to := 0; to < k && !placed; to++ {
					if to == j {
						continue
					}
					if ls.CanPlace(u, to) {
						ls.move(u, to, false, true)
						moved = append(moved, u)
						placed = true
					}
				}
				if !placed {
					placedAll = false
					break
				}
			}
			if placedAll {
				ls.Fold(j)
				reduced = true
				break
			}
			// Roll back with all re-materialization deferred — nothing is
			// priced mid-rollback — then rebuild each touched machine once:
			// the trial hosts, and machine j restored to its original member
			// order so later pricing is bit-identical to the pre-trial
			// state.
			dirty := make([]bool, k)
			for i := len(moved) - 1; i >= 0; i-- {
				u := moved[i]
				dirty[ls.Assign(u)] = true
				ls.move(u, j, false, false)
			}
			ls.members[j] = append(ls.members[j][:0], units...)
			ls.rematerialize(j)
			for to := 0; to < k; to++ {
				if dirty[to] {
					ls.rematerialize(to)
				}
			}
		}
		if !reduced {
			break
		}
	}
	return ls.Assignment(), ls.K()
}
