package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// This file implements rolling re-consolidation: warm-started re-solves
// that reuse the previous plan instead of solving from greedy/round-robin
// seeds every time. The paper's consolidation is a one-shot solve, but its
// own premise — workloads drift week to week (Section 4's forecasting) —
// means a production fleet is re-consolidated continuously. A good re-solve
// starts from the incumbent plan, charges for migrations rather than
// ignoring them, and only then polishes (the rolling re-provisioning
// concern of WiSeDB and of database-agnostic workload management).

// Incumbent is a previously computed consolidation plan in a durable form:
// it can be saved, reloaded in a later process, and used to warm-start
// Resolve against a drifted version of the fleet. Units are identified by
// workload name (plus replica number) so the mapping survives workloads
// being reordered, added or removed between runs; the index at save time is
// kept as a fallback for unnamed fleets.
type Incumbent struct {
	// K is the machine count of the incumbent plan.
	K int `json:"k"`
	// Units records where each placement unit ran.
	Units []IncumbentUnit `json:"units"`
}

// IncumbentUnit is one placement of an Incumbent.
type IncumbentUnit struct {
	// Workload names the unit's workload. Matching across runs is by name
	// when every workload name in the new problem is unique and non-empty,
	// by Index otherwise.
	Workload string `json:"workload"`
	// Index is the workload's index at the time the plan was computed.
	Index int `json:"index"`
	// Replica is the unit's replica number.
	Replica int `json:"replica"`
	// Machine is the machine index the unit was assigned to.
	Machine int `json:"machine"`
	// MachineName names that machine (empty for unnamed machine lists).
	// Matching across runs prefers the name when both sides carry unique
	// non-empty machine names, so a reordered machine list cannot silently
	// seed units onto different hardware.
	MachineName string `json:"machine_name,omitempty"`
}

// IncumbentFromSolution captures a solution of problem p as an incumbent
// plan for later warm-started re-solves.
func IncumbentFromSolution(p *Problem, sol *Solution) *Incumbent {
	inc := &Incumbent{K: sol.K, Units: make([]IncumbentUnit, len(sol.Assign))}
	for i, j := range sol.Assign {
		ref := sol.Units[i]
		inc.Units[i] = IncumbentUnit{
			Workload: p.Workloads[ref.Workload].Name,
			Index:    ref.Workload,
			Replica:  ref.Replica,
			Machine:  j,
		}
		if j >= 0 && j < len(p.Machines) {
			inc.Units[i].MachineName = p.Machines[j].Name
		}
	}
	return inc
}

// Save writes the incumbent as indented JSON (the `kairos consolidate
// -save-plan` format).
func (inc *Incumbent) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(inc)
}

// LoadIncumbent reads an incumbent saved by Save.
func LoadIncumbent(r io.Reader) (*Incumbent, error) {
	var inc Incumbent
	if err := json.NewDecoder(r).Decode(&inc); err != nil {
		return nil, fmt.Errorf("core: decoding incumbent plan: %w", err)
	}
	if inc.K <= 0 || len(inc.Units) == 0 {
		return nil, fmt.Errorf("core: incumbent plan is empty (k=%d, %d units)", inc.K, len(inc.Units))
	}
	return &inc, nil
}

// DefaultResolveOptions returns the standard warm-restart knobs: a small
// migration weight so plans stay sticky under drift without freezing.
func DefaultResolveOptions() SolveOptions {
	o := DefaultSolveOptions()
	o.MigrationWeight = 0.05
	return o
}

// migration is the warm-restart pricing context threaded through the hill
// climb: the incumbent machine per unit, the per-unit cost charged while a
// unit sits away from its incumbent, and an optional cap on how many units
// may be away at once. All methods are nil-receiver safe — a nil *migration
// (cold solves) prices and permits everything as before.
type migration struct {
	// home[u] is unit u's incumbent machine, or -1 for units with no
	// incumbent (new workloads, or incumbents outside the current K).
	home []int
	// cost[u] is the objective charge while u is away from home[u].
	cost []float64
	// limit caps the number of units away from home (0 = unlimited).
	limit int
	// away counts units currently away from home; kept in lockstep with
	// accepted moves via note().
	away int
}

// delta returns the migration-cost change of moving unit u from→to.
func (m *migration) delta(u, from, to int) float64 {
	if m == nil || m.cost == nil {
		return 0
	}
	switch h := m.home[u]; {
	case h < 0:
		return 0
	case from == h:
		return m.cost[u]
	case to == h:
		return -m.cost[u]
	}
	return 0
}

// awayDelta returns how the away count changes if unit u moves from→to.
func (m *migration) awayDelta(u, from, to int) int {
	if m == nil {
		return 0
	}
	switch h := m.home[u]; {
	case h < 0:
		return 0
	case from == h:
		return 1
	case to == h:
		return -1
	}
	return 0
}

// allows reports whether a move changing the away count by d fits the cap.
func (m *migration) allows(d int) bool {
	return m == nil || m.limit <= 0 || m.away+d <= m.limit
}

// note records an accepted move's away-count change.
func (m *migration) note(d int) {
	if m != nil {
		m.away += d
	}
}

// syncAway recomputes the away count from an assignment (used after passes
// that bypass the climb's bookkeeping, like machine-count reduction).
func (m *migration) syncAway(assign []int) {
	if m == nil {
		return
	}
	m.away = 0
	for u, h := range m.home {
		if h >= 0 && assign[u] != h {
			m.away++
		}
	}
}

// tally returns the migration count and total cost of a final assignment.
func (m *migration) tally(assign []int) (migrated int, cost float64) {
	if m == nil {
		return 0, 0
	}
	for u, h := range m.home {
		if h >= 0 && assign[u] != h {
			migrated++
			if m.cost != nil {
				cost += m.cost[u]
			}
		}
	}
	return migrated, cost
}

// newMigration builds the migration context for a warm re-solve. Unit
// migration costs scale with the unit's peak working set (its RAM peak when
// the problem carries no working-set series) relative to the fleet mean, so
// moving a heavy database costs proportionally more than a light one.
func (ev *Evaluator) newMigration(home []int, opt SolveOptions) *migration {
	m := &migration{home: home, limit: opt.MaxMigrations}
	if opt.MigrationWeight > 0 {
		nU := len(ev.units)
		sizes := make([]float64, nU)
		var mean float64
		for u := 0; u < nU; u++ {
			peak := 0.0
			for _, v := range ev.ws[u] {
				if v > peak {
					peak = v
				}
			}
			if peak == 0 {
				for _, v := range ev.ram[u] {
					if v > peak {
						peak = v
					}
				}
			}
			sizes[u] = peak * ev.scale[u]
			mean += sizes[u]
		}
		mean /= float64(nU)
		m.cost = make([]float64, nU)
		for u := range m.cost {
			if mean > 0 {
				m.cost[u] = opt.MigrationWeight * sizes[u] / mean
			} else {
				m.cost[u] = opt.MigrationWeight
			}
		}
	}
	return m
}

// clampIncumbentK maps an incumbent plan's machine count onto the current
// problem: clamped to the machines that exist, at least 1, and raised past
// every pin (Validate guarantees pin < len(p.Machines)). Resolve and
// PriceIncumbent share it so the stale-plan pricing and the warm re-solve
// always start from the same K.
func (ev *Evaluator) clampIncumbentK(p *Problem, incK int) int {
	K := incK
	if maxK := len(p.Machines); K > maxK {
		K = maxK
	}
	if K < 1 {
		K = 1
	}
	for _, pin := range ev.pin {
		if pin >= K {
			K = pin + 1
		}
	}
	return K
}

// warmSeed maps the incumbent plan onto the current problem's units: each
// matched unit starts on its incumbent machine (its "home"), and units with
// no usable incumbent — new workloads, extra replicas, or incumbents on
// machines that no longer exist — are placed one by one on whichever
// machine prices cheapest. Workloads are matched by name (falling back to
// index for unnamed fleets), and incumbent machines likewise remap by
// machine name when both sides carry unique non-empty names, so reordering
// either list between runs cannot seed units onto different hardware.
// Returns the seed assignment and the per-unit home array (-1 for the free
// units). Pins always win over incumbents: a pinned unit's home IS its pin,
// so forced pin changes are never priced or capped as migrations.
func (ev *Evaluator) warmSeed(p *Problem, inc *Incumbent, K int) (seed, home []int) {
	byName := make(map[string]int, len(p.Workloads))
	uniqueNames := true
	for i, w := range p.Workloads {
		if w.Name == "" {
			uniqueNames = false
			break
		}
		if _, dup := byName[w.Name]; dup {
			uniqueNames = false
			break
		}
		byName[w.Name] = i
	}
	machByName := make(map[string]int, len(p.Machines))
	machNamesUnique := true
	for j, m := range p.Machines {
		if m.Name == "" {
			machNamesUnique = false
			break
		}
		if _, dup := machByName[m.Name]; dup {
			machNamesUnique = false
			break
		}
		machByName[m.Name] = j
	}
	unitIndex := make(map[UnitRef]int, len(ev.units))
	for gi, un := range ev.units {
		unitIndex[UnitRef{Workload: un.w, Replica: un.replica}] = gi
	}

	home = make([]int, len(ev.units))
	for u := range home {
		home[u] = -1
	}
	for _, iu := range inc.Units {
		w := iu.Index
		if uniqueNames {
			found, ok := byName[iu.Workload]
			if !ok {
				continue // workload removed since the incumbent plan
			}
			w = found
		} else if w < 0 || w >= len(p.Workloads) {
			continue
		}
		gi, ok := unitIndex[UnitRef{Workload: w, Replica: iu.Replica}]
		if !ok {
			continue // replica count shrank
		}
		m := iu.Machine
		if machNamesUnique && iu.MachineName != "" {
			found, ok := machByName[iu.MachineName]
			if !ok {
				continue // machine removed since the incumbent plan
			}
			m = found
		}
		if m < 0 || m >= K {
			continue // incumbent machine outside the current range
		}
		home[gi] = m
	}
	// A pinned unit's placement is not a churn decision: its home is its
	// pin, so a pin that changed since the incumbent plan neither charges
	// migration cost nor consumes the MaxMigrations budget.
	for u := range home {
		if ev.pin[u] >= 0 {
			home[u] = ev.pin[u]
		}
	}

	seed = make([]int, len(ev.units))
	var free []int
	for u := range seed {
		switch {
		case home[u] >= 0:
			seed[u] = home[u]
		default:
			seed[u] = 0
			free = append(free, u)
		}
	}
	if len(free) == 0 {
		return seed, home
	}
	// Place the free units greedily against the warm state: each takes the
	// single-unit move that prices cheapest from its provisional slot on
	// machine 0. Deterministic (unit order, then machine order).
	ls := NewLoadState(ev, seed, K)
	for _, u := range free {
		if j := ev.bestMove(ls, u, K, nil); j != ls.Assign(u) {
			ls.Move(u, j)
		}
	}
	return ls.Assignment(), home
}

// PriceIncumbent evaluates an incumbent plan against problem p without
// re-solving: units are matched to their incumbent machines exactly as
// Resolve's warm seed does (by workload name with index fallback, machine
// names remapped when unique), unmatched units are placed greedily, and
// the resulting assignment is priced once with the canonical objective.
// It answers "how good is the current plan on this (drifted or forecast)
// fleet?" — the before side of a re-consolidation decision — at the cost
// of one evaluation instead of a solve. The returned K is the incumbent's
// machine count clamped the same way Resolve clamps it.
func PriceIncumbent(p *Problem, inc *Incumbent) (obj float64, feasible bool, K int, err error) {
	if inc == nil || inc.K <= 0 || len(inc.Units) == 0 {
		return 0, false, 0, fmt.Errorf("core: PriceIncumbent needs a non-empty incumbent plan")
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		return 0, false, 0, err
	}
	K = ev.clampIncumbentK(p, inc.K)
	seed, _ := ev.warmSeed(p, inc, K)
	obj, feasible = ev.Eval(seed, K)
	return obj, feasible, K, nil
}

// SolutionFromIncumbent materializes an incumbent plan as a full Solution
// against problem p without solving: units map to their incumbent
// machines exactly as Resolve's warm seed does, unmatched units place
// greedily, and the assignment is priced once. It is the recovery path's
// way of rebuilding a published plan from its durable form — the solve
// that produced the incumbent already ran before the crash, so replay
// must reconstruct its outcome, not repeat its search.
func SolutionFromIncumbent(p *Problem, inc *Incumbent) (*Solution, error) {
	if inc == nil || inc.K <= 0 || len(inc.Units) == 0 {
		return nil, fmt.Errorf("core: SolutionFromIncumbent needs a non-empty incumbent plan")
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	K := ev.clampIncumbentK(p, inc.K)
	seed, _ := ev.warmSeed(p, inc, K)
	obj, feasible := ev.Eval(seed, K)
	return &Solution{
		Assign:    seed,
		Units:     ev.Units(),
		K:         K,
		Feasible:  feasible,
		Objective: obj,
		Fevals:    1,
	}, nil
}

// Resolve computes a consolidation plan for p warm-started from an
// incumbent plan (rolling re-consolidation): the solver seeds from the
// incumbent's placements, prices migrations into the hill climb per
// SolveOptions.MigrationWeight/MaxMigrations, and polishes with the same
// move+swap local search Solve uses — no DIRECT run, no binary search over
// K. When no migration cap is set, the cold seeds (greedy packing and
// round-robin) also enter as candidates, so a warm re-solve can never
// return a worse combined plan (objective plus migration cost) than the
// cold local-search path at the same machine count; with a positive
// migration weight those candidates pay for every unit they displace, and
// the incumbent-seeded plan wins unless re-packing truly earns its churn.
// On a mildly drifted fleet this matches the cold solve's plan quality
// with far fewer objective evaluations, migrating only the units that pay
// for their move.
//
// The machine count starts at the incumbent's K (clamped to the available
// machines), grows one machine at a time while the plan is infeasible, and
// — when machines are interchangeable and no migration cap is set —
// shrinks through the same reduction pass the sharded merge uses.
// Solution.Objective is the canonical consolidation objective (no
// migration term), so warm and cold plans are directly comparable;
// Solution.Migrated and Solution.MigrationCost report the migration side.
// Deterministic for any SolveOptions.Workers value. Cancelling ctx aborts
// the re-solve between pricing units and returns ctx.Err().
func Resolve(ctx context.Context, p *Problem, inc *Incumbent, opt SolveOptions) (*Solution, error) {
	start := time.Now()
	if inc == nil || inc.K <= 0 || len(inc.Units) == 0 {
		return nil, fmt.Errorf("core: Resolve needs a non-empty incumbent plan")
	}
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	if opt.BucketWidth != 0 {
		ev.SetBucketWidth(opt.BucketWidth)
	}
	maxK := len(p.Machines)
	K := ev.clampIncumbentK(p, inc.K)

	seed, home := ev.warmSeed(p, inc, K)
	mig := ev.newMigration(home, opt)
	const rounds = 100

	type cand struct {
		assign   []int
		obj      float64
		feas     bool
		combined float64 // objective + migration cost, the selection metric
	}
	climb := func(from []int) cand {
		mig.syncAway(from)
		a, o, f := ev.hillClimbMig(ctx, from, K, rounds, mig)
		_, cost := mig.tally(a)
		return cand{assign: a, obj: o, feas: f, combined: o + cost}
	}

	cands := []cand{climb(seed)}
	if opt.MaxMigrations <= 0 {
		// Cold seeds as safety net (they start fully migrated, so a
		// migration cap rules them out): exactly the seeds solveK climbs
		// from, via the shared helper.
		for _, a := range ev.coldSeeds(K, opt.workers()) {
			cands = append(cands, climb(a))
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if (c.feas && !best.feas) || (c.feas == best.feas && c.combined < best.combined) {
			best = c
		}
	}
	assign, obj, feas := best.assign, best.obj, best.feas

	// Drift can make the incumbent K infeasible; grow until the climb finds
	// a feasible plan (fresh machines start empty, so the next climb can
	// offload the violating units onto them).
	for !feas && K < maxK {
		K++
		mig.syncAway(assign)
		assign, obj, feas = ev.hillClimbMig(ctx, assign, K, rounds, mig)
	}
	// Drift the other way can free a machine; reclaim it with the reduction
	// pass when machines are interchangeable. Reduction relocates whole
	// machines, so it only runs without a migration cap.
	if feas && opt.MaxMigrations <= 0 && p.HomogeneousMachines() {
		if reduced, rk := ev.reduceK(assign, K); rk < K {
			assign, K = reduced, rk
			mig.syncAway(assign)
			assign, obj, feas = ev.hillClimbMig(ctx, assign, K, rounds, mig)
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol := ev.finish(p, assign, K, obj, feas, start)
	sol.Migrated, sol.MigrationCost = mig.tally(assign)
	return sol, nil
}
