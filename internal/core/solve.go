package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"kairos/internal/direct"
	"kairos/internal/greedy"
)

// SolveOptions tunes the consolidation solver.
type SolveOptions struct {
	// DirectFevals is the DIRECT evaluation budget per K probed during the
	// binary search (default 2000).
	DirectFevals int
	// PolishFevals is the extra DIRECT budget for the final K (default
	// 2·DirectFevals).
	PolishFevals int
	// FixedK forces the solver to use exactly this many machines (0 = find
	// the minimum feasible K automatically).
	FixedK int
	// SkipDirect uses only greedy seeding plus hill climbing — the fast
	// path for very large instances.
	SkipDirect bool
	// Workers is the solver's evaluation parallelism: DIRECT candidate
	// batches and greedy seeding fan out across this many goroutines, and
	// the binary search over the machine count probes the speculative next
	// K values concurrently, cancelling losers (0 or 1 = fully sequential).
	// The computed plan is identical for every worker count — parallelism
	// only changes wall-clock time — so results stay reproducible.
	Workers int
	// MigrationWeight prices warm-restart migrations (Resolve only): a unit
	// placed away from its incumbent machine charges
	// MigrationWeight · (its peak working set / the fleet's mean peak
	// working set) on top of the balance objective, so heavy databases are
	// stickier than light ones. 0 disables migration pricing. Cold solves
	// (Solve, SolveSharded) ignore it — they have no incumbent.
	MigrationWeight float64
	// MaxMigrations caps how many units a warm re-solve may leave away from
	// their incumbent machine (Resolve only; 0 = unlimited). With a cap
	// set, Resolve skips the machine-count reduction pass, which migrates
	// whole machines at a time.
	MaxMigrations int
	// BucketWidth sets the coarse-pricing bucket width in time steps for
	// the local search's move screen (see Evaluator.SetBucketWidth): 0 uses
	// the default ⌈T/16⌉, a positive value is used as given, and a negative
	// value disables screening so every candidate is priced exactly. The
	// computed plan is bit-identical for every setting — the screen only
	// prunes candidates whose priced delta provably could not win.
	BucketWidth int
}

// workers normalizes the Workers option.
func (o SolveOptions) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// DefaultSolveOptions returns the standard budgets.
func DefaultSolveOptions() SolveOptions {
	return SolveOptions{DirectFevals: 2000}
}

// ParallelSolveOptions returns the standard budgets with one solver worker
// per available CPU.
func ParallelSolveOptions() SolveOptions {
	o := DefaultSolveOptions()
	o.Workers = runtime.GOMAXPROCS(0)
	return o
}

// kCandidate is a feasible plan found while searching the machine count.
type kCandidate struct {
	assign []int
	obj    float64
	k      int
}

// Solve finds a consolidation plan: the minimum feasible machine count K'
// via binary search between the fractional lower bound and the greedy upper
// bound, then the most balanced assignment on K' machines (paper Section 6).
// Cancelling ctx aborts the solve between pricing units and returns
// ctx.Err(); the partial state is discarded.
func Solve(ctx context.Context, p *Problem, opt SolveOptions) (*Solution, error) {
	start := time.Now()
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	if opt.BucketWidth != 0 {
		ev.SetBucketWidth(opt.BucketWidth)
	}
	if opt.DirectFevals <= 0 {
		opt.DirectFevals = 2000
	}
	if opt.PolishFevals <= 0 {
		opt.PolishFevals = 2 * opt.DirectFevals
	}

	maxK := len(p.Machines)
	lo := ev.FractionalLowerBound()
	if lo > maxK {
		return nil, fmt.Errorf("core: fractional lower bound %d exceeds available machines %d", lo, maxK)
	}
	// Pinning forces machines up to the highest pinned index.
	for _, pin := range ev.pin {
		if pin >= 0 && pin+1 > lo {
			lo = pin + 1
		}
	}

	if opt.FixedK > 0 {
		if opt.FixedK > maxK {
			return nil, fmt.Errorf("core: FixedK %d exceeds available machines %d", opt.FixedK, maxK)
		}
		// A pin outside [0,FixedK) can never be honoured: every seed would
		// place the unit out of range. (Probing an infeasible-but-in-range
		// FixedK is still allowed; it returns Feasible=false.)
		for u, pin := range ev.pin {
			if pin >= opt.FixedK {
				return nil, fmt.Errorf("core: FixedK %d cannot honour workload unit %d pinned to machine %d", opt.FixedK, u, pin)
			}
		}
		assign, objv, feas := ev.solveK(ctx, opt.FixedK, opt, true)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return ev.finish(p, assign, opt.FixedK, objv, feas, start), nil
	}

	// Upper bound: greedy packing (validated against all constraints); if
	// greedy fails, fall back to every available machine.
	hi := maxK
	if bins, ok := ev.greedySeed(maxK, opt.workers()); ok {
		hi = len(bins)
	}
	if hi < lo {
		hi = lo
	}

	// Binary search the smallest feasible K. Feasibility at K is decided by
	// a budgeted solve; the search keeps the best feasible solution found.
	var found *kCandidate
	if opt.workers() > 1 {
		found = ev.searchKSpeculative(ctx, lo, hi, opt, &lo)
	} else {
		for lo < hi {
			mid := (lo + hi) / 2
			assign, objv, feas := ev.solveK(ctx, mid, opt, false)
			if feas {
				found = &kCandidate{assign: assign, obj: objv, k: mid}
				hi = mid
			} else {
				lo = mid + 1
			}
		}
	}
	kStar := lo
	// Final run at K' with the polish budget.
	assign, objv, feas := ev.solveK(ctx, kStar, opt, true)
	if !feas && found != nil && found.k == kStar {
		assign, objv, feas = found.assign, found.obj, true
	}
	if !feas && kStar < maxK {
		// The bound search can be misled by budgeted solves; walk K upward
		// until feasible.
		for k := kStar + 1; k <= maxK; k++ {
			assign, objv, feas = ev.solveK(ctx, k, opt, true)
			if feas {
				kStar = k
				break
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ev.finish(p, assign, kStar, objv, feas, start), nil
}

// searchKSpeculative runs the binary search over the machine count with
// speculative parallel probing: while the current midpoint K solves, the
// midpoints of both possible next intervals solve concurrently on cloned
// evaluators, and probes that fall outside the interval once the current
// result lands are cancelled via their context. The sequence of consumed
// probes is exactly the sequential binary search's, and every probe is a
// deterministic function of its K, so the outcome (including Fevals, which
// only counts consumed probes) is identical to the sequential path. The
// final interval low bound is written to *loOut. Probe contexts derive
// from the caller's ctx, so cancelling it aborts every in-flight probe.
func (ev *Evaluator) searchKSpeculative(ctx context.Context, lo, hi int, opt SolveOptions, loOut *int) *kCandidate {
	type probeRes struct {
		assign []int
		obj    float64
		feas   bool
		fevals int
	}
	type future struct {
		cancel context.CancelFunc
		ch     chan probeRes
	}
	// Up to three probes (the current mid plus both speculative next mids)
	// run at once; splitting the worker budget across them keeps the
	// search's total goroutine count at ~Workers. Which workers a probe
	// gets never changes its result, only its wall clock.
	probeOpt := opt
	if probeOpt.Workers = opt.workers() / 3; probeOpt.Workers < 1 {
		probeOpt.Workers = 1
	}
	launch := func(K int) *future {
		pctx, cancel := context.WithCancel(ctx)
		f := &future{cancel: cancel, ch: make(chan probeRes, 1)}
		pe := ev.Clone()
		go func() {
			a, o, feas := pe.solveK(pctx, K, probeOpt, false)
			f.ch <- probeRes{a, o, feas, pe.Fevals}
		}()
		return f
	}
	futures := map[int]*future{}
	ensure := func(K int) *future {
		if f, ok := futures[K]; ok {
			return f
		}
		f := launch(K)
		futures[K] = f
		return f
	}
	defer func() {
		for _, f := range futures {
			f.cancel()
		}
	}()

	var found *kCandidate
	for lo < hi {
		mid := (lo + hi) / 2
		cur := ensure(mid)
		// Speculate both possible next probes while mid solves.
		if next := (lo + mid) / 2; next < mid {
			ensure(next)
		}
		if next := (mid + 1 + hi) / 2; next > mid && next < hi {
			ensure(next)
		}
		r := <-cur.ch
		cur.cancel()
		delete(futures, mid)
		ev.Fevals += r.fevals
		if r.feas {
			found = &kCandidate{assign: r.assign, obj: r.obj, k: mid}
			hi = mid
		} else {
			lo = mid + 1
		}
		// The interval moved: probes outside it can never be consumed.
		for K, f := range futures {
			if K < lo || K >= hi {
				f.cancel()
				delete(futures, K)
			}
		}
	}
	*loOut = lo
	return found
}

// finish assembles the Solution.
func (ev *Evaluator) finish(p *Problem, assign []int, k int, obj float64, feasible bool, start time.Time) *Solution {
	return &Solution{
		Assign:    assign,
		Units:     ev.Units(),
		K:         k,
		Feasible:  feasible,
		Objective: obj,
		Fevals:    ev.Fevals,
		Elapsed:   time.Since(start),
	}
}

// FractionalLowerBound computes the paper's optimistic bound: workloads are
// divisible and resources independent, so K must be at least the peak
// aggregate demand of each resource divided by per-machine capacity.
func (ev *Evaluator) FractionalLowerBound() int {
	T := ev.T
	cpuSum := make([]float64, T)
	ramSum := make([]float64, T)
	wsSum := make([]float64, T)
	rateSum := make([]float64, T)
	for u := range ev.units {
		for t := 0; t < T; t++ {
			cpuSum[t] += ev.cpu[u][t]
			ramSum[t] += ev.ram[u][t]
			wsSum[t] += ev.ws[u][t]
			rateSum[t] += ev.rate[u][t]
		}
	}
	m := ev.p.Machines[0]
	k := 1
	for t := 0; t < T; t++ {
		if need := int(math.Ceil(cpuSum[t] / m.capacity(m.CPUCapacity))); need > k {
			k = need
		}
		if need := int(math.Ceil(ramSum[t] / m.capacity(m.RAMBytes))); need > k {
			k = need
		}
	}
	if ev.p.Disk != nil {
		diskCap := m.capacity(m.DiskWriteBps)
		for t := 0; t < T; t++ {
			// Smallest split count making the disk model feasible; the
			// profile is monotone in both arguments, so scan upward.
			for n := k; n <= len(ev.p.Machines); n++ {
				pred := ev.p.Disk.PredictWriteMBps(wsSum[t]/float64(n), rateSum[t]/float64(n)) * 1e6
				ok := pred <= diskCap
				if ok && ev.p.Disk.HasEnvelope {
					// Boundary rule (model.EnvelopeFeasible): at the
					// envelope is feasible, beyond it is not.
					ok = rateSum[t]/float64(n) <= ev.envMax(wsSum[t]/float64(n))
				}
				if ok {
					if n > k {
						k = n
					}
					break
				}
				if n == len(ev.p.Machines) && n > k {
					k = n
				}
			}
		}
	}
	return k
}

// greedySeed packs units with the paper's single-resource greedy baseline,
// using the full multi-resource feasibility check, and returns bins. With
// workers > 1 the per-resource packings run concurrently, each against its
// own evaluator clone.
func (ev *Evaluator) greedySeed(maxBins, workers int) ([][]int, bool) {
	nU := len(ev.units)
	peak := func(vals [][]float64) []float64 {
		out := make([]float64, nU)
		for u := 0; u < nU; u++ {
			for _, v := range vals[u] {
				if v > out[u] {
					out[u] = v
				}
			}
		}
		return out
	}
	loads := [][]float64{peak(ev.cpu), peak(ev.ram)}
	if ev.p.Disk != nil {
		loads = append(loads, peak(ev.rate))
	}
	fitsFor := func(e *Evaluator) greedy.FitsFunc {
		// One scratch member list per closure: each greedy worker owns its
		// evaluator clone and its scratch, so checks stay allocation-light.
		scratch := make([]int, 0, nU)
		return func(bin []int, item int) bool {
			// Pins and conflicts cannot be checked bin-locally against machine
			// indices, so the greedy seed only enforces resources and
			// conflicts; pinning is repaired by hill climbing.
			for _, b := range bin {
				if e.conflicted(b, item) {
					return false
				}
			}
			scratch = append(append(scratch[:0], bin...), item)
			sl := e.serverEval(0, scratch)
			return sl.Violation == 0
		}
	}
	var bins [][]int
	var ok bool
	var err error
	if workers > 1 && len(loads) > 1 {
		bins, ok, err = greedy.MultiResourceParallel(loads, func(int) greedy.FitsFunc {
			return fitsFor(ev.Clone())
		}, maxBins, workers)
	} else {
		bins, ok, err = greedy.MultiResource(loads, fitsFor(ev), maxBins)
	}
	if err != nil || !ok {
		return nil, false
	}
	return bins, true
}

// coldSeeds returns the deterministic cold-start assignments solveK climbs
// from — greedy packing (when it fits K bins) and round-robin spread, both
// with unplaced units parked on machine 0 and pins repaired. Resolve uses
// the same seeds as safety-net candidates, which is what guarantees a warm
// re-solve never loses to the cold local-search path at the same K.
func (ev *Evaluator) coldSeeds(K, workers int) [][]int {
	nU := len(ev.units)
	var seeds [][]int
	if bins, ok := ev.greedySeed(K, workers); ok {
		a := greedy.Assignment(bins, nU)
		for u := range a {
			if a[u] < 0 {
				a[u] = 0
			}
			if ev.pin[u] >= 0 {
				a[u] = ev.pin[u]
			}
		}
		seeds = append(seeds, a)
	}
	rr := make([]int, nU)
	for u := range rr {
		rr[u] = u % K
		if ev.pin[u] >= 0 {
			rr[u] = ev.pin[u]
		}
	}
	return append(seeds, rr)
}

// solveK finds the best assignment on exactly K machines with the given
// budget: greedy and spread seeds improved by hill climbing, plus an
// optional DIRECT global search, polished again. Deterministic throughout
// for any worker count; a cancelled ctx aborts early with a best-effort
// result (speculative probes discard it anyway).
func (ev *Evaluator) solveK(ctx context.Context, K int, opt SolveOptions, polish bool) (assign []int, obj float64, feasible bool) {
	nU := len(ev.units)
	type cand struct {
		assign []int
		obj    float64
		feas   bool
	}
	var cands []cand
	try := func(a []int) {
		a2, o2, f2 := ev.hillClimb(ctx, a, K)
		cands = append(cands, cand{a2, o2, f2})
	}

	// Cold seeds: greedy bins plus round-robin spread.
	for _, a := range ev.coldSeeds(K, opt.workers()) {
		try(a)
	}

	// DIRECT global search over the compact encoding: one continuous
	// variable per unit in [0, K), floor() gives the machine index. With
	// workers > 1 each DIRECT iteration's candidate batch is evaluated
	// across the worker pool, every worker owning an evaluator clone.
	if !opt.SkipDirect {
		budget := opt.DirectFevals
		if polish {
			budget = opt.PolishFevals
		}
		lower := make([]float64, nU)
		upper := make([]float64, nU)
		for i := range upper {
			upper[i] = float64(K)
		}
		decode := func(x []float64, out []int) []int {
			for i, v := range x {
				j := int(v)
				if j >= K {
					j = K - 1
				}
				if ev.pin[i] >= 0 {
					j = ev.pin[i]
				}
				out[i] = j
			}
			return out
		}
		dopt := direct.Options{MaxFevals: budget, Epsilon: 1e-4, Ctx: ctx}
		var res direct.Result
		var derr error
		if workers := opt.workers(); workers > 1 {
			dopt.Workers = workers
			clones := make([]*Evaluator, workers)
			res, derr = direct.MinimizeParallel(func(w int) direct.Objective {
				ce := ev.Clone()
				clones[w] = ce
				tmp := make([]int, nU)
				return func(x []float64) float64 {
					o, _ := ce.Eval(decode(x, tmp), K)
					return o
				}
			}, lower, upper, dopt)
			// Fold worker counters back in fixed order: the total is the
			// batch-point count, independent of scheduling.
			for _, ce := range clones {
				if ce != nil {
					ev.Fevals += ce.Fevals
				}
			}
		} else {
			tmp := make([]int, nU)
			res, derr = direct.Minimize(func(x []float64) float64 {
				o, _ := ev.Eval(decode(x, tmp), K)
				return o
			}, lower, upper, dopt)
		}
		if derr == nil {
			try(decode(res.X, make([]int, nU)))
		}
	}

	bestIdx := 0
	for i := 1; i < len(cands); i++ {
		b, c := cands[bestIdx], cands[i]
		if (c.feas && !b.feas) || (c.feas == b.feas && c.obj < b.obj) {
			bestIdx = i
		}
	}
	best := cands[bestIdx]
	return best.assign, best.obj, best.feas
}

// hillClimb is deterministic best-improvement local search — the
// "polishing" phase of Section 6 — with single-unit moves plus 2-exchange
// swap sweeps. Candidate moves are priced in O(T) against the incremental
// LoadState, so a full move sweep costs O(U·K·T) and a swap sweep O(U²·T),
// instead of the O(·units-per-server·T) factor a scratch re-aggregation
// needs per candidate.
func (ev *Evaluator) hillClimb(ctx context.Context, assign []int, K int) ([]int, float64, bool) {
	return ev.hillClimbRounds(ctx, assign, K, 100)
}

// hillClimbRounds is hillClimb with an explicit sweep budget (the sharded
// solver's cross-shard rebalance pass uses a small one).
func (ev *Evaluator) hillClimbRounds(ctx context.Context, assign []int, K int, maxRounds int) ([]int, float64, bool) {
	return ev.hillClimbMig(ctx, assign, K, maxRounds, nil)
}

// hillClimbMig is the full local search: rounds of single-unit move sweeps,
// falling back to a 2-exchange swap sweep whenever moves stall — swaps
// escape the local optima single-unit moves cannot (two units that should
// trade places but neither fits alongside the other). A non-nil mig adds
// warm-restart migration pricing (Resolve). Accepted moves and swaps
// re-materialize the touched machines' sums canonically inside LoadState,
// and the final plan is re-priced through the canonical Eval, so the
// incremental pricing never drifts into the result. Deterministic: sweep
// order is fixed and independent of worker counts.
func (ev *Evaluator) hillClimbMig(ctx context.Context, assign []int, K int, maxRounds int, mig *migration) ([]int, float64, bool) {
	ls := NewLoadState(ev, assign, K)
	for rounds := 0; rounds < maxRounds && ctx.Err() == nil; rounds++ {
		if !ev.sweepMoves(ctx, ls, K, mig) {
			if !ev.sweepSwaps(ctx, ls, K, mig) {
				break
			}
		}
	}
	// Canonical final pricing through Eval keeps all callers consistent.
	cur := ls.Assignment()
	obj, feas := ev.Eval(cur, K)
	return cur, obj, feas
}

// bestMove returns unit u's best strictly-improving destination machine
// under the current LoadState (and optional migration pricing), or u's
// current machine when no move improves. Counts one Feval per candidate
// priced. Shared by the move sweeps and the warm-seed placement of units
// with no incumbent.
func (ev *Evaluator) bestMove(ls *LoadState, u, K int, mig *migration) int {
	from := ls.Assign(u)
	cFromNew := ls.PriceRemove(u)
	bestJ := from
	bestDelta := -1e-9 // strict improvement required
	screen := ls.Screened()
	for j := 0; j < K; j++ {
		if j == from {
			continue
		}
		if !mig.allows(mig.awayDelta(u, from, j)) {
			continue
		}
		// Fevals counts candidates considered, screened or exactly priced,
		// so its semantics (and every warm-vs-cold comparison built on it)
		// are independent of the coarse screen.
		ev.Fevals++
		if screen {
			// Coarse-to-fine: the O(T/B) lower bound on the destination's
			// new contribution prunes candidates that provably cannot beat
			// the best delta so far. The bound delta mirrors the exact
			// delta expression with ScreenAdd ≤ PriceAdd substituted, so
			// pruned candidates are exactly ones the exact pricing would
			// have rejected — the chosen move is bit-identical.
			lo := ls.ScreenAdd(u, j)
			if (cFromNew+lo)-(ls.Contrib(from)+ls.Contrib(j))+mig.delta(u, from, j) >= bestDelta {
				continue
			}
		}
		cToNew := ls.PriceAdd(u, j)
		delta := (cFromNew + cToNew) - (ls.Contrib(from) + ls.Contrib(j)) + mig.delta(u, from, j)
		if delta < bestDelta {
			bestDelta = delta
			bestJ = j
		}
	}
	return bestJ
}

// sweepMoves runs one best-improvement sweep of single-unit moves, applying
// improving moves as it goes. Reports whether anything moved. A cancelled
// ctx stops the sweep between units, bounding abort latency by one unit's
// O(K·T) pricing rather than a whole sweep.
func (ev *Evaluator) sweepMoves(ctx context.Context, ls *LoadState, K int, mig *migration) bool {
	improved := false
	for u := 0; u < ls.NumUnits(); u++ {
		if ctx.Err() != nil {
			return false
		}
		if ev.pin[u] >= 0 {
			continue
		}
		from := ls.Assign(u)
		if bestJ := ev.bestMove(ls, u, K, mig); bestJ != from {
			mig.note(mig.awayDelta(u, from, bestJ))
			ls.Move(u, bestJ)
			improved = true
		}
	}
	return improved
}

// sweepSwaps runs one best-improvement sweep of 2-exchange swaps: for every
// unit, the best partner on another machine is found by pricing both sides
// of the exchange as two O(T) LoadState deltas, and the best strictly
// improving swap per unit is applied immediately. Reports whether any swap
// was applied. A cancelled ctx stops the sweep between units.
func (ev *Evaluator) sweepSwaps(ctx context.Context, ls *LoadState, K int, mig *migration) bool {
	improved := false
	n := ls.NumUnits()
	screen := ls.Screened()
	for u := 0; u < n; u++ {
		if ctx.Err() != nil {
			return false
		}
		if ev.pin[u] >= 0 {
			continue
		}
		a := ls.Assign(u)
		bestV := -1
		bestDelta := -1e-9 // strict improvement required
		for v := u + 1; v < n; v++ {
			if ev.pin[v] >= 0 {
				continue
			}
			b := ls.Assign(v)
			if b == a {
				continue
			}
			if !mig.allows(mig.awayDelta(u, a, b) + mig.awayDelta(v, b, a)) {
				continue
			}
			ev.Fevals++ // candidates considered, screened or priced
			if screen {
				// Coarse-to-fine, staged: first prune against u's side
				// alone (the other side contributes at least exp(0) = 1),
				// then against both sides' lower bounds. Each stage's
				// bound delta mirrors the exact delta expression — same
				// floating-point shape, termwise lower bounds substituted
				// — so pruned swaps are exactly ones the exact pricing
				// would have rejected.
				loU := ls.screenExchange(a, u, v)
				if (loU+1)-(ls.Contrib(a)+ls.Contrib(b))+
					mig.delta(u, a, b)+mig.delta(v, b, a) >= bestDelta {
					continue
				}
				loV := ls.screenExchange(b, v, u)
				if (loU+loV)-(ls.Contrib(a)+ls.Contrib(b))+
					mig.delta(u, a, b)+mig.delta(v, b, a) >= bestDelta {
					continue
				}
			}
			nu, nv := ls.PriceSwap(u, v)
			delta := (nu + nv) - (ls.Contrib(a) + ls.Contrib(b)) +
				mig.delta(u, a, b) + mig.delta(v, b, a)
			if delta < bestDelta {
				bestDelta = delta
				bestV = v
			}
		}
		if bestV >= 0 {
			b := ls.Assign(bestV)
			mig.note(mig.awayDelta(u, a, b) + mig.awayDelta(bestV, b, a))
			ls.Swap(u, bestV)
			improved = true
		}
	}
	return improved
}
