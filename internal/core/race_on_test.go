//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under it.
const raceEnabled = true
