// Package series implements the regularly-sampled time series that Kairos
// uses for workload resource profiles. The paper works with 24-hour windows
// sampled every 5 minutes (288 samples) and with weekly windows; this package
// provides construction, combination, resampling, and summary operations for
// those profiles.
package series

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Series is a regularly-sampled time series: Values[i] is the sample at
// Start + i·Step. The zero value is an empty series.
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// ErrMismatch is returned when combining series with differing shape.
var ErrMismatch = errors.New("series: step/length mismatch")

// New creates a series with the given start, step, and values (not copied).
func New(start time.Time, step time.Duration, values []float64) *Series {
	return &Series{Start: start, Step: step, Values: values}
}

// Constant creates a series of n samples all equal to v.
func Constant(start time.Time, step time.Duration, n int, v float64) *Series {
	values := make([]float64, n)
	for i := range values {
		values[i] = v
	}
	return New(start, step, values)
}

// FromFunc creates a series of n samples where sample i is f(t_i, i) with
// t_i = start + i·step. Useful for synthetic load patterns.
func FromFunc(start time.Time, step time.Duration, n int, f func(t time.Time, i int) float64) *Series {
	values := make([]float64, n)
	for i := range values {
		values[i] = f(start.Add(time.Duration(i)*step), i)
	}
	return New(start, step, values)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return New(s.Start, s.Step, append([]float64(nil), s.Values...))
}

// sameShape reports whether two series can be combined element-wise.
func (s *Series) sameShape(o *Series) bool {
	return s.Step == o.Step && len(s.Values) == len(o.Values)
}

// Add returns a new series that is the element-wise sum s + o.
func (s *Series) Add(o *Series) (*Series, error) {
	if !s.sameShape(o) {
		return nil, ErrMismatch
	}
	out := s.Clone()
	for i, v := range o.Values {
		out.Values[i] += v
	}
	return out, nil
}

// AddInPlace adds o into s element-wise.
func (s *Series) AddInPlace(o *Series) error {
	if !s.sameShape(o) {
		return ErrMismatch
	}
	for i, v := range o.Values {
		s.Values[i] += v
	}
	return nil
}

// Scale returns a new series with every sample multiplied by k.
func (s *Series) Scale(k float64) *Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= k
	}
	return out
}

// Shift returns a new series with every sample increased by k.
func (s *Series) Shift(k float64) *Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] += k
	}
	return out
}

// Clamp returns a new series with every sample clamped to [lo, hi].
func (s *Series) Clamp(lo, hi float64) *Series {
	out := s.Clone()
	for i, v := range out.Values {
		out.Values[i] = math.Min(hi, math.Max(lo, v))
	}
	return out
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	mx := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	mn := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Sum combines multiple same-shape series into their element-wise sum. The
// first series defines start and step. Sum(nil) returns an empty series.
func Sum(ss []*Series) (*Series, error) {
	if len(ss) == 0 {
		return &Series{}, nil
	}
	out := ss[0].Clone()
	for _, s := range ss[1:] {
		if err := out.AddInPlace(s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MaxOfSum returns max_t Σ_i ss[i][t]: the peak of the combined series. This
// is the quantity the consolidation constraints bound for CPU and RAM.
func MaxOfSum(ss []*Series) (float64, error) {
	sum, err := Sum(ss)
	if err != nil {
		return 0, err
	}
	return sum.Max(), nil
}

// Resample returns a new series with the given step, aggregating with the
// mean of the source samples falling in each output bucket (rrdtool AVERAGE
// semantics). The new step must be a positive multiple of the source step.
func (s *Series) Resample(step time.Duration) (*Series, error) {
	if s.Step <= 0 {
		return nil, fmt.Errorf("series: source step %v invalid", s.Step)
	}
	if step <= 0 || step%s.Step != 0 {
		return nil, fmt.Errorf("series: new step %v must be a positive multiple of %v", step, s.Step)
	}
	k := int(step / s.Step)
	n := len(s.Values) / k
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < k; j++ {
			sum += s.Values[i*k+j]
		}
		values[i] = sum / float64(k)
	}
	return New(s.Start, step, values), nil
}

// Slice returns the sub-series covering samples [from, to).
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Values) || from > to {
		return nil, fmt.Errorf("series: slice [%d,%d) out of range 0..%d", from, to, len(s.Values))
	}
	return New(s.TimeAt(from), s.Step, append([]float64(nil), s.Values[from:to]...)), nil
}

// String renders a short human-readable summary.
func (s *Series) String() string {
	return fmt.Sprintf("Series{n=%d step=%v mean=%.3f max=%.3f}", s.Len(), s.Step, s.Mean(), s.Max())
}
