package series

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"kairos/internal/floats"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func TestConstantAndAccessors(t *testing.T) {
	s := Constant(t0, 5*time.Minute, 288, 1.5)
	if s.Len() != 288 {
		t.Fatalf("Len = %d, want 288", s.Len())
	}
	if s.Mean() != 1.5 || s.Max() != 1.5 || s.Min() != 1.5 {
		t.Errorf("constant series stats wrong: mean=%v max=%v min=%v", s.Mean(), s.Max(), s.Min())
	}
	if got := s.TimeAt(12); !got.Equal(t0.Add(time.Hour)) {
		t.Errorf("TimeAt(12) = %v, want %v", got, t0.Add(time.Hour))
	}
}

func TestFromFunc(t *testing.T) {
	s := FromFunc(t0, time.Minute, 4, func(_ time.Time, i int) float64 { return float64(i * i) })
	want := []float64{0, 1, 4, 9}
	for i, v := range want {
		if !floats.Same(s.Values[i], v) {
			t.Errorf("Values[%d] = %v, want %v", i, s.Values[i], v)
		}
	}
}

func TestAddAndMismatch(t *testing.T) {
	a := Constant(t0, time.Minute, 3, 1)
	b := Constant(t0, time.Minute, 3, 2)
	c, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Values {
		if v != 3 {
			t.Errorf("Add values = %v, want 3s", c.Values)
			break
		}
	}
	// a must be unchanged (Add is not in place).
	if a.Values[0] != 1 {
		t.Error("Add mutated its receiver")
	}
	short := Constant(t0, time.Minute, 2, 1)
	if _, err := a.Add(short); err != ErrMismatch {
		t.Errorf("Add length mismatch err = %v, want ErrMismatch", err)
	}
	otherStep := Constant(t0, time.Second, 3, 1)
	if _, err := a.Add(otherStep); err != ErrMismatch {
		t.Errorf("Add step mismatch err = %v, want ErrMismatch", err)
	}
	if err := a.AddInPlace(b); err != nil || a.Values[0] != 3 {
		t.Errorf("AddInPlace failed: %v, values %v", err, a.Values)
	}
	if err := a.AddInPlace(short); err != ErrMismatch {
		t.Error("AddInPlace mismatch should error")
	}
}

func TestScaleShiftClamp(t *testing.T) {
	s := New(t0, time.Minute, []float64{-1, 0, 2})
	if got := s.Scale(2).Values; got[0] != -2 || got[2] != 4 {
		t.Errorf("Scale = %v", got)
	}
	if got := s.Shift(1).Values; got[0] != 0 || got[2] != 3 {
		t.Errorf("Shift = %v", got)
	}
	if got := s.Clamp(0, 1).Values; got[0] != 0 || got[1] != 0 || got[2] != 1 {
		t.Errorf("Clamp = %v", got)
	}
	if s.Values[0] != -1 {
		t.Error("Scale/Shift/Clamp must not mutate the receiver")
	}
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty series stats should be 0")
	}
}

func TestSumAndMaxOfSum(t *testing.T) {
	a := New(t0, time.Minute, []float64{1, 5, 2})
	b := New(t0, time.Minute, []float64{2, 1, 2})
	sum, err := Sum([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[0] != 3 || sum.Values[1] != 6 || sum.Values[2] != 4 {
		t.Errorf("Sum = %v", sum.Values)
	}
	peak, err := MaxOfSum([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 6 {
		t.Errorf("MaxOfSum = %v, want 6", peak)
	}
	empty, err := Sum(nil)
	if err != nil || empty.Len() != 0 {
		t.Error("Sum(nil) should be an empty series")
	}
	if _, err := Sum([]*Series{a, Constant(t0, time.Second, 3, 0)}); err == nil {
		t.Error("Sum with mismatched shapes should error")
	}
	if _, err := MaxOfSum([]*Series{a, Constant(t0, time.Second, 3, 0)}); err == nil {
		t.Error("MaxOfSum with mismatched shapes should error")
	}
}

func TestResample(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 3, 5, 7, 9, 11})
	r, err := s.Resample(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 10}
	if len(r.Values) != 3 {
		t.Fatalf("Resample len = %d, want 3", len(r.Values))
	}
	for i, v := range want {
		if !floats.Same(r.Values[i], v) {
			t.Errorf("Resample[%d] = %v, want %v", i, r.Values[i], v)
		}
	}
	if r.Step != 2*time.Minute {
		t.Errorf("Resample step = %v", r.Step)
	}
	if _, err := s.Resample(90 * time.Second); err == nil {
		t.Error("non-multiple step should error")
	}
	if _, err := s.Resample(-time.Minute); err == nil {
		t.Error("negative step should error")
	}
	bad := &Series{Step: 0, Values: []float64{1}}
	if _, err := bad.Resample(time.Minute); err == nil {
		t.Error("zero source step should error")
	}
}

func TestSlice(t *testing.T) {
	s := New(t0, time.Minute, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Values[0] != 1 || sub.Values[2] != 3 {
		t.Errorf("Slice = %v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(time.Minute)) {
		t.Errorf("Slice start = %v", sub.Start)
	}
	// The slice must be independent of the source.
	sub.Values[0] = 99
	if s.Values[1] == 99 {
		t.Error("Slice shares backing array with source")
	}
	if _, err := s.Slice(-1, 2); err == nil {
		t.Error("negative from should error")
	}
	if _, err := s.Slice(3, 2); err == nil {
		t.Error("from > to should error")
	}
	if _, err := s.Slice(0, 6); err == nil {
		t.Error("to out of range should error")
	}
}

func TestString(t *testing.T) {
	s := Constant(t0, time.Minute, 2, 1)
	if s.String() == "" {
		t.Error("String should not be empty")
	}
}

// Property: MaxOfSum ≤ sum of individual maxima (subadditivity of peak).
func TestMaxOfSumSubadditiveProperty(t *testing.T) {
	f := func(a, b [12]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		sa := New(t0, time.Minute, a[:])
		sb := New(t0, time.Minute, b[:])
		peak, err := MaxOfSum([]*Series{sa, sb})
		if err != nil {
			return false
		}
		return peak <= sa.Max()+sb.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: resampling preserves the overall mean when the length divides
// evenly.
func TestResampleMeanPreservedProperty(t *testing.T) {
	f := func(raw [24]float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		s := New(t0, time.Minute, raw[:])
		r, err := s.Resample(4 * time.Minute)
		if err != nil {
			return false
		}
		return math.Abs(r.Mean()-s.Mean()) < 1e-6*(1+math.Abs(s.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
